// F9 (Fig. 9): the instance browser and its filters.
//
// Claim checked: keyword / date / user filtering and the "Use
// Dependencies" restriction stay interactive as the history database
// grows.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/browser.hpp"

namespace {

using namespace herc;

struct BrowserFixture {
  std::unique_ptr<core::DesignSession> session;
  bench::Basics basics;
  std::vector<data::InstanceId> versions;

  explicit BrowserFixture(std::size_t instances) {
    session = bench::make_session();
    basics = bench::import_basics(*session);
    versions = bench::grow_edit_chain(*session, basics, instances);
  }
};

void BM_BrowserUnfiltered(benchmark::State& state) {
  BrowserFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto browser = fx.session->browse("Netlist");
  for (auto _ : state) {
    benchmark::DoNotOptimize(browser.rows({}));
  }
  state.SetLabel(std::to_string(fx.session->db().size()) + " instances");
}
BENCHMARK(BM_BrowserUnfiltered)->Arg(16)->Arg(128)->Arg(1024);

void BM_BrowserKeywordFilter(benchmark::State& state) {
  BrowserFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto browser = fx.session->browse("Netlist");
  core::BrowserFilter filter;
  filter.keyword = "chain";
  for (auto _ : state) {
    benchmark::DoNotOptimize(browser.rows(filter));
  }
}
BENCHMARK(BM_BrowserKeywordFilter)->Arg(16)->Arg(128)->Arg(1024);

void BM_BrowserDateAndUser(benchmark::State& state) {
  BrowserFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto browser = fx.session->browse("Netlist");
  core::BrowserFilter filter;
  filter.user = "bench";
  filter.from = support::Timestamp(718000000000000LL);
  filter.to = support::Timestamp(718000000900000LL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(browser.rows(filter));
  }
}
BENCHMARK(BM_BrowserDateAndUser)->Arg(16)->Arg(128)->Arg(1024);

void BM_BrowserUseDependencies(benchmark::State& state) {
  // One-step forward chaining as a browser restriction.
  BrowserFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto browser = fx.session->browse("EditedNetlist");
  core::BrowserFilter filter;
  filter.uses = fx.versions[fx.versions.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(browser.rows(filter));
  }
}
BENCHMARK(BM_BrowserUseDependencies)->Arg(16)->Arg(128)->Arg(1024);

void BM_BrowserRender(benchmark::State& state) {
  BrowserFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto browser = fx.session->browse("Netlist");
  for (auto _ : state) {
    benchmark::DoNotOptimize(browser.render({}));
  }
}
BENCHMARK(BM_BrowserRender)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
