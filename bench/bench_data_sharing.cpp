// S4 (footnote 5): shared physical data under content addressing.
//
// Claim checked: "several design history instances could point to the
// same RCS file" — meta-data instances are cheap because unchanged
// payloads are stored once.  We measure the blob store's dedup ratio on a
// realistic history (edit chains where most tool outputs repeat) and the
// cost of content-addressed writes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace herc;

void BM_BlobPutDistinct(benchmark::State& state) {
  const std::string base(static_cast<std::size_t>(state.range(0)), 'x');
  data::BlobStore store;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.put(base + std::to_string(i++)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BlobPutDistinct)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BlobPutRepeated(benchmark::State& state) {
  // The sharing case: the same payload written again and again.
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'y');
  data::BlobStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.put(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BlobPutRepeated)->Arg(256)->Arg(4096)->Arg(65536);

void BM_HistorySharingRatio(benchmark::State& state) {
  // Re-running the same simulate flow N times: identical payloads, new
  // meta-data instances.  The label reports physical vs logical bytes.
  const auto reruns = static_cast<std::size_t>(state.range(0));
  double ratio = 1.0;
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    state.ResumeTiming();
    for (std::size_t r = 0; r < reruns; ++r) {
      benchmark::DoNotOptimize(session->run(flow));
    }
    state.PauseTiming();
    const auto& blobs = session->db().blobs();
    ratio = static_cast<double>(blobs.bytes_logical()) /
            static_cast<double>(std::max<std::uint64_t>(
                blobs.bytes_stored(), 1));
    state.ResumeTiming();
  }
  state.SetLabel("logical/stored = " + std::to_string(ratio));
}
BENCHMARK(BM_HistorySharingRatio)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
