// F2 (Fig. 2): the tool created during the design.
//
// Claim checked: compiling a simulator for a netlist pays off when it is
// "then executed on different stimuli" — table-driven evaluation beats
// re-relaxing the switch network per event, and the one-time compile cost
// is amortized across runs.
#include <benchmark/benchmark.h>

#include "circuit/cosmos.hpp"
#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"

namespace {

using namespace herc::circuit;

std::vector<std::string> adder_inputs(std::size_t bits) {
  std::vector<std::string> nets;
  for (std::size_t i = 0; i < bits; ++i) {
    nets.push_back("a" + std::to_string(i));
    nets.push_back("b" + std::to_string(i));
  }
  nets.push_back("cin");
  return nets;
}

void BM_InterpretedSimulation(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const Netlist nl = ripple_adder_netlist(bits);
  const DeviceModelLibrary models = DeviceModelLibrary::standard();
  const Stimuli st = Stimuli::random(adder_inputs(bits), 1000, 64, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nl, models, st));
  }
  state.SetLabel(std::to_string(nl.mos_count()) + " transistors");
}
BENCHMARK(BM_InterpretedSimulation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CompiledSimulation(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const Netlist nl = ripple_adder_netlist(bits);
  const DeviceModelLibrary models = DeviceModelLibrary::standard();
  const CompiledSim program = compile_netlist(nl, models);
  const Stimuli st = Stimuli::random(adder_inputs(bits), 1000, 64, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_compiled(program, st));
  }
  state.SetLabel(std::to_string(program.table_rows()) + " table rows");
}
BENCHMARK(BM_CompiledSimulation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CompileCost(benchmark::State& state) {
  // The one-time cost the flow's SimCompiler task pays.
  const auto bits = static_cast<std::size_t>(state.range(0));
  const Netlist nl = ripple_adder_netlist(bits);
  const DeviceModelLibrary models = DeviceModelLibrary::standard();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_netlist(nl, models));
  }
}
BENCHMARK(BM_CompileCost)->Arg(1)->Arg(4)->Arg(8);

void BM_CompiledProgramRoundTrip(benchmark::State& state) {
  // The program is a design-data payload; it must (de)serialize cheaply.
  const CompiledSim program = compile_netlist(
      ripple_adder_netlist(4), DeviceModelLibrary::standard());
  const std::string text = program.to_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompiledSim::from_text(text));
  }
}
BENCHMARK(BM_CompiledProgramRoundTrip);

}  // namespace

BENCHMARK_MAIN();
