// S6 (§3.3): flow automation ("automatic task sequencing").
//
// Claim checked: because dependencies live in the task schema, a complete
// runnable flow for a goal entity can be constructed automatically; the
// construction cost is proportional to the flow, and combined with
// memoized execution an auto-flow re-run collapses to history lookups.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "exec/automation.hpp"

namespace {

using namespace herc;

void BM_AutoFlowConstruction(benchmark::State& state) {
  auto session = bench::make_session();
  (void)bench::import_basics(*session);
  const auto goal = session->schema().require("Performance");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::auto_flow(session->db(), goal));
  }
}
BENCHMARK(BM_AutoFlowConstruction);

void BM_AutoFlowDeepGoal(benchmark::State& state) {
  // Verification needs layout + netlist branches: a deeper construction.
  auto session = bench::make_session();
  (void)bench::import_basics(*session);
  session->import_data("Placer", "pl", "");
  session->import_data("Verifier", "lvs", "");
  const auto goal = session->schema().require("Verification");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::auto_flow(session->db(), goal));
  }
}
BENCHMARK(BM_AutoFlowDeepGoal);

void BM_AutoFlowRunMemoized(benchmark::State& state) {
  // Construct + run with reuse: after the first run everything is a
  // history lookup.
  auto session = bench::make_session();
  (void)bench::import_basics(*session);
  const auto goal = session->schema().require("Performance");
  exec::ExecOptions options;
  options.reuse_existing = true;
  (void)session->run(exec::auto_flow(session->db(), goal), options);
  for (auto _ : state) {
    const auto flow = exec::auto_flow(session->db(), goal);
    benchmark::DoNotOptimize(session->run(flow, options));
  }
  state.SetLabel("construct + memoized run");
}
BENCHMARK(BM_AutoFlowRunMemoized);

}  // namespace

BENCHMARK_MAIN();
