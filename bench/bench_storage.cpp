// Storage subsystem benchmark: journaled commit vs full-image save,
// checkpoint cost, and recovery latency.  Emits machine-readable results
// to BENCH_storage.json in the working directory.
//
// The headline claim: committing one mutation through the write-ahead
// journal is O(delta) — on a 10k-instance history it must be at least an
// order of magnitude cheaper than rewriting the full save() image, which
// is what persistence cost before the journal existed.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/store.hpp"
#include "support/clock.hpp"

namespace {

namespace fs = std::filesystem;
using namespace herc;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Imports `count` instances with small distinct payloads.
void populate(history::HistoryDb& db, const schema::TaskSchema& schema,
              std::size_t count, std::size_t tag) {
  const schema::EntityTypeId netlist = schema.require("EditedNetlist");
  for (std::size_t i = 0; i < count; ++i) {
    db.import_instance(netlist, "n" + std::to_string(tag) + "_" +
                                    std::to_string(i),
                       "payload" + std::to_string(i % 97), "bench");
  }
}

}  // namespace

int main() {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  const std::string dir =
      (fs::temp_directory_path() / "herc_bench_storage").string();
  fs::remove_all(dir);

  constexpr std::size_t kBaseInstances = 10000;
  constexpr std::size_t kCommits = 2000;
  constexpr std::size_t kSaveIters = 20;

  double populate_ms = 0;
  double append_us_per_op = 0;
  double full_save_us_per_op = 0;
  double checkpoint_ms = 0;
  double recovery_journal_ms = 0;
  double recovery_snapshot_ms = 0;
  std::uint64_t bytes_journaled = 0;
  std::uint64_t records_journaled = 0;
  std::size_t snapshot_bytes = 0;

  {
    support::ManualClock clock(718000000000000LL, 1000);
    storage::StoreOptions options;
    options.journal.sync = storage::SyncPolicy::kNone;
    storage::DurableHistory store(schema, clock, dir, options);

    auto start = Clock::now();
    populate(store.db(), schema, kBaseInstances, 0);
    populate_ms = ms_since(start);

    // Journaled commit: one mutation appended to the WAL, O(delta).
    start = Clock::now();
    populate(store.db(), schema, kCommits, 1);
    append_us_per_op = ms_since(start) * 1000.0 / kCommits;

    // The alternative a journal replaces: serialize the full image and
    // rewrite it, per commit.
    start = Clock::now();
    for (std::size_t i = 0; i < kSaveIters; ++i) {
      const std::string image = store.db().save();
      std::ofstream out((fs::path(dir) / "naive.img").string(),
                        std::ios::binary | std::ios::trunc);
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
      snapshot_bytes = image.size();
    }
    full_save_us_per_op = ms_since(start) * 1000.0 / kSaveIters;
    fs::remove(fs::path(dir) / "naive.img");

    bytes_journaled = store.bytes_journaled();
    records_journaled = store.records_journaled();
  }

  // Journal-only recovery: replay every record from the WAL.
  {
    support::ManualClock clock(0, 1);
    const auto start = Clock::now();
    storage::DurableHistory store(schema, clock, dir);
    recovery_journal_ms = ms_since(start);
    if (store.db().size() != kBaseInstances + kCommits) {
      std::fprintf(stderr, "journal recovery size mismatch: %zu\n",
                   store.db().size());
      return 1;
    }

    const auto cp_start = Clock::now();
    store.checkpoint();
    checkpoint_ms = ms_since(cp_start);
  }

  // Snapshot recovery: load the compacted image, empty journal tail.
  {
    support::ManualClock clock(0, 1);
    const auto start = Clock::now();
    storage::DurableHistory store(schema, clock, dir);
    recovery_snapshot_ms = ms_since(start);
    if (store.db().size() != kBaseInstances + kCommits) {
      std::fprintf(stderr, "snapshot recovery size mismatch: %zu\n",
                   store.db().size());
      return 1;
    }
  }
  fs::remove_all(dir);

  const double speedup = full_save_us_per_op / append_us_per_op;

  std::ofstream json("BENCH_storage.json", std::ios::trunc);
  json << "{\n"
       << "  \"instances\": " << kBaseInstances + kCommits << ",\n"
       << "  \"journaled_commits\": " << kCommits << ",\n"
       << "  \"populate_ms\": " << populate_ms << ",\n"
       << "  \"journal_append_us_per_op\": " << append_us_per_op << ",\n"
       << "  \"full_save_us_per_op\": " << full_save_us_per_op << ",\n"
       << "  \"journal_vs_full_save_speedup\": " << speedup << ",\n"
       << "  \"records_journaled\": " << records_journaled << ",\n"
       << "  \"bytes_journaled\": " << bytes_journaled << ",\n"
       << "  \"snapshot_bytes\": " << snapshot_bytes << ",\n"
       << "  \"checkpoint_ms\": " << checkpoint_ms << ",\n"
       << "  \"recovery_journal_ms\": " << recovery_journal_ms << ",\n"
       << "  \"recovery_snapshot_ms\": " << recovery_snapshot_ms << "\n"
       << "}\n";
  json.close();

  std::printf("bench_storage: %zu instances\n", kBaseInstances + kCommits);
  std::printf("  journal append      %.2f us/op\n", append_us_per_op);
  std::printf("  full save()         %.2f us/op\n", full_save_us_per_op);
  std::printf("  speedup             %.1fx\n", speedup);
  std::printf("  checkpoint          %.2f ms\n", checkpoint_ms);
  std::printf("  recovery (journal)  %.2f ms\n", recovery_journal_ms);
  std::printf("  recovery (snapshot) %.2f ms\n", recovery_snapshot_ms);
  std::printf("  -> BENCH_storage.json\n");

  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: journaled commit only %.1fx cheaper than full save "
                 "(need >= 10x)\n",
                 speedup);
    return 1;
  }
  return 0;
}
