// Server benchmark: wire round-trip latency, query throughput as clients
// scale, pipelining gain, and mixed read/write throughput under the
// reader-writer lock.  Emits machine-readable results to
// BENCH_server.json in the working directory (EXPERIMENTS S10).
//
// The headline claims: queries scale with client count (shared lock, no
// serialization), and pipelining amortizes the round trip.
//
// Methodology: every timed section runs over connections that were
// established and warmed (one round-trip) *before* the clock starts —
// connect cost and first-command cold paths are setup, not service time —
// and multi-client sections release all clients through a barrier so the
// measured window is pure steady state.  Latency is reported as p50/p95/
// p99 from a `LatencyHistogram`, not just the mean: tail latency is what
// a designer at a busy server actually feels.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/latency.hpp"
#include "server/resilient.hpp"
#include "server/server.hpp"

namespace {

using namespace herc;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Releases all worker threads at once so the timed window starts with
/// every connection warm and every thread running.
class StartGate {
 public:
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }
  void open() {
    const std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  bool open_ = false;
};

/// `ops` synchronous `entities` round-trips per client, `clients` clients,
/// connections warmed before the clock starts; returns aggregate queries
/// per second and records per-op latency into `latency`.
double query_throughput(const server::Endpoint& endpoint, int clients,
                        int ops, std::atomic<int>& errors,
                        server::LatencyHistogram& latency) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  StartGate gate;
  Clock::time_point start{};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client = server::Client::connect(endpoint);
      if (!client.call("entities").ok()) ++errors;  // warm, untimed
      gate.arrive_and_wait();
      for (int i = 0; i < ops; ++i) {
        const auto t0 = Clock::now();
        if (!client.call("entities").ok()) ++errors;
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
      }
      client.close();
    });
  }
  gate.wait_for(static_cast<std::size_t>(clients));
  start = Clock::now();
  gate.open();
  for (std::thread& t : threads) t.join();
  const double elapsed = ms_since(start);
  return clients * ops / elapsed * 1000.0;
}

}  // namespace

int main() {
  core::DesignSession session(schema::make_full_schema());
  server::Server server(session);
  const server::Endpoint endpoint =
      server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
  server.start();

  constexpr int kOps = 400;
  constexpr int kPipelined = 2000;
  std::atomic<int> errors{0};

  // Round-trip latency, one quiet warmed client.
  double round_trip_us = 0;
  server::LatencyHistogram round_trip_hist;
  {
    server::Client client = server::Client::connect(endpoint);
    for (int i = 0; i < 50; ++i) (void)client.call("echo warm");
    const auto start = Clock::now();
    for (int i = 0; i < kOps; ++i) {
      const auto t0 = Clock::now();
      if (!client.call("echo x").ok()) ++errors;
      round_trip_hist.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count()));
    }
    round_trip_us = ms_since(start) * 1000.0 / kOps;
    client.close();
  }

  // Same command stream, pipelined: send everything, then drain.  The
  // connection is already warm from a throwaway round-trip.
  double pipelined_us = 0;
  {
    server::Client client = server::Client::connect(endpoint);
    if (!client.call("echo warm").ok()) ++errors;
    const auto start = Clock::now();
    for (int i = 0; i < kPipelined; ++i) client.send("echo x");
    for (int i = 0; i < kPipelined; ++i) {
      if (!client.receive().ok()) ++errors;
    }
    pipelined_us = ms_since(start) * 1000.0 / kPipelined;
    client.close();
  }

  // Query throughput as clients scale (shared lock: should not collapse).
  const std::vector<int> kClientCounts = {1, 2, 4, 8};
  std::vector<double> qps;
  qps.reserve(kClientCounts.size());
  server::LatencyHistogram query_hist;  // the 8-client run's tails
  for (const int clients : kClientCounts) {
    server::LatencyHistogram scratch;
    server::LatencyHistogram& hist = clients == 8 ? query_hist : scratch;
    qps.push_back(query_throughput(endpoint, clients, kOps, errors, hist));
  }

  // Mixed load: 8 clients, one import (exclusive lock) per 4 queries,
  // connections warmed and gate-released like the query runs.
  double mixed_ops_per_s = 0;
  server::LatencyHistogram mixed_hist;
  {
    constexpr int kClients = 8;
    constexpr int kMixedOps = 200;
    std::vector<std::thread> threads;
    StartGate gate;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        server::Client client = server::Client::connect(endpoint);
        if (!client.call("entities").ok()) ++errors;  // warm, untimed
        gate.arrive_and_wait();
        for (int i = 0; i < kMixedOps; ++i) {
          const bool write = i % 4 == 0;
          const auto t0 = Clock::now();
          const server::CallResult result =
              write ? client.call("import Stimuli m" + std::to_string(c) +
                                      "_" + std::to_string(i),
                                  "stimuli m\nwave in 0:0 100:1\n")
                    : client.call("entities");
          mixed_hist.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count()));
          if (!result.ok()) ++errors;
        }
        client.close();
      });
    }
    gate.wait_for(kClients);
    const auto start = Clock::now();
    gate.open();
    for (std::thread& t : threads) t.join();
    mixed_ops_per_s = kClients * kMixedOps / ms_since(start) * 1000.0;
  }

  // Idempotency-token overhead: the same warmed synchronous stream as the
  // round-trip section, but through a ResilientClient so every command
  // wears a token the server must parse and (for writes) dedup-track.
  // The delta against `round_trip_us` is the price of exactly-once.
  double tokened_us = 0;
  {
    server::ResilientClient client(endpoint);
    for (int i = 0; i < 50; ++i) (void)client.call("echo warm");
    const auto start = Clock::now();
    for (int i = 0; i < kOps; ++i) {
      if (!client.call("echo x").ok()) ++errors;
    }
    tokened_us = ms_since(start) * 1000.0 / kOps;
    client.close();
  }

  // The cached-reply path: one applied mutation, then the same token
  // replayed over and over — every reply comes from the dedup window,
  // not the interpreter.  This is what a retry after a torn connection
  // costs the server.
  double replay_us = 0;
  {
    server::Client client = server::Client::connect(endpoint);
    client.send_token("bench-replayer", 1, "import Stimuli replay_probe",
                      "stimuli r\nwave in 0:0 100:1\n");
    if (!client.receive().ok()) ++errors;
    const auto start = Clock::now();
    for (int i = 0; i < kOps; ++i) {
      client.send_token("bench-replayer", 1, "import Stimuli replay_probe",
                        "stimuli r\nwave in 0:0 100:1\n");
      if (!client.receive().ok()) ++errors;
    }
    replay_us = ms_since(start) * 1000.0 / kOps;
    client.close();
  }

  // Reconnect storm: every operation pays a full connect + hello + token
  // on a fresh connection — the worst case of a flapping network where
  // clients reconnect for every command.  Throughput here bounds how
  // fast a resilient fleet can recover after a partition heals.
  double storm_conn_per_s = 0;
  server::LatencyHistogram storm_hist;
  {
    constexpr int kStormClients = 8;
    constexpr int kCycles = 50;
    std::vector<std::thread> threads;
    StartGate gate;
    for (int c = 0; c < kStormClients; ++c) {
      threads.emplace_back([&, c] {
        gate.arrive_and_wait();
        for (int i = 0; i < kCycles; ++i) {
          const auto t0 = Clock::now();
          server::ResilientOptions options;
          options.client_id =
              "storm" + std::to_string(c) + "_" + std::to_string(i);
          server::ResilientClient client(endpoint, options);
          if (!client.call("echo x").ok()) ++errors;
          client.close();
          storm_hist.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count()));
        }
      });
    }
    gate.wait_for(kStormClients);
    const auto start = Clock::now();
    gate.open();
    for (std::thread& t : threads) t.join();
    storm_conn_per_s = kStormClients * kCycles / ms_since(start) * 1000.0;
  }

  server.stop();
  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_server: %d command(s) failed\n",
                 errors.load());
    return 1;
  }

  std::ofstream json("BENCH_server.json", std::ios::trunc);
  json << "{\n"
       << "  \"round_trip_us\": " << round_trip_us << ",\n"
       << "  \"round_trip_p50_us\": " << round_trip_hist.percentile(0.50)
       << ",\n"
       << "  \"round_trip_p95_us\": " << round_trip_hist.percentile(0.95)
       << ",\n"
       << "  \"round_trip_p99_us\": " << round_trip_hist.percentile(0.99)
       << ",\n"
       << "  \"pipelined_us_per_cmd\": " << pipelined_us << ",\n"
       << "  \"pipelining_speedup\": " << round_trip_us / pipelined_us
       << ",\n";
  for (std::size_t i = 0; i < kClientCounts.size(); ++i) {
    json << "  \"query_qps_" << kClientCounts[i] << "_clients\": " << qps[i]
         << ",\n";
  }
  json << "  \"query_p50_us_8_clients\": " << query_hist.percentile(0.50)
       << ",\n"
       << "  \"query_p95_us_8_clients\": " << query_hist.percentile(0.95)
       << ",\n"
       << "  \"query_p99_us_8_clients\": " << query_hist.percentile(0.99)
       << ",\n"
       << "  \"mixed_rw_ops_per_s_8_clients\": " << mixed_ops_per_s << ",\n"
       << "  \"mixed_p95_us_8_clients\": " << mixed_hist.percentile(0.95)
       << ",\n"
       << "  \"tokened_round_trip_us\": " << tokened_us << ",\n"
       << "  \"token_overhead_us\": " << tokened_us - round_trip_us << ",\n"
       << "  \"dedup_replay_us\": " << replay_us << ",\n"
       << "  \"reconnect_storm_conn_per_s\": " << storm_conn_per_s << ",\n"
       << "  \"reconnect_storm_p95_us\": " << storm_hist.percentile(0.95)
       << "\n"
       << "}\n";
  json.close();

  std::printf(
      "bench_server: round-trip %.1fus (p95 %lluus, p99 %lluus), "
      "pipelined %.1fus/cmd\n",
      round_trip_us,
      static_cast<unsigned long long>(round_trip_hist.percentile(0.95)),
      static_cast<unsigned long long>(round_trip_hist.percentile(0.99)),
      pipelined_us);
  for (std::size_t i = 0; i < kClientCounts.size(); ++i) {
    std::printf("  %d client(s): %.0f queries/s\n", kClientCounts[i], qps[i]);
  }
  std::printf("  8-client query p50/p95/p99: %llu/%llu/%lluus\n",
              static_cast<unsigned long long>(query_hist.percentile(0.50)),
              static_cast<unsigned long long>(query_hist.percentile(0.95)),
              static_cast<unsigned long long>(query_hist.percentile(0.99)));
  std::printf("  mixed 8 clients: %.0f ops/s (p95 %lluus)\n", mixed_ops_per_s,
              static_cast<unsigned long long>(mixed_hist.percentile(0.95)));
  std::printf(
      "  tokened %.1fus/cmd (+%.1fus), dedup replay %.1fus, "
      "reconnect storm %.0f conn/s (p95 %lluus)\n",
      tokened_us, tokened_us - round_trip_us, replay_us, storm_conn_per_s,
      static_cast<unsigned long long>(storm_hist.percentile(0.95)));
  return 0;
}
