// Server benchmark: wire round-trip latency, query throughput as clients
// scale, pipelining gain, and mixed read/write throughput under the
// reader-writer lock.  Emits machine-readable results to
// BENCH_server.json in the working directory (EXPERIMENTS S10).
//
// The headline claims: queries scale with client count (shared lock, no
// serialization), and pipelining amortizes the round trip.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace {

using namespace herc;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// `ops` synchronous `entities` round-trips per client, `clients` clients;
/// returns aggregate queries per second.
double query_throughput(const server::Endpoint& endpoint, int clients,
                        int ops, std::atomic<int>& errors) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client = server::Client::connect(endpoint);
      for (int i = 0; i < ops; ++i) {
        if (!client.call("entities").ok()) ++errors;
      }
      client.close();
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = ms_since(start);
  return clients * ops / elapsed * 1000.0;
}

}  // namespace

int main() {
  core::DesignSession session(schema::make_full_schema());
  server::Server server(session);
  const server::Endpoint endpoint =
      server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
  server.start();

  constexpr int kOps = 400;
  constexpr int kPipelined = 2000;
  std::atomic<int> errors{0};

  // Round-trip latency, one quiet client.
  double round_trip_us = 0;
  {
    server::Client client = server::Client::connect(endpoint);
    for (int i = 0; i < 50; ++i) (void)client.call("echo warm");
    const auto start = Clock::now();
    for (int i = 0; i < kOps; ++i) {
      if (!client.call("echo x").ok()) ++errors;
    }
    round_trip_us = ms_since(start) * 1000.0 / kOps;
    client.close();
  }

  // Same command stream, pipelined: send everything, then drain.
  double pipelined_us = 0;
  {
    server::Client client = server::Client::connect(endpoint);
    const auto start = Clock::now();
    for (int i = 0; i < kPipelined; ++i) client.send("echo x");
    for (int i = 0; i < kPipelined; ++i) {
      if (!client.receive().ok()) ++errors;
    }
    pipelined_us = ms_since(start) * 1000.0 / kPipelined;
    client.close();
  }

  // Query throughput as clients scale (shared lock: should not collapse).
  const std::vector<int> kClientCounts = {1, 2, 4, 8};
  std::vector<double> qps;
  qps.reserve(kClientCounts.size());
  for (const int clients : kClientCounts) {
    qps.push_back(query_throughput(endpoint, clients, kOps, errors));
  }

  // Mixed load: 8 clients, one import (exclusive lock) per 4 queries.
  double mixed_ops_per_s = 0;
  {
    constexpr int kClients = 8;
    constexpr int kMixedOps = 200;
    std::vector<std::thread> threads;
    const auto start = Clock::now();
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        server::Client client = server::Client::connect(endpoint);
        for (int i = 0; i < kMixedOps; ++i) {
          const bool write = i % 4 == 0;
          const server::CallResult result =
              write ? client.call("import Stimuli m" + std::to_string(c) +
                                      "_" + std::to_string(i),
                                  "stimuli m\nwave in 0:0 100:1\n")
                    : client.call("entities");
          if (!result.ok()) ++errors;
        }
        client.close();
      });
    }
    for (std::thread& t : threads) t.join();
    mixed_ops_per_s = kClients * kMixedOps / ms_since(start) * 1000.0;
  }

  server.stop();
  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_server: %d command(s) failed\n",
                 errors.load());
    return 1;
  }

  std::ofstream json("BENCH_server.json", std::ios::trunc);
  json << "{\n"
       << "  \"round_trip_us\": " << round_trip_us << ",\n"
       << "  \"pipelined_us_per_cmd\": " << pipelined_us << ",\n"
       << "  \"pipelining_speedup\": " << round_trip_us / pipelined_us
       << ",\n";
  for (std::size_t i = 0; i < kClientCounts.size(); ++i) {
    json << "  \"query_qps_" << kClientCounts[i] << "_clients\": " << qps[i]
         << ",\n";
  }
  json << "  \"mixed_rw_ops_per_s_8_clients\": " << mixed_ops_per_s << "\n"
       << "}\n";
  json.close();

  std::printf("bench_server: round-trip %.1fus, pipelined %.1fus/cmd\n",
              round_trip_us, pipelined_us);
  for (std::size_t i = 0; i < kClientCounts.size(); ++i) {
    std::printf("  %d client(s): %.0f queries/s\n", kClientCounts[i], qps[i]);
  }
  std::printf("  mixed 8 clients: %.0f ops/s\n", mixed_ops_per_s);
  return 0;
}
