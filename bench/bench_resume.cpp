// Crash-resume benchmark: after a crash halfway through a 1000-task flow,
// resuming (memoized re-run of the journaled intents) must be roughly
// twice as cheap as re-running the whole flow — the win the run-intent
// frames pay for.  Also measures `fsck_store` scan throughput on a
// 12k-instance store.  Emits BENCH_resume.json in the working directory.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "schema/task_schema.hpp"
#include "storage/fsck.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/clock.hpp"
#include "tools/registry.hpp"

namespace {

namespace fs = std::filesystem;
using namespace herc;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr std::size_t kTasks = 1000;
constexpr std::size_t kFsckInstances = 12000;
/// Fixed per-task cost modeling a real tool invocation.  With free tasks
/// the run is pure framework overhead and memoized reuse cannot win; a
/// half-millisecond floor is still far below any real CAD tool.
constexpr std::chrono::microseconds kTaskCost{500};

/// A linear chain of `kTasks` tasks: Src -> D1 -> ... -> D<n>, each with
/// its own tool.  Every encapsulation passes a short constant payload on,
/// so task cost is dominated by the framework, not by string growth.
schema::TaskSchema make_chain_schema() {
  schema::TaskSchema s("resume-bench");
  schema::EntityTypeId prev = s.add_data("Src");
  for (std::size_t i = 1; i <= kTasks; ++i) {
    const schema::EntityTypeId tool = s.add_tool("T" + std::to_string(i));
    const schema::EntityTypeId d = s.add_data("D" + std::to_string(i));
    s.set_functional_dependency(d, tool);
    s.add_data_dependency(d, prev);
    prev = d;
  }
  s.validate();
  return s;
}

void register_tools(tools::ToolRegistry& registry,
                    const schema::TaskSchema& schema) {
  for (std::size_t i = 1; i <= kTasks; ++i) {
    tools::Encapsulation enc;
    enc.name = "T" + std::to_string(i) + ".enc";
    enc.tool_type = schema.require("T" + std::to_string(i));
    const std::string out_entity = "D" + std::to_string(i);
    enc.fn = [out_entity](const tools::ToolContext&) {
      std::this_thread::sleep_for(kTaskCost);
      tools::ToolOutput out;
      out.set(out_entity, "p:" + out_entity);
      return out;
    };
    registry.register_encapsulation(std::move(enc));
  }
}

graph::TaskGraph make_chain_flow(const schema::TaskSchema& schema,
                                 history::HistoryDb& db) {
  graph::TaskGraph flow(schema, "chain");
  flow.add_node(schema.require("D" + std::to_string(kTasks)));
  bool again = true;
  while (again) {
    again = false;
    for (const graph::NodeId n : flow.nodes()) {
      const graph::Node& node = flow.node(n);
      if (node.expanded || schema.is_tool(node.type) ||
          schema.is_source(node.type)) {
        continue;
      }
      flow.expand(n);
      again = true;
    }
  }
  for (const graph::NodeId n : flow.unbound_leaves()) {
    const schema::EntityTypeId type = flow.node(n).type;
    const std::string& name = schema.entity_name(type);
    flow.bind(n, db.import_instance(type, name + "#leaf", "seed:" + name,
                                    "bench"));
  }
  return flow;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    out.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  return out;
}

}  // namespace

int main() {
  const schema::TaskSchema schema = make_chain_schema();
  tools::ToolRegistry registry(schema);
  register_tools(registry, schema);

  const std::string dir =
      (fs::temp_directory_path() / "herc_bench_resume").string();
  fs::remove_all(dir);
  storage::StoreOptions options;
  options.journal.sync = storage::SyncPolicy::kNone;

  // Uninterrupted 1000-task run against a fresh store.
  double full_run_ms = 0;
  {
    support::ManualClock clock(718000000000000LL, 1000);
    storage::DurableHistory store(schema, clock, dir, options);
    graph::TaskGraph flow = make_chain_flow(schema, store.db());
    store.checkpoint();  // imports -> snapshot; journal = run era only
    exec::Executor exec(store.db(), registry);
    const auto start = Clock::now();
    const exec::ExecResult result = exec.run(flow);
    full_run_ms = ms_since(start);
    if (result.tasks_run != kTasks) {
      std::fprintf(stderr, "full run executed %zu tasks\n", result.tasks_run);
      return 1;
    }
  }

  // Simulate a crash halfway: keep the journal prefix up to the 500th
  // task-finished frame, exactly what a kill at that instant leaves.
  const std::string journal_path = (fs::path(dir) / "journal.wal").string();
  const std::string journal = slurp(journal_path);
  const storage::ScanResult scan = storage::scan_journal(journal);
  std::size_t cut = 0;
  std::size_t fins = 0;
  std::size_t at = storage::kJournalHeaderBytes;
  for (const std::string& record : scan.records) {
    at += storage::kFrameHeaderBytes + record.size();
    if (record.rfind("tfin|", 0) == 0 && ++fins == kTasks / 2) {
      cut = at;
      break;
    }
  }
  if (cut == 0) {
    std::fprintf(stderr, "no mid-run frame boundary found\n");
    return 1;
  }

  const auto crash_at = [&](const std::string& trial) {
    fs::remove_all(trial);
    fs::create_directories(trial);
    fs::copy_file(fs::path(dir) / "schema.herc",
                  fs::path(trial) / "schema.herc");
    fs::copy_file(fs::path(dir) / "snapshot.herc",
                  fs::path(trial) / "snapshot.herc");
    std::ofstream out((fs::path(trial) / "journal.wal").string(),
                      std::ios::binary);
    out.write(journal.data(), static_cast<std::streamsize>(cut));
  };

  // Resume: recovery + memoized re-run of the unfinished half.
  double recovery_ms = 0;
  double resume_ms = 0;
  std::size_t resume_ran = 0;
  std::size_t resume_reused = 0;
  {
    const std::string trial = dir + "_resume";
    crash_at(trial);
    support::ManualClock clock(719000000000000LL, 1000);
    auto start = Clock::now();
    storage::DurableHistory store(schema, clock, trial, options);
    recovery_ms = ms_since(start);
    exec::Executor exec(store.db(), registry);
    start = Clock::now();
    const exec::ExecResult result =
        exec.resume(store.db().open_runs().front()->id);
    resume_ms = ms_since(start);
    resume_ran = result.tasks_run;
    resume_reused = result.tasks_reused;
    if (resume_ran + resume_reused != kTasks || !store.db().open_runs().empty()) {
      std::fprintf(stderr, "resume did not complete the flow\n");
      return 1;
    }
    fs::remove_all(trial);
  }

  // The alternative without run intents: re-run the whole flow from the
  // same crashed store (no memoization — the pre-crash products would not
  // be trusted without the coverage frames).
  double rerun_ms = 0;
  {
    const std::string trial = dir + "_rerun";
    crash_at(trial);
    support::ManualClock clock(719000000000000LL, 1000);
    storage::DurableHistory store(schema, clock, trial, options);
    graph::TaskGraph flow = make_chain_flow(schema, store.db());
    exec::Executor exec(store.db(), registry);
    const auto start = Clock::now();
    const exec::ExecResult result = exec.run(flow);
    rerun_ms = ms_since(start);
    if (result.tasks_run != kTasks) {
      std::fprintf(stderr, "re-run executed %zu tasks\n", result.tasks_run);
      return 1;
    }
    fs::remove_all(trial);
  }

  // fsck scan throughput on a 12k-instance store.
  double fsck_ms = 0;
  std::size_t fsck_instances = 0;
  {
    const std::string audit_dir = dir + "_audit";
    fs::remove_all(audit_dir);
    support::ManualClock clock(720000000000000LL, 1000);
    storage::DurableHistory store(schema, clock, audit_dir, options);
    const schema::EntityTypeId src = schema.require("Src");
    for (std::size_t i = 0; i < kFsckInstances; ++i) {
      store.db().import_instance(src, "s" + std::to_string(i),
                                 "payload" + std::to_string(i % 257),
                                 "bench");
    }
    store.sync();
    const auto start = Clock::now();
    const storage::FsckReport report = storage::fsck_store(audit_dir);
    fsck_ms = ms_since(start);
    fsck_instances = report.stats.instances;
    if (report.exit_code() != 0) {
      std::fprintf(stderr, "audit store not clean:\n%s",
                   report.render().c_str());
      return 1;
    }
    fs::remove_all(audit_dir);
  }
  fs::remove_all(dir);

  const double speedup = rerun_ms / resume_ms;
  const double fsck_per_sec = fsck_instances / (fsck_ms / 1000.0);

  std::ofstream json("BENCH_resume.json", std::ios::trunc);
  json << "{\n"
       << "  \"tasks\": " << kTasks << ",\n"
       << "  \"full_run_ms\": " << full_run_ms << ",\n"
       << "  \"crash_recovery_ms\": " << recovery_ms << ",\n"
       << "  \"resume_ms\": " << resume_ms << ",\n"
       << "  \"resume_tasks_run\": " << resume_ran << ",\n"
       << "  \"resume_tasks_reused\": " << resume_reused << ",\n"
       << "  \"full_rerun_ms\": " << rerun_ms << ",\n"
       << "  \"resume_vs_rerun_speedup\": " << speedup << ",\n"
       << "  \"fsck_instances\": " << fsck_instances << ",\n"
       << "  \"fsck_scan_ms\": " << fsck_ms << ",\n"
       << "  \"fsck_instances_per_sec\": " << fsck_per_sec << "\n"
       << "}\n";
  json.close();

  std::printf("bench_resume: %zu-task flow, crash at 50%%\n", kTasks);
  std::printf("  full run            %.2f ms\n", full_run_ms);
  std::printf("  crash recovery      %.2f ms\n", recovery_ms);
  std::printf("  resume              %.2f ms (%zu run, %zu reused)\n",
              resume_ms, resume_ran, resume_reused);
  std::printf("  full re-run         %.2f ms\n", rerun_ms);
  std::printf("  resume speedup      %.2fx\n", speedup);
  std::printf("  fsck scan           %.2f ms for %zu instances (%.0f/s)\n",
              fsck_ms, fsck_instances, fsck_per_sec);
  std::printf("  -> BENCH_resume.json\n");

  // The structural claim, robust to machine noise: resume re-executed
  // only the unfinished half.
  if (resume_ran > kTasks / 2 + 1 || resume_reused < kTasks / 2 - 1) {
    std::fprintf(stderr,
                 "FAIL: resume re-ran %zu tasks (expected ~%zu)\n",
                 resume_ran, kTasks / 2);
    return 1;
  }
  if (speedup < 1.2) {
    std::fprintf(stderr,
                 "FAIL: resume speedup %.2fx < 1.2x over full re-run\n",
                 speedup);
    return 1;
  }
  return 0;
}
