// Replica benchmark: read throughput scaling with journal-streaming
// followers, plus replication lag, under a concurrent writer.  Emits
// machine-readable results to BENCH_replica.json in the working
// directory (EXPERIMENTS S12).
//
// The headline claims: spreading readers across follower replicas lifts
// aggregate read throughput off the leader's reader-writer lock (the
// ISSUE target is >=3x at 4 followers on a multi-core host), and a
// follower sees a leader write within single-digit milliseconds.  The
// emitted JSON records the core count: on a single-core runner the scale
// factor can dip below 1x, because every follower re-applies the write
// stream on the one core the readers also need — read offload only turns
// into read scaling when followers have cores of their own.
//
// Methodology mirrors bench_server: connections are established and
// warmed before the clock starts, reader threads release through a
// barrier, and latency is reported as p50/p95/p99.  A writer thread
// hammers imports on the leader for the whole timed window in every
// configuration, so "leader only" pays the exclusive-lock stalls that
// followers exist to dodge.  Numbers are measured, not asserted: on a
// single-core runner the scale factor is reported as-is.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "replica/applier.hpp"
#include "replica/shipper.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/latency.hpp"
#include "server/server.hpp"

namespace {

using namespace herc;
using Clock = std::chrono::steady_clock;

constexpr const char* kWaveBody = "stimuli sw\nwave in 0:0 100:1 200:0\n";

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Releases all reader threads at once (same shape as bench_server's).
class StartGate {
 public:
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }
  void open() {
    const std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  bool open_ = false;
};

/// A read-only follower: applier streaming from the leader, serving a
/// replica database over its own listener (the `herc serve
/// --replicate-from` wiring, in process).
struct FollowerNode {
  std::string dir;
  std::unique_ptr<replica::ReplicaApplier> applier;
  std::unique_ptr<core::DesignSession> session;
  std::unique_ptr<server::Server> server;
  server::Endpoint endpoint;

  ~FollowerNode() {
    if (applier != nullptr) applier->stop();
    if (server != nullptr) server->stop();
  }
};

std::unique_ptr<FollowerNode> make_follower(const server::Endpoint& leader,
                                            const std::string& dir) {
  auto node = std::make_unique<FollowerNode>();
  node->dir = dir;
  node->applier = std::make_unique<replica::ReplicaApplier>(leader, dir);
  if (!node->applier->bootstrap(/*attempts=*/50)) {
    std::fprintf(stderr, "bench_replica: follower bootstrap failed: %s\n",
                 node->applier->last_error().c_str());
    return nullptr;
  }
  node->session =
      std::make_unique<core::DesignSession>(node->applier->schema());
  node->session->attach_replica(&node->applier->db());
  server::ServeOptions serve_options;
  serve_options.read_only = true;
  node->server =
      std::make_unique<server::Server>(*node->session, serve_options);
  server::Server& srv = *node->server;
  node->applier->set_gate(
      [&srv](const std::function<void()>& fn) { srv.with_exclusive_session(fn); });
  node->endpoint =
      node->server->add_listener(server::Endpoint::parse("127.0.0.1:0"));
  node->server->start();
  node->applier->start();
  return node;
}

/// Aggregate read qps: `readers` threads, each pinned round-robin to one
/// of `endpoints`, running `ops` synchronous `browse Stimuli` queries
/// over a warmed connection — while a writer keeps importing on the
/// leader until every reader finishes.
double read_throughput(const std::vector<server::Endpoint>& endpoints,
                       const server::Endpoint& leader, int readers, int ops,
                       std::atomic<int>& errors,
                       server::LatencyHistogram& latency,
                       std::size_t& writes_done) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  StartGate gate;
  std::atomic<bool> writer_stop{false};
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      server::Client client = server::Client::connect(
          endpoints[static_cast<std::size_t>(c) % endpoints.size()]);
      if (!client.call("browse Stimuli").ok()) ++errors;  // warm, untimed
      gate.arrive_and_wait();
      for (int i = 0; i < ops; ++i) {
        const auto t0 = Clock::now();
        if (!client.call("browse Stimuli").ok()) ++errors;
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
      }
      client.close();
    });
  }
  std::size_t writes = 0;
  std::thread writer([&] {
    server::Client client = server::Client::connect(leader);
    gate.arrive_and_wait();
    while (!writer_stop.load(std::memory_order_relaxed)) {
      if (!client
               .call("import Performance w" + std::to_string(writes),
                     "delays\nin->out 12\n")
               .ok()) {
        ++errors;
      }
      ++writes;
    }
    client.close();
  });
  gate.wait_for(static_cast<std::size_t>(readers) + 1);
  const auto start = Clock::now();
  gate.open();
  for (std::thread& t : threads) t.join();
  writer_stop.store(true, std::memory_order_relaxed);
  writer.join();
  writes_done = writes;
  return readers * ops / ms_since(start) * 1000.0;
}

}  // namespace

int main() {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "herc_bench_replica";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage((root / "leader").string());
  replica::JournalShipper shipper(session);
  server::Server server(session);
  server.set_replication_hub(&shipper);
  const server::Endpoint leader =
      server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
  server.start();

  // Seed the design so `browse Stimuli` has something to walk.
  for (int i = 0; i < 32; ++i) {
    (void)session.import_data("Stimuli", "seed_" + std::to_string(i),
                              kWaveBody);
  }

  constexpr int kReaders = 4;
  constexpr int kOps = 250;
  std::atomic<int> errors{0};

  // Leader-only baseline: all readers on the leader, writer interleaved.
  double qps_leader = 0;
  server::LatencyHistogram leader_hist;
  std::size_t writes_leader = 0;
  qps_leader = read_throughput({leader}, leader, kReaders, kOps, errors,
                               leader_hist, writes_leader);

  // Follower fleets of growing size; readers pinned round-robin across
  // the followers only (the leader serves writes and the stream).
  const std::vector<std::size_t> kFleets = {1, 2, 4};
  std::vector<double> qps_followers;
  std::vector<server::LatencyHistogram> hists(kFleets.size());
  std::size_t writes_followers = 0;
  std::vector<std::unique_ptr<FollowerNode>> fleet;
  for (std::size_t fi = 0; fi < kFleets.size(); ++fi) {
    while (fleet.size() < kFleets[fi]) {
      auto node = make_follower(
          leader,
          (root / ("follower_" + std::to_string(fleet.size()))).string());
      if (node == nullptr) return 1;
      fleet.push_back(std::move(node));
    }
    std::vector<server::Endpoint> eps;
    eps.reserve(fleet.size());
    for (const auto& node : fleet) eps.push_back(node->endpoint);
    std::size_t writes = 0;
    qps_followers.push_back(read_throughput(eps, leader, kReaders, kOps,
                                            errors, hists[fi], writes));
    writes_followers = writes;
  }

  // Replication lag: after each sentinel import on the leader, time until
  // follower 0 has applied it (position catches the leader's journal seq).
  server::LatencyHistogram lag_hist;
  {
    replica::ReplicaApplier& applier = *fleet.front()->applier;
    for (int i = 0; i < 50; ++i) {
      (void)session.import_data("Stimuli", "lag_" + std::to_string(i),
                                kWaveBody);
      const std::uint64_t target = session.storage()->journal_seq();
      const auto t0 = Clock::now();
      while (applier.position().seq < target) {
        std::this_thread::yield();
        if (ms_since(t0) > 5000.0) break;  // runaway guard; shows in p99
      }
      lag_hist.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count()));
    }
  }

  const double scale_4 = qps_followers.back() / qps_leader;
  fleet.clear();
  server.stop();
  session.close_storage();
  std::filesystem::remove_all(root);

  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_replica: %d command(s) failed\n",
                 errors.load());
    return 1;
  }

  std::ofstream json("BENCH_replica.json", std::ios::trunc);
  json << "{\n"
       << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"readers\": " << kReaders << ",\n"
       << "  \"ops_per_reader\": " << kOps << ",\n"
       << "  \"read_qps_leader_only\": " << qps_leader << ",\n";
  for (std::size_t fi = 0; fi < kFleets.size(); ++fi) {
    json << "  \"read_qps_" << kFleets[fi]
         << "_followers\": " << qps_followers[fi] << ",\n";
  }
  json << "  \"read_scale_x_4_followers\": " << scale_4 << ",\n"
       << "  \"read_p95_us_4_followers\": "
       << hists.back().percentile(0.95) << ",\n"
       << "  \"writes_during_leader_run\": " << writes_leader << ",\n"
       << "  \"writes_during_4_follower_run\": " << writes_followers << ",\n"
       << "  \"lag_p50_us\": " << lag_hist.percentile(0.50) << ",\n"
       << "  \"lag_p95_us\": " << lag_hist.percentile(0.95) << ",\n"
       << "  \"lag_p99_us\": " << lag_hist.percentile(0.99) << "\n"
       << "}\n";
  json.close();

  std::printf("bench_replica: leader-only %.0f reads/s\n", qps_leader);
  for (std::size_t fi = 0; fi < kFleets.size(); ++fi) {
    std::printf("  %zu follower(s): %.0f reads/s (%.2fx)\n", kFleets[fi],
                qps_followers[fi], qps_followers[fi] / qps_leader);
  }
  std::printf("  replication lag p50/p95/p99: %llu/%llu/%lluus\n",
              static_cast<unsigned long long>(lag_hist.percentile(0.50)),
              static_cast<unsigned long long>(lag_hist.percentile(0.95)),
              static_cast<unsigned long long>(lag_hist.percentile(0.99)));
  return 0;
}
