// F6 (Fig. 6): parallel execution of disjoint flow branches.
//
// Claim checked: "disjoint branches in the flow can be executed in
// parallel, possibly on different machines".  Tasks carry an artificial
// latency standing in for slow external tools; wall-clock for N disjoint
// branches should approach latency * ceil(N / threads) instead of
// latency * N.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace herc;

/// Builds a flow with `branches` disjoint simulate branches (each its own
/// circuit compose + simulation) and runs it.
void run_branches(benchmark::State& state, bool parallel) {
  const auto branches = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    graph::TaskGraph flow(session->schema(), "branches");
    for (std::size_t b = 0; b < branches; ++b) {
      const graph::NodeId perf = flow.add_node("Performance");
      flow.expand(perf);
      const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
      flow.bind(flow.tool_of(perf), basics.simulator);
      flow.bind(flow.inputs_of(perf)[1], basics.stimuli);
      flow.bind(circuit_inputs[0], basics.models);
      flow.bind(circuit_inputs[1], basics.netlist);
    }
    exec::ExecOptions options;
    options.parallel = parallel;
    options.max_threads = 4;
    options.task_latency = std::chrono::milliseconds(2);
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->run(flow, options));
  }
  state.SetLabel((parallel ? "parallel x4, " : "serial, ") +
                 std::to_string(branches) + " branches, 2ms/task");
}

void BM_SerialBranches(benchmark::State& state) {
  run_branches(state, /*parallel=*/false);
}
BENCHMARK(BM_SerialBranches)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelBranches(benchmark::State& state) {
  run_branches(state, /*parallel=*/true);
}
BENCHMARK(BM_ParallelBranches)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SchedulerOverhead(benchmark::State& state) {
  // Parallel scheduling with zero task latency: the machinery itself.
  const auto branches = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    graph::TaskGraph flow(session->schema(), "branches");
    for (std::size_t b = 0; b < branches; ++b) {
      const graph::NodeId perf = flow.add_node("Performance");
      flow.expand(perf);
      const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
      flow.bind(flow.tool_of(perf), basics.simulator);
      flow.bind(flow.inputs_of(perf)[1], basics.stimuli);
      flow.bind(circuit_inputs[0], basics.models);
      flow.bind(circuit_inputs[1], basics.netlist);
    }
    exec::ExecOptions options;
    options.parallel = true;
    options.max_threads = 4;
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->run(flow, options));
  }
}
BENCHMARK(BM_SchedulerOverhead)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
