// S2 (§3.4): the four design approaches.
//
// Claim checked: goal-, tool-, data- and plan-based entry points all
// resolve onto the same flow mechanism at interactive cost.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace herc;

struct ApproachFixture {
  std::unique_ptr<core::DesignSession> session;
  bench::Basics basics;

  ApproachFixture() {
    session = bench::make_session();
    basics = bench::import_basics(*session);
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    flow.set_name("simulate-plan");
    session->flows().save(flow);
  }
};

void BM_GoalBasedStart(benchmark::State& state) {
  ApproachFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->task_from_goal("Performance"));
  }
}
BENCHMARK(BM_GoalBasedStart);

void BM_ToolBasedStart(benchmark::State& state) {
  // Includes the "what can this tool produce?" sweep over the schema.
  ApproachFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->task_from_tool("Simulator"));
  }
}
BENCHMARK(BM_ToolBasedStart);

void BM_DataBasedStart(benchmark::State& state) {
  // Includes the "what consumes this data?" sweep.
  ApproachFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->task_from_data(fx.basics.netlist));
  }
}
BENCHMARK(BM_DataBasedStart);

void BM_PlanBasedStart(benchmark::State& state) {
  // Instantiating a saved flow (parse + schema re-validation).
  ApproachFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->task_from_plan("simulate-plan"));
  }
}
BENCHMARK(BM_PlanBasedStart);

void BM_PlanSave(benchmark::State& state) {
  ApproachFixture fx;
  graph::TaskGraph flow = bench::make_simulate_flow(*fx.session, fx.basics);
  flow.set_name("resave");
  for (auto _ : state) {
    fx.session->flows().save_or_replace(flow);
  }
}
BENCHMARK(BM_PlanSave);

}  // namespace

BENCHMARK_MAIN();
