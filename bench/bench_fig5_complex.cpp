// F5 (Fig. 5): complex flow structures — entity reuse and multi-output
// tasks.
//
// Claim checked: reusing an entity across subtasks and attaching several
// outputs to one task are constant-time graph operations, and a task with
// two outputs executes once, not twice.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace herc;

void BM_BuildComplexFlow(benchmark::State& state) {
  // The Fig. 5 flow: one Circuit reused by `range` simulate tasks, each
  // with Performance + Statistics outputs sharing one tool node.
  const auto schema = schema::make_full_schema();
  const auto branches = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    graph::TaskGraph flow(schema, "fig5");
    const graph::NodeId first = flow.add_node("Performance");
    flow.expand(first);
    const graph::NodeId circuit_node = flow.inputs_of(first)[0];
    flow.expand(circuit_node);
    flow.add_co_output(first, schema.require("Statistics"));
    for (std::size_t b = 1; b < branches; ++b) {
      const graph::NodeId perf = flow.add_node("Performance");
      // Reuse the existing circuit; new simulator + stimuli per branch.
      flow.connect(perf, circuit_node);
      const graph::NodeId sim = flow.add_node("Simulator");
      flow.connect(perf, sim);
      const graph::NodeId st = flow.add_node("Stimuli");
      flow.connect(perf, st);
      flow.add_co_output(perf, schema.require("Statistics"));
    }
    benchmark::DoNotOptimize(flow.task_groups());
  }
}
BENCHMARK(BM_BuildComplexFlow)->Arg(1)->Arg(8)->Arg(64);

void BM_TaskGrouping(benchmark::State& state) {
  // Grouping shared-tool outputs into single invocations.
  const auto schema = schema::make_full_schema();
  const auto branches = static_cast<std::size_t>(state.range(0));
  graph::TaskGraph flow(schema, "fig5");
  const graph::NodeId first = flow.add_node("Performance");
  flow.expand(first);
  const graph::NodeId circuit_node = flow.inputs_of(first)[0];
  flow.expand(circuit_node);
  flow.add_co_output(first, schema.require("Statistics"));
  for (std::size_t b = 1; b < branches; ++b) {
    const graph::NodeId perf = flow.add_node("Performance");
    flow.connect(perf, circuit_node);
    flow.connect(perf, flow.add_node("Simulator"));
    flow.connect(perf, flow.add_node("Stimuli"));
    flow.add_co_output(perf, schema.require("Statistics"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.task_groups());
  }
  state.SetLabel(std::to_string(flow.node_count()) + " nodes, " +
                 std::to_string(flow.task_groups().size()) + " tasks");
}
BENCHMARK(BM_TaskGrouping)->Arg(8)->Arg(64)->Arg(256);

void BM_MultiOutputExecution(benchmark::State& state) {
  // A two-output task must cost one tool invocation, not two: compare
  // executing Performance alone vs Performance+Statistics.
  const bool with_stats = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    if (with_stats) {
      flow.add_co_output(flow.goals().front(),
                         session->schema().require("Statistics"));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->run(flow));
  }
  state.SetLabel(with_stats ? "two outputs" : "one output");
}
BENCHMARK(BM_MultiOutputExecution)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
