// Static-analyzer benchmark (EXPERIMENTS.md §S9): lint throughput over a
// populated design history and a Fig. 5-scale flow.  Emits
// BENCH_lint.json in the working directory.
//
// The claim: lint is cheap enough to run before *every* execution — full
// schema + flow + plan analysis over a 12k-instance history must complete
// in low single-digit milliseconds, orders of magnitude below the cost of
// running even one real tool.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "analyze/flow_lint.hpp"
#include "analyze/plan_check.hpp"
#include "analyze/schema_lint.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"
#include "tools/registry.hpp"

namespace {

using namespace herc;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A Fig. 5-scale flow: simulation with statistics co-output, verification
/// reusing the placement chain's nodes, and a plot branch.
graph::TaskGraph big_flow(const schema::TaskSchema& s) {
  graph::TaskGraph flow(s, "fig5");
  const graph::NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  flow.add_co_output(perf, s.require("Statistics"));
  flow.expand_up(perf, s.require("PerformancePlot"));
  for (const graph::NodeId n : flow.nodes()) {
    if (flow.node(n).type == s.require("Circuit")) flow.expand(n);
  }
  graph::NodeId netlist;
  for (const graph::NodeId n : flow.nodes()) {
    if (flow.node(n).type == s.require("Netlist")) netlist = n;
  }
  flow.specialize(netlist, s.require("EditedNetlist"));
  flow.expand(netlist);
  const graph::NodeId pl = flow.add_node("PlacedLayout");
  flow.expand(pl);
  const graph::NodeId ver = flow.add_node("Verification");
  const graph::NodeId vt = flow.add_node("Verifier");
  flow.connect(ver, vt);
  flow.connect(ver, pl);
  return flow;
}

}  // namespace

int main() {
  const schema::TaskSchema schema = schema::make_full_schema();
  support::ManualClock clock(718000000000000LL, 1000);
  history::HistoryDb db(schema, clock);

  constexpr std::size_t kInstances = 12000;
  constexpr int kIters = 200;

  // Populate: a spread of types so instances_of() queries hit real lists.
  const char* kTypes[] = {"EditedNetlist", "Stimuli", "DeviceModels",
                          "Performance", "PlacedLayout", "Simulator"};
  for (std::size_t i = 0; i < kInstances; ++i) {
    db.import_instance(schema.require(kTypes[i % 6]),
                       "b" + std::to_string(i), "p", "bench");
  }

  tools::ToolRegistry registry(schema);
  const graph::TaskGraph flow = big_flow(schema);

  auto start = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)analyze::lint_schema(schema);
  }
  const double schema_ms = ms_since(start) / kIters;

  analyze::FlowLintOptions options;
  options.db = &db;
  options.tools = &registry;
  start = Clock::now();
  std::size_t diags = 0;
  for (int i = 0; i < kIters; ++i) {
    diags = analyze::lint_flow(flow, options).diagnostics().size();
  }
  const double flow_ms = ms_since(start) / kIters;

  start = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)analyze::lint_plan(
        flow, {.parallel = true, .continue_on_failure = true});
  }
  const double plan_ms = ms_since(start) / kIters;

  const double total_ms = schema_ms + flow_ms + plan_ms;

  std::ofstream json("BENCH_lint.json", std::ios::trunc);
  json << "{\n"
       << "  \"instances\": " << kInstances << ",\n"
       << "  \"flow_nodes\": " << flow.node_count() << ",\n"
       << "  \"flow_diagnostics\": " << diags << ",\n"
       << "  \"schema_lint_ms\": " << schema_ms << ",\n"
       << "  \"flow_lint_ms\": " << flow_ms << ",\n"
       << "  \"plan_check_ms\": " << plan_ms << ",\n"
       << "  \"total_lint_ms\": " << total_ms << "\n"
       << "}\n";
  json.close();

  std::printf("bench_lint: %zu instances, %zu flow nodes\n", kInstances,
              flow.node_count());
  std::printf("  schema lint   %.3f ms\n", schema_ms);
  std::printf("  flow lint     %.3f ms (%zu diagnostics)\n", flow_ms, diags);
  std::printf("  plan check    %.3f ms\n", plan_ms);
  std::printf("  total         %.3f ms\n", total_ms);
  std::printf("  -> BENCH_lint.json\n");

  // Regression gate: lint must stay pre-run cheap (well under a second
  // even on loaded CI machines).
  if (total_ms > 250.0) {
    std::fprintf(stderr, "FAIL: lint took %.1f ms (budget 250 ms)\n",
                 total_ms);
    return 1;
  }
  return 0;
}
