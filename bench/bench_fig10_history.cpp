// F10 (Fig. 10): chaining queries into the design history.
//
// Claim checked: backward- and forward-chaining answer in time
// proportional to the *trace* being revealed, not to the size of the
// whole database — the property that makes "queries into the derivation
// history obviate the need for additional version management" tenable.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "history/flow_trace.hpp"

namespace {

using namespace herc;

/// History with `chains` independent edit chains of length `depth` — total
/// database size grows with chains, each trace only with depth.
struct HistoryFixture {
  std::unique_ptr<core::DesignSession> session;
  std::vector<std::vector<data::InstanceId>> chains;

  HistoryFixture(std::size_t n_chains, std::size_t depth) {
    session = bench::make_session();
    for (std::size_t c = 0; c < n_chains; ++c) {
      auto basics = bench::import_basics(*session);
      chains.push_back(bench::grow_edit_chain(*session, basics, depth));
    }
  }
};

void BM_BackwardClosure_VsDepth(benchmark::State& state) {
  HistoryFixture fx(1, static_cast<std::size_t>(state.range(0)));
  const auto target = fx.chains[0].back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->db().derivation_closure(target));
  }
  state.SetLabel("depth " + std::to_string(state.range(0)));
}
BENCHMARK(BM_BackwardClosure_VsDepth)->Arg(8)->Arg(64)->Arg(512);

void BM_BackwardClosure_VsDbSize(benchmark::State& state) {
  // Fixed trace depth, growing unrelated database: cost must stay flat.
  HistoryFixture fx(static_cast<std::size_t>(state.range(0)), 8);
  const auto target = fx.chains[0].back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->db().derivation_closure(target));
  }
  state.SetLabel(std::to_string(fx.session->db().size()) +
                 " instances total");
}
BENCHMARK(BM_BackwardClosure_VsDbSize)->Arg(1)->Arg(16)->Arg(64);

void BM_ForwardClosure(benchmark::State& state) {
  HistoryFixture fx(1, static_cast<std::size_t>(state.range(0)));
  const auto root = fx.chains[0].front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.session->db().dependent_closure(root));
  }
}
BENCHMARK(BM_ForwardClosure)->Arg(8)->Arg(64)->Arg(512);

void BM_BackwardTraceGraph(benchmark::State& state) {
  // Building the Fig. 10 display structure (a bound task graph).
  HistoryFixture fx(1, static_cast<std::size_t>(state.range(0)));
  const auto target = fx.chains[0].back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        history::backward_trace(fx.session->db(), target));
  }
}
BENCHMARK(BM_BackwardTraceGraph)->Arg(8)->Arg(64);

void BM_TemplateQuery(benchmark::State& state) {
  // "Find the edits applied to this netlist" as a task-graph template.
  HistoryFixture fx(1, static_cast<std::size_t>(state.range(0)));
  auto& session = *fx.session;
  graph::TaskGraph pattern(session.schema(), "query");
  const graph::NodeId goal = pattern.add_node("EditedNetlist");
  pattern.expand(goal, graph::ExpandOptions{.include_optional = true});
  pattern.bind(pattern.inputs_of(goal)[0], fx.chains[0][1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        history::query_template(session.db(), pattern, goal));
  }
}
BENCHMARK(BM_TemplateQuery)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
