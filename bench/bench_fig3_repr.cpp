// F3 (Fig. 3): the two flow representations.
//
// Claim checked: the task graph carries the same information as the
// traditional bipartite flow diagram — conversion is mechanical and cheap,
// so choosing the richer representation costs nothing.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "graph/bipartite.hpp"

namespace {

using namespace herc;

/// A deep flow: a chain of `depth` edit tasks under one simulate task.
graph::TaskGraph make_deep_flow(const schema::TaskSchema& schema,
                                std::size_t depth) {
  graph::TaskGraph flow(schema, "deep");
  const graph::NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  graph::NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  graph::NodeId netlist = circuit_inputs[1];
  for (std::size_t d = 0; d < depth; ++d) {
    flow.specialize(netlist, schema.require("EditedNetlist"));
    const auto created = flow.expand(
        netlist, graph::ExpandOptions{.include_optional = true});
    netlist = created[1];  // the optional seed input, again a Netlist
  }
  return flow;
}

void BM_ToBipartite(benchmark::State& state) {
  const auto schema = schema::make_full_schema();
  const auto flow = make_deep_flow(schema,
                                   static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::to_bipartite(flow));
  }
  state.SetLabel(std::to_string(flow.node_count()) + " nodes");
}
BENCHMARK(BM_ToBipartite)->Arg(1)->Arg(8)->Arg(64);

void BM_ToLisp(benchmark::State& state) {
  const auto schema = schema::make_full_schema();
  const auto flow = make_deep_flow(schema,
                                   static_cast<std::size_t>(state.range(0)));
  const graph::NodeId goal = flow.goals().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.to_lisp(goal));
  }
}
BENCHMARK(BM_ToLisp)->Arg(1)->Arg(8)->Arg(64);

void BM_ToDot(benchmark::State& state) {
  const auto schema = schema::make_full_schema();
  const auto flow = make_deep_flow(schema,
                                   static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.to_dot());
  }
}
BENCHMARK(BM_ToDot)->Arg(1)->Arg(8)->Arg(64);

void BM_FlowSaveLoad(benchmark::State& state) {
  const auto schema = schema::make_full_schema();
  const auto flow = make_deep_flow(schema,
                                   static_cast<std::size_t>(state.range(0)));
  const std::string text = flow.save();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::TaskGraph::load(schema, text));
  }
}
BENCHMARK(BM_FlowSaveLoad)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
