// Shared fixtures for the figure benchmarks.
//
// The paper has no quantitative tables; each benchmark measures the
// scaling of the mechanism one figure illustrates (see EXPERIMENTS.md for
// the qualitative claims being checked).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"

namespace herc::bench {

/// A deterministic session over the full schema.
inline std::unique_ptr<core::DesignSession> make_session() {
  return std::make_unique<core::DesignSession>(
      schema::make_full_schema(), "bench",
      std::make_unique<support::ManualClock>(718000000000000LL, 1000));
}

/// Standard source instances for simulation flows.
struct Basics {
  data::InstanceId netlist;
  data::InstanceId models;
  data::InstanceId stimuli;
  data::InstanceId simulator;
  data::InstanceId editor;  ///< CircuitEditor instance with a trivial script
};

inline Basics import_basics(core::DesignSession& session,
                            std::size_t chain_stages = 4) {
  Basics basics;
  basics.netlist = session.import_data(
      "EditedNetlist", "chain",
      circuit::inverter_chain(chain_stages).to_text());
  basics.models = session.import_data(
      "DeviceModels", "models",
      circuit::DeviceModelLibrary::standard().to_text());
  basics.stimuli = session.import_data(
      "Stimuli", "steps",
      circuit::Stimuli::random({"in"}, 2000, 8, 5).to_text());
  basics.simulator = session.import_data("Simulator", "switchsim", "");
  basics.editor = session.import_data("CircuitEditor", "touch",
                                      "set s0.mn value=1.5\n");
  return basics;
}

/// Builds the canonical simulate flow (Performance over a composed
/// circuit) with everything bound.
inline graph::TaskGraph make_simulate_flow(core::DesignSession& session,
                                           const Basics& basics) {
  graph::TaskGraph flow(session.schema(), "simulate");
  const graph::NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
  flow.bind(flow.tool_of(perf), basics.simulator);
  flow.bind(flow.inputs_of(perf)[1], basics.stimuli);
  flow.bind(circuit_inputs[0], basics.models);
  flow.bind(circuit_inputs[1], basics.netlist);
  return flow;
}

/// Grows an edit chain of `versions` successive netlist versions and
/// returns them (index 0 = the imported original).
inline std::vector<data::InstanceId> grow_edit_chain(
    core::DesignSession& session, const Basics& basics,
    std::size_t versions) {
  std::vector<data::InstanceId> chain{basics.netlist};
  for (std::size_t v = 1; v < versions; ++v) {
    graph::TaskGraph edit(session.schema(), "edit");
    const graph::NodeId goal = edit.add_node("EditedNetlist");
    edit.expand(goal, graph::ExpandOptions{.include_optional = true});
    edit.bind(edit.tool_of(goal), basics.editor);
    edit.bind(edit.inputs_of(goal)[0], chain.back());
    chain.push_back(session.run(edit).single(goal));
  }
  return chain;
}

/// A synthetic layered schema: `layers` levels of `width` data entities,
/// each produced by a tool from two entities of the previous layer —
/// for measuring schema-operation scaling (Fig. 1 benchmark).
inline schema::TaskSchema make_layered_schema(std::size_t layers,
                                              std::size_t width) {
  schema::TaskSchema s("layered");
  std::vector<schema::EntityTypeId> prev;
  for (std::size_t w = 0; w < width; ++w) {
    prev.push_back(s.add_data("src" + std::to_string(w)));
  }
  for (std::size_t l = 1; l <= layers; ++l) {
    std::vector<schema::EntityTypeId> cur;
    for (std::size_t w = 0; w < width; ++w) {
      const std::string suffix =
          std::to_string(l) + "_" + std::to_string(w);
      const auto tool = s.add_tool("tool" + suffix);
      const auto entity = s.add_data("ent" + suffix);
      s.set_functional_dependency(entity, tool);
      s.add_data_dependency(entity, prev[w]);
      s.add_data_dependency(entity, prev[(w + 1) % width]);
      cur.push_back(entity);
    }
    prev = std::move(cur);
  }
  return s;
}

}  // namespace herc::bench
