// S1 (§3.3): design-consistency maintenance.
//
// Claim checked: "queries into the design history can quickly determine
// whether such retracing need occur" — the staleness check costs a trace
// walk, memoization turns redundant re-runs into history lookups, and
// retracing re-runs only what changed.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "exec/consistency.hpp"

namespace {

using namespace herc;

void BM_StalenessCheck(benchmark::State& state) {
  // Performance over an edit chain of the given depth.
  auto session = bench::make_session();
  const auto basics = bench::import_basics(*session);
  const auto chain = bench::grow_edit_chain(
      *session, basics, static_cast<std::size_t>(state.range(0)));
  bench::Basics latest = basics;
  latest.netlist = chain.back();
  graph::TaskGraph flow = bench::make_simulate_flow(*session, latest);
  const auto perf = session->run(flow).single(flow.goals().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->db().is_stale(perf));
  }
  state.SetLabel("ancestry depth " + std::to_string(state.range(0)));
}
BENCHMARK(BM_StalenessCheck)->Arg(4)->Arg(32)->Arg(256);

void BM_MemoizedRerun(benchmark::State& state) {
  // Re-running an up-to-date flow with reuse: pure history lookups.
  auto session = bench::make_session();
  const auto basics = bench::import_basics(*session);
  graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
  exec::ExecOptions options;
  options.reuse_existing = true;
  (void)session->run(flow, options);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run(flow, options));
  }
  state.SetLabel("all tasks reused");
}
BENCHMARK(BM_MemoizedRerun);

void BM_UnmemoizedRerun(benchmark::State& state) {
  // The same flow with reuse disabled: full tool cost every time.
  auto session = bench::make_session();
  const auto basics = bench::import_basics(*session);
  graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run(flow));
  }
  state.SetLabel("all tasks re-run");
}
BENCHMARK(BM_UnmemoizedRerun);

void BM_Retrace(benchmark::State& state) {
  // Freshen a stale performance after one new netlist version.
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    const auto perf = session->run(flow).single(flow.goals().front());
    (void)bench::grow_edit_chain(*session, basics, 2);  // creates v2
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        exec::retrace(session->db(), session->tools(), perf));
  }
}
BENCHMARK(BM_Retrace)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
