// F1 (Fig. 1): task-schema operations.
//
// Claim checked: a site maintains only the task schema ("only the task
// schema need be maintained"), so schema construction, validation and the
// rule queries behind expansion must stay cheap as the schema grows.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "schema/schema_io.hpp"

namespace {

using namespace herc;

void BM_SchemaConstruction(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::make_layered_schema(layers, 8));
  }
  state.SetLabel(std::to_string(
      bench::make_layered_schema(layers, 8).size()) + " entities");
}
BENCHMARK(BM_SchemaConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_SchemaValidate(benchmark::State& state) {
  const auto schema = bench::make_layered_schema(
      static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    schema.validate();
  }
}
BENCHMARK(BM_SchemaValidate)->Arg(2)->Arg(8)->Arg(32);

void BM_ConstructionRuleLookup(benchmark::State& state) {
  const auto schema = bench::make_layered_schema(
      static_cast<std::size_t>(state.range(0)), 8);
  const auto all = schema.all();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema.construction(all[i % all.size()]));
    ++i;
  }
}
BENCHMARK(BM_ConstructionRuleLookup)->Arg(8)->Arg(32);

void BM_ConsumersOfLookup(benchmark::State& state) {
  // The consumer-direction expansion query over a growing schema.
  const auto schema = bench::make_layered_schema(
      static_cast<std::size_t>(state.range(0)), 8);
  const auto all = schema.all();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema.consumers_of(all[i % all.size()]));
    ++i;
  }
}
BENCHMARK(BM_ConsumersOfLookup)->Arg(8)->Arg(32);

void BM_SchemaRoundTrip(benchmark::State& state) {
  // The maintained artifact is a text file; parse+write round trips.
  const std::string text =
      schema::write_schema(schema::make_full_schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schema::write_schema(schema::parse_schema(text)));
  }
}
BENCHMARK(BM_SchemaRoundTrip);

}  // namespace

BENCHMARK_MAIN();
