// S3 (§4.1): multi-instance selection fan-out.
//
// Claim checked: selecting a set of instances "causes the task to be run
// for each data instance specified" — cost scales with the selected set,
// and a set-accepting encapsulation collapses it back to one call.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace herc;

void BM_FanOutOverStimuli(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  auto session = bench::make_session();
  const auto basics = bench::import_basics(*session);
  std::vector<data::InstanceId> stimuli;
  for (std::size_t i = 0; i < count; ++i) {
    stimuli.push_back(session->import_data(
        "Stimuli", "st" + std::to_string(i),
        circuit::Stimuli::random({"in"}, 2000, 8, i + 1).to_text()));
  }
  for (auto _ : state) {
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    flow.bind_set(flow.inputs_of(flow.goals().front())[1], stimuli);
    const auto result = session->run(flow);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(count) + " simulations per run");
}
BENCHMARK(BM_FanOutOverStimuli)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_CartesianFanOut(benchmark::State& state) {
  // Sets on two inputs: the runs form the cartesian product.
  const auto per_input = static_cast<std::size_t>(state.range(0));
  auto session = bench::make_session();
  const auto basics = bench::import_basics(*session);
  std::vector<data::InstanceId> stimuli;
  std::vector<data::InstanceId> netlists;
  for (std::size_t i = 0; i < per_input; ++i) {
    stimuli.push_back(session->import_data(
        "Stimuli", "st" + std::to_string(i),
        circuit::Stimuli::random({"in"}, 2000, 8, i + 1).to_text()));
    netlists.push_back(session->import_data(
        "EditedNetlist", "nl" + std::to_string(i),
        circuit::inverter_chain(2 + i).to_text()));
  }
  for (auto _ : state) {
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    const graph::NodeId perf = flow.goals().front();
    flow.bind_set(flow.inputs_of(perf)[1], stimuli);
    const graph::NodeId circuit_node = flow.inputs_of(perf)[0];
    flow.bind_set(flow.inputs_of(circuit_node)[1], netlists);
    const auto result = session->run(flow);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(per_input) + "x" +
                 std::to_string(per_input) + " combinations");
}
BENCHMARK(BM_CartesianFanOut)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
