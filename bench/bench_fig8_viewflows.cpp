// F8 (Fig. 8): the synthesis and verification flows between views.
//
// Claim checked: synthesis (physical from transistor) and verification
// (physical against transistor) are ordinary flows, and their cost is the
// tools', not the framework's — measured end to end over growing cells.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "circuit/extract.hpp"
#include "circuit/layout.hpp"
#include "circuit/place.hpp"
#include "circuit/verify.hpp"

namespace {

using namespace herc;

void BM_SynthesisFlow(benchmark::State& state) {
  // Fig. 8a: PlacedLayout <- Placer <- Netlist, run through the executor.
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto session = bench::make_session();
  const auto netlist = session->import_data(
      "EditedNetlist", "adder",
      circuit::ripple_adder_netlist(bits).to_text());
  const auto placer = session->import_data("Placer", "placer", "");
  for (auto _ : state) {
    graph::TaskGraph flow(session->schema(), "fig8a");
    const graph::NodeId goal = flow.add_node("PlacedLayout");
    flow.expand(goal);
    flow.bind(flow.tool_of(goal), placer);
    flow.bind(flow.inputs_of(goal)[0], netlist);
    benchmark::DoNotOptimize(session->run(flow));
  }
  state.SetLabel(std::to_string(
      circuit::ripple_adder_netlist(bits).mos_count()) + " transistors");
}
BENCHMARK(BM_SynthesisFlow)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_VerificationFlow(benchmark::State& state) {
  // Fig. 8b: Verification <- Verifier <- (Layout, Netlist).
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto session = bench::make_session();
  const auto netlist = session->import_data(
      "EditedNetlist", "adder",
      circuit::ripple_adder_netlist(bits).to_text());
  const auto placer = session->import_data("Placer", "placer", "");
  const auto verifier = session->import_data("Verifier", "lvs", "");
  graph::TaskGraph synth(session->schema(), "fig8a");
  const graph::NodeId layout_goal = synth.add_node("PlacedLayout");
  synth.expand(layout_goal);
  synth.bind(synth.tool_of(layout_goal), placer);
  synth.bind(synth.inputs_of(layout_goal)[0], netlist);
  const auto layout = session->run(synth).single(layout_goal);
  for (auto _ : state) {
    graph::TaskGraph flow(session->schema(), "fig8b");
    const graph::NodeId goal = flow.add_node("Verification");
    flow.expand(goal);
    flow.bind(flow.tool_of(goal), verifier);
    flow.bind(flow.inputs_of(goal)[0], layout);
    flow.bind(flow.inputs_of(goal)[1], netlist);
    benchmark::DoNotOptimize(session->run(flow));
  }
}
BENCHMARK(BM_VerificationFlow)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_RawPlaceExtractVerify(benchmark::State& state) {
  // The substrate alone (no framework): place, extract, verify — for
  // comparing framework overhead against tool cost.
  const auto bits = static_cast<std::size_t>(state.range(0));
  const circuit::Netlist nl = circuit::ripple_adder_netlist(bits);
  for (auto _ : state) {
    const circuit::Layout layout = circuit::place(nl);
    const circuit::Netlist extracted = circuit::extract(layout);
    benchmark::DoNotOptimize(circuit::verify_layout(layout, nl));
    benchmark::DoNotOptimize(extracted);
  }
}
BENCHMARK(BM_RawPlaceExtractVerify)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
