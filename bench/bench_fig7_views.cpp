// F7 (Fig. 7): the three views of a cell.
//
// Claim checked: when views are entities and flows transform between
// them, checking whether a cell's physical view is current is a history
// query, not a data-management subsystem — and stays cheap as the cell
// count grows.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "circuit/logic_view.hpp"
#include "views/view_manager.hpp"

namespace {

using namespace herc;

struct ViewFixture {
  std::unique_ptr<core::DesignSession> session;
  std::unique_ptr<views::ViewManager> manager;
  data::InstanceId synthesizer;
  data::InstanceId placer;

  explicit ViewFixture(std::size_t cells) {
    session = bench::make_session();
    manager = std::make_unique<views::ViewManager>(session->db(),
                                                   session->tools());
    synthesizer = session->import_data("Synthesizer", "syn", "");
    placer = session->import_data("Placer", "placer", "");
    for (std::size_t c = 0; c < cells; ++c) {
      const std::string cell = "cell" + std::to_string(c);
      const auto logic = session->import_data(
          "LogicView", cell, circuit::full_adder_logic().to_text());
      manager->register_view(cell, views::ViewKind::kLogic, logic);
      manager->synthesize_transistor(cell, synthesizer);
      manager->synthesize_physical(cell, placer);
    }
  }
};

void BM_RegisterView(benchmark::State& state) {
  ViewFixture fx(4);
  const auto logic = fx.session->import_data(
      "LogicView", "fresh", circuit::full_adder_logic().to_text());
  std::size_t i = 0;
  for (auto _ : state) {
    fx.manager->register_view("fresh" + std::to_string(i++),
                              views::ViewKind::kLogic, logic);
  }
}
BENCHMARK(BM_RegisterView);

void BM_PhysicalUpToDate(benchmark::State& state) {
  // The consistency question, over sessions with many cells.
  ViewFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  const auto cells = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.manager->physical_up_to_date(
        "cell" + std::to_string(i++ % cells)));
  }
  state.SetLabel(std::to_string(fx.session->db().size()) +
                 " instances in history");
}
BENCHMARK(BM_PhysicalUpToDate)->Arg(2)->Arg(8)->Arg(32);

void BM_SynthesizeTransistorView(benchmark::State& state) {
  ViewFixture fx(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.manager->synthesize_transistor("cell0", fx.synthesizer));
  }
}
BENCHMARK(BM_SynthesizeTransistorView)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
