// F4 (Fig. 4): expand and specialize operations.
//
// Claim checked: flows are built *on demand*, one interactive expand at a
// time — so the operation must be O(rule size), independent of how large
// the flow has already grown.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace herc;

void BM_ExpandOperation(benchmark::State& state) {
  // Measure expand on a flow pre-grown to `range` nodes.
  const auto schema = schema::make_full_schema();
  const auto pregrow = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    graph::TaskGraph flow(schema, "grow");
    graph::NodeId netlist = flow.add_node("EditedNetlist");
    for (std::size_t d = 0; flow.node_count() < pregrow; ++d) {
      const auto created = flow.expand(
          netlist, graph::ExpandOptions{.include_optional = true});
      netlist = created[1];
      flow.specialize(netlist, schema.require("EditedNetlist"));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow.expand(
        netlist, graph::ExpandOptions{.include_optional = true}));
  }
}
BENCHMARK(BM_ExpandOperation)->Arg(4)->Arg(64)->Arg(512);

void BM_SpecializeOperation(benchmark::State& state) {
  const auto schema = schema::make_full_schema();
  const auto extracted = schema.require("ExtractedNetlist");
  for (auto _ : state) {
    state.PauseTiming();
    graph::TaskGraph flow(schema, "spec");
    const graph::NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
    state.ResumeTiming();
    flow.specialize(circuit_inputs[1], extracted);
    benchmark::DoNotOptimize(flow.node(circuit_inputs[1]));
  }
}
BENCHMARK(BM_SpecializeOperation);

void BM_UnexpandOperation(benchmark::State& state) {
  // Unexpand garbage-collects the orphaned subtree (Fig. 9's Unexpand).
  const auto schema = schema::make_full_schema();
  for (auto _ : state) {
    state.PauseTiming();
    graph::TaskGraph flow(schema, "unexp");
    const graph::NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    flow.expand(flow.inputs_of(perf)[0]);
    state.ResumeTiming();
    flow.unexpand(perf);
    benchmark::DoNotOptimize(flow.node_count());
  }
}
BENCHMARK(BM_UnexpandOperation);

void BM_ExpandUpOperation(benchmark::State& state) {
  // Consumer-direction expansion (data-based approach).
  const auto schema = schema::make_full_schema();
  const auto plot = schema.require("PerformancePlot");
  for (auto _ : state) {
    state.PauseTiming();
    graph::TaskGraph flow(schema, "up");
    const graph::NodeId perf = flow.add_node("Performance");
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow.expand_up(perf, plot));
  }
}
BENCHMARK(BM_ExpandUpOperation);

void BM_FlowCheck(benchmark::State& state) {
  // Full schema-conformance validation of a grown flow.
  const auto schema = schema::make_full_schema();
  graph::TaskGraph flow(schema, "check");
  graph::NodeId netlist = flow.add_node("EditedNetlist");
  const auto target = static_cast<std::size_t>(state.range(0));
  while (flow.node_count() < target) {
    const auto created = flow.expand(
        netlist, graph::ExpandOptions{.include_optional = true});
    netlist = created[1];
    flow.specialize(netlist, schema.require("EditedNetlist"));
  }
  for (auto _ : state) {
    flow.check();
  }
  state.SetLabel(std::to_string(flow.node_count()) + " nodes");
}
BENCHMARK(BM_FlowCheck)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
