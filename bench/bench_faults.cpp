// Fault-handling overhead on the happy path.
//
// Claim checked: the failure semantics added to the execution engine
// (retry loop, failure modes, per-task outcomes, failure-record hooks)
// cost < 5% on a fault-free flow.  The per-attempt timeout guard is priced
// separately: it inherently moves every tool invocation onto a watchdog
// worker (one cross-thread handoff per call, a few microseconds), which is
// noise for real CAD tools but visible with instant in-process ones.
// A final case measures the recovery path itself (every task faulted once,
// saved by one retry).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "tools/fault_injection.hpp"

namespace {

using namespace herc;

constexpr std::size_t kBranches = 8;

graph::TaskGraph make_branches(core::DesignSession& session,
                               const bench::Basics& basics) {
  graph::TaskGraph flow(session.schema(), "branches");
  for (std::size_t b = 0; b < kBranches; ++b) {
    const graph::NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
    flow.bind(flow.tool_of(perf), basics.simulator);
    flow.bind(flow.inputs_of(perf)[1], basics.stimuli);
    flow.bind(circuit_inputs[0], basics.models);
    flow.bind(circuit_inputs[1], basics.netlist);
  }
  return flow;
}

exec::ExecOptions retry_policy() {
  exec::ExecOptions options;
  options.fault.mode = exec::FailureMode::kContinueBranches;
  options.fault.max_retries = 2;
  options.fault.backoff = std::chrono::milliseconds(5);
  return options;
}

void run_flow(benchmark::State& state, const exec::ExecOptions& options,
              const std::string& label) {
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    const auto flow = make_branches(*session, basics);
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->run(flow, options));
  }
  state.SetLabel(label + ", 8 branches, no faults");
}

void BM_FailFastBaseline(benchmark::State& state) {
  run_flow(state, {}, "fail_fast, no retries");
}
BENCHMARK(BM_FailFastBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ContinueWithRetries(benchmark::State& state) {
  // The <5% claim: failure modes + retry/backoff machinery, no timeout.
  run_flow(state, retry_policy(), "continue_branches + 2 retries");
}
BENCHMARK(BM_ContinueWithRetries)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TimeoutGuard(benchmark::State& state) {
  // The watchdog handoff, priced alone: fail_fast plus a 30s timeout that
  // never fires.
  exec::ExecOptions options;
  options.fault.timeout = std::chrono::seconds(30);
  run_flow(state, options, "per-attempt 30s timeout guard");
}
BENCHMARK(BM_TimeoutGuard)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DecoratedRegistryFaultFree(benchmark::State& state) {
  // The fault-injection decorator interposed but idle, full armed policy.
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    const auto flow = make_branches(*session, basics);
    tools::FaultInjectingRegistry faulty(session->tools(), 1);
    exec::Executor executor(session->db(), faulty);
    auto options = retry_policy();
    options.fault.timeout = std::chrono::seconds(30);
    state.ResumeTiming();
    benchmark::DoNotOptimize(executor.run(flow, options));
  }
  state.SetLabel("idle fault decorator + retries + timeout");
}
BENCHMARK(BM_DecoratedRegistryFaultFree)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RetryRecovery(benchmark::State& state) {
  // Every simulator call faults once and is saved by the first retry —
  // the cost of the recovery path itself (no backoff, so pure machinery).
  for (auto _ : state) {
    state.PauseTiming();
    auto session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    const auto flow = make_branches(*session, basics);
    tools::FaultInjectingRegistry faulty(session->tools(), 1);
    for (std::size_t b = 0; b < kBranches; ++b) {
      faulty.inject({"Simulator.default", 2 * b, tools::FaultKind::kThrow,
                     std::chrono::milliseconds{0}});
    }
    exec::Executor executor(session->db(), faulty);
    auto options = retry_policy();
    options.fault.backoff = std::chrono::milliseconds(0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(executor.run(flow, options));
  }
  state.SetLabel("every task faulted once, recovered by retry");
}
BENCHMARK(BM_RetryRecovery)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
