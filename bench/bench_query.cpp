// Query-planner benchmark: indexed vs scanned predicate latency on a
// large history, plus one-hop derivation chaining both directions and a
// full paginated listing walk.  Emits BENCH_query.json in the working
// directory (EXPERIMENTS S5/S12).
//
// The headline claim: on a 10M-instance history every Fig. 9 browser
// predicate — keyword, creation-date window, user, entity type — and
// one-hop chaining answer in under 10 ms through the secondary indexes,
// at least 100x faster than the verified table scan that computes the
// same rows.  Every indexed page is checked for exact equality against
// the scan before any timing is reported.
//
// Sized by HERC_BENCH_QUERY_N (default 200k, where the ratios are smaller
// but the parity checks are the same; EXPERIMENTS.md S14 records a 10M
// run).  The <10ms / >=100x gates are enforced from 1M up.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "history/history_db.hpp"
#include "history/query_planner.hpp"
#include "index/indexes.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"

namespace {

using namespace herc;
using data::InstanceId;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct PredicateResult {
  std::string name;
  double indexed_ms = 0;   // mean per query, planner through the index
  double scan_ms = 0;      // mean per query, verified table scan
  double speedup = 0;
  std::size_t rows = 0;    // rows on the measured page
  std::string plan;        // access path the planner chose
};

/// The verified table scan `run_page` would execute with no index:
/// newest-first over every id, re-checking the full predicate.  Hand
/// rolled so the uses-predicate comparison is a true scan too (the
/// planner serves `uses` from the db's dependency lists even without an
/// index, which is the optimization — not the baseline).
std::vector<InstanceId> scan_page(const history::HistoryDb& db,
                                  const history::QueryFilter& filter,
                                  std::size_t limit) {
  std::vector<InstanceId> out;
  for (std::size_t i = db.size(); i-- > 0 && out.size() < limit;) {
    const InstanceId id(static_cast<std::uint32_t>(i));
    if (history::matches(db, filter, id)) out.push_back(id);
  }
  return out;
}

}  // namespace

int main() {
  std::size_t n = 200000;
  if (const char* env = std::getenv("HERC_BENCH_QUERY_N")) {
    n = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const bool enforce = n >= 1000000;
  // Rarity scaled so rare predicates select ~0.01% of the table whatever
  // the size (1k hits at 10M) and the derived minority stays at 0.1%.
  const std::size_t kKeywordEvery = std::max<std::size_t>(n / 1000, 1);
  const std::size_t kUserEvery = std::max<std::size_t>(n / 1000, 1);
  const std::size_t kStimuliEvery = std::max<std::size_t>(n / 2000, 1);
  const std::size_t kPerfEvery = std::max<std::size_t>(n / 1000, 1);

  const schema::TaskSchema schema = schema::make_full_schema();
  const schema::EntityTypeId netlist_t = schema.require("EditedNetlist");
  const schema::EntityTypeId stimuli_t = schema.require("Stimuli");
  const schema::EntityTypeId perf_t = schema.require("Performance");

  support::ManualClock clock(718000000000000LL, 1000);
  history::HistoryDb db(schema, clock);

  std::printf("bench_query: populating %zu instances...\n", n);
  auto start = Clock::now();
  // One shared "hub" stimuli every Performance uses: its dependent list is
  // the forward-chaining workload.
  const InstanceId hub =
      db.import_instance(stimuli_t, "hub_waves", "w", "bench");
  InstanceId last_netlist;
  std::vector<InstanceId> perfs;
  while (db.size() < n) {
    const std::size_t i = db.size();
    if (i % kPerfEvery == 0 && last_netlist.valid()) {
      history::RecordRequest req;
      req.type = perf_t;
      req.name = "perf" + std::to_string(i);
      req.user = "bench";
      req.derivation.inputs = {last_netlist, hub};
      req.derivation.input_roles = {"circuit", "stimuli"};
      req.derivation.task = "Simulator";
      perfs.push_back(db.record(req));
      continue;
    }
    std::string name = "n" + std::to_string(i);
    if (i % kKeywordEvery == 1) name += "_hotspot";
    const char* user = i % kUserEvery == 2 ? "rare_user" : "bench";
    if (i % kStimuliEvery == 3) {
      db.import_instance(stimuli_t, name, "w", user);
    } else {
      last_netlist = db.import_instance(netlist_t, name, "", user);
    }
  }
  const double populate_ms = ms_since(start);

  start = Clock::now();
  index::HistoryIndexes indexes(db);
  indexes.rebuild();
  indexes.attach();
  const double rebuild_ms = ms_since(start);
  std::printf("  populate %.0f ms, index rebuild %.0f ms\n", populate_ms,
              rebuild_ms);

  // A ~0.01% date window, bounds read off real instances.
  const std::size_t win_lo = n / 2;
  const std::size_t win_hi = win_lo + std::max<std::size_t>(n / 1000, 2) - 1;
  history::QueryFilter by_keyword, by_user, by_date, by_type, by_uses;
  by_keyword.keyword = "hotspot";
  by_user.user = "rare_user";
  by_date.from = db.instance(InstanceId(static_cast<std::uint32_t>(win_lo)))
                     .created;
  by_date.to = db.instance(InstanceId(static_cast<std::uint32_t>(win_hi)))
                   .created;
  by_type.type = stimuli_t;
  by_uses.uses = hub;

  constexpr std::size_t kPage = 100;
  const std::vector<std::pair<std::string, const history::QueryFilter*>>
      predicates = {{"keyword", &by_keyword},
                    {"user", &by_user},
                    {"date", &by_date},
                    {"type", &by_type},
                    {"chain_forward", &by_uses}};

  std::vector<PredicateResult> results;
  bool failed = false;
  for (const auto& [name, filter] : predicates) {
    PredicateResult r;
    r.name = name;
    // Parity first: the indexed page must equal the verified scan's.
    const history::QueryPage indexed =
        history::run_page(db, *filter, &indexes, kPage);
    const std::vector<InstanceId> scanned = scan_page(db, *filter, kPage);
    if (indexed.ids != scanned) {
      std::fprintf(stderr, "FAIL: '%s' indexed page != scan page\n",
                   name.c_str());
      failed = true;
      continue;
    }
    r.rows = indexed.ids.size();
    r.plan = indexed.plan.describe();

    const std::size_t reps = 50;
    start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      (void)history::run_page(db, *filter, &indexes, kPage);
    }
    r.indexed_ms = ms_since(start) / static_cast<double>(reps);

    const std::size_t scan_reps = n > 1000000 ? 2 : 5;
    start = Clock::now();
    for (std::size_t i = 0; i < scan_reps; ++i) (void)scan_page(db, *filter, kPage);
    r.scan_ms = ms_since(start) / static_cast<double>(scan_reps);
    r.speedup = r.indexed_ms > 0 ? r.scan_ms / r.indexed_ms : 0;
    std::printf("  %-14s indexed %8.3f ms  scan %9.2f ms  %7.0fx  [%s]\n",
                name.c_str(), r.indexed_ms, r.scan_ms, r.speedup,
                r.plan.c_str());
    if (enforce && (r.indexed_ms >= 10.0 || r.speedup < 100.0)) {
      std::fprintf(stderr,
                   "FAIL: '%s' needs <10 ms indexed and >=100x over scan\n",
                   name.c_str());
      failed = true;
    }
    results.push_back(r);
  }

  // Backward chaining: one hop from a Performance to its derivation
  // inputs (db-native, no index involved — reported for completeness).
  double chain_backward_us = 0;
  if (!perfs.empty()) {
    start = Clock::now();
    std::size_t edges = 0;
    for (const InstanceId p : perfs) {
      edges += db.instance(p).derivation.inputs.size();
    }
    chain_backward_us =
        ms_since(start) * 1000.0 / static_cast<double>(perfs.size());
    if (edges == 0) failed = true;
  }

  // Stream the full netlist listing page by page: bounded memory (one
  // page at a time), every row exactly once.
  history::QueryFilter all_netlists;
  all_netlists.type = netlist_t;
  start = Clock::now();
  std::size_t walked = 0, pages = 0;
  std::optional<history::PageCursor> cursor;
  for (;;) {
    const history::QueryPage page =
        history::run_page(db, all_netlists, &indexes, 1000, cursor);
    walked += page.ids.size();
    ++pages;
    if (!page.next) break;
    cursor = page.next;
  }
  const double walk_ms = ms_since(start);
  const std::vector<InstanceId> expected_all =
      scan_page(db, all_netlists, db.size());
  if (walked != expected_all.size()) {
    std::fprintf(stderr, "FAIL: paginated walk saw %zu rows, scan %zu\n",
                 walked, expected_all.size());
    failed = true;
  }
  std::printf("  paginated walk  %zu rows in %zu pages, %.0f ms\n", walked,
              pages, walk_ms);
  std::printf("  chain backward  %.3f us per instance\n", chain_backward_us);

  std::ofstream json("BENCH_query.json", std::ios::trunc);
  json << "{\n  \"instances\": " << n << ",\n  \"page_rows\": " << kPage
       << ",\n  \"populate_ms\": " << populate_ms
       << ",\n  \"index_rebuild_ms\": " << rebuild_ms
       << ",\n  \"predicates\": {";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PredicateResult& r = results[i];
    json << (i == 0 ? "" : ",") << "\n    \"" << r.name
         << "\": {\"indexed_ms\": " << r.indexed_ms
         << ", \"scan_ms\": " << r.scan_ms << ", \"speedup\": " << r.speedup
         << ", \"rows\": " << r.rows << ", \"plan\": \"" << r.plan << "\"}";
  }
  json << "\n  },\n  \"chain_backward_us_per_instance\": "
       << chain_backward_us << ",\n  \"listing_walk\": {\"rows\": " << walked
       << ", \"pages\": " << pages << ", \"total_ms\": " << walk_ms
       << "}\n}\n";
  json.close();
  std::printf("  -> BENCH_query.json\n");
  return failed ? 1 : 0;
}
