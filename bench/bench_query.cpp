// S5 (§4.2): the textual query language.
//
// Claim checked: derivation-structured queries ("find the simulations
// performed on this netlist") answer at interactive speed and scale with
// the candidate set, not the database.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "history/query_language.hpp"

namespace {

using namespace herc;

struct QueryFixture {
  std::unique_ptr<core::DesignSession> session;
  data::InstanceId netlist;

  explicit QueryFixture(std::size_t simulations) {
    session = bench::make_session();
    const auto basics = bench::import_basics(*session);
    netlist = basics.netlist;
    // Many performances over the same netlist, different stimuli.
    std::vector<data::InstanceId> stimuli;
    for (std::size_t i = 0; i < simulations; ++i) {
      stimuli.push_back(session->import_data(
          "Stimuli", "st" + std::to_string(i),
          circuit::Stimuli::random({"in"}, 2000, 6, i + 1).to_text()));
    }
    graph::TaskGraph flow = bench::make_simulate_flow(*session, basics);
    flow.bind_set(flow.inputs_of(flow.goals().front())[1],
                  std::move(stimuli));
    (void)session->run(flow);
  }
};

void BM_CompileQuery(benchmark::State& state) {
  QueryFixture fx(4);
  const std::string query = "find Performance where circuit.netlist = i" +
                            std::to_string(fx.netlist.value()) +
                            " and tool = i3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        history::compile_query(fx.session->db(), query));
  }
}
BENCHMARK(BM_CompileQuery);

void BM_RunStructuredQuery(benchmark::State& state) {
  QueryFixture fx(static_cast<std::size_t>(state.range(0)));
  const std::string query = "find Performance where circuit.netlist = i" +
                            std::to_string(fx.netlist.value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::run_query(fx.session->db(), query));
  }
  state.SetLabel(std::to_string(state.range(0)) + " matching performances");
}
BENCHMARK(BM_RunStructuredQuery)->Arg(4)->Arg(32)->Arg(128);

void BM_RunNameQuery(benchmark::State& state) {
  QueryFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::run_query(
        fx.session->db(),
        "find Performance where circuit.netlist = \"chain\""));
  }
}
BENCHMARK(BM_RunNameQuery)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
