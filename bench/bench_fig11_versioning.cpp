// F11 (Fig. 11): version trees subsumed by flow traces.
//
// Claim checked: the flow trace is a "semantically richer superset of a
// version tree" at comparable cost — extracting either scales with the
// lineage, and no separate version-management bookkeeping exists to pay
// for.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "exec/consistency.hpp"
#include "history/flow_trace.hpp"

namespace {

using namespace herc;

struct LineageFixture {
  std::unique_ptr<core::DesignSession> session;
  std::vector<data::InstanceId> chain;

  explicit LineageFixture(std::size_t versions) {
    session = bench::make_session();
    auto basics = bench::import_basics(*session);
    chain = bench::grow_edit_chain(*session, basics, versions);
  }
};

void BM_VersionTreeExtraction(benchmark::State& state) {
  LineageFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto member = fx.chain[fx.chain.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::version_tree(fx.session->db(), member));
  }
  state.SetLabel(std::to_string(state.range(0)) + " versions");
}
BENCHMARK(BM_VersionTreeExtraction)->Arg(4)->Arg(32)->Arg(256);

void BM_LineageTrace(benchmark::State& state) {
  // The Fig. 11b form: same lineage plus the tools used per edit.
  LineageFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto member = fx.chain[fx.chain.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        history::lineage_trace(fx.session->db(), member));
  }
}
BENCHMARK(BM_LineageTrace)->Arg(4)->Arg(32)->Arg(256);

void BM_LatestVersionWalk(benchmark::State& state) {
  LineageFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto root = fx.chain.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::latest_version(fx.session->db(), root));
  }
}
BENCHMARK(BM_LatestVersionWalk)->Arg(4)->Arg(32)->Arg(256);

void BM_SupersededCheck(benchmark::State& state) {
  LineageFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.session->db().superseded(fx.chain[i++ % fx.chain.size()]));
  }
}
BENCHMARK(BM_SupersededCheck)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
