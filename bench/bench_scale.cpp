// Scale benchmark: the swarm trace profiles replayed against an
// in-process server, measuring aggregate throughput and latency
// percentiles per named workload mix.  Emits BENCH_scale.json in the
// working directory (EXPERIMENTS S11).
//
// Each profile runs chaos-free (`chaos = 0`), over connections warmed
// behind the swarm driver's start barrier, so qps and p50/p95/p99 are
// steady-state service numbers for that mix — but every run still ends
// with the full heal chain (stop, fsck, resume, verify), so a benchmark
// pass is also a correctness pass.  The headline claim: a shared design
// server holds up under qualitatively different team workloads — query
// floods, import-heavy design bursts, concurrent version edits — without
// the invariant chain cracking.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/swarm.hpp"
#include "sim/trace.hpp"

namespace {

struct ProfileResult {
  std::string profile;
  herc::sim::SwarmReport report;
};

}  // namespace

int main() {
  // The chaos-acceptance "faults" profile is excluded: fault-seeded runs
  // spend their time in injected failures and retries, which is chaos
  // coverage, not a throughput statement.
  // "replicas" runs with a two-follower fleet: three readers in four are
  // served off the leader's write path entirely.
  const std::vector<std::string> kProfiles = {"queries", "design", "versions",
                                              "mixed", "replicas", "browse"};
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRounds = 3;
  constexpr std::uint64_t kSeed = 20260808;

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "herc_bench_scale";
  std::filesystem::remove_all(root);

  std::vector<ProfileResult> results;
  bool failed = false;
  for (const std::string& profile : kProfiles) {
    const std::filesystem::path dir = root / profile;
    const bool replicate = profile == "replicas";
    herc::sim::InProcessServer control(dir.string(), replicate);
    herc::sim::SwarmOptions options;
    options.profile = profile;
    options.clients = kClients;
    options.rounds = kRounds;
    options.seed = kSeed;
    options.chaos = 0;
    options.followers = replicate ? 2 : 0;
    herc::sim::SwarmReport report = herc::sim::run_swarm(control, options);
    std::printf(
        "bench_scale: %-8s %5zu ops, %6.0f qps, p50/p95/p99 "
        "%llu/%llu/%lluus%s\n",
        profile.c_str(), report.ops_acked, report.qps,
        static_cast<unsigned long long>(report.p50_us),
        static_cast<unsigned long long>(report.p95_us),
        static_cast<unsigned long long>(report.p99_us),
        report.ok() ? "" : "  INVARIANT VIOLATIONS");
    if (!report.ok()) {
      for (const std::string& v : report.violations) {
        std::fprintf(stderr, "bench_scale:   violation: %s\n", v.c_str());
      }
      failed = true;
    }
    results.push_back({profile, std::move(report)});
  }
  std::filesystem::remove_all(root);

  std::ofstream json("BENCH_scale.json", std::ios::trunc);
  json << "{\n"
       << "  \"clients\": " << kClients << ",\n"
       << "  \"rounds\": " << kRounds << ",\n"
       << "  \"seed\": " << kSeed << ",\n"
       << "  \"profiles\": {";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const herc::sim::SwarmReport& r = results[i].report;
    json << (i == 0 ? "" : ",") << "\n    \"" << results[i].profile
         << "\": {\"ops\": " << r.ops_acked << ", \"qps\": " << r.qps
         << ", \"p50_us\": " << r.p50_us << ", \"p95_us\": " << r.p95_us
         << ", \"p99_us\": " << r.p99_us
         << ", \"wall_ms\": " << r.wall_ms << ", \"ok\": "
         << (r.ok() ? "true" : "false") << "}";
  }
  json << "\n  }\n}\n";
  json.close();

  return failed ? 1 : 0;
}
