// The Hercules shell: an interactive / scriptable front end to the whole
// framework (the reproduction's stand-in for the Fig. 9 task window).
//
//   ./hercules_shell                        # interactive REPL
//   ./hercules_shell script.hcl             # run a script, exit non-zero on errors
//   ./hercules_shell --fsck <dir> [--repair]  # audit a store; the exit code
//                                             # is the worst severity found
//                                             # (0 clean, 1 warnings,
//                                             #  2 corruption)
//   ./hercules_shell --lint schema <fig1|fig2|full|file> [--json]
//   ./hercules_shell --lint flow <fig1|fig2|full|file> <file.flow> [--json]
//   ./hercules_shell --lint script <file.hcl> [--json]
//   ./hercules_shell --lint store <dir> [--json]
//                    (targets chain: --lint schema fig1 schema fig2 ...)
//                                           # static analysis; the exit code
//                                           # is the worst severity found
//                                           # (0 clean, 1 warnings, 2 errors)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/flow_lint.hpp"
#include "analyze/plan_check.hpp"
#include "analyze/schema_lint.hpp"
#include "cli/interpreter.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/fsck.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A builtin schema by name, or a schema document from a file.
herc::schema::TaskSchema load_schema(const std::string& ref) {
  if (ref == "fig1") return herc::schema::make_fig1_schema();
  if (ref == "fig2") return herc::schema::make_fig2_schema();
  if (ref == "full") return herc::schema::make_full_schema();
  return herc::schema::parse_schema(slurp(ref));
}

int run_lint(std::vector<std::string> args) {
  bool json = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--json") {
      json = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  // Targets may be chained in one invocation:
  //   --lint schema fig1 schema fig2 flow fig1 sim.flow
  std::vector<herc::analyze::LintReport> reports;
  std::size_t i = 0;
  while (i < args.size()) {
    const std::string& kind = args[i];
    if (kind == "schema" && i + 1 < args.size()) {
      reports.push_back(herc::analyze::lint_schema(load_schema(args[i + 1])));
      i += 2;
    } else if (kind == "flow" && i + 2 < args.size()) {
      // A bare flow file has no design history or tool registry to lint
      // against: the structural checks run, the binding checks are skipped.
      // The plan pass assumes the widest schedule (parallel, continue) so
      // every hazard the flow *could* exhibit is reported.
      const herc::schema::TaskSchema schema = load_schema(args[i + 1]);
      const herc::graph::TaskGraph flow =
          herc::graph::TaskGraph::load(schema, slurp(args[i + 2]));
      herc::analyze::LintReport r = herc::analyze::lint_flow(flow);
      r.merge(herc::analyze::lint_plan(
          flow, {.parallel = true, .continue_on_failure = true}));
      reports.push_back(std::move(r));
      i += 3;
    } else if (kind == "script" && i + 1 < args.size()) {
      // Replay the script on a muted interpreter, then lint the session
      // schema and every flow the script built, with the session's history
      // and tools as context.
      std::ostringstream muted;
      herc::cli::Interpreter interpreter(muted);
      if (interpreter.run_script(slurp(args[i + 1])) > 0) {
        std::cerr << "lint: script failed to replay: "
                  << interpreter.last_error() << "\n";
        return 2;
      }
      reports.push_back(
          herc::analyze::lint_schema(interpreter.session().schema()));
      for (const auto& [name, flow] : interpreter.named_flows()) {
        herc::analyze::FlowLintOptions options;
        options.db = &interpreter.session().db();
        options.tools = &interpreter.session().tools();
        herc::analyze::LintReport r = herc::analyze::lint_flow(flow, options);
        r.merge(herc::analyze::lint_plan(
            flow, {.parallel = true, .continue_on_failure = true}));
        reports.push_back(std::move(r));
      }
      i += 2;
    } else if (kind == "store" && i + 1 < args.size()) {
      const herc::storage::FsckReport fsck =
          herc::storage::fsck_store(args[i + 1]);
      herc::analyze::LintReport r("store '" + args[i + 1] + "'");
      for (const herc::storage::FsckFinding& f : fsck.findings) {
        r.add(f.severity == herc::support::Severity::kError ? "HL302"
                                                            : "HL301",
              f.severity, "store '" + args[i + 1] + "'",
              f.code + ": " + f.detail,
              "run --fsck " + args[i + 1] + " --repair to fix what is"
              " repairable");
      }
      reports.push_back(std::move(r));
      i += 2;
    } else {
      std::cerr << "usage: hercules_shell --lint"
                   " [schema <fig1|fig2|full|file>]"
                   " [flow <schema> <file.flow>] [script <file.hcl>]"
                   " [store <dir>]...   [--json]\n";
      return 2;
    }
  }
  if (reports.empty()) {
    std::cerr << "lint: no targets given\n";
    return 2;
  }
  int exit = 0;
  for (const herc::analyze::LintReport& r : reports) {
    std::cout << (json ? r.render_json() : r.render());
    exit = std::max(exit, r.exit_code());
  }
  return exit;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--fsck") {
    if (argc < 3 || argc > 4 ||
        (argc == 4 && std::string(argv[3]) != "--repair")) {
      std::cerr << "usage: hercules_shell --fsck <dir> [--repair]\n";
      return 2;
    }
    herc::storage::FsckOptions options;
    options.repair = argc == 4;
    try {
      const herc::storage::FsckReport report =
          herc::storage::fsck_store(argv[2], options);
      std::cout << report.render();
      return report.exit_code();
    } catch (const std::exception& e) {
      std::cerr << "fsck: " << e.what() << "\n";
      return 2;
    }
  }

  if (argc > 1 && std::string(argv[1]) == "--lint") {
    try {
      return run_lint(std::vector<std::string>(argv + 2, argv + argc));
    } catch (const std::exception& e) {
      std::cerr << "lint: " << e.what() << "\n";
      return 2;
    }
  }

  herc::cli::Interpreter interpreter(std::cout);
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open script '" << argv[1] << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::size_t failures = interpreter.run_script(buffer.str());
    return failures == 0 ? 0 : 1;
  }

  std::cout << "Hercules shell — 'help' lists commands, 'quit' exits.\n";
  std::string line;
  while (true) {
    std::cout << "herc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Interactive heredocs: read until the terminator line.
    std::string payload;
    const std::size_t marker = line.rfind("<<");
    if (marker != std::string::npos) {
      const std::string token = line.substr(marker + 2);
      line = line.substr(0, marker);
      std::string body_line;
      while (std::getline(std::cin, body_line) && body_line != token) {
        payload += body_line;
        payload += '\n';
      }
    }
    if (interpreter.execute(line, std::move(payload)) ==
        herc::cli::CommandStatus::kQuit) {
      break;
    }
  }
  return 0;
}
