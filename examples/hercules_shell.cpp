// The Hercules shell: an interactive / scriptable front end to the whole
// framework (the reproduction's stand-in for the Fig. 9 task window).
//
//   ./hercules_shell               # interactive REPL
//   ./hercules_shell script.hcl    # run a script, exit non-zero on errors
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli/interpreter.hpp"

int main(int argc, char** argv) {
  herc::cli::Interpreter interpreter(std::cout);
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open script '" << argv[1] << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::size_t failures = interpreter.run_script(buffer.str());
    return failures == 0 ? 0 : 1;
  }

  std::cout << "Hercules shell — 'help' lists commands, 'quit' exits.\n";
  std::string line;
  while (true) {
    std::cout << "herc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Interactive heredocs: read until the terminator line.
    std::string payload;
    const std::size_t marker = line.rfind("<<");
    if (marker != std::string::npos) {
      const std::string token = line.substr(marker + 2);
      line = line.substr(0, marker);
      std::string body_line;
      while (std::getline(std::cin, body_line) && body_line != token) {
        payload += body_line;
        payload += '\n';
      }
    }
    if (interpreter.execute(line, std::move(payload)) ==
        herc::cli::CommandStatus::kQuit) {
      break;
    }
  }
  return 0;
}
