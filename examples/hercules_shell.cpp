// The Hercules shell: an interactive / scriptable front end to the whole
// framework (the reproduction's stand-in for the Fig. 9 task window).
//
//   ./hercules_shell                        # interactive REPL
//   ./hercules_shell script.hcl             # run a script, exit non-zero on errors
//   ./hercules_shell --fsck <dir> [--repair]  # audit a store; the exit code
//                                             # is the worst severity found
//                                             # (0 clean, 1 warnings,
//                                             #  2 corruption)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli/interpreter.hpp"
#include "storage/fsck.hpp"

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--fsck") {
    if (argc < 3 || argc > 4 ||
        (argc == 4 && std::string(argv[3]) != "--repair")) {
      std::cerr << "usage: hercules_shell --fsck <dir> [--repair]\n";
      return 2;
    }
    herc::storage::FsckOptions options;
    options.repair = argc == 4;
    try {
      const herc::storage::FsckReport report =
          herc::storage::fsck_store(argv[2], options);
      std::cout << report.render();
      return report.exit_code();
    } catch (const std::exception& e) {
      std::cerr << "fsck: " << e.what() << "\n";
      return 2;
    }
  }

  herc::cli::Interpreter interpreter(std::cout);
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open script '" << argv[1] << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::size_t failures = interpreter.run_script(buffer.str());
    return failures == 0 ? 0 : 1;
  }

  std::cout << "Hercules shell — 'help' lists commands, 'quit' exits.\n";
  std::string line;
  while (true) {
    std::cout << "herc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Interactive heredocs: read until the terminator line.
    std::string payload;
    const std::size_t marker = line.rfind("<<");
    if (marker != std::string::npos) {
      const std::string token = line.substr(marker + 2);
      line = line.substr(0, marker);
      std::string body_line;
      while (std::getline(std::cin, body_line) && body_line != token) {
        payload += body_line;
        payload += '\n';
      }
    }
    if (interpreter.execute(line, std::move(payload)) ==
        herc::cli::CommandStatus::kQuit) {
      break;
    }
  }
  return 0;
}
