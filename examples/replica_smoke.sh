#!/usr/bin/env bash
# End-to-end smoke test for `herc replicate`: a leader and two streaming
# followers over TCP, mixed load on the leader, reads served (and writes
# refused) by the followers — then SIGKILL the leader, promote a follower
# with `herc promote`, lead from the promoted store, re-attach the other
# follower to the new leader, and prove every store audits clean and the
# survivors' reads match.
#
#   replica_smoke.sh <path-to-herc-binary> <scratch-dir>
set -eu

HERC="$1"
SCRATCH="$2"
LEADER_STORE="$SCRATCH/herc_replica_leader"
F1_STORE="$SCRATCH/herc_replica_f1"
F2_STORE="$SCRATCH/herc_replica_f2"
rm -rf "$LEADER_STORE" "$F1_STORE" "$F2_STORE" "$SCRATCH"/herc_replica_*.log

addr_from_log() {  # addr_from_log <logfile>
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$1" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "FAIL: no listener in $1" >&2; cat "$1" >&2; return 1; }
  echo "$addr"
}

"$HERC" serve "$LEADER_STORE" --listen 127.0.0.1:0 --schema full \
  >"$SCRATCH/herc_replica_leader.log" 2>&1 &
LEADER=$!
trap 'kill "$LEADER" 2>/dev/null || true; kill "$F1" 2>/dev/null || true; kill "$F2" 2>/dev/null || true' EXIT
ADDR=$(addr_from_log "$SCRATCH/herc_replica_leader.log")

"$HERC" serve "$F1_STORE" --replicate-from "$ADDR" --retry 50 \
  --listen 127.0.0.1:0 >"$SCRATCH/herc_replica_f1.log" 2>&1 &
F1=$!
"$HERC" serve "$F2_STORE" --replicate-from "$ADDR" --retry 50 \
  --listen 127.0.0.1:0 >"$SCRATCH/herc_replica_f2.log" 2>&1 &
F2=$!
F1ADDR=$(addr_from_log "$SCRATCH/herc_replica_f1.log")
F2ADDR=$(addr_from_log "$SCRATCH/herc_replica_f2.log")

# Mixed load on the leader: the Fig. 1 design, a flow built and run over
# the wire, the plan published, plus extra imports for the followers to
# stream.
SETUP="$SCRATCH/herc_replica_setup.hcl"
cat >"$SETUP" <<'EOF'
session user alice
import EditedNetlist inverter <<NETLIST
netlist inverter
input in
output out
nmos mn g=in d=out s=GND model=nch value=1
pmos mp g=in d=out s=VDD model=pch value=1
NETLIST
import DeviceModels standard <<MODELS
models standard
model nch type=nmos resistance=10 threshold=0.6
model pch type=pmos resistance=20 threshold=0.6
MODELS
import Stimuli toggle <<WAVES
stimuli toggle
wave in 0:0 2000:1 4000:0
WAVES
import Simulator switchsim ""
flow new sim goal Performance
flow expand sim 0
flow expand sim 2
flow bind sim 1 i3
flow bind sim 3 i2
flow bind sim 4 i1
flow bind sim 5 i0
run sim
flow save-plan sim
EOF
"$HERC" connect "$ADDR" --retry 30 "$SETUP" || {
  echo "FAIL: mixed load failed on the leader"; exit 1;
}

# Both followers catch up: the streamed import becomes readable.
for F in "$F1ADDR" "$F2ADDR"; do
  CAUGHT=0
  for _ in $(seq 1 100); do
    if "$HERC" connect "$F" -e "browse Stimuli" 2>/dev/null | grep -q toggle; then
      CAUGHT=1; break
    fi
    sleep 0.1
  done
  [ "$CAUGHT" = 1 ] || { echo "FAIL: follower $F never caught up"; exit 1; }
done

# The leader sees both followers; a follower refuses a write.
"$HERC" replicas "$ADDR" | grep -q "followers: 2" || {
  echo "FAIL: leader does not report 2 followers";
  "$HERC" replicas "$ADDR"; exit 1;
}
if "$HERC" connect "$F1ADDR" -e 'import Stimuli nope ""' 2>/dev/null; then
  echo "FAIL: a read-only follower accepted a write"; exit 1;
fi

# The moment of truth: the leader dies without ceremony.
kill -KILL "$LEADER"
wait "$LEADER" 2>/dev/null || true

# Stop follower 1 and promote its store: full recovery, epoch bump (the
# fence), marker removed.  fsck must pass before it leads.
kill -TERM "$F1" && wait "$F1" || {
  echo "FAIL: follower 1 exited nonzero"; cat "$SCRATCH/herc_replica_f1.log"; exit 1;
}
"$HERC" promote "$F1_STORE" || { echo "FAIL: promote failed"; exit 1; }
"$HERC" fsck "$F1_STORE" || { echo "FAIL: promoted store does not audit clean"; exit 1; }

"$HERC" serve "$F1_STORE" --listen 127.0.0.1:0 \
  >"$SCRATCH/herc_replica_newleader.log" 2>&1 &
LEADER=$!
NEWADDR=$(addr_from_log "$SCRATCH/herc_replica_newleader.log")

# Life goes on under the new epoch: a post-failover write on the new
# leader...
"$HERC" connect "$NEWADDR" --retry 30 \
  -e "session user alice" \
  -e 'import Stimuli after_failover <<W
stimuli af
wave in 0:0 100:1 200:0
W' || { echo "FAIL: the promoted leader refused a write"; exit 1; }

# ...and follower 2, re-attached to the new leader, streams it: its old
# store (bootstrapped under the dead leader's epoch) resyncs across the
# promotion checkpoint.
kill -TERM "$F2" && wait "$F2" || {
  echo "FAIL: follower 2 exited nonzero"; cat "$SCRATCH/herc_replica_f2.log"; exit 1;
}
"$HERC" serve "$F2_STORE" --replicate-from "$NEWADDR" --retry 50 \
  --listen 127.0.0.1:0 >"$SCRATCH/herc_replica_f2b.log" 2>&1 &
F2=$!
F2ADDR=$(addr_from_log "$SCRATCH/herc_replica_f2b.log")
CAUGHT=0
for _ in $(seq 1 100); do
  if "$HERC" connect "$F2ADDR" -e "browse Stimuli" 2>/dev/null \
      | grep -q after_failover; then
    CAUGHT=1; break
  fi
  sleep 0.1
done
[ "$CAUGHT" = 1 ] || {
  echo "FAIL: follower 2 never saw the post-failover write";
  cat "$SCRATCH/herc_replica_f2b.log"; exit 1;
}

# Reads match: the new leader and the re-attached follower agree on the
# full survivor surface (the promoted store carries everything the dead
# leader acked).  The filtered/paginated forms go through each side's own
# secondary indexes, so agreement also proves the follower's index kept up
# with the applied stream.
for Q in "browse Stimuli" "browse EditedNetlist" "entities" "plans" \
         "browse Stimuli keyword=failover limit=5" \
         "browse Stimuli limit=2"; do
  L=$("$HERC" connect "$NEWADDR" -e "$Q")
  R=$("$HERC" connect "$F2ADDR" -e "$Q")
  [ "$L" = "$R" ] || {
    echo "FAIL: '$Q' differs between the new leader and follower 2";
    echo "--- leader"; echo "$L"; echo "--- follower"; echo "$R"; exit 1;
  }
done
echo "$L" >/dev/null

# Graceful wind-down; every surviving store audits clean.
kill -TERM "$F2" && wait "$F2" || true
kill -TERM "$LEADER" && wait "$LEADER" || {
  echo "FAIL: the promoted leader exited nonzero"; exit 1;
}
trap - EXIT
"$HERC" fsck "$F1_STORE" || { echo "FAIL: the promoted store regressed"; exit 1; }
"$HERC" fsck "$F2_STORE" || { echo "FAIL: follower 2's replica store is dirty"; exit 1; }

echo "replica smoke: OK"
