// Quickstart: the paper's §4.1 walk-through.
//
// "Suppose the designer wishes to obtain a circuit performance from an
// existing netlist."  We build the Fig. 1 task schema, grow a flow with
// expand operations starting from the goal entity, fill in instances via
// the browser, execute, and query the design history.
#include <cstdio>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/plot.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "history/flow_trace.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"

using namespace herc;

int main() {
  // A session over the full Odyssey demo schema with deterministic time.
  core::DesignSession session(
      schema::make_full_schema(), "sutton",
      std::make_unique<support::ManualClock>(718000000000000, 60000000));

  std::printf("== task schema (Fig. 1) ==\n%s\n",
              schema::write_schema(session.schema()).c_str());

  // The designer's pre-existing data: a full-adder netlist, device models,
  // stimuli, and the simulator tool itself (tools are entities too).
  const auto netlist = session.import_data(
      "EditedNetlist", "CMOS Full adder",
      circuit::full_adder_netlist().to_text(), "hand-entered schematic");
  const auto models =
      session.import_data("DeviceModels", "standard models",
                          circuit::DeviceModelLibrary::standard().to_text());
  const auto stimuli = session.import_data(
      "Stimuli", "exhaustive counter",
      circuit::Stimuli::counter({"a", "b", "cin"}, 2000).to_text());
  const auto simulator =
      session.import_data("Simulator", "switchsim v1", "");

  // Goal-based approach: start from the goal entity and expand on demand.
  graph::TaskGraph flow = session.task_from_goal("Performance");
  const graph::NodeId perf = flow.nodes().front();
  flow.expand(perf);
  const graph::NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);

  std::printf("== flow as a task graph (Fig. 3b), Lisp form ==\n%s\n\n",
              flow.to_lisp(perf).c_str());

  // Bind instances to the leaves (the browser selection of Fig. 9).
  flow.bind(flow.tool_of(perf), simulator);
  flow.bind(flow.inputs_of(perf)[1], stimuli);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);
  std::printf("%s\n", session.render_task_window(flow).c_str());

  // Execute: the compose task and the simulation run, and every product is
  // recorded in the design history with its derivation.
  const exec::ExecResult result = session.run(flow);
  const auto perf_inst = result.single(perf);
  std::printf("executed %zu tasks; performance instance i%u\n\n",
              result.tasks_run, perf_inst.value());

  // Plot the performance (the Plotter tool of Fig. 1, run as a one-node
  // sub-flow grown from the data-based approach).
  auto data_start = session.task_from_data(perf_inst);
  const graph::NodeId plot_node =
      data_start.flow.expand_up(data_start.data_node,
                                session.schema().require("PerformancePlot"));
  data_start.flow.bind(data_start.flow.tool_of(plot_node),
                       session.import_data("Plotter", "ascii plotter", ""));
  const auto plot_inst = session.run(data_start.flow).single(plot_node);
  std::printf("%s\n", session.db().payload(plot_inst).c_str());

  // Query the history: backward chaining from the performance.
  std::printf("== derivation history of i%u (backward chaining) ==\n",
              perf_inst.value());
  for (const auto anc : session.db().derivation_closure(perf_inst)) {
    const auto& inst = session.db().instance(anc);
    std::printf("  i%u  %-18s %s\n", anc.value(),
                session.schema().entity_name(inst.type).c_str(),
                inst.name.c_str());
  }

  // ...and forward chaining from the netlist ("Use dependencies").
  std::printf("\n== everything derived from the netlist ==\n");
  for (const auto dep : session.db().dependent_closure(netlist)) {
    const auto& inst = session.db().instance(dep);
    std::printf("  i%u  %-18s %s\n", dep.value(),
                session.schema().entity_name(inst.type).c_str(),
                inst.name.c_str());
  }

  std::printf("\n== flow trace of the performance (Fig. 11b form) ==\n%s\n",
              history::backward_trace(session.db(), perf_inst)
                  .to_dot()
                  .c_str());
  return 0;
}
