// Fig. 2 end to end: a tool created during the design.
//
// The SimCompiler compiles a netlist into a CompiledSimulator — a *tool
// instance* whose payload is the compiled program.  The produced tool is
// then executed on several stimulus sets, and the history shows the tool's
// own derivation like any other design object's.
#include <cstdio>

#include "circuit/cosmos.hpp"
#include "circuit/library.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "history/flow_trace.hpp"
#include "schema/standard_schemas.hpp"

using namespace herc;

int main() {
  core::DesignSession session(
      schema::make_fig2_schema(), "bryant",
      std::make_unique<support::ManualClock>(719000000000000, 60000000));

  const auto netlist = session.import_data(
      "Netlist", "4-bit ripple adder",
      circuit::ripple_adder_netlist(4).to_text());
  const auto compiler = session.import_data("SimCompiler", "cosmos", "");

  // Build the Fig. 2 flow: Performance <- CompiledSimulator <- SimCompiler.
  graph::TaskGraph flow = session.task_from_goal("Performance");
  const graph::NodeId perf = flow.nodes().front();
  flow.expand(perf);
  const graph::NodeId compiled = flow.tool_of(perf);
  flow.expand(compiled);  // the tool node itself expands: it is produced
  flow.bind(flow.inputs_of(compiled)[0], netlist);
  flow.bind(flow.tool_of(compiled), compiler);

  // Statistics from the same simulator invocation (multi-output task).
  const graph::NodeId stats =
      flow.add_co_output(perf, session.schema().require("Statistics"));

  // Three stimulus sets: the compiled simulator runs once per set, but is
  // compiled only once.
  std::vector<std::string> nets;
  for (int i = 0; i < 4; ++i) {
    nets.push_back("a" + std::to_string(i));
    nets.push_back("b" + std::to_string(i));
  }
  nets.push_back("cin");
  const auto st1 = session.import_data(
      "Stimuli", "random walk A",
      circuit::Stimuli::random(nets, 1000, 24, 11).to_text());
  const auto st2 = session.import_data(
      "Stimuli", "random walk B",
      circuit::Stimuli::random(nets, 1000, 24, 22).to_text());
  const auto st3 = session.import_data(
      "Stimuli", "random walk C",
      circuit::Stimuli::random(nets, 1000, 24, 33).to_text());
  flow.bind_set(flow.inputs_of(perf)[0], {st1, st2, st3});

  std::printf("%s\n", session.render_task_window(flow).c_str());
  const exec::ExecResult result = session.run(flow);
  std::printf("tasks run: %zu (1 compile + 3 simulations)\n\n",
              result.tasks_run);

  // Inspect the produced tool.
  const auto compiled_inst = result.of(compiled).front();
  const circuit::CompiledSim program =
      circuit::CompiledSim::from_text(session.db().payload(compiled_inst));
  std::printf("compiled simulator: %zu components, %zu table rows\n",
              program.components.size(), program.table_rows());

  std::printf("statistics instances recorded: %zu\n",
              result.of(stats).size());
  for (const auto perf_inst : result.of(perf)) {
    const auto& inst = session.db().instance(perf_inst);
    const circuit::SimResult r =
        circuit::SimResult::from_text(session.db().payload(perf_inst));
    std::printf("  i%u %-16s output toggles: %llu\n", perf_inst.value(),
                inst.name.c_str(),
                static_cast<unsigned long long>(r.stats.output_toggles));
  }

  // The tool instance has a derivation history like any design object.
  std::printf("\n== derivation of the compiled simulator ==\n");
  for (const auto anc : session.db().derivation_closure(compiled_inst)) {
    const auto& inst = session.db().instance(anc);
    std::printf("  i%u  %-16s %s\n", anc.value(),
                session.schema().entity_name(inst.type).c_str(),
                inst.name.c_str());
  }
  std::printf("\n== forward trace from the netlist ==\n%s",
              history::forward_trace(session.db(), netlist).to_dot().c_str());
  return 0;
}
