# A complete Hercules shell session (run with: hercules_shell demo.hcl).
#
# Builds the Fig. 1 simulate flow from the goal entity, executes it, then
# walks the history — the quickstart example as a script.
session new full sutton

import EditedNetlist inverter <<NETLIST
netlist inverter
input in
output out
nmos mn g=in d=out s=GND model=nch value=1
pmos mp g=in d=out s=VDD model=pch value=1
NETLIST

import DeviceModels standard <<MODELS
models standard
model nch type=nmos resistance=10 threshold=0.6
model pch type=pmos resistance=20 threshold=0.6
MODELS

import Stimuli toggle <<WAVES
stimuli toggle
wave in 0:0 2000:1 4000:0
WAVES

import Simulator switchsim ""

# Goal-based approach: grow the flow by expanding the goal entity.
flow new sim goal Performance
flow expand sim 0
flow expand sim 2
flow bind sim 1 i3
flow bind sim 3 i2
flow bind sim 4 i1
flow bind sim 5 i0
flow show sim
flow lisp sim
run sim

# Query the design history.
history i5
uses i0
find Performance where circuit.netlist = i0
versions i0
stale i5

# Save the flow as a plan and the whole session to disk.
flow save-plan sim
plans
echo done
