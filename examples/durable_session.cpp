// Durable design history: the write-ahead journal in action.
//
// A design session's history normally lives in memory.  Attaching a
// durable store gives every mutation — imports, task-produced records,
// failure records, annotations — an immediate journaled commit, so a
// crash loses nothing that was recorded.  This example:
//
//   1. opens a store and records some history (each record is one
//      journal append, O(delta));
//   2. "crashes" without checkpointing, then recovers from the journal;
//   3. tears the journal's final record mid-frame, the way a power cut
//      would, and shows recovery truncating to the last valid prefix;
//   4. checkpoints, compacting the journal into a snapshot.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/journal.hpp"
#include "support/clock.hpp"

using namespace herc;
namespace fs = std::filesystem;

namespace {

std::unique_ptr<core::DesignSession> fresh_session() {
  return std::make_unique<core::DesignSession>(
      schema::make_fig1_schema(), "sutton",
      std::make_unique<support::ManualClock>(718000000000000, 60000000));
}

void report(const char* what, const storage::RecoveryReport& r,
            const core::DesignSession& session) {
  std::printf("%s: %s, epoch %llu, %zu from snapshot + %zu from journal"
              "%s -> %zu instances\n",
              what, r.created ? "created" : "recovered",
              static_cast<unsigned long long>(r.epoch),
              r.snapshot_instances, r.journal_records_applied,
              r.torn_tail ? " (torn tail truncated)" : "",
              session.db().size());
}

}  // namespace

int main() {
  const std::string dir =
      (fs::temp_directory_path() / "herc_durable_session").string();
  fs::remove_all(dir);
  const std::string wal = (fs::path(dir) / "journal.wal").string();

  // 1. Open a store and record some history.
  {
    auto session = fresh_session();
    const auto r = session->open_storage(dir);
    report("open", r, *session);

    session->import_data("EditedNetlist", "adder", "netlist-v1");
    const auto models =
        session->import_data("DeviceModels", "models", "level-1");
    session->annotate(models, "", "checked against foundry data");
    std::printf("recorded 3 mutations, %llu bytes journaled\n",
                static_cast<unsigned long long>(
                    session->storage()->bytes_journaled()));
    // The session is dropped here without a checkpoint: every record is
    // already durable in the journal.
  }

  // 2. "Crash" recovery: a fresh session replays the journal.
  {
    auto session = fresh_session();
    const auto r = session->open_storage(dir);
    report("reopen", r, *session);
    session->import_data("Stimuli", "counter", "0101");
  }

  // 3. Power-cut simulation: chop the final journal record in half.
  {
    const auto size = fs::file_size(wal);
    fs::resize_file(wal, size - 10);
    std::printf("tore the journal: %llu -> %llu bytes\n",
                static_cast<unsigned long long>(size),
                static_cast<unsigned long long>(size - 10));

    auto session = fresh_session();
    const auto r = session->open_storage(dir);
    report("reopen", r, *session);  // the half-written record is gone

    // 4. Checkpoint: snapshot the database, reset the journal.
    session->checkpoint_storage();
    std::printf("checkpoint: epoch %llu, journal back to %llu bytes\n",
                static_cast<unsigned long long>(session->storage()->epoch()),
                static_cast<unsigned long long>(fs::file_size(wal)));
  }

  // The compacted store recovers from the snapshot alone.
  {
    auto session = fresh_session();
    const auto r = session->open_storage(dir);
    report("reopen", r, *session);
  }

  fs::remove_all(dir);
  return 0;
}
