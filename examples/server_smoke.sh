#!/usr/bin/env bash
# End-to-end smoke test for `herc serve`: build and run a flow over the
# wire, SIGTERM the server mid-run, then prove the store came out clean
# (fsck exit 0) and resumable (herc resume finishes the interrupted work).
#
#   server_smoke.sh <path-to-herc-binary> <scratch-dir>
set -eu

HERC="$1"
SCRATCH="$2"
STORE="$SCRATCH/herc_smoke_store"
LOG="$SCRATCH/herc_smoke_serve.log"
rm -rf "$STORE" "$LOG"

"$HERC" serve "$STORE" --listen 127.0.0.1:0 --schema full >"$LOG" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' "$LOG" | head -n 1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: server never listened"; cat "$LOG"; exit 1; }

# Connection 1: import the design data, build the Fig. 1 simulate flow in
# this connection's workspace, run it once, and publish it as a plan so a
# later connection can rebuild it.  Also exercises the per-connection user
# and the stats counters.
SETUP="$SCRATCH/herc_smoke_setup.hcl"
cat >"$SETUP" <<'EOF'
session user alice
import EditedNetlist inverter <<NETLIST
netlist inverter
input in
output out
nmos mn g=in d=out s=GND model=nch value=1
pmos mp g=in d=out s=VDD model=pch value=1
NETLIST
import DeviceModels standard <<MODELS
models standard
model nch type=nmos resistance=10 threshold=0.6
model pch type=pmos resistance=20 threshold=0.6
MODELS
import Stimuli toggle <<WAVES
stimuli toggle
wave in 0:0 2000:1 4000:0
WAVES
import Simulator switchsim ""
flow new sim goal Performance
flow expand sim 0
flow expand sim 2
flow bind sim 1 i3
flow bind sim 3 i2
flow bind sim 4 i1
flow bind sim 5 i0
run sim
flow save-plan sim
browse Performance
stats
EOF
"$HERC" connect "$ADDR" --retry 30 "$SETUP" || {
  echo "FAIL: setup script failed over the wire"; cat "$LOG"; exit 1;
}

# Connection 2 (background): rebuild the flow from the published plan and
# run it with an artificial per-task latency, so the SIGTERM below lands
# while the run is in flight.
SLOW="$SCRATCH/herc_smoke_slow.hcl"
cat >"$SLOW" <<'EOF'
flow new sim2 plan goal:Performance
flow bind sim2 1 i3
flow bind sim2 3 i2
flow bind sim2 4 i1
flow bind sim2 5 i0
run sim2 parallel latency=1000
EOF
"$HERC" connect "$ADDR" "$SLOW" >"$SCRATCH/herc_smoke_slow.log" 2>&1 &
CLIENT=$!

sleep 0.6  # land inside the first 1000ms task, well before the second
kill -TERM "$SERVER"
wait "$SERVER" || { echo "FAIL: serve exited nonzero after SIGTERM"; cat "$LOG"; exit 1; }
trap - EXIT
wait "$CLIENT" || true  # its run was cancelled; a nonzero exit is expected

# The sealed store must audit clean — interrupted-but-sealed runs are
# resumable notes, not warnings.
"$HERC" fsck "$STORE" || { echo "FAIL: fsck found problems after graceful shutdown"; exit 1; }

# And the interrupted run must actually finish — the SIGTERM above must
# have landed mid-run, so resume has real work to do.
RESUME_OUT=$("$HERC" resume "$STORE") || { echo "FAIL: resume could not finish the interrupted run"; exit 1; }
echo "$RESUME_OUT"
echo "$RESUME_OUT" | grep -q "resumed run #" || {
  echo "FAIL: no run was interrupted — the SIGTERM landed outside the run";
  cat "$SCRATCH/herc_smoke_slow.log"; exit 1;
}

# After the resume the store is quiescent: fsck stays clean.
"$HERC" fsck "$STORE" >/dev/null || { echo "FAIL: fsck regressed after resume"; exit 1; }

echo "server smoke: OK"
