// A multi-day design session: the four approaches of §3.4, version trees
// vs. flow traces (Fig. 11), the browser filters of Fig. 9, consistency
// maintenance, and session persistence.
#include <cstdio>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "exec/consistency.hpp"
#include "history/flow_trace.hpp"
#include "schema/standard_schemas.hpp"

using namespace herc;

namespace {

void print_rows(const core::InstanceBrowser& browser,
                const core::BrowserFilter& filter) {
  std::printf("%s\n", browser.render(filter).c_str());
}

}  // namespace

int main() {
  // Oct 1992, as in Fig. 9's date-limit boxes.  One tick per minute.
  auto clock = std::make_unique<support::ManualClock>(718000000000000LL,
                                                      60LL * 1000000);
  support::ManualClock* clk = clock.get();
  core::DesignSession session(schema::make_full_schema(), "jbb",
                              std::move(clock));

  // Day 1 (jbb): import the base data and run a first simulation.
  const auto netlist = session.import_data(
      "EditedNetlist", "Low pass filter",
      circuit::inverter_chain(4).to_text(), "first cut");
  const auto models = session.import_data(
      "DeviceModels", "models", circuit::DeviceModelLibrary::standard()
                                    .to_text());
  const auto stimuli = session.import_data(
      "Stimuli", "step input",
      circuit::Stimuli::random({"in"}, 2000, 16, 5).to_text());
  const auto simulator = session.import_data("Simulator", "switchsim", "");

  // Goal-based approach.
  graph::TaskGraph flow = session.task_from_goal("Performance");
  const graph::NodeId perf = flow.nodes().front();
  flow.expand(perf);
  const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
  flow.bind(flow.tool_of(perf), simulator);
  flow.bind(flow.inputs_of(perf)[1], stimuli);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);
  flow.set_name("LPF Simulation");
  const auto perf1 = session.run(flow).single(perf);
  session.annotate(perf1, "LPF Simulation", "baseline run");

  // Save the flow for later (the plan-based approach's library).
  session.flows().save(flow);

  // Day 2 (director): edit the circuit twice, creating versions v2, v3,
  // and a branch v2' — the version tree of Fig. 11.
  clk->advance(24LL * 3600 * 1000000);
  session.set_user("director");
  const auto make_edit = [&](data::InstanceId base, const char* name,
                             const char* script) {
    const auto editor = session.import_data("CircuitEditor", name, script);
    graph::TaskGraph edit = session.task_from_goal("EditedNetlist");
    const graph::NodeId goal = edit.nodes().front();
    edit.expand(goal, graph::ExpandOptions{.include_optional = true});
    edit.bind(edit.tool_of(goal), editor);
    edit.bind(edit.inputs_of(goal)[0], base);
    const auto out = session.run(edit).single(goal);
    session.annotate(out, name, script);
    return out;
  };
  const auto v2 = make_edit(netlist, "widen stage 0",
                            "set s0.mn value=2\nset s0.mp value=2\n");
  const auto v3 = make_edit(v2, "widen stage 1",
                            "set s1.mn value=2\nset s1.mp value=2\n");
  const auto v2b = make_edit(netlist, "alternative: shrink stage 3",
                             "set s3.mn value=0.6\nset s3.mp value=0.6\n");

  // Fig. 11a: the traditional version tree...
  const auto tree = history::version_tree(session.db(), v3);
  std::printf("== version tree of the netlist (Fig. 11a) ==\n");
  for (const auto& entry : tree.entries) {
    std::printf("  i%u v%u (parent %s)\n", entry.instance.value(),
                entry.version,
                entry.parent.valid()
                    ? ("i" + std::to_string(entry.parent.value())).c_str()
                    : "-");
  }
  // ...and Fig. 11b: the flow trace, a superset showing the tools.
  std::printf("\n== the same lineage as a flow trace (Fig. 11b) ==\n%s\n",
              history::lineage_trace(session.db(), v3).to_dot().c_str());

  // Day 3 (sutton): re-run the saved plan against the newest version —
  // the plan-based approach plus consistency maintenance.
  clk->advance(24LL * 3600 * 1000000);
  session.set_user("sutton");

  std::printf("performance i%u stale after the edits? %s\n", perf1.value(),
              session.db().is_stale(perf1) ? "yes" : "no");
  const auto freshened =
      exec::retrace(session.db(), session.tools(), perf1);
  std::printf("retraced -> i%u (derives from netlist v%u)\n\n",
              freshened.front().value(),
              session.db()
                  .instance(session.db()
                                .instance(freshened.front())
                                .derivation.inputs.front())
                  .version);

  // Tool-based approach: what can the Plotter produce?
  auto tool_start = session.task_from_tool("Plotter");
  std::printf("tool-based start from Plotter: can produce");
  for (const auto t : tool_start.producible) {
    std::printf(" %s", session.schema().entity_name(t).c_str());
  }
  std::printf("\n");

  // Data-based approach: what consumes a Performance?
  auto data_start = session.task_from_data(freshened.front());
  std::printf("data-based start from i%u: consumed by",
              freshened.front().value());
  for (const auto t : data_start.consumers) {
    std::printf(" %s", session.schema().entity_name(t).c_str());
  }
  std::printf("\n\n");

  // The Fig. 9 browser with its filters.
  const auto browser = session.browse("Netlist");
  std::printf("-- all netlists --\n");
  print_rows(browser, {});
  core::BrowserFilter filter;
  filter.user = "director";
  std::printf("-- user limit: director --\n");
  print_rows(browser, filter);
  filter = {};
  filter.keyword = "stage 1";
  std::printf("-- keyword: 'stage 1' --\n");
  print_rows(browser, filter);
  filter = {};
  filter.uses = v2;
  const auto edits_of_v2 = session.browse("EditedNetlist");
  std::printf("-- Use Dependencies on i%u --\n", v2.value());
  print_rows(edits_of_v2, filter);

  // Session persistence: everything (history, flows, schema) round-trips.
  const std::string saved = session.save();
  const auto restored = core::DesignSession::load(saved);
  std::printf("session saved (%zu bytes) and restored: %zu instances, "
              "flow catalog %s\n",
              saved.size(), restored->db().size(),
              restored->flows().contains("LPF Simulation") ? "intact"
                                                           : "missing");
  // The restored session can instantiate and re-run the saved plan.
  graph::TaskGraph replay =
      restored->task_from_plan("LPF Simulation");
  std::printf("plan 'LPF Simulation' instantiated with %zu nodes, "
              "%zu unbound leaves\n",
              replay.node_count(), replay.unbound_leaves().size());
  (void)v2b;
  return 0;
}
