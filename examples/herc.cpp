// `herc`: the networked front end — serve a shared design, connect to it,
// audit and resume its store.
//
//   herc serve <store-dir> [--listen <addr>]... [--schema <ref>]
//             [--replicate-from <addr> [--retry N]]
//       Owns the durable store and serves it to many clients.  <addr> is
//       host:port (":0" = ephemeral localhost port, printed on stdout) or
//       unix:/path; default 127.0.0.1:7117.  An existing store supplies
//       its own schema; a fresh one uses --schema (fig1|fig2|full|file,
//       default full).  SIGTERM/SIGINT stop gracefully: in-flight runs
//       are cancelled but stay open, partials are quarantined, runs are
//       sealed, the journal synced — `herc fsck` then reports the store
//       clean and `herc resume` finishes the work.
//       With --replicate-from the server is a read-only follower: it
//       bootstraps from the leader at <addr> (snapshot or local replica
//       store), applies the leader's journal stream, and serves reads;
//       write commands are refused with a pointer to the leader.  A
//       leader always ships its journal — followers may subscribe at any
//       time — and refuses to serve a directory still carrying a replica
//       marker (promote it first).
//
//   herc replicas <addr> [--json]   follower positions and lag, from the
//       leader at <addr>
//
//   herc promote <replica-dir>
//       Turns a follower's store into a leader store: leader-style crash
//       recovery (seal interrupted runs, quarantine partials), a
//       checkpoint under the next storage epoch — the fence that keeps
//       the demoted ex-leader's frames out forever — and removal of the
//       replica marker.  `herc serve <dir>` then leads from it.
//
//   herc connect <addr> [--retry N] [-e <command>]... [script.hcl]
//       Remote REPL / script runner over the wire protocol.  With -e or a
//       script the exit code is the worst result severity (0 clean,
//       1 warnings, 2 error) — same convention as fsck and lint.
//
//   herc fsck <dir> [--repair] [--json]
//       Offline store audit (exit 0/1/2); --repair rewrites what it can
//       (including a fresh secondary-index image), --json emits the
//       machine-readable report instead of text.
//   herc resume <store-dir>         finish every interrupted run
//
//   herc swarm <store-dir> [--profile P] [--clients N] [--rounds R]
//              [--seed S] [--chaos N] [--no-kill] [--followers N]
//              [--net-chaos]
//              [--herc BIN] [--json [FILE]]
//       Thousand-designer workload simulator and chaos harness: serves
//       <store-dir> from a child `herc serve`, replays a deterministic
//       multi-tenant trace (--profile design|queries|versions|faults|
//       mixed|replicas) with N concurrent clients, injects chaos events
//       (fault seeds, SIGTERM, SIGKILL) mid-load, and after every crash
//       runs the invariant chain: fsck clean (or repaired clean), every
//       interrupted run resumed, queries consistent with the trace.
//       --followers (default 2 for --profile replicas) adds a read-
//       replica fleet: read-only clients pin to the replicas and every
//       heal must propagate the new epoch to all of them before readers
//       reconnect.  --net-chaos routes all traffic through a fault
//       proxy and mixes network events into the cycle (connections cut
//       mid-frame, latency, partitions, half-closes); clients retry
//       idempotently and the verifier additionally asserts exactly-once
//       (no retried command ever applies twice).  Exit 0 when every
//       invariant held, 2 otherwise.
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli/interpreter.hpp"
#include "core/session.hpp"
#include "replica/applier.hpp"
#include "replica/shipper.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "sim/swarm.hpp"
#include "sim/trace.hpp"
#include "storage/fsck.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

herc::schema::TaskSchema load_schema(const std::string& ref) {
  if (ref == "fig1") return herc::schema::make_fig1_schema();
  if (ref == "fig2") return herc::schema::make_fig2_schema();
  if (ref == "full") return herc::schema::make_full_schema();
  return herc::schema::parse_schema(slurp(ref));
}

/// The session a store-facing subcommand works on: an existing store
/// dictates the schema (its schema.herc), a fresh one takes `schema_ref`.
std::unique_ptr<herc::core::DesignSession> open_session(
    const std::string& dir, const std::string& schema_ref) {
  herc::schema::TaskSchema schema =
      herc::storage::DurableHistory::exists(dir)
          ? herc::schema::parse_schema(slurp(dir + "/schema.herc"))
          : load_schema(schema_ref);
  auto session =
      std::make_unique<herc::core::DesignSession>(std::move(schema));
  const herc::storage::RecoveryReport report = session->open_storage(dir);
  std::cout << (report.created ? "store created at " : "store opened at ")
            << dir;
  if (report.interrupted_runs > 0) {
    std::cout << " (" << report.interrupted_runs << " interrupted run(s), "
              << report.quarantined << " partial(s) quarantined)";
  }
  std::cout << "\n";
  return session;
}

/// Graceful stop on SIGTERM/SIGINT, delivered through a self-pipe so the
/// handler does nothing signal-unsafe.
bool install_signal_handlers() {
  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "serve: cannot create the signal pipe\n";
    return false;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  return true;
}

void wait_for_signal() {
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
}

/// `herc serve --replicate-from`: a read-only follower of the leader at
/// `leader_spec`, serving the replicated history from `dir`.
int serve_follower(const std::string& dir, const std::string& leader_spec,
                   int retries, const std::vector<std::string>& listen_specs) {
  const herc::server::Endpoint leader =
      herc::server::Endpoint::parse(leader_spec);
  herc::replica::ReplicaApplier applier(leader, dir);
  std::cout << "replicating " << dir << " from " << leader.describe()
            << std::endl;
  if (!applier.bootstrap(retries)) {
    std::cerr << "serve: cannot bootstrap from " << leader.describe() << ": "
              << applier.last_error() << "\n";
    return 2;
  }
  const herc::replica::StreamPosition start = applier.position();
  std::cout << "bootstrapped at " << start.epoch << ":" << start.seq << " ("
            << applier.db().size() << " instance(s))\n";

  // The session copies the applier's schema but *reads* the applier's
  // database — every mutation path throws, so history changes only
  // through replicated frames.
  herc::core::DesignSession session(applier.schema());
  session.attach_replica(&applier.db());
  herc::server::ServeOptions serve_options;
  serve_options.read_only = true;
  herc::server::Server server(session, serve_options);
  server.set_position_source([&applier] {
    const herc::replica::StreamPosition pos = applier.position();
    return herc::server::JournalPosition{pos.epoch, pos.seq,
                                         applier.journal_bytes()};
  });
  applier.set_gate([&server](const std::function<void()>& fn) {
    server.with_exclusive_session(fn);
  });
  for (const std::string& spec : listen_specs) {
    const herc::server::Endpoint bound =
        server.add_listener(herc::server::Endpoint::parse(spec));
    std::cout << "listening on " << bound.describe() << "\n";
  }
  if (!install_signal_handlers()) return 2;
  server.start();
  applier.start();
  std::cout << "serving (read-only replica); SIGTERM or SIGINT stops"
            << std::endl;
  wait_for_signal();
  std::cout << "shutting down..." << std::endl;
  applier.stop();
  server.stop();
  const herc::replica::StreamPosition end = applier.position();
  std::cout << "applied " << applier.frames_applied()
            << " frame(s); final position " << end.epoch << ":" << end.seq
            << "\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: herc serve <store-dir> [--listen <addr>]..."
                 " [--schema <fig1|fig2|full|file>]\n"
                 "                  [--replicate-from <addr> [--retry N]]\n";
    return 2;
  }
  const std::string dir = args[0];
  std::vector<std::string> listen_specs;
  std::string schema_ref = "full";
  std::string replicate_from;
  int retries = 25;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--listen" && i + 1 < args.size()) {
      listen_specs.push_back(args[++i]);
    } else if (args[i] == "--schema" && i + 1 < args.size()) {
      schema_ref = args[++i];
    } else if (args[i] == "--replicate-from" && i + 1 < args.size()) {
      replicate_from = args[++i];
    } else if (args[i] == "--retry" && i + 1 < args.size()) {
      retries = std::stoi(args[++i]);
    } else {
      std::cerr << "serve: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  if (listen_specs.empty()) listen_specs.emplace_back("127.0.0.1:7117");

  if (!replicate_from.empty()) {
    return serve_follower(dir, replicate_from, retries, listen_specs);
  }
  if (herc::replica::ReplicaApplier::is_replica_store(dir)) {
    std::cerr << "serve: '" << dir << "' is a replica store; run `herc"
                 " promote " << dir << "` before leading from it, or serve"
                 " it with --replicate-from\n";
    return 2;
  }

  const std::unique_ptr<herc::core::DesignSession> session =
      open_session(dir, schema_ref);
  // A leader always ships its journal: followers subscribe at any time.
  herc::replica::JournalShipper shipper(*session);
  herc::server::Server server(*session);
  server.set_replication_hub(&shipper);
  for (const std::string& spec : listen_specs) {
    const herc::server::Endpoint bound =
        server.add_listener(herc::server::Endpoint::parse(spec));
    std::cout << "listening on " << bound.describe() << "\n";
  }

  if (!install_signal_handlers()) return 2;

  server.start();
  std::cout << "serving; SIGTERM or SIGINT stops gracefully" << std::endl;

  wait_for_signal();
  std::cout << "shutting down..." << std::endl;
  server.stop();
  const auto& stats = server.stats();
  std::cout << "served " << stats.commands_executed.load() << " command(s) on "
            << stats.connections_accepted.load() << " connection(s); "
            << session->db().open_runs().size()
            << " open run(s) sealed for resume\n";
  return 0;
}

int cmd_replicas(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2 ||
      (args.size() == 2 && args[1] != "--json")) {
    std::cerr << "usage: herc replicas <addr> [--json]\n";
    return 2;
  }
  const bool json = args.size() == 2;
  herc::server::Client client =
      herc::server::Client::connect(herc::server::Endpoint::parse(args[0]));
  const herc::server::CallResult result =
      client.call(json ? "replicas --json" : "replicas");
  std::cout << result.output;
  if (json && !result.output.empty() && result.output.back() != '\n') {
    std::cout << "\n";
  }
  if (!result.ok()) std::cerr << "error: " << result.error << "\n";
  return result.exit_code();
}

int cmd_promote(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::cerr << "usage: herc promote <replica-dir>\n";
    return 2;
  }
  const herc::replica::PromoteReport report =
      herc::replica::promote_store(args[0]);
  std::cout << "promoted " << args[0] << " to leader at epoch "
            << report.epoch << "\n";
  if (report.recovery.interrupted_runs > 0) {
    std::cout << "  " << report.recovery.interrupted_runs
              << " interrupted run(s) sealed, " << report.recovery.quarantined
              << " partial(s) quarantined (finish them with `herc resume`)\n";
  }
  return 0;
}

/// One scripted/interactive command round-trip; returns its exit code.
int roundtrip(herc::server::Client& client, const std::string& line,
              const std::string& body, std::ostream& out) {
  const herc::server::CallResult result = client.call(line, body);
  out << result.output;
  if (!result.ok() && !result.error.empty()) {
    // The human-readable output already carries "error: ..." for
    // interpreter failures; server-side refusals arrive only here.
    if (result.output.find(result.error) == std::string::npos) {
      out << "error: " << result.error << "\n";
    }
  }
  return result.exit_code();
}

int cmd_connect(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: herc connect <addr> [--retry N] [-e <command>]..."
                 " [script.hcl]\n";
    return 2;
  }
  const herc::server::Endpoint endpoint =
      herc::server::Endpoint::parse(args[0]);
  std::vector<std::string> commands;
  std::string script;
  int retries = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-e" && i + 1 < args.size()) {
      commands.push_back(args[++i]);
    } else if (args[i] == "--retry" && i + 1 < args.size()) {
      retries = std::stoi(args[++i]);
    } else if (script.empty()) {
      script = args[i];
    } else {
      std::cerr << "connect: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }

  herc::server::Client client;
  for (int attempt = 0;; ++attempt) {
    try {
      client = herc::server::Client::connect(endpoint);
      break;
    } catch (const herc::support::NetError& e) {
      if (attempt >= retries) {
        std::cerr << "connect: " << e.what() << "\n";
        return 2;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  int exit = 0;
  const auto run_line = [&](const std::string& line,
                            const std::string& body) {
    exit = std::max(exit, roundtrip(client, line, body, std::cout));
  };

  if (!commands.empty() || !script.empty()) {
    for (const std::string& line : commands) run_line(line, "");
    if (!script.empty()) {
      // Same line/heredoc syntax as local scripts, shipped over the wire.
      const std::string text = slurp(script);
      std::istringstream in(text);
      std::string line;
      while (std::getline(in, line)) {
        std::string body;
        const std::size_t marker = line.rfind("<<");
        if (marker != std::string::npos) {
          const std::string token = line.substr(marker + 2);
          line = line.substr(0, marker);
          std::string body_line;
          while (std::getline(in, body_line) && body_line != token) {
            body += body_line;
            body += '\n';
          }
        }
        run_line(line, body);
      }
    }
    return exit;
  }

  std::cout << "connected to " << endpoint.describe() << " —"
            << client.banner() << "; 'quit' exits\n";
  std::string line;
  while (true) {
    std::cout << "herc> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string body;
    const std::size_t marker = line.rfind("<<");
    if (marker != std::string::npos) {
      const std::string token = line.substr(marker + 2);
      line = line.substr(0, marker);
      std::string body_line;
      while (std::getline(std::cin, body_line) && body_line != token) {
        body += body_line;
        body += '\n';
      }
    }
    if (line == "quit" || line == "exit") break;
    try {
      run_line(line, body);
    } catch (const herc::support::NetError& e) {
      std::cerr << "connection lost: " << e.what() << "\n";
      return 2;
    }
  }
  return 0;
}

int cmd_fsck(const std::vector<std::string>& args) {
  herc::storage::FsckOptions options;
  bool json = false;
  bool ok = !args.empty();
  for (std::size_t i = 1; ok && i < args.size(); ++i) {
    if (args[i] == "--repair") {
      options.repair = true;
    } else if (args[i] == "--json") {
      json = true;
    } else {
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "usage: herc fsck <dir> [--repair] [--json]\n";
    return 2;
  }
  const herc::storage::FsckReport report =
      herc::storage::fsck_store(args[0], options);
  std::cout << (json ? report.render_json() : report.render());
  return report.exit_code();
}

int cmd_resume(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: herc resume <store-dir>\n";
    return 2;
  }
  const std::unique_ptr<herc::core::DesignSession> session =
      open_session(args[0], "full");
  int exit = 0;
  while (true) {
    const auto open = session->db().open_runs();
    if (open.empty()) break;
    const std::uint64_t id = open.front()->id;
    const herc::exec::ExecResult result = session->resume_run(id);
    std::cout << "resumed run #" << id << ": " << result.tasks_run
              << " task(s) ran, " << result.tasks_reused << " reused";
    if (!result.complete()) {
      std::cout << " — " << result.tasks_failed << " failed, "
                << result.tasks_skipped << " skipped";
      exit = 2;
    }
    std::cout << "\n";
  }
  if (exit == 0) std::cout << "no interrupted runs remain\n";
  return exit;
}

/// This binary's own path, for spawning `herc serve` children.
std::string self_binary(const char* argv0) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
  return argv0;
}

int cmd_swarm(const std::vector<std::string>& args,
              const std::string& self) {
  const auto usage = [] {
    std::cerr << "usage: herc swarm <store-dir> [--profile P] [--clients N]"
                 " [--rounds R]\n"
                 "                  [--seed S] [--chaos N] [--no-kill]"
                 " [--followers N]\n"
                 "                  [--net-chaos] [--herc BIN]"
                 " [--json [FILE]]\n";
    return 2;
  };
  if (args.empty()) return usage();
  const std::string dir = args[0];
  herc::sim::SwarmOptions options;
  options.log = &std::cout;
  std::string binary = self;
  bool json = false;
  bool followers_set = false;
  std::string json_file;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const bool more = i + 1 < args.size();
    if (arg == "--profile" && more) {
      options.profile = args[++i];
    } else if (arg == "--clients" && more) {
      options.clients = std::stoul(args[++i]);
    } else if (arg == "--rounds" && more) {
      options.rounds = std::stoul(args[++i]);
    } else if (arg == "--seed" && more) {
      options.seed = std::stoull(args[++i]);
    } else if (arg == "--chaos" && more) {
      options.chaos = std::stoul(args[++i]);
    } else if (arg == "--no-kill") {
      options.allow_kill = false;
    } else if (arg == "--net-chaos") {
      options.net_chaos = true;
    } else if (arg == "--followers" && more) {
      options.followers = std::stoul(args[++i]);
      followers_set = true;
    } else if (arg == "--herc" && more) {
      binary = args[++i];
    } else if (arg == "--json") {
      json = true;
      if (more && args[i + 1].rfind("--", 0) != 0) json_file = args[++i];
    } else {
      std::cerr << "swarm: unknown argument '" << arg << "'\n";
      return usage();
    }
  }
  // The replicas profile runs a follower fleet by default; any profile
  // accepts an explicit --followers.
  if (!followers_set && options.profile == "replicas") options.followers = 2;
  // The harness owns its store outright: pre-existing data (swarm or
  // otherwise) would fail the nothing-foreign invariant, so insist on a
  // fresh path instead of touching anything already on disk.
  if (::access(dir.c_str(), F_OK) == 0) {
    std::cerr << "swarm: '" << dir
              << "' already exists; pass a fresh store path\n";
    return 2;
  }

  herc::sim::ChildProcessServer control(binary, dir);
  const herc::sim::SwarmReport report = herc::sim::run_swarm(control, options);
  std::cout << report.render_text();
  if (json) {
    if (json_file.empty()) {
      std::cout << report.render_json();
    } else {
      std::ofstream out(json_file, std::ios::binary);
      out << report.render_json();
      std::cout << "report written to " << json_file << "\n";
    }
  }
  return report.ok() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: herc <serve|connect|replicas|promote|fsck|resume"
                 "|swarm> ...\n";
    return 2;
  }
  const std::string verb = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (verb == "serve") return cmd_serve(args);
    if (verb == "connect") return cmd_connect(args);
    if (verb == "replicas") return cmd_replicas(args);
    if (verb == "promote") return cmd_promote(args);
    if (verb == "fsck") return cmd_fsck(args);
    if (verb == "resume") return cmd_resume(args);
    if (verb == "swarm") return cmd_swarm(args, self_binary(argv[0]));
  } catch (const std::exception& e) {
    std::cerr << "herc " << verb << ": " << e.what() << "\n";
    return 2;
  }
  std::cerr << "herc: unknown subcommand '" << verb << "'\n";
  return 2;
}
