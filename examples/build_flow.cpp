// Domain generality: the framework manages *any* tool/data methodology,
// not just CAD.  Here the task schema describes a toy software build —
// sources compiled to objects, linked into a program, executed against a
// test vector — with custom encapsulations registered at run time.  The
// same expand/bind/run/history machinery drives it, and editing a source
// makes the downstream test report stale exactly like a netlist edit.
//
// (The toy "compiler" translates arithmetic expressions to RPN; the
// "linker" concatenates objects; the "runner" evaluates the RPN program.)
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/session.hpp"
#include "exec/automation.hpp"
#include "exec/consistency.hpp"
#include "schema/schema_io.hpp"
#include "support/text.hpp"

using namespace herc;

namespace {

/// Shunting-yard: "1 + 2 * x" -> RPN tokens (x resolved to 10).
std::string compile_expression(const std::string& source) {
  std::string output;
  std::vector<char> ops;
  const auto precedence = [](char op) { return op == '*' || op == '/' ? 2 : 1; };
  for (const std::string& token : support::split_ws(source)) {
    if (token == "+" || token == "-" || token == "*" || token == "/") {
      while (!ops.empty() && precedence(ops.back()) >= precedence(token[0])) {
        output += std::string(1, ops.back()) + " ";
        ops.pop_back();
      }
      ops.push_back(token[0]);
    } else if (token == "x") {
      output += "10 ";
    } else {
      output += token + " ";
    }
  }
  while (!ops.empty()) {
    output += std::string(1, ops.back()) + " ";
    ops.pop_back();
  }
  return output;
}

/// Evaluates a concatenation of RPN programs; returns one value per line.
std::string run_program(const std::string& program) {
  std::string report;
  for (const std::string& line : support::split(program, '\n')) {
    if (support::trim(line).empty()) continue;
    std::vector<double> stack;
    for (const std::string& token : support::split_ws(line)) {
      if (token.size() == 1 && std::string("+-*/").find(token) !=
                                   std::string::npos) {
        const double b = stack.back();
        stack.pop_back();
        const double a = stack.back();
        stack.pop_back();
        switch (token[0]) {
          case '+': stack.push_back(a + b); break;
          case '-': stack.push_back(a - b); break;
          case '*': stack.push_back(a * b); break;
          default: stack.push_back(a / b); break;
        }
      } else {
        stack.push_back(std::stod(token));
      }
    }
    std::ostringstream value;
    value << (stack.empty() ? 0.0 : stack.back());
    report += value.str() + "\n";
  }
  return report;
}

}  // namespace

int main() {
  // A build-system schema, written in the DSL and parsed at run time.
  core::DesignSession session(
      schema::parse_schema(R"(
        schema buildsys
        data Source
        tool Compiler
        data Object
        fd Object -> Compiler
        dd Object -> Source
        tool Linker
        data Program
        fd Program -> Linker
        dd Program -> Object
        tool Runner
        data TestReport
        fd TestReport -> Runner
        dd TestReport -> Program
      )"),
      "builder", std::make_unique<support::ManualClock>(0, 60000000));

  // Custom encapsulations: the framework knows nothing about RPN.
  session.tools().register_encapsulation(tools::Encapsulation{
      "Compiler.rpn", session.schema().require("Compiler"),
      [](const tools::ToolContext& ctx) {
        tools::ToolOutput out;
        out.set("Object", compile_expression(ctx.payload("Source")));
        return out;
      },
      {},
      false});
  session.tools().register_encapsulation(tools::Encapsulation{
      "Linker.concat", session.schema().require("Linker"),
      [](const tools::ToolContext& ctx) {
        std::string program;
        for (const std::string& obj : ctx.input("Object").payloads) {
          program += obj + "\n";
        }
        tools::ToolOutput out;
        out.set("Program", program);
        return out;
      },
      {},
      /*accepts_instance_sets=*/true});
  session.tools().register_encapsulation(tools::Encapsulation{
      "Runner.eval", session.schema().require("Runner"),
      [](const tools::ToolContext& ctx) {
        tools::ToolOutput out;
        out.set("TestReport", run_program(ctx.payload("Program")));
        return out;
      },
      {},
      false});

  // Sources, tools, and the build flow — compile each source, link the
  // set, run the result.
  const auto src1 = session.import_data("Source", "main", "1 + 2 * x");
  const auto src2 = session.import_data("Source", "lib", "x / 4 - 1");
  const auto compiler = session.import_data("Compiler", "cc", "");
  const auto linker = session.import_data("Linker", "ld", "");
  const auto runner = session.import_data("Runner", "run", "");

  graph::TaskGraph flow(session.schema(), "build");
  const graph::NodeId report = flow.add_node("TestReport");
  flow.expand(report);
  const graph::NodeId program = flow.inputs_of(report)[0];
  flow.expand(program);
  const graph::NodeId object = flow.inputs_of(program)[0];
  flow.expand(object);
  flow.bind(flow.tool_of(report), runner);
  flow.bind(flow.tool_of(program), linker);
  flow.bind(flow.tool_of(object), compiler);
  flow.bind_set(flow.inputs_of(object)[0], {src1, src2});

  const auto result = session.run(flow);
  const auto report_inst = result.single(report);
  std::printf("build flow ran %zu tasks\n", result.tasks_run);
  std::printf("test report:\n%s\n",
              session.db().payload(report_inst).c_str());

  // Incremental rebuild: nothing changed, everything memoizes.
  exec::ExecOptions incremental;
  incremental.reuse_existing = true;
  const auto rebuild = session.run(flow, incremental);
  std::printf("incremental rebuild: %zu run, %zu reused (make-style)\n\n",
              rebuild.tasks_run, rebuild.tasks_reused);

  // Edit a source: the new version is recorded as an edit of the old one
  // (normally an editor task does this), and the report goes stale.
  history::RecordRequest edit;
  edit.type = session.schema().require("Source");
  edit.name = "main v2";
  edit.user = "builder";
  edit.payload = "2 + 2 * x";
  edit.derivation.inputs = {src1};
  edit.derivation.input_roles = {""};
  edit.derivation.task = "edit";
  const auto src1_v2 = session.db().record(edit);
  std::printf("report stale after source edit: %s\n",
              session.db().is_stale(report_inst) ? "yes" : "no");
  const auto fresh =
      exec::retrace(session.db(), session.tools(), report_inst);
  std::printf("retraced report (against source v%u):\n%s",
              session.db().instance(src1_v2).version,
              session.db().payload(fresh.front()).c_str());
  std::printf("(the unchanged 'lib' object was reused from history)\n");
  return 0;
}
