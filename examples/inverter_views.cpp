// Figs. 7–8: three views of a cell, kept consistent by flows.
//
// A full adder exists as a logic view (gates), a transistor view
// (synthesized netlist) and a physical view (placed layout).  The flows of
// Fig. 8 synthesize the physical view from the transistor view and verify
// their correspondence; breaking the layout by hand makes verification
// fail; staleness tracking notices when the transistor view moves on.
#include <cstdio>

#include "circuit/edits.hpp"
#include "circuit/layout.hpp"
#include "circuit/logic_view.hpp"
#include "core/session.hpp"
#include "graph/bipartite.hpp"
#include "schema/standard_schemas.hpp"
#include "views/view_manager.hpp"

using namespace herc;

int main() {
  core::DesignSession session(
      schema::make_full_schema(), "jacome",
      std::make_unique<support::ManualClock>(720000000000000, 60000000));
  views::ViewManager views(session.db(), session.tools());

  // Tool instances.
  const auto synthesizer = session.import_data("Synthesizer", "gate-mapper",
                                               "");
  const auto placer = session.import_data("Placer", "annealer", "");
  const auto verifier = session.import_data("Verifier", "lvs+drc", "");

  // The logic view is designer-supplied source data (Fig. 7 left).
  const auto logic = session.import_data(
      "LogicView", "full adder gates",
      circuit::full_adder_logic().to_text());
  views.register_view("adder", views::ViewKind::kLogic, logic);

  // Fig. 8a: synthesis flows down to the physical view.
  const auto transistor = views.synthesize_transistor("adder", synthesizer);
  const auto physical = views.synthesize_physical("adder", placer);
  std::printf("views of cell 'adder':\n");
  for (const auto kind :
       {views::ViewKind::kLogic, views::ViewKind::kTransistor,
        views::ViewKind::kPhysical}) {
    const auto inst = views.view("adder", kind);
    std::printf("  %-10s -> i%u (%s)\n", views::to_string(kind),
                inst->value(),
                session.db().instance(*inst).name.c_str());
  }

  // The Fig. 8 flows themselves, in both representations of Fig. 3.
  const graph::TaskGraph synth = views.synthesis_flow();
  std::printf("\nFig. 8a synthesis flow (bipartite form, Fig. 3a):\n%s",
              graph::to_bipartite(synth).render_text().c_str());
  const graph::TaskGraph verify = views.verification_flow();
  std::printf("Fig. 8b verification flow (bipartite form):\n%s\n",
              graph::to_bipartite(verify).render_text().c_str());

  // Fig. 8b: verification passes on the synthesized pair.
  auto report = views.verify_correspondence("adder", verifier);
  std::printf("verification: %s\n", report.pass ? "PASS" : "FAIL");
  std::printf("physical view up to date: %s\n\n",
              views.physical_up_to_date("adder") ? "yes" : "no");

  // Sabotage the layout with the layout editor: delete a device.
  const circuit::Layout placed =
      circuit::Layout::from_text(session.db().payload(physical));
  const std::string victim = placed.placements().front().device.name;
  const auto editor = session.import_data(
      "LayoutEditor", "delete " + victim, "unplace " + victim + "\n");
  graph::TaskGraph edit = session.task_from_goal("EditedLayout");
  const graph::NodeId edited = edit.nodes().front();
  edit.expand(edited, graph::ExpandOptions{.include_optional = true});
  edit.bind(edit.tool_of(edited), editor);
  edit.bind(edit.inputs_of(edited)[0], physical);
  const auto broken = session.run(edit).single(edited);
  views.register_view("adder", views::ViewKind::kPhysical, broken);

  report = views.verify_correspondence("adder", verifier);
  std::printf("after deleting device '%s': verification %s\n",
              victim.c_str(), report.pass ? "PASS" : "FAIL");
  for (std::size_t i = 0; i < report.errors.size() && i < 3; ++i) {
    std::printf("  error: %s\n", report.errors[i].c_str());
  }

  // Restore by re-synthesizing; the stale edit branch remains in history.
  const auto fresh = views.synthesize_physical("adder", placer);
  report = views.verify_correspondence("adder", verifier);
  std::printf("\nre-synthesized physical view i%u: verification %s\n",
              fresh.value(), report.pass ? "PASS" : "FAIL");
  std::printf("physical view up to date: %s\n",
              views.physical_up_to_date("adder") ? "yes" : "no");

  // Detail-route the physical view (the RoutedLayout subtype) and compare
  // wirelength against the placement estimate.
  const auto router = session.import_data("Router", "l-router", "");
  graph::TaskGraph route_flow = session.task_from_goal("RoutedLayout");
  const graph::NodeId routed_goal = route_flow.nodes().front();
  route_flow.expand(routed_goal);
  route_flow.bind(route_flow.tool_of(routed_goal), router);
  route_flow.bind(route_flow.inputs_of(routed_goal)[0], fresh);
  const auto routed_inst = session.run(route_flow).single(routed_goal);
  const circuit::Layout routed =
      circuit::Layout::from_text(session.db().payload(routed_inst));
  const circuit::Layout placed_fresh =
      circuit::Layout::from_text(session.db().payload(fresh));
  double routed_wl = 0.0;
  for (const auto& net : routed.nets()) routed_wl += routed.routed_length(net);
  std::printf("\nrouted i%u: %zu wire segments, wirelength %.0f "
              "(HPWL estimate was %.0f)\n",
              routed_inst.value(), routed.wires().size(), routed_wl,
              placed_fresh.total_hpwl());
  (void)transistor;
  return 0;
}
