# Empty compiler generated dependencies file for cosmos_test.
# This may be replaced when dependencies are built.
