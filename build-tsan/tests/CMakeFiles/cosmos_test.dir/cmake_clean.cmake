file(REMOVE_RECURSE
  "CMakeFiles/cosmos_test.dir/cosmos_test.cpp.o"
  "CMakeFiles/cosmos_test.dir/cosmos_test.cpp.o.d"
  "cosmos_test"
  "cosmos_test.pdb"
  "cosmos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
