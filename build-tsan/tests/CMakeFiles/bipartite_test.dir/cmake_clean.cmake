file(REMOVE_RECURSE
  "CMakeFiles/bipartite_test.dir/bipartite_test.cpp.o"
  "CMakeFiles/bipartite_test.dir/bipartite_test.cpp.o.d"
  "bipartite_test"
  "bipartite_test.pdb"
  "bipartite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
