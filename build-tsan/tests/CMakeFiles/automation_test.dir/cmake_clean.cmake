file(REMOVE_RECURSE
  "CMakeFiles/automation_test.dir/automation_test.cpp.o"
  "CMakeFiles/automation_test.dir/automation_test.cpp.o.d"
  "automation_test"
  "automation_test.pdb"
  "automation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
