# Empty dependencies file for automation_test.
# This may be replaced when dependencies are built.
