file(REMOVE_RECURSE
  "CMakeFiles/circuit_tools_test.dir/circuit_tools_test.cpp.o"
  "CMakeFiles/circuit_tools_test.dir/circuit_tools_test.cpp.o.d"
  "circuit_tools_test"
  "circuit_tools_test.pdb"
  "circuit_tools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
