# Empty compiler generated dependencies file for circuit_tools_test.
# This may be replaced when dependencies are built.
