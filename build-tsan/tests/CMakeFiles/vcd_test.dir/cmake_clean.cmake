file(REMOVE_RECURSE
  "CMakeFiles/vcd_test.dir/vcd_test.cpp.o"
  "CMakeFiles/vcd_test.dir/vcd_test.cpp.o.d"
  "vcd_test"
  "vcd_test.pdb"
  "vcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
