# Empty compiler generated dependencies file for fault_property_test.
# This may be replaced when dependencies are built.
