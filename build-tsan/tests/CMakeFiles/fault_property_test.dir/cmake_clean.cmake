file(REMOVE_RECURSE
  "CMakeFiles/fault_property_test.dir/fault_property_test.cpp.o"
  "CMakeFiles/fault_property_test.dir/fault_property_test.cpp.o.d"
  "fault_property_test"
  "fault_property_test.pdb"
  "fault_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
