file(REMOVE_RECURSE
  "CMakeFiles/flow_trace_test.dir/flow_trace_test.cpp.o"
  "CMakeFiles/flow_trace_test.dir/flow_trace_test.cpp.o.d"
  "flow_trace_test"
  "flow_trace_test.pdb"
  "flow_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
