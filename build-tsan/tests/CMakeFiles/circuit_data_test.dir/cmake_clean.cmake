file(REMOVE_RECURSE
  "CMakeFiles/circuit_data_test.dir/circuit_data_test.cpp.o"
  "CMakeFiles/circuit_data_test.dir/circuit_data_test.cpp.o.d"
  "circuit_data_test"
  "circuit_data_test.pdb"
  "circuit_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
