# Empty dependencies file for circuit_data_test.
# This may be replaced when dependencies are built.
