# Empty dependencies file for circuit_sim_test.
# This may be replaced when dependencies are built.
