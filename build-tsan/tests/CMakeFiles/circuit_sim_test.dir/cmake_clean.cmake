file(REMOVE_RECURSE
  "CMakeFiles/circuit_sim_test.dir/circuit_sim_test.cpp.o"
  "CMakeFiles/circuit_sim_test.dir/circuit_sim_test.cpp.o.d"
  "circuit_sim_test"
  "circuit_sim_test.pdb"
  "circuit_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
