file(REMOVE_RECURSE
  "CMakeFiles/cosmos_session.dir/cosmos_session.cpp.o"
  "CMakeFiles/cosmos_session.dir/cosmos_session.cpp.o.d"
  "cosmos_session"
  "cosmos_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
