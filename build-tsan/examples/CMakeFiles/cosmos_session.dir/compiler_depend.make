# Empty compiler generated dependencies file for cosmos_session.
# This may be replaced when dependencies are built.
