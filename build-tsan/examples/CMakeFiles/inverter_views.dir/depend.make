# Empty dependencies file for inverter_views.
# This may be replaced when dependencies are built.
