file(REMOVE_RECURSE
  "CMakeFiles/inverter_views.dir/inverter_views.cpp.o"
  "CMakeFiles/inverter_views.dir/inverter_views.cpp.o.d"
  "inverter_views"
  "inverter_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverter_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
