# Empty dependencies file for design_session.
# This may be replaced when dependencies are built.
