file(REMOVE_RECURSE
  "CMakeFiles/design_session.dir/design_session.cpp.o"
  "CMakeFiles/design_session.dir/design_session.cpp.o.d"
  "design_session"
  "design_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
