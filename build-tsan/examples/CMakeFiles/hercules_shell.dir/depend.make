# Empty dependencies file for hercules_shell.
# This may be replaced when dependencies are built.
