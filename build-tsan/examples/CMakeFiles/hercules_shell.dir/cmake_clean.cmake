file(REMOVE_RECURSE
  "CMakeFiles/hercules_shell.dir/hercules_shell.cpp.o"
  "CMakeFiles/hercules_shell.dir/hercules_shell.cpp.o.d"
  "hercules_shell"
  "hercules_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hercules_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
