file(REMOVE_RECURSE
  "CMakeFiles/build_flow.dir/build_flow.cpp.o"
  "CMakeFiles/build_flow.dir/build_flow.cpp.o.d"
  "build_flow"
  "build_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
