# Empty compiler generated dependencies file for build_flow.
# This may be replaced when dependencies are built.
