# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cosmos_session "/root/repo/build-tsan/examples/cosmos_session")
set_tests_properties(example_cosmos_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inverter_views "/root/repo/build-tsan/examples/inverter_views")
set_tests_properties(example_inverter_views PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_session "/root/repo/build-tsan/examples/design_session")
set_tests_properties(example_design_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_build_flow "/root/repo/build-tsan/examples/build_flow")
set_tests_properties(example_build_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell_script "/root/repo/build-tsan/examples/hercules_shell" "/root/repo/examples/demo.hcl")
set_tests_properties(example_shell_script PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
