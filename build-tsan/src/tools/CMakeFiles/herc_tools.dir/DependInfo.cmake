
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/composite.cpp" "src/tools/CMakeFiles/herc_tools.dir/composite.cpp.o" "gcc" "src/tools/CMakeFiles/herc_tools.dir/composite.cpp.o.d"
  "/root/repo/src/tools/fault_injection.cpp" "src/tools/CMakeFiles/herc_tools.dir/fault_injection.cpp.o" "gcc" "src/tools/CMakeFiles/herc_tools.dir/fault_injection.cpp.o.d"
  "/root/repo/src/tools/registry.cpp" "src/tools/CMakeFiles/herc_tools.dir/registry.cpp.o" "gcc" "src/tools/CMakeFiles/herc_tools.dir/registry.cpp.o.d"
  "/root/repo/src/tools/standard_tools.cpp" "src/tools/CMakeFiles/herc_tools.dir/standard_tools.cpp.o" "gcc" "src/tools/CMakeFiles/herc_tools.dir/standard_tools.cpp.o.d"
  "/root/repo/src/tools/tool_context.cpp" "src/tools/CMakeFiles/herc_tools.dir/tool_context.cpp.o" "gcc" "src/tools/CMakeFiles/herc_tools.dir/tool_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/herc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/circuit/CMakeFiles/herc_circuit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/herc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
