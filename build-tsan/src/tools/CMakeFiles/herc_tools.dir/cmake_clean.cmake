file(REMOVE_RECURSE
  "CMakeFiles/herc_tools.dir/composite.cpp.o"
  "CMakeFiles/herc_tools.dir/composite.cpp.o.d"
  "CMakeFiles/herc_tools.dir/fault_injection.cpp.o"
  "CMakeFiles/herc_tools.dir/fault_injection.cpp.o.d"
  "CMakeFiles/herc_tools.dir/registry.cpp.o"
  "CMakeFiles/herc_tools.dir/registry.cpp.o.d"
  "CMakeFiles/herc_tools.dir/standard_tools.cpp.o"
  "CMakeFiles/herc_tools.dir/standard_tools.cpp.o.d"
  "CMakeFiles/herc_tools.dir/tool_context.cpp.o"
  "CMakeFiles/herc_tools.dir/tool_context.cpp.o.d"
  "libherc_tools.a"
  "libherc_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
