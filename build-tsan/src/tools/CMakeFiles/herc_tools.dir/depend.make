# Empty dependencies file for herc_tools.
# This may be replaced when dependencies are built.
