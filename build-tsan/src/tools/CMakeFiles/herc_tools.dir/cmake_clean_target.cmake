file(REMOVE_RECURSE
  "libherc_tools.a"
)
