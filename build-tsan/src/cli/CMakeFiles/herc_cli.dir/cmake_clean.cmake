file(REMOVE_RECURSE
  "CMakeFiles/herc_cli.dir/interpreter.cpp.o"
  "CMakeFiles/herc_cli.dir/interpreter.cpp.o.d"
  "libherc_cli.a"
  "libherc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
