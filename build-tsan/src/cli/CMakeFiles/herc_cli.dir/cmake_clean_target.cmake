file(REMOVE_RECURSE
  "libherc_cli.a"
)
