# Empty dependencies file for herc_cli.
# This may be replaced when dependencies are built.
