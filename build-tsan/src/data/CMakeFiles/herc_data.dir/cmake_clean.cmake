file(REMOVE_RECURSE
  "CMakeFiles/herc_data.dir/blob_store.cpp.o"
  "CMakeFiles/herc_data.dir/blob_store.cpp.o.d"
  "libherc_data.a"
  "libherc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
