# Empty dependencies file for herc_data.
# This may be replaced when dependencies are built.
