file(REMOVE_RECURSE
  "libherc_data.a"
)
