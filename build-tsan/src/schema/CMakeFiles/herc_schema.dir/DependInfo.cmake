
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/schema_io.cpp" "src/schema/CMakeFiles/herc_schema.dir/schema_io.cpp.o" "gcc" "src/schema/CMakeFiles/herc_schema.dir/schema_io.cpp.o.d"
  "/root/repo/src/schema/standard_schemas.cpp" "src/schema/CMakeFiles/herc_schema.dir/standard_schemas.cpp.o" "gcc" "src/schema/CMakeFiles/herc_schema.dir/standard_schemas.cpp.o.d"
  "/root/repo/src/schema/task_schema.cpp" "src/schema/CMakeFiles/herc_schema.dir/task_schema.cpp.o" "gcc" "src/schema/CMakeFiles/herc_schema.dir/task_schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/herc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
