# Empty dependencies file for herc_schema.
# This may be replaced when dependencies are built.
