file(REMOVE_RECURSE
  "libherc_schema.a"
)
