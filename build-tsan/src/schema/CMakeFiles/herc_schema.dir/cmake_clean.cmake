file(REMOVE_RECURSE
  "CMakeFiles/herc_schema.dir/schema_io.cpp.o"
  "CMakeFiles/herc_schema.dir/schema_io.cpp.o.d"
  "CMakeFiles/herc_schema.dir/standard_schemas.cpp.o"
  "CMakeFiles/herc_schema.dir/standard_schemas.cpp.o.d"
  "CMakeFiles/herc_schema.dir/task_schema.cpp.o"
  "CMakeFiles/herc_schema.dir/task_schema.cpp.o.d"
  "libherc_schema.a"
  "libherc_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
