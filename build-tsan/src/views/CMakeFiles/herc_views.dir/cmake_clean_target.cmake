file(REMOVE_RECURSE
  "libherc_views.a"
)
