file(REMOVE_RECURSE
  "CMakeFiles/herc_views.dir/view_manager.cpp.o"
  "CMakeFiles/herc_views.dir/view_manager.cpp.o.d"
  "libherc_views.a"
  "libherc_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
