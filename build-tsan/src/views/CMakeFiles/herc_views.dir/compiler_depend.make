# Empty compiler generated dependencies file for herc_views.
# This may be replaced when dependencies are built.
