file(REMOVE_RECURSE
  "CMakeFiles/herc_history.dir/flow_trace.cpp.o"
  "CMakeFiles/herc_history.dir/flow_trace.cpp.o.d"
  "CMakeFiles/herc_history.dir/history_db.cpp.o"
  "CMakeFiles/herc_history.dir/history_db.cpp.o.d"
  "CMakeFiles/herc_history.dir/query_language.cpp.o"
  "CMakeFiles/herc_history.dir/query_language.cpp.o.d"
  "libherc_history.a"
  "libherc_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
