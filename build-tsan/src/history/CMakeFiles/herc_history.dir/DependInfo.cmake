
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/history/flow_trace.cpp" "src/history/CMakeFiles/herc_history.dir/flow_trace.cpp.o" "gcc" "src/history/CMakeFiles/herc_history.dir/flow_trace.cpp.o.d"
  "/root/repo/src/history/history_db.cpp" "src/history/CMakeFiles/herc_history.dir/history_db.cpp.o" "gcc" "src/history/CMakeFiles/herc_history.dir/history_db.cpp.o.d"
  "/root/repo/src/history/query_language.cpp" "src/history/CMakeFiles/herc_history.dir/query_language.cpp.o" "gcc" "src/history/CMakeFiles/herc_history.dir/query_language.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/graph/CMakeFiles/herc_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/herc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/herc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
