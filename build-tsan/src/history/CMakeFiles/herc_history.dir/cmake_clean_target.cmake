file(REMOVE_RECURSE
  "libherc_history.a"
)
