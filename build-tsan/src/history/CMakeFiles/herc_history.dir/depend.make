# Empty dependencies file for herc_history.
# This may be replaced when dependencies are built.
