# Empty dependencies file for herc_exec.
# This may be replaced when dependencies are built.
