file(REMOVE_RECURSE
  "CMakeFiles/herc_exec.dir/automation.cpp.o"
  "CMakeFiles/herc_exec.dir/automation.cpp.o.d"
  "CMakeFiles/herc_exec.dir/consistency.cpp.o"
  "CMakeFiles/herc_exec.dir/consistency.cpp.o.d"
  "CMakeFiles/herc_exec.dir/executor.cpp.o"
  "CMakeFiles/herc_exec.dir/executor.cpp.o.d"
  "libherc_exec.a"
  "libherc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
