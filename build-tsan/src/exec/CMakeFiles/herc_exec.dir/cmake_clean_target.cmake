file(REMOVE_RECURSE
  "libherc_exec.a"
)
