file(REMOVE_RECURSE
  "libherc_circuit.a"
)
