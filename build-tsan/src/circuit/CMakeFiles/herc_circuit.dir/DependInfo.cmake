
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/compare.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/compare.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/compare.cpp.o.d"
  "/root/repo/src/circuit/cosmos.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/cosmos.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/cosmos.cpp.o.d"
  "/root/repo/src/circuit/edits.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/edits.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/edits.cpp.o.d"
  "/root/repo/src/circuit/extract.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/extract.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/extract.cpp.o.d"
  "/root/repo/src/circuit/layout.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/layout.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/layout.cpp.o.d"
  "/root/repo/src/circuit/library.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/library.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/library.cpp.o.d"
  "/root/repo/src/circuit/logic_view.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/logic_view.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/logic_view.cpp.o.d"
  "/root/repo/src/circuit/models.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/models.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/models.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/optimize.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/optimize.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/optimize.cpp.o.d"
  "/root/repo/src/circuit/place.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/place.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/place.cpp.o.d"
  "/root/repo/src/circuit/plot.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/plot.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/plot.cpp.o.d"
  "/root/repo/src/circuit/route.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/route.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/route.cpp.o.d"
  "/root/repo/src/circuit/sim.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/sim.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/sim.cpp.o.d"
  "/root/repo/src/circuit/stimuli.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/stimuli.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/stimuli.cpp.o.d"
  "/root/repo/src/circuit/vcd.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/vcd.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/vcd.cpp.o.d"
  "/root/repo/src/circuit/verify.cpp" "src/circuit/CMakeFiles/herc_circuit.dir/verify.cpp.o" "gcc" "src/circuit/CMakeFiles/herc_circuit.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/herc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
