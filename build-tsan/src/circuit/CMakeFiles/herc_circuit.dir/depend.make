# Empty dependencies file for herc_circuit.
# This may be replaced when dependencies are built.
