# Empty compiler generated dependencies file for herc_core.
# This may be replaced when dependencies are built.
