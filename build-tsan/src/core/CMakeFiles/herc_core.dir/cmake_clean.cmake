file(REMOVE_RECURSE
  "CMakeFiles/herc_core.dir/browser.cpp.o"
  "CMakeFiles/herc_core.dir/browser.cpp.o.d"
  "CMakeFiles/herc_core.dir/session.cpp.o"
  "CMakeFiles/herc_core.dir/session.cpp.o.d"
  "libherc_core.a"
  "libherc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
