file(REMOVE_RECURSE
  "libherc_core.a"
)
