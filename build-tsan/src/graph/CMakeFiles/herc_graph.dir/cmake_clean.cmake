file(REMOVE_RECURSE
  "CMakeFiles/herc_graph.dir/bipartite.cpp.o"
  "CMakeFiles/herc_graph.dir/bipartite.cpp.o.d"
  "CMakeFiles/herc_graph.dir/task_graph.cpp.o"
  "CMakeFiles/herc_graph.dir/task_graph.cpp.o.d"
  "libherc_graph.a"
  "libherc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
