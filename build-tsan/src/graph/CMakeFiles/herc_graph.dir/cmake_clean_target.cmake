file(REMOVE_RECURSE
  "libherc_graph.a"
)
