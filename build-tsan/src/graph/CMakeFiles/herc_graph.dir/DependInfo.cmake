
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite.cpp" "src/graph/CMakeFiles/herc_graph.dir/bipartite.cpp.o" "gcc" "src/graph/CMakeFiles/herc_graph.dir/bipartite.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/graph/CMakeFiles/herc_graph.dir/task_graph.cpp.o" "gcc" "src/graph/CMakeFiles/herc_graph.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/herc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/herc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
