# Empty dependencies file for herc_graph.
# This may be replaced when dependencies are built.
