file(REMOVE_RECURSE
  "libherc_support.a"
)
