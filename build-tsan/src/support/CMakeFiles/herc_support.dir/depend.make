# Empty dependencies file for herc_support.
# This may be replaced when dependencies are built.
