
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/clock.cpp" "src/support/CMakeFiles/herc_support.dir/clock.cpp.o" "gcc" "src/support/CMakeFiles/herc_support.dir/clock.cpp.o.d"
  "/root/repo/src/support/dot.cpp" "src/support/CMakeFiles/herc_support.dir/dot.cpp.o" "gcc" "src/support/CMakeFiles/herc_support.dir/dot.cpp.o.d"
  "/root/repo/src/support/hash.cpp" "src/support/CMakeFiles/herc_support.dir/hash.cpp.o" "gcc" "src/support/CMakeFiles/herc_support.dir/hash.cpp.o.d"
  "/root/repo/src/support/record.cpp" "src/support/CMakeFiles/herc_support.dir/record.cpp.o" "gcc" "src/support/CMakeFiles/herc_support.dir/record.cpp.o.d"
  "/root/repo/src/support/text.cpp" "src/support/CMakeFiles/herc_support.dir/text.cpp.o" "gcc" "src/support/CMakeFiles/herc_support.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
