file(REMOVE_RECURSE
  "CMakeFiles/herc_support.dir/clock.cpp.o"
  "CMakeFiles/herc_support.dir/clock.cpp.o.d"
  "CMakeFiles/herc_support.dir/dot.cpp.o"
  "CMakeFiles/herc_support.dir/dot.cpp.o.d"
  "CMakeFiles/herc_support.dir/hash.cpp.o"
  "CMakeFiles/herc_support.dir/hash.cpp.o.d"
  "CMakeFiles/herc_support.dir/record.cpp.o"
  "CMakeFiles/herc_support.dir/record.cpp.o.d"
  "CMakeFiles/herc_support.dir/text.cpp.o"
  "CMakeFiles/herc_support.dir/text.cpp.o.d"
  "libherc_support.a"
  "libherc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
