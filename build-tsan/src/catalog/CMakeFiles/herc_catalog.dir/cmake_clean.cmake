file(REMOVE_RECURSE
  "CMakeFiles/herc_catalog.dir/catalogs.cpp.o"
  "CMakeFiles/herc_catalog.dir/catalogs.cpp.o.d"
  "libherc_catalog.a"
  "libherc_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
