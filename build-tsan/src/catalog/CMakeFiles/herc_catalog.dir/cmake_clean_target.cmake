file(REMOVE_RECURSE
  "libherc_catalog.a"
)
