# Empty dependencies file for herc_catalog.
# This may be replaced when dependencies are built.
