# Empty compiler generated dependencies file for bench_fig2_cosmos.
# This may be replaced when dependencies are built.
