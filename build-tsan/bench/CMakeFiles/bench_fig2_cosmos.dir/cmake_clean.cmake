file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cosmos.dir/bench_fig2_cosmos.cpp.o"
  "CMakeFiles/bench_fig2_cosmos.dir/bench_fig2_cosmos.cpp.o.d"
  "bench_fig2_cosmos"
  "bench_fig2_cosmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cosmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
