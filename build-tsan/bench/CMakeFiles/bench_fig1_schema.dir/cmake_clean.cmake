file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_schema.dir/bench_fig1_schema.cpp.o"
  "CMakeFiles/bench_fig1_schema.dir/bench_fig1_schema.cpp.o.d"
  "bench_fig1_schema"
  "bench_fig1_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
