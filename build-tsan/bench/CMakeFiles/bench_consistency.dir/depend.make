# Empty dependencies file for bench_consistency.
# This may be replaced when dependencies are built.
