file(REMOVE_RECURSE
  "CMakeFiles/bench_consistency.dir/bench_consistency.cpp.o"
  "CMakeFiles/bench_consistency.dir/bench_consistency.cpp.o.d"
  "bench_consistency"
  "bench_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
