file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_expand.dir/bench_fig4_expand.cpp.o"
  "CMakeFiles/bench_fig4_expand.dir/bench_fig4_expand.cpp.o.d"
  "bench_fig4_expand"
  "bench_fig4_expand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_expand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
