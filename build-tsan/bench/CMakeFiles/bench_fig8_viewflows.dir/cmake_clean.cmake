file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_viewflows.dir/bench_fig8_viewflows.cpp.o"
  "CMakeFiles/bench_fig8_viewflows.dir/bench_fig8_viewflows.cpp.o.d"
  "bench_fig8_viewflows"
  "bench_fig8_viewflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_viewflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
