file(REMOVE_RECURSE
  "CMakeFiles/bench_data_sharing.dir/bench_data_sharing.cpp.o"
  "CMakeFiles/bench_data_sharing.dir/bench_data_sharing.cpp.o.d"
  "bench_data_sharing"
  "bench_data_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
