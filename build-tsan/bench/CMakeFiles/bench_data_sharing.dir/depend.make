# Empty dependencies file for bench_data_sharing.
# This may be replaced when dependencies are built.
