file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_browser.dir/bench_fig9_browser.cpp.o"
  "CMakeFiles/bench_fig9_browser.dir/bench_fig9_browser.cpp.o.d"
  "bench_fig9_browser"
  "bench_fig9_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
