# Empty compiler generated dependencies file for bench_approaches.
# This may be replaced when dependencies are built.
