file(REMOVE_RECURSE
  "CMakeFiles/bench_approaches.dir/bench_approaches.cpp.o"
  "CMakeFiles/bench_approaches.dir/bench_approaches.cpp.o.d"
  "bench_approaches"
  "bench_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
