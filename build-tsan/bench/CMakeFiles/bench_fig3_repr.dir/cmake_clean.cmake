file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_repr.dir/bench_fig3_repr.cpp.o"
  "CMakeFiles/bench_fig3_repr.dir/bench_fig3_repr.cpp.o.d"
  "bench_fig3_repr"
  "bench_fig3_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
