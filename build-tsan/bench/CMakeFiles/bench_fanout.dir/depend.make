# Empty dependencies file for bench_fanout.
# This may be replaced when dependencies are built.
