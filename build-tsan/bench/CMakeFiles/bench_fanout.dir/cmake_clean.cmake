file(REMOVE_RECURSE
  "CMakeFiles/bench_fanout.dir/bench_fanout.cpp.o"
  "CMakeFiles/bench_fanout.dir/bench_fanout.cpp.o.d"
  "bench_fanout"
  "bench_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
