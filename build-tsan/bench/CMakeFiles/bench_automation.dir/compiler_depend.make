# Empty compiler generated dependencies file for bench_automation.
# This may be replaced when dependencies are built.
