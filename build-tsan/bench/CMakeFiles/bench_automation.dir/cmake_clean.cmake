file(REMOVE_RECURSE
  "CMakeFiles/bench_automation.dir/bench_automation.cpp.o"
  "CMakeFiles/bench_automation.dir/bench_automation.cpp.o.d"
  "bench_automation"
  "bench_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
