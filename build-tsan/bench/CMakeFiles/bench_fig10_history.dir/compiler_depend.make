# Empty compiler generated dependencies file for bench_fig10_history.
# This may be replaced when dependencies are built.
