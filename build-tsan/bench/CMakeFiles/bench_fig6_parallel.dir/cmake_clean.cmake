file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_parallel.dir/bench_fig6_parallel.cpp.o"
  "CMakeFiles/bench_fig6_parallel.dir/bench_fig6_parallel.cpp.o.d"
  "bench_fig6_parallel"
  "bench_fig6_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
