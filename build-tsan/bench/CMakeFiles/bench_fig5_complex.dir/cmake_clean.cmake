file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_complex.dir/bench_fig5_complex.cpp.o"
  "CMakeFiles/bench_fig5_complex.dir/bench_fig5_complex.cpp.o.d"
  "bench_fig5_complex"
  "bench_fig5_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
