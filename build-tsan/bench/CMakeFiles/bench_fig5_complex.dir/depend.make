# Empty dependencies file for bench_fig5_complex.
# This may be replaced when dependencies are built.
