file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_versioning.dir/bench_fig11_versioning.cpp.o"
  "CMakeFiles/bench_fig11_versioning.dir/bench_fig11_versioning.cpp.o.d"
  "bench_fig11_versioning"
  "bench_fig11_versioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_versioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
