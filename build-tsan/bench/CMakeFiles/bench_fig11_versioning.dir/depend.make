# Empty dependencies file for bench_fig11_versioning.
# This may be replaced when dependencies are built.
