
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_versioning.cpp" "bench/CMakeFiles/bench_fig11_versioning.dir/bench_fig11_versioning.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_versioning.dir/bench_fig11_versioning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/herc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/views/CMakeFiles/herc_views.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/herc_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/exec/CMakeFiles/herc_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/history/CMakeFiles/herc_history.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/herc_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tools/CMakeFiles/herc_tools.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/circuit/CMakeFiles/herc_circuit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/herc_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/herc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
