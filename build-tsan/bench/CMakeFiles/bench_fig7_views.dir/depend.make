# Empty dependencies file for bench_fig7_views.
# This may be replaced when dependencies are built.
