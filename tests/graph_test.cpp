// Task-graph / dynamically-defined-flow semantics (§3.2, Figs. 3–5).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/task_graph.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"

namespace herc::graph {
namespace {

using support::FlowError;

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() : schema_(schema::make_full_schema()) {}
  schema::TaskSchema schema_;
};

TEST_F(GraphTest, ExpandPullsInConstructionRule) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const auto created = flow.expand(perf);
  // Simulator (tool), Circuit, Stimuli — the optional SimOptions stays out.
  ASSERT_EQ(created.size(), 3u);
  EXPECT_TRUE(flow.node(perf).expanded);
  EXPECT_EQ(schema_.entity_name(flow.node(flow.tool_of(perf)).type),
            "Simulator");
  const auto inputs = flow.inputs_of(perf);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(schema_.entity_name(flow.node(inputs[0]).type), "Circuit");
  EXPECT_EQ(schema_.entity_name(flow.node(inputs[1]).type), "Stimuli");
}

TEST_F(GraphTest, ExpandWithOptionalIncludesDashedArcs) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const auto created =
      flow.expand(perf, ExpandOptions{.include_optional = true});
  ASSERT_EQ(created.size(), 4u);  // + SimOptions
  bool saw_options = false;
  for (const DepEdge& e : flow.deps(perf)) {
    if (e.role == "options") {
      saw_options = true;
      EXPECT_TRUE(e.optional);
    }
  }
  EXPECT_TRUE(saw_options);
}

TEST_F(GraphTest, ExpandRejectsAbstractSourceAndDouble) {
  TaskGraph flow(schema_, "f");
  const NodeId netlist = flow.add_node("Netlist");
  EXPECT_THROW(flow.expand(netlist), FlowError);  // abstract: specialize
  const NodeId stim = flow.add_node("Stimuli");
  EXPECT_THROW(flow.expand(stim), FlowError);  // source entity
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  EXPECT_THROW(flow.expand(perf), FlowError);  // already expanded
}

TEST_F(GraphTest, SpecializeThenExpand) {
  // Fig. 4b: the Netlist input is specialized to ExtractedNetlist first.
  TaskGraph flow(schema_, "f");
  const NodeId placed = flow.add_node("PlacedLayout");
  flow.expand(placed);
  const NodeId netlist = flow.inputs_of(placed)[0];
  EXPECT_EQ(schema_.entity_name(flow.node(netlist).type), "Netlist");
  flow.specialize(netlist, schema_.require("ExtractedNetlist"));
  const auto created = flow.expand(netlist);
  ASSERT_EQ(created.size(), 2u);  // Extractor + Layout
  EXPECT_EQ(schema_.entity_name(flow.node(created[1]).type), "Layout");
  // The original type is remembered.
  EXPECT_EQ(schema_.entity_name(flow.node(netlist).original_type),
            "Netlist");
}

TEST_F(GraphTest, SpecializeRejectsNonSubtypesAndExpandedNodes) {
  TaskGraph flow(schema_, "f");
  const NodeId netlist = flow.add_node("Netlist");
  EXPECT_THROW(flow.specialize(netlist, schema_.require("Layout")),
               FlowError);
  EXPECT_THROW(flow.specialize(netlist, schema_.require("Netlist")),
               FlowError);
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  EXPECT_THROW(flow.specialize(perf, schema_.require("Performance")),
               FlowError);
}

TEST_F(GraphTest, UnexpandGarbageCollectsOrphans) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId circuit = flow.inputs_of(perf)[0];
  flow.expand(circuit);
  EXPECT_EQ(flow.node_count(), 6u);
  flow.unexpand(perf);
  // Everything auto-created below perf vanishes, including circuit's tree.
  EXPECT_EQ(flow.node_count(), 1u);
  EXPECT_FALSE(flow.node(perf).expanded);
  // The removed node id is dead.
  EXPECT_THROW((void)flow.node(circuit), FlowError);
  EXPECT_THROW(flow.unexpand(perf), FlowError);
}

TEST_F(GraphTest, UnexpandKeepsSharedNodes) {
  // A node reused by another task survives its first consumer's unexpand.
  TaskGraph flow(schema_, "f");
  const NodeId p1 = flow.add_node("Performance");
  flow.expand(p1);
  const NodeId circuit = flow.inputs_of(p1)[0];
  const NodeId p2 = flow.add_node("Performance");
  flow.connect(p2, circuit);  // reuse
  flow.unexpand(p1);
  // Circuit is still referenced by p2.
  EXPECT_EQ(schema_.entity_name(flow.node(circuit).type), "Circuit");
  EXPECT_EQ(flow.inputs_of(p2), std::vector<NodeId>{circuit});
}

TEST_F(GraphTest, UnexpandKeepsUserPlacedNodes) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const NodeId sim = flow.add_node("Simulator");  // user-placed
  flow.connect(perf, sim);
  flow.unexpand(perf);
  // The user's node stays even though it is now orphaned.
  EXPECT_EQ(schema_.entity_name(flow.node(sim).type), "Simulator");
}

TEST_F(GraphTest, ConnectMatchesFreeArcsOnly) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const NodeId st1 = flow.add_node("Stimuli");
  const NodeId st2 = flow.add_node("Stimuli");
  flow.connect(perf, st1);
  // The Stimuli arc is now taken.
  EXPECT_THROW(flow.connect(perf, st2), FlowError);
  // A Layout satisfies no arc of Performance at all.
  const NodeId layout = flow.add_node("PlacedLayout");
  EXPECT_THROW(flow.connect(perf, layout), FlowError);
}

TEST_F(GraphTest, ConnectWiresToolsAsFunctionalDeps) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const NodeId sim = flow.add_node("Simulator");
  flow.connect(perf, sim);
  EXPECT_EQ(flow.tool_of(perf), sim);
}

TEST_F(GraphTest, ExpandUpWiresIntoConsumer) {
  // Data-based growth: from a Performance up to its plot.
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const NodeId plot =
      flow.expand_up(perf, schema_.require("PerformancePlot"));
  EXPECT_EQ(flow.inputs_of(plot), std::vector<NodeId>{perf});
  EXPECT_EQ(schema_.entity_name(flow.node(flow.tool_of(plot)).type),
            "Plotter");
  EXPECT_TRUE(flow.node(plot).expanded);
}

TEST_F(GraphTest, ExpandUpFromToolWiresFunctionalArc) {
  // A tool node grows upward into the task it runs.
  TaskGraph flow(schema_, "f");
  const NodeId sim = flow.add_node("Simulator");
  const NodeId perf = flow.expand_up(sim, schema_.require("Performance"));
  EXPECT_EQ(flow.tool_of(perf), sim);
  EXPECT_EQ(flow.inputs_of(perf).size(), 2u);  // Circuit + Stimuli created
}

TEST_F(GraphTest, ExpandUpRejectsIncompatibleConsumer) {
  TaskGraph flow(schema_, "f");
  const NodeId stim = flow.add_node("Stimuli");
  EXPECT_THROW(flow.expand_up(stim, schema_.require("Verification")),
               FlowError);
}

TEST_F(GraphTest, CoOutputSharesToolAndInputs) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId stats = flow.add_co_output(perf, schema_.require("Statistics"));
  EXPECT_EQ(flow.tool_of(stats), flow.tool_of(perf));
  EXPECT_EQ(flow.inputs_of(stats), flow.inputs_of(perf));
  // One task group with two outputs.
  const auto groups = flow.task_groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].outputs.size(), 2u);
}

TEST_F(GraphTest, CoOutputRejectsWrongTool) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  EXPECT_THROW(flow.add_co_output(perf, schema_.require("Verification")),
               FlowError);
}

TEST_F(GraphTest, TaskGroupsAreTopologicallyOrdered) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  flow.expand(flow.inputs_of(perf)[0]);  // circuit compose below simulate
  const auto groups = flow.task_groups();
  ASSERT_EQ(groups.size(), 2u);
  // The compose group must precede the simulate group.
  EXPECT_FALSE(groups[0].tool.valid());
  EXPECT_TRUE(groups[1].tool.valid());
}

TEST_F(GraphTest, RunnableAndUnboundLeaves) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  EXPECT_FALSE(flow.runnable(perf));
  EXPECT_EQ(flow.unbound_leaves().size(), 3u);
  for (const NodeId leaf : flow.leaves()) {
    flow.bind(leaf, data::InstanceId(0));
  }
  EXPECT_TRUE(flow.runnable(perf));
  EXPECT_TRUE(flow.unbound_leaves().empty());
  flow.unbind(flow.leaves().front());
  EXPECT_FALSE(flow.runnable(perf));
}

TEST_F(GraphTest, SubflowExtractsClosure) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId circuit = flow.inputs_of(perf)[0];
  flow.expand(circuit);
  const TaskGraph sub = flow.subflow(circuit);
  EXPECT_EQ(sub.node_count(), 3u);  // Circuit + DeviceModels + Netlist
  EXPECT_EQ(sub.goals().size(), 1u);
}

TEST_F(GraphTest, LispFormMatchesPaperFootnote) {
  TaskGraph flow(schema_, "f");
  const NodeId placed = flow.add_node("PlacedLayout");
  flow.expand(placed);
  const NodeId netlist = flow.inputs_of(placed)[0];
  flow.specialize(netlist, schema_.require("EditedNetlist"));
  flow.expand(netlist);
  EXPECT_EQ(flow.to_lisp(placed),
            "PlacedLayout(Placer, EditedNetlist(CircuitEditor))");
}

TEST_F(GraphTest, SaveLoadRoundTrip) {
  TaskGraph flow(schema_, "roundtrip");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf, ExpandOptions{.include_optional = true});
  flow.expand(flow.inputs_of(perf)[0]);
  flow.set_label(perf, "LPF Simulation");
  flow.bind(flow.inputs_of(perf)[1], data::InstanceId(7));
  flow.bind_set(flow.tool_of(perf), {data::InstanceId(1),
                                     data::InstanceId(2)});
  const std::string text = flow.save();
  const TaskGraph back = TaskGraph::load(schema_, text);
  EXPECT_EQ(back.name(), "roundtrip");
  EXPECT_EQ(back.node_count(), flow.node_count());
  EXPECT_EQ(back.save(), text);
  // Specialization state survives.
  const NodeId back_perf = back.goals().front();
  EXPECT_EQ(back.node(back_perf).label, "LPF Simulation");
  EXPECT_EQ(back.bindings(back.tool_of(back_perf)).size(), 2u);
}

TEST_F(GraphTest, LoadRejectsWrongSchemaAndGarbage) {
  TaskGraph flow(schema_, "f");
  flow.add_node("Performance");
  const std::string text = flow.save();
  const schema::TaskSchema other = schema::make_fig2_schema();
  EXPECT_THROW(TaskGraph::load(other, text), support::ParseError);
  EXPECT_THROW(TaskGraph::load(schema_, "gibberish|1"),
               support::ParseError);
}

TEST_F(GraphTest, BindSetRequiresInstances) {
  TaskGraph flow(schema_, "f");
  const NodeId n = flow.add_node("Stimuli");
  EXPECT_THROW(flow.bind_set(n, {}), FlowError);
}

TEST_F(GraphTest, ConnectRoleTargetsSpecificArcs) {
  // PerformanceDiff has two same-type arcs, roles golden/candidate.
  TaskGraph flow(schema_, "f");
  const NodeId diff = flow.add_node("PerformanceDiff");
  const NodeId p1 = flow.add_node("Performance");
  const NodeId p2 = flow.add_node("Performance");
  flow.connect_role(diff, p1, "candidate");
  // The candidate arc is taken; another candidate fails, golden works.
  EXPECT_THROW(flow.connect_role(diff, p2, "candidate"), FlowError);
  EXPECT_THROW(flow.connect_role(diff, p2, "nonsense"), FlowError);
  flow.connect_role(diff, p2, "golden");
  flow.check();
  // The role-blind connect() on a third performance finds nothing free.
  const NodeId p3 = flow.add_node("Performance");
  EXPECT_THROW(flow.connect(diff, p3), FlowError);
}

TEST_F(GraphTest, TraceEdgesRelaxArcMultiplicity) {
  // Two same-role edges into one arc: illegal for designer-built flows,
  // legal for trace graphs (recorded set consumption).
  TaskGraph flow(schema_, "trace");
  const NodeId plot = flow.add_node("PerformancePlot");
  const NodeId p1 = flow.add_node("Performance");
  const NodeId p2 = flow.add_node("Performance");
  EXPECT_FALSE(flow.relaxed());
  flow.add_trace_edge(plot, p1, schema::DepKind::kData, "");
  flow.add_trace_edge(plot, p2, schema::DepKind::kData, "");
  EXPECT_TRUE(flow.relaxed());
  flow.check();  // multiplicity allowed in relaxed mode
  // Nonconforming trace edges still fail.
  const NodeId layout = flow.add_node("PlacedLayout");
  EXPECT_THROW(
      flow.add_trace_edge(plot, layout, schema::DepKind::kData, ""),
      FlowError);
  // The relaxed flag survives save/load.
  const TaskGraph back = TaskGraph::load(schema_, flow.save());
  EXPECT_TRUE(back.relaxed());
  back.check();
}

TEST_F(GraphTest, CheckRejectsCorruptedFlows) {
  // A hand-crafted edge that violates the schema must be caught.
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  const NodeId verif = flow.add_node("Verification");
  // Performance's rule has no arc accepting a Verification.
  EXPECT_THROW(flow.connect(perf, verif), FlowError);
  flow.check();  // untouched flow stays valid
}

}  // namespace
}  // namespace herc::graph
