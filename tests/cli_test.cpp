// The command interpreter: scripts, heredocs, every command family,
// error reporting.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "cli/interpreter.hpp"
#include "data/blob_store.hpp"
#include "support/record.hpp"

namespace herc::cli {
namespace {

/// Runs a script and returns (failures, captured output).
std::pair<std::size_t, std::string> run(const std::string& script) {
  std::ostringstream out;
  Interpreter interpreter(out);
  const std::size_t failures = interpreter.run_script(script);
  return {failures, out.str()};
}

std::string inverter_heredoc() {
  return "import EditedNetlist inv <<END\n" +
         circuit::inverter_netlist().to_text() + "END\n";
}

TEST(Cli, EmptyLinesAndCommentsAreIgnored) {
  const auto [failures, out] = run("\n# just a comment\n   \necho hi\n");
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(out, "hi\n");
}

TEST(Cli, UnknownCommandsFailWithHelpPointer) {
  std::ostringstream out;
  Interpreter interpreter(out);
  EXPECT_EQ(interpreter.execute("teleport now"), CommandStatus::kError);
  EXPECT_NE(interpreter.last_error().find("help"), std::string::npos);
  EXPECT_NE(out.str().find("error:"), std::string::npos);
}

TEST(Cli, QuitStopsScripts) {
  const auto [failures, out] = run("echo one\nquit\necho two\n");
  EXPECT_EQ(failures, 0u);
  EXPECT_NE(out.find("one"), std::string::npos);
  EXPECT_EQ(out.find("two"), std::string::npos);
}

TEST(Cli, ImportWithHeredocAndEmptyPayload) {
  const auto [failures, out] = run(inverter_heredoc() +
                                   "import Simulator sim \"\"\n");
  EXPECT_EQ(failures, 0u);
  EXPECT_NE(out.find("imported i0"), std::string::npos);
  EXPECT_NE(out.find("imported i1"), std::string::npos);
  EXPECT_NE(out.find("0 bytes"), std::string::npos);
}

TEST(Cli, UnterminatedHeredocIsAnError) {
  const auto [failures, out] = run("import Stimuli s <<END\nwave x 0:1\n");
  EXPECT_EQ(failures, 1u);
  EXPECT_NE(out.find("unterminated"), std::string::npos);
}

TEST(Cli, FullSimulationSession) {
  std::string script = inverter_heredoc();
  script += "import DeviceModels std <<END\n";
  script += circuit::DeviceModelLibrary::standard().to_text();
  script += "END\n";
  script += "import Stimuli walk <<END\n";
  script += "stimuli walk\nwave in 0:0 1000:1 2000:0\n";
  script += "END\n";
  script += "import Simulator sim \"\"\n";
  script +=
      "flow new f goal Performance\n"
      "flow expand f 0\n"
      "flow expand f 2\n"
      "flow bind f 1 i3\n"
      "flow bind f 3 i2\n"
      "flow bind f 4 i1\n"
      "flow bind f 5 i0\n"
      "flow show f\n"
      "flow lisp f\n"
      "run f\n"
      "history i5\n"
      "uses i0\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("status: runnable"), std::string::npos);
  EXPECT_NE(out.find("Performance(Simulator, Circuit(compose, "
                     "DeviceModels, Netlist), Stimuli)"),
            std::string::npos);
  EXPECT_NE(out.find("ran 2 tasks"), std::string::npos);
  // The history listing reaches the imported netlist.
  EXPECT_NE(out.find("'inv'"), std::string::npos);
}

TEST(Cli, AutoFlowCommand) {
  std::string script = inverter_heredoc();
  script += "import DeviceModels std <<END\n" +
            circuit::DeviceModelLibrary::standard().to_text() + "END\n";
  script += "import Stimuli walk <<END\nstimuli w\nwave in 0:1\nEND\n";
  script += "import Simulator sim \"\"\n";
  script += "auto Performance run\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("ran 2 tasks"), std::string::npos);
  EXPECT_NE(out.find("produced i"), std::string::npos);
}

TEST(Cli, BrowseWithFilters) {
  std::string script = inverter_heredoc();
  script += "session user director\n";
  script += "import EditedNetlist adder <<END\n" +
            circuit::full_adder_netlist().to_text() + "END\n";
  script += "browse Netlist\n";
  script += "browse Netlist user=director\n";
  script += "browse Netlist keyword=inv\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  // The unfiltered listing shows both; the user filter only the adder.
  EXPECT_NE(out.find("adder"), std::string::npos);
  EXPECT_NE(out.find("inv"), std::string::npos);
}

TEST(Cli, PlanLifecycleThroughCommands) {
  std::string script;
  script +=
      "flow new f goal Performance\n"
      "flow expand f 0\n"
      "flow save-plan f\n"
      "plans\n"
      "flow new g plan goal:Performance\n"
      "flow show g\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("goal:Performance"), std::string::npos);
  EXPECT_NE(out.find("unbound leaves"), std::string::npos);
}

TEST(Cli, SchemaSwitchClearsFlows) {
  std::ostringstream out;
  Interpreter interpreter(out);
  EXPECT_EQ(interpreter.execute("flow new f goal Performance"),
            CommandStatus::kOk);
  EXPECT_EQ(interpreter.execute("session new fig2 bryant"),
            CommandStatus::kOk);
  // Old flows are gone; fig2 lacks the Fig. 1 entities.
  EXPECT_EQ(interpreter.execute("flow show f"), CommandStatus::kError);
  EXPECT_EQ(interpreter.execute("flow new c goal Verification"),
            CommandStatus::kError);
  EXPECT_EQ(interpreter.execute("flow new c goal Performance"),
            CommandStatus::kOk);
  EXPECT_EQ(interpreter.session().user(), "bryant");
}

TEST(Cli, VersionAndConsistencyCommands) {
  std::string script = inverter_heredoc();
  script += "import CircuitEditor ed <<END\nset mn value=2\nEND\n";
  script +=
      "flow new e goal EditedNetlist\n"
      "flow expand e 0 optional\n"
      "flow bind e 1 i1\n"
      "flow bind e 2 i0\n"
      "run e\n"
      "versions i0\n"
      "stale i0\n"
      "annotate i2 v2 widened\n"
      "payload i2\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("i2 v2 (edited from i0)"), std::string::npos);
  EXPECT_NE(out.find("is up to date"), std::string::npos);
  EXPECT_NE(out.find("value=2"), std::string::npos);
}

TEST(Cli, SessionSaveLoadThroughFiles) {
  const std::string path =
      ::testing::TempDir() + "herc_cli_session.txt";
  {
    std::ostringstream out;
    Interpreter interpreter(out);
    EXPECT_EQ(interpreter.run_script(inverter_heredoc() +
                                     "session user archivist\n"
                                     "session save " + path + "\n"),
              0u)
        << out.str();
    EXPECT_NE(out.str().find("session saved"), std::string::npos);
  }
  {
    std::ostringstream out;
    Interpreter interpreter(out);
    EXPECT_EQ(interpreter.run_script("session load " + path + "\n"
                                     "browse Netlist\n"),
              0u)
        << out.str();
    EXPECT_NE(out.str().find("session loaded: 1 instances"),
              std::string::npos);
    EXPECT_NE(out.str().find("inv"), std::string::npos);
    EXPECT_EQ(interpreter.session().user(), "archivist");
  }
  // Missing files are reported, not fatal.
  std::ostringstream out;
  Interpreter interpreter(out);
  EXPECT_EQ(interpreter.execute("session load /nonexistent/nowhere.txt"),
            CommandStatus::kError);
}

TEST(Cli, BadReferencesAreReported) {
  std::ostringstream out;
  Interpreter interpreter(out);
  EXPECT_EQ(interpreter.execute("history i99"), CommandStatus::kError);
  EXPECT_EQ(interpreter.execute("history 5"), CommandStatus::kError);
  EXPECT_EQ(interpreter.execute("flow new f goal Performance"),
            CommandStatus::kOk);
  EXPECT_EQ(interpreter.execute("flow expand f banana"),
            CommandStatus::kError);
  EXPECT_NE(interpreter.last_error().find("node id"), std::string::npos);
  EXPECT_EQ(interpreter.execute("flow expand f 7"), CommandStatus::kError);
}

TEST(Cli, FindCommandRunsQueries) {
  std::string script = inverter_heredoc();
  script += "import DeviceModels std <<END\n" +
            circuit::DeviceModelLibrary::standard().to_text() + "END\n";
  script += "import Stimuli walk <<END\nstimuli w\nwave in 0:1\nEND\n";
  script += "import Simulator sim \"\"\n";
  script += "auto Performance run\n";
  script += "find Performance where circuit.netlist = i0\n";
  script += "find Performance where circuit.netlist = \"inv\"\n";
  script += "find Performance where stimuli = i99\n";  // bad ref
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 1u) << out;
  // Both good queries list the produced performance.
  const std::string needle = "Performance  'Performance#";
  const std::size_t first = out.find(needle);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find(needle, first + 1), std::string::npos);
}

TEST(Cli, TraceRetraceAndDecomposeCommands) {
  std::string script = inverter_heredoc();
  script += "import DeviceModels std <<END\n" +
            circuit::DeviceModelLibrary::standard().to_text() + "END\n";
  script += "import Stimuli walk <<END\nstimuli w\nwave in 0:1\nEND\n";
  script += "import Simulator sim \"\"\n";
  script += "import CircuitEditor ed <<END\nset mn value=2\nEND\n";
  script += "auto Performance run\n";       // produces circuit i5? + perf
  script += "trace i6 backward\n";          // the performance instance
  script += "trace i6 forward\n";
  script += "decompose i5\n";               // the composed circuit
  // Edit the netlist -> performance stale -> retrace.
  script +=
      "flow new e goal EditedNetlist\n"
      "flow expand e 0 optional\n"
      "flow bind e 1 i4\n"
      "flow bind e 2 i0\n"
      "run e\n"
      "stale i6\n"
      "retrace i6\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("digraph \"backward-trace\""), std::string::npos);
  EXPECT_NE(out.find("digraph \"forward-trace\""), std::string::npos);
  EXPECT_NE(out.find("component i"), std::string::npos);
  EXPECT_NE(out.find("is STALE"), std::string::npos);
  EXPECT_NE(out.find("retraced ->"), std::string::npos);
}

TEST(Cli, FlowRenderingCommands) {
  const auto [failures, out] = run(
      "flow new f goal Performance\n"
      "flow expand f 0\n"
      "flow dot f\n"
      "flow bipartite f\n"
      "flow expandup f 0 PerformancePlot\n"
      "flow show f\n");
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("--Simulator--> [Performance]"), std::string::npos);
  EXPECT_NE(out.find("consumer node"), std::string::npos);
}

TEST(Cli, SchemaShowAndExtend) {
  std::string script =
      "schema extend <<END\n"
      "tool TimingAnalyzer\n"
      "data TimingReport\n"
      "fd TimingReport -> TimingAnalyzer\n"
      "dd TimingReport -> Netlist\n"
      "END\n"
      "schema show\n"
      "flow new t goal TimingReport\n"
      "flow expand t 0\n"
      "flow show t\n";
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("schema extended"), std::string::npos);
  EXPECT_NE(out.find("fd TimingReport -> TimingAnalyzer"),
            std::string::npos);
  EXPECT_NE(out.find("TimingAnalyzer"), std::string::npos);
}

TEST(Cli, RetraceOnUpToDateInstanceIsFriendly) {
  // An up-to-date instance is not an error: the command reports it and
  // the script keeps going (the library-level retrace throws here).
  const auto [failures, out] = run(inverter_heredoc() +
                                   "retrace i0\n"
                                   "echo still-alive\n");
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("i0 is up to date; nothing to retrace"),
            std::string::npos);
  EXPECT_NE(out.find("still-alive"), std::string::npos);
}

TEST(Cli, RunsAndResumeCommands) {
  std::string script = inverter_heredoc();
  script += "import DeviceModels std <<END\n" +
            circuit::DeviceModelLibrary::standard().to_text() + "END\n";
  script += "import Stimuli walk <<END\nstimuli w\nwave in 0:1\nEND\n";
  script += "import Simulator sim \"\"\n";
  script += "runs\n";         // nothing yet
  script += "auto Performance run\n";
  script += "runs\n";         // one closed run
  script += "resume\n";       // nothing open
  const auto [failures, out] = run(script);
  EXPECT_EQ(failures, 0u) << out;
  EXPECT_NE(out.find("no runs recorded"), std::string::npos);
  EXPECT_NE(out.find("run #0"), std::string::npos);
  EXPECT_NE(out.find("complete (2/2 tasks finished)"), std::string::npos);
  EXPECT_NE(out.find("no interrupted runs; nothing to resume"),
            std::string::npos);

  // Resuming a closed run by id is an error, reported not fatal.
  std::ostringstream err_out;
  Interpreter interpreter(err_out);
  interpreter.run_script(script);
  EXPECT_EQ(interpreter.execute("resume 0"), CommandStatus::kError);
  EXPECT_NE(interpreter.last_error().find("nothing to resume"),
            std::string::npos);
  EXPECT_EQ(interpreter.execute("resume banana"), CommandStatus::kError);
}

TEST(Cli, FsckExitCodesThroughTheCommand) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "herc_cli_fsck";
  fs::remove_all(dir);
  std::ostringstream out;
  Interpreter interpreter(out);
  ASSERT_EQ(interpreter.execute("open " + dir), CommandStatus::kOk);
  ASSERT_EQ(interpreter.execute("import Stimuli s \"\""), CommandStatus::kOk);
  ASSERT_EQ(interpreter.execute("checkpoint"), CommandStatus::kOk);
  ASSERT_EQ(interpreter.execute("store close"), CommandStatus::kOk);

  // Exit 0: a healthy store.
  ASSERT_EQ(interpreter.execute("fsck " + dir), CommandStatus::kOk);
  EXPECT_NE(out.str().find("clean (exit 0)"), std::string::npos);

  // Exit 1: an orphaned blob is survivable — the command still succeeds.
  {
    std::ofstream app((fs::path(dir) / "snapshot.herc").string(),
                      std::ios::binary | std::ios::app);
    app << support::RecordWriter("blob")
               .field(data::BlobStore::key_for("orphan"))
               .field(std::string_view("orphan"))
               .str()
        << "\n";
  }
  ASSERT_EQ(interpreter.execute("fsck " + dir), CommandStatus::kOk);
  EXPECT_NE(out.str().find("orphan-blob"), std::string::npos);
  EXPECT_NE(out.str().find("warnings (exit 1)"), std::string::npos);

  // Exit 2: corruption fails the command so scripts stop at it.
  {
    std::ofstream bad((fs::path(dir) / "snapshot.herc").string(),
                      std::ios::binary | std::ios::trunc);
    bad << "not a snapshot at all\n";
  }
  EXPECT_EQ(interpreter.execute("fsck " + dir), CommandStatus::kError);
  EXPECT_NE(out.str().find("CORRUPTION (exit 2)"), std::string::npos);
  EXPECT_NE(interpreter.last_error().find("corruption"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Cli, FsckRepairIsRefusedOnTheOpenStore) {
  // Repair rewrites snapshot + journal under the live session's handle,
  // which would desync its in-memory image — the command must refuse
  // until the store is closed.  A plain audit stays allowed.
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "herc_cli_fsck_repair";
  fs::remove_all(dir);
  std::ostringstream out;
  Interpreter interpreter(out);
  ASSERT_EQ(interpreter.execute("open " + dir), CommandStatus::kOk);
  ASSERT_EQ(interpreter.execute("import Stimuli s \"\""), CommandStatus::kOk);

  EXPECT_EQ(interpreter.execute("fsck " + dir + " --repair"),
            CommandStatus::kError);
  EXPECT_NE(interpreter.last_error().find("store close"), std::string::npos)
      << interpreter.last_error();
  ASSERT_EQ(interpreter.execute("fsck " + dir), CommandStatus::kOk)
      << "a read-only audit of the open store must still work";

  ASSERT_EQ(interpreter.execute("store close"), CommandStatus::kOk);
  EXPECT_EQ(interpreter.execute("fsck " + dir + " --repair"),
            CommandStatus::kOk);
  fs::remove_all(dir);
}

TEST(Cli, OpenReportsInterruptedRuns) {
  // `open` surfaces crash recovery: build a store with an open run by
  // journaling a run-begin frame without an end, then reopen it.
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "herc_cli_interrupted";
  fs::remove_all(dir);
  {
    std::ostringstream out;
    Interpreter interpreter(out);
    ASSERT_EQ(interpreter.execute("open " + dir), CommandStatus::kOk);
    ASSERT_EQ(interpreter.execute("import Stimuli s \"\""),
              CommandStatus::kOk);
    // Forge an open run directly in the session's history; the mutation
    // listener journals it like any executor-written frame.
    history::RunRecord run;
    run.flow_name = "forged";
    run.user = "tester";
    run.flow_text = "flow|forged|full|0";
    interpreter.session().db().begin_run(std::move(run));
    interpreter.session().storage()->sync();
  }
  std::ostringstream out;
  Interpreter interpreter(out);
  ASSERT_EQ(interpreter.execute("open " + dir), CommandStatus::kOk);
  EXPECT_NE(out.str().find("1 interrupted run(s)"), std::string::npos)
      << out.str();
  ASSERT_EQ(interpreter.execute("runs"), CommandStatus::kOk);
  EXPECT_NE(out.str().find("OPEN"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Cli, HelpAndCatalogs) {
  const auto [failures, out] = run("help\nentities\ntools\n");
  EXPECT_EQ(failures, 0u);
  EXPECT_NE(out.find("flow bind"), std::string::npos);
  EXPECT_NE(out.find("Netlist [abstract]"), std::string::npos);
  EXPECT_NE(out.find("Placer: Placer.default Placer.fast Placer.quality"),
            std::string::npos);
}

}  // namespace
}  // namespace herc::cli
