// The performance comparator: waveform diffing, tolerance, and the
// two-same-type-inputs-with-roles flow it rides in.
#include <gtest/gtest.h>

#include "circuit/compare.hpp"
#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "exec/consistency.hpp"
#include "schema/standard_schemas.hpp"

namespace herc::circuit {
namespace {

SimResult make_result(std::vector<Waveform> waves) {
  SimResult r;
  r.waves = std::move(waves);
  return r;
}

TEST(Compare, IdenticalResultsMatch) {
  const Stimuli st = Stimuli::counter({"a", "b"}, 1000);
  const SimResult r =
      simulate(nand2_netlist(), DeviceModelLibrary::standard(), st);
  const CompareReport report = compare_performance(r, r);
  EXPECT_TRUE(report.match);
  EXPECT_TRUE(report.differences.empty());
}

TEST(Compare, ValueDifferencesAreLocated) {
  const SimResult golden = make_result(
      {Waveform{"y", {{0, Level::kLow}, {100, Level::kHigh}}}});
  const SimResult candidate = make_result(
      {Waveform{"y", {{0, Level::kLow}}}});  // never rises
  const CompareReport report = compare_performance(golden, candidate);
  EXPECT_FALSE(report.match);
  ASSERT_FALSE(report.differences.empty());
  EXPECT_NE(report.differences[0].find("net 'y'"), std::string::npos);
  EXPECT_NE(report.differences[0].find("golden=1"), std::string::npos);
}

TEST(Compare, MissingNetsReportedBothWays) {
  const SimResult golden =
      make_result({Waveform{"a", {{0, Level::kLow}}}});
  const SimResult candidate =
      make_result({Waveform{"b", {{0, Level::kLow}}}});
  const CompareReport report = compare_performance(golden, candidate);
  EXPECT_FALSE(report.match);
  EXPECT_EQ(report.differences.size(), 2u);
}

TEST(Compare, ToleranceForgivesShiftedEdges) {
  const SimResult golden = make_result(
      {Waveform{"y", {{0, Level::kLow}, {100, Level::kHigh}}}});
  const SimResult shifted = make_result(
      {Waveform{"y", {{0, Level::kLow}, {150, Level::kHigh}}}});
  EXPECT_FALSE(compare_performance(golden, shifted).match);
  CompareOptions loose;
  loose.time_tolerance_ps = 60;
  EXPECT_TRUE(compare_performance(golden, shifted, loose).match);
  loose.time_tolerance_ps = 40;
  EXPECT_FALSE(compare_performance(golden, shifted, loose).match);
}

TEST(Compare, NoiseCapKeepsReportsReadable) {
  Waveform g{"y", {}};
  Waveform c{"y", {}};
  for (int i = 0; i < 40; ++i) {
    g.points.push_back(
        {i * 100, i % 2 == 0 ? Level::kLow : Level::kHigh});
    c.points.push_back(
        {i * 100, i % 2 == 0 ? Level::kHigh : Level::kLow});
  }
  const CompareReport report =
      compare_performance(make_result({g}), make_result({c}));
  EXPECT_FALSE(report.match);
  EXPECT_LE(report.differences.size(), 6u);
  EXPECT_NE(report.differences.back().find("suppressed"), std::string::npos);
}

TEST(Compare, ReportRoundTrips) {
  CompareReport report;
  report.match = false;
  report.differences = {"one thing", "another"};
  const CompareReport back = CompareReport::from_text(report.to_text());
  EXPECT_EQ(back.match, report.match);
  EXPECT_EQ(back.differences, report.differences);
}

TEST(Compare, RolesDisambiguateSameTypeInputsInAFlow) {
  // The PerformanceDiff task takes two Performances, told apart by role;
  // the report must reflect which one was golden.
  core::DesignSession session(
      schema::make_full_schema(), "t",
      std::make_unique<support::ManualClock>(0, 1));
  const auto netlist = session.import_data(
      "EditedNetlist", "n", inverter_netlist().to_text());
  const auto models = session.import_data(
      "DeviceModels", "m", DeviceModelLibrary::standard().to_text());
  const auto stimuli = session.import_data(
      "Stimuli", "st", Stimuli::counter({"in"}, 1000).to_text());
  const auto simulator = session.import_data("Simulator", "sim", "");
  const auto comparator = session.import_data("Comparator", "cmp", "");

  // Two simulations: baseline and one with a loaded output (different
  // delays -> different edge times).
  const auto run_sim = [&](data::InstanceId nl) {
    graph::TaskGraph flow(session.schema(), "sim");
    const graph::NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
    flow.bind(flow.tool_of(perf), simulator);
    flow.bind(flow.inputs_of(perf)[1], stimuli);
    flow.bind(circuit_inputs[0], models);
    flow.bind(circuit_inputs[1], nl);
    return session.run(flow).single(perf);
  };
  const auto golden_perf = run_sim(netlist);
  // A small extra load shifts the output edges by ~50-100 ps.
  Netlist loaded = inverter_netlist();
  loaded.add_capacitor("cl", "out", "GND", 0.005);
  const auto loaded_netlist =
      session.import_data("EditedNetlist", "loaded", loaded.to_text());
  const auto slow_perf = run_sim(loaded_netlist);

  graph::TaskGraph cmp(session.schema(), "cmp");
  const graph::NodeId diff = cmp.add_node("PerformanceDiff");
  cmp.expand(diff);
  cmp.bind(cmp.tool_of(diff), comparator);
  const auto inputs = cmp.inputs_of(diff);
  ASSERT_EQ(inputs.size(), 2u);
  cmp.bind(inputs[0], golden_perf);   // role "golden"
  cmp.bind(inputs[1], slow_perf);     // role "candidate"
  const auto diff_inst = session.run(cmp).single(diff);
  const CompareReport report =
      CompareReport::from_text(session.db().payload(diff_inst));
  EXPECT_FALSE(report.match);  // the loaded inverter is slower

  // The loose comparator variant (200 ps tolerance) forgives the shift.
  session.tools().set_default("Comparator.loose");
  const auto loose_inst = session.run(cmp).single(diff);
  const CompareReport loose =
      CompareReport::from_text(session.db().payload(loose_inst));
  EXPECT_TRUE(loose.match) << loose.to_text();
}

}  // namespace
}  // namespace herc::circuit
