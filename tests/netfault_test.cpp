// FaultProxy + ResilientClient: the network-fault matrix in-process.
//
// Each test stands up a real server, parks the FaultProxy in front of
// it, and drives a ResilientClient through one fault family:
// transparency (no fault = no observable proxy), added latency,
// mid-frame drops (exactly-once across the retry), silent partitions
// (deadline detection + recovery at heal), asymmetric half-close, read
// failover to a replica, and the honest outcome-unknown answer when the
// server restarts with tokens in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/resilient.hpp"
#include "server/server.hpp"
#include "sim/netfault.hpp"
#include "support/error.hpp"

namespace herc::sim {
namespace {

using server::CallResult;
using server::Client;
using server::Endpoint;
using server::ResilientClient;
using server::ResilientOptions;
using server::ServeOptions;
using server::Server;

/// A served in-memory session with a FaultProxy in front of it.
struct ProxiedServer {
  core::DesignSession session{schema::make_full_schema()};
  Server server;
  Endpoint bound;
  FaultProxy proxy;

  // The comma expression starts the server before the proxy dials it:
  // members initialize in declaration order, so `bound` is ready too.
  explicit ProxiedServer(ServeOptions options = {})
      : server(session, options),
        bound(server.add_listener(Endpoint::parse("127.0.0.1:0"))),
        proxy((server.start(), bound)) {}
  ~ProxiedServer() { server.stop(); }
};

/// Fast-retry options for tests: failures are induced, so waiting the
/// production backoff would only slow the suite down.
ResilientOptions fast_options(int read_timeout_ms = 2'000) {
  ResilientOptions options;
  options.connect_timeout_ms = 2'000;
  options.read_timeout_ms = read_timeout_ms;
  options.max_attempts = 20;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 40;
  options.seed = 7;
  return options;
}

std::size_t count_in(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(NetFaultTest, HealthyProxyIsInvisible) {
  ProxiedServer rig;
  Client client = Client::connect(rig.proxy.endpoint());
  EXPECT_EQ(client.role(), "leader");
  const CallResult echo = client.call("echo through-the-proxy");
  EXPECT_TRUE(echo.ok());
  EXPECT_EQ(echo.output, "through-the-proxy\n");
  EXPECT_TRUE(client.call("entities").ok());
  client.close();
  EXPECT_GE(rig.proxy.connections_proxied(), 1u);
  EXPECT_EQ(rig.proxy.connections_cut(), 0u);
}

TEST(NetFaultTest, DelayAddsLatencyWithoutBreakingAnything) {
  ProxiedServer rig;
  Client client = Client::connect(rig.proxy.endpoint());
  rig.proxy.set_delay_ms(60);
  const auto before = std::chrono::steady_clock::now();
  const CallResult echo = client.call("echo slow");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_TRUE(echo.ok());
  EXPECT_EQ(echo.output, "slow\n");
  // One delayed chunk each way is the floor.
  EXPECT_GE(elapsed.count(), 60);
  rig.proxy.heal();
  client.close();
}

TEST(NetFaultTest, MidFrameDropRetriesToExactlyOnce) {
  ProxiedServer rig;
  ResilientClient client(rig.proxy.endpoint(), fast_options());
  ASSERT_TRUE(client.call("session user dropper").ok());

  // A body fat enough that a 100-byte budget always cuts mid-frame, on
  // the first connection and on every retry until the heal below.
  std::string body = "stimuli s\n";
  for (int i = 0; i < 12; ++i) body += "wave in 0:0 1000:1 2000:0\n";
  rig.proxy.set_drop_after(100);

  CallResult result;
  std::thread caller([&] {
    result = client.call("import Stimuli drop_once", body);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  rig.proxy.heal();
  caller.join();

  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(rig.proxy.connections_cut(), 1u);

  const CallResult browse = client.call("browse Stimuli");
  ASSERT_TRUE(browse.ok());
  EXPECT_EQ(count_in(browse.output, "drop_once"), 1u);
}

TEST(NetFaultTest, PartitionIsDetectedByDeadlineAndHealsClean) {
  ProxiedServer rig;
  // A short read timeout is the only way to see a silent partition: no
  // FIN ever arrives, the reply just never comes.
  ResilientClient client(rig.proxy.endpoint(), fast_options(250));
  ASSERT_TRUE(client.call("echo warm").ok());

  rig.proxy.partition();
  CallResult result;
  std::thread caller([&] { result = client.call("echo across"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  rig.proxy.heal();
  caller.join();

  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.output, "across\n");
  EXPECT_GE(client.reconnects(), 1u);
}

TEST(NetFaultTest, HalfCloseForcesAReconnectNotAWedge) {
  ProxiedServer rig;
  ResilientClient client(rig.proxy.endpoint(), fast_options());
  ASSERT_TRUE(client.call("echo live").ok());

  rig.proxy.half_close_live();
  // The reply path is FINed: this call's read sees EOF mid-stream and
  // the client must reconnect and retry on a fresh link.
  const CallResult after = client.call("echo reborn");
  EXPECT_TRUE(after.ok()) << after.error;
  EXPECT_EQ(after.output, "reborn\n");
  EXPECT_GE(client.reconnects(), 1u);
  rig.proxy.heal();
}

TEST(NetFaultTest, ReadsFailOverToAReplicaWhenTheLeaderIsUnreachable) {
  ProxiedServer rig;
  // A read-only server over the same session stands in for a caught-up
  // replica (same data, refuses writes, announces role=replica).
  ServeOptions replica_options;
  replica_options.read_only = true;
  Server replica(rig.session, replica_options);
  const Endpoint replica_bound =
      replica.add_listener(Endpoint::parse("127.0.0.1:0"));
  replica.start();

  ResilientOptions options = fast_options(200);
  options.connect_timeout_ms = 300;
  options.max_attempts = 2;  // fail over on the first dead leader read
  ResilientClient client(rig.proxy.endpoint(), options);
  client.set_endpoints(rig.proxy.endpoint(), {replica_bound});
  ASSERT_TRUE(client.call("echo warm").ok());
  {
    Client probe = Client::connect(replica_bound);
    EXPECT_TRUE(probe.is_replica());
    probe.close();
  }

  rig.proxy.partition();
  const CallResult entities = client.call("entities");
  EXPECT_TRUE(entities.ok()) << entities.error;
  EXPECT_EQ(client.failovers(), 1u);

  // Writes never fail over: the replica would refuse them, and the
  // retry loop keeps aiming at the leader until attempts run out.
  const auto write_attempt = [&] {
    (void)client.call("import Stimuli nofail",
                      "stimuli s\nwave in 0:0 100:1\n");
  };
  EXPECT_THROW(write_attempt(), support::NetError);
  client.abandon_pending();
  EXPECT_EQ(client.failovers(), 1u);

  rig.proxy.heal();
  replica.stop();
}

TEST(NetFaultTest, RestartWithTokensInFlightIsAnHonestUnknown) {
  core::DesignSession session{schema::make_full_schema()};
  auto server = std::make_unique<Server>(session);
  const Endpoint first_bound =
      server->add_listener(Endpoint::parse("127.0.0.1:0"));
  server->start();
  FaultProxy proxy(first_bound);

  ResilientClient client(proxy.endpoint(), fast_options(250));
  ASSERT_TRUE(client.call("echo warm").ok());
  const std::uint64_t first_boot = client.server_boot();

  // Black-hole the wire, transmit a mutation into the void, then
  // restart the server: the token was put on a wire but never acked,
  // and the new incarnation has no dedup window to consult.
  proxy.partition();
  client.send("import Stimuli limbo", "stimuli s\nwave in 0:0 100:1\n");
  EXPECT_EQ(client.pending(), 1u);
  server->stop();
  server = std::make_unique<Server>(session);
  const Endpoint second_bound =
      server->add_listener(Endpoint::parse("127.0.0.1:0"));
  server->start();
  proxy.set_target(second_bound);
  proxy.heal();

  try {
    (void)client.receive();
    FAIL() << "expected the outcome-unknown error";
  } catch (const support::NetError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown"), std::string::npos)
        << error.what();
  }
  // The pending queue was dropped with the error; the client is usable
  // again and talks to the new incarnation.
  EXPECT_EQ(client.pending(), 0u);
  const CallResult after = client.call("echo recovered");
  EXPECT_TRUE(after.ok()) << after.error;
  EXPECT_NE(client.server_boot(), first_boot);
  server->stop();
}

TEST(NetFaultTest, PipelinedCommandsReplayInOrderAcrossACut) {
  ProxiedServer rig;
  ResilientClient client(rig.proxy.endpoint(), fast_options());
  ASSERT_TRUE(client.call("session user pipeliner").ok());

  constexpr int kDepth = 8;
  for (int i = 0; i < kDepth; ++i) {
    client.send("import Stimuli pipe_" + std::to_string(i),
                "stimuli s\nwave in 0:0 100:1\n");
  }
  // Cut the live link out from under the queue; the client replays every
  // unacked token on reconnect and replies come back strictly in order.
  rig.proxy.set_drop_after(1);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    rig.proxy.heal();
  });
  for (int i = 0; i < kDepth; ++i) {
    const CallResult result = client.receive();
    EXPECT_TRUE(result.ok()) << i << ": " << result.error;
  }
  healer.join();
  EXPECT_EQ(client.pending(), 0u);

  const CallResult browse = client.call("browse Stimuli");
  ASSERT_TRUE(browse.ok());
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_EQ(count_in(browse.output, "pipe_" + std::to_string(i)), 1u) << i;
  }
}

}  // namespace
}  // namespace herc::sim
