// Shared seeding for the property tests.
//
// Every randomized test derives its streams from `base_seed(fallback)`:
// the compiled-in fallback normally, or the `HERC_TEST_SEED` environment
// variable when set — so a seed printed by a failing CI run can be
// replayed locally with
//
//   HERC_TEST_SEED=<n> ctest -R <test> ...
//
// Pair every derived seed with `SCOPED_TRACE(seed_note(seed))` so a
// failure always names the seed that produced it.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace herc::testprop {

/// `HERC_TEST_SEED` if set (decimal, or 0x-prefixed hex), else `fallback`.
inline std::uint64_t base_seed(std::uint64_t fallback) {
  const char* env = std::getenv("HERC_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::stoull(env, nullptr, 0);
}

/// The trace line attached to every seeded scope: names the seed and how
/// to replay it.
inline std::string seed_note(std::uint64_t seed) {
  return "seed " + std::to_string(seed) +
         " (rerun with HERC_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace herc::testprop
