// Failure injection: corrupted persistence inputs must raise framework
// errors (never crash or silently mis-load), and heavy parallel execution
// must stay consistent.
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc {
namespace {

using support::HercError;

/// A populated session document to corrupt.
std::string make_session_document() {
  core::DesignSession session(
      schema::make_full_schema(), "fuzz",
      std::make_unique<support::ManualClock>(0, 1));
  const auto netlist = session.import_data(
      "EditedNetlist", "n", circuit::inverter_netlist().to_text());
  const auto models = session.import_data(
      "DeviceModels", "m", circuit::DeviceModelLibrary::standard().to_text());
  const auto stimuli = session.import_data(
      "Stimuli", "st", circuit::Stimuli::counter({"in"}, 1000).to_text());
  const auto simulator = session.import_data("Simulator", "s", "");
  graph::TaskGraph flow(session.schema(), "simulate");
  const graph::NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
  flow.bind(flow.tool_of(perf), simulator);
  flow.bind(flow.inputs_of(perf)[1], stimuli);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);
  session.run(flow);
  session.flows().save(flow);
  return session.save();
}

/// Loading either succeeds or throws a HercError; anything else (crash,
/// std::bad_alloc, logic_error) fails the test.
void expect_load_is_total(const std::string& document) {
  try {
    const auto session = core::DesignSession::load(document);
    // Loaded sessions must be internally consistent enough to re-save.
    (void)session->save();
  } catch (const HercError&) {
    // fine: a detected corruption
  }
}

TEST(Robustness, SessionSurvivesLineDeletion) {
  const std::string document = make_session_document();
  const auto lines = support::split(document, '\n');
  for (std::size_t drop = 0; drop < lines.size(); ++drop) {
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == drop) continue;
      mutated += lines[i];
      mutated += '\n';
    }
    SCOPED_TRACE("dropped line " + std::to_string(drop) + ": " +
                 lines[drop].substr(0, 60));
    expect_load_is_total(mutated);
  }
}

TEST(Robustness, SessionSurvivesLineTruncation) {
  const std::string document = make_session_document();
  const auto lines = support::split(document, '\n');
  for (std::size_t cut = 0; cut < lines.size(); ++cut) {
    if (lines[cut].size() < 2) continue;
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      mutated += (i == cut) ? lines[i].substr(0, lines[i].size() / 2)
                            : lines[i];
      mutated += '\n';
    }
    SCOPED_TRACE("truncated line " + std::to_string(cut));
    expect_load_is_total(mutated);
  }
}

TEST(Robustness, SessionSurvivesByteFlips) {
  const std::string document = make_session_document();
  // Flip a spread of single characters (deterministic positions).
  for (std::size_t pos = 3; pos < document.size(); pos += 97) {
    std::string mutated = document;
    mutated[pos] = (mutated[pos] == 'x') ? 'y' : 'x';
    SCOPED_TRACE("flipped byte " + std::to_string(pos));
    expect_load_is_total(mutated);
  }
}

TEST(Robustness, FlowLoadIsTotalUnderTruncation) {
  const auto schema = schema::make_full_schema();
  graph::TaskGraph flow(schema, "f");
  const graph::NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  flow.expand(flow.inputs_of(perf)[0]);
  const std::string text = flow.save();
  for (std::size_t cut = 1; cut < text.size(); cut += 13) {
    try {
      (void)graph::TaskGraph::load(schema, text.substr(0, cut));
    } catch (const HercError&) {
    }
  }
}

TEST(Robustness, ParallelStressProducesConsistentHistory) {
  // 32 independent branches over 8 threads, repeated; every product's
  // derivation must reference valid instances and the counts must add up.
  core::DesignSession session(
      schema::make_full_schema(), "stress",
      std::make_unique<support::ManualClock>(0, 1));
  const auto netlist = session.import_data(
      "EditedNetlist", "n", circuit::inverter_netlist().to_text());
  const auto models = session.import_data(
      "DeviceModels", "m", circuit::DeviceModelLibrary::standard().to_text());
  const auto simulator = session.import_data("Simulator", "s", "");

  graph::TaskGraph flow(session.schema(), "stress");
  constexpr std::size_t kBranches = 32;
  for (std::size_t b = 0; b < kBranches; ++b) {
    const auto stimuli = session.import_data(
        "Stimuli", "st" + std::to_string(b),
        circuit::Stimuli::random({"in"}, 1000, 4, b + 1).to_text());
    const graph::NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
    flow.bind(flow.tool_of(perf), simulator);
    flow.bind(flow.inputs_of(perf)[1], stimuli);
    flow.bind(circuit_inputs[0], models);
    flow.bind(circuit_inputs[1], netlist);
  }
  exec::ExecOptions options;
  options.parallel = true;
  options.max_threads = 8;
  const auto before = session.db().size();
  const auto result = session.run(flow, options);
  EXPECT_EQ(result.tasks_run, 2 * kBranches);
  EXPECT_EQ(session.db().size() - before, 2 * kBranches);
  // Every recorded derivation resolves.
  for (const auto id : session.db().all()) {
    const auto& derivation = session.db().instance(id).derivation;
    if (derivation.tool.valid()) {
      EXPECT_TRUE(session.db().contains(derivation.tool));
    }
    for (const auto in : derivation.inputs) {
      EXPECT_TRUE(session.db().contains(in));
    }
  }
  // The history is still serializable and reloadable after the stress.
  const std::string saved = session.save();
  const auto restored = core::DesignSession::load(saved);
  EXPECT_EQ(restored->db().size(), session.db().size());
}

}  // namespace
}  // namespace herc
