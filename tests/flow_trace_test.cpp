// Flow traces, version trees and template queries (§4.2, Figs. 10–11).
#include <gtest/gtest.h>

#include <algorithm>

#include "history/flow_trace.hpp"
#include "schema/standard_schemas.hpp"

namespace herc::history {
namespace {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : schema_(schema::make_fig1_schema()),
        clock_(100, 10),
        db_(schema_, clock_) {
    editor_ =
        db_.import_instance(schema_.require("CircuitEditor"), "ed", "", "u");
    placer_ = db_.import_instance(schema_.require("Placer"), "pl", "", "u");
    n1_ = db_.import_instance(schema_.require("EditedNetlist"), "n1", "a",
                              "u");
    n2_ = derive("EditedNetlist", editor_, {{n1_, "seed"}}, "b");
    n3_ = derive("EditedNetlist", editor_, {{n2_, "seed"}}, "c");
    // A branch: n2b edits n1 too (Fig. 11's c3/c4 fork).
    n2b_ = derive("EditedNetlist", editor_, {{n1_, "seed"}}, "d");
    layout_ = derive("PlacedLayout", placer_, {{n3_, ""}}, "e");
  }

  InstanceId derive(const char* type, InstanceId tool,
                    std::vector<std::pair<InstanceId, std::string>> inputs,
                    const char* payload) {
    RecordRequest request;
    request.type = schema_.require(type);
    request.name = std::string(type) + payload;
    request.user = "u";
    request.payload = payload;
    request.derivation.tool = tool;
    for (auto& [id, role] : inputs) {
      request.derivation.inputs.push_back(id);
      request.derivation.input_roles.push_back(role);
    }
    request.derivation.task = "test";
    return db_.record(request);
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  HistoryDb db_;
  InstanceId editor_, placer_, n1_, n2_, n3_, n2b_, layout_;
};

/// The instance bound to trace node `n`.
InstanceId bound(const TaskGraph& trace, NodeId n) {
  return trace.bindings(n).front();
}

/// Finds the trace node bound to `inst`.
NodeId node_for(const TaskGraph& trace, InstanceId inst) {
  for (const NodeId n : trace.nodes()) {
    if (!trace.bindings(n).empty() && bound(trace, n) == inst) return n;
  }
  return NodeId();
}

TEST_F(TraceTest, BackwardTraceContainsAncestryWithTools) {
  const TaskGraph trace = backward_trace(db_, layout_);
  // layout + placer + n3 + editor + n2 + n1 = 6 nodes.
  EXPECT_EQ(trace.node_count(), 6u);
  const NodeId ln = node_for(trace, layout_);
  ASSERT_TRUE(ln.valid());
  EXPECT_EQ(bound(trace, trace.tool_of(ln)), placer_);
  EXPECT_EQ(bound(trace, trace.inputs_of(ln)[0]), n3_);
  // The branch n2b is NOT in the backward trace of the layout.
  EXPECT_FALSE(node_for(trace, n2b_).valid());
  // Every node is bound to exactly one instance.
  for (const NodeId n : trace.nodes()) {
    EXPECT_EQ(trace.bindings(n).size(), 1u);
  }
}

TEST_F(TraceTest, ForwardTraceContainsDependents) {
  const TaskGraph trace = forward_trace(db_, n1_);
  // Everything derived from n1 (n2, n3, n2b, layout) plus the tools needed
  // to show complete tasks.
  EXPECT_TRUE(node_for(trace, n2_).valid());
  EXPECT_TRUE(node_for(trace, n2b_).valid());
  EXPECT_TRUE(node_for(trace, layout_).valid());
  EXPECT_TRUE(node_for(trace, placer_).valid());
}

TEST_F(TraceTest, VersionTreeStructure) {
  const VersionTree tree = version_tree(db_, n3_);
  // The lineage of n3: n1 -> {n2 -> n3, n2b}.
  EXPECT_EQ(tree.entries.size(), 4u);
  EXPECT_EQ(tree.roots(), std::vector<InstanceId>{n1_});
  EXPECT_EQ(tree.children(n1_), (std::vector<InstanceId>{n2_, n2b_}));
  EXPECT_EQ(tree.children(n2_), std::vector<InstanceId>{n3_});
  // Leaves are the live versions.
  const auto leaves = tree.leaves();
  EXPECT_EQ(leaves.size(), 2u);
  EXPECT_TRUE(tree.contains(n2b_));
  // Entering from any member finds the same tree.
  EXPECT_EQ(version_tree(db_, n2b_).entries.size(), 4u);
  // Rendering mentions version numbers.
  EXPECT_NE(tree.to_dot(db_).find("v2"), std::string::npos);
}

TEST_F(TraceTest, LineageTraceIsSupersetOfVersionTree) {
  const VersionTree tree = version_tree(db_, n3_);
  const TaskGraph trace = lineage_trace(db_, n3_);
  // Every version appears in the trace...
  for (const VersionTree::Entry& e : tree.entries) {
    EXPECT_TRUE(node_for(trace, e.instance).valid());
  }
  // ...plus the tool used for each edit (the paper's "semantically richer
  // superset").
  EXPECT_TRUE(node_for(trace, editor_).valid());
  EXPECT_GT(trace.node_count(), tree.entries.size());
}

TEST_F(TraceTest, TemplateQueryByStructure) {
  // "Find the layouts placed from an edited netlist" — unconstrained, the
  // only layout matches.
  TaskGraph pattern(db_.schema(), "q");
  const NodeId layout_node = pattern.add_node("PlacedLayout");
  pattern.expand(layout_node);
  const NodeId netlist_node = pattern.inputs_of(layout_node)[0];
  EXPECT_EQ(query_template(db_, pattern, layout_node),
            std::vector<InstanceId>{layout_});

  // Chain the pattern one task deeper: the layout's netlist must itself be
  // an edit whose seed was n2 — still matches (n3's seed is n2)...
  pattern.specialize(netlist_node, schema_.require("EditedNetlist"));
  pattern.expand(netlist_node,
                 graph::ExpandOptions{.include_optional = true});
  pattern.bind(pattern.inputs_of(netlist_node)[0], n2_);
  EXPECT_EQ(query_template(db_, pattern, layout_node),
            std::vector<InstanceId>{layout_});
  // ...but a seed of n2b matches nothing.
  pattern.bind(pattern.inputs_of(netlist_node)[0], n2b_);
  EXPECT_TRUE(query_template(db_, pattern, layout_node).empty());
}

TEST_F(TraceTest, TemplateQueryMatchesSubtypes) {
  // Asking for any Netlist used by the placer finds the edit chain member.
  TaskGraph pattern(db_.schema(), "q");
  const NodeId layout_node = pattern.add_node("PlacedLayout");
  pattern.expand(layout_node);
  pattern.bind(pattern.inputs_of(layout_node)[0], n3_);
  EXPECT_EQ(query_template(db_, pattern, layout_node),
            std::vector<InstanceId>{layout_});
}

TEST_F(TraceTest, TemplateQueryChecksToolIdentity) {
  // Binding the tool slot to the *editor* can never match a placed layout.
  TaskGraph pattern(db_.schema(), "q");
  const NodeId layout_node = pattern.add_node("PlacedLayout");
  pattern.expand(layout_node);
  pattern.bind(pattern.tool_of(layout_node), editor_);
  EXPECT_TRUE(query_template(db_, pattern, layout_node).empty());
  pattern.bind(pattern.tool_of(layout_node), placer_);
  EXPECT_EQ(query_template(db_, pattern, layout_node),
            std::vector<InstanceId>{layout_});
}

TEST_F(TraceTest, TracesRenderToDot) {
  const std::string dot = backward_trace(db_, layout_).to_dot();
  EXPECT_NE(dot.find("PlacedLayout"), std::string::npos);
  EXPECT_NE(dot.find("v3"), std::string::npos);  // version in label
}

}  // namespace
}  // namespace herc::history
