// Circuit data structures: netlists, models, stimuli, layouts — formats,
// validation, round trips.
#include <gtest/gtest.h>

#include "circuit/layout.hpp"
#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/netlist.hpp"
#include "circuit/stimuli.hpp"
#include "support/error.hpp"

namespace herc::circuit {
namespace {

using support::ExecError;
using support::ParseError;

TEST(NetlistData, RoundTripsThroughText) {
  for (const Netlist& original :
       {inverter_netlist(), nand2_netlist(), xor2_netlist(),
        full_adder_netlist(), latch_netlist(), ripple_adder_netlist(3)}) {
    const std::string text = original.to_text();
    const Netlist back = Netlist::from_text(text);
    EXPECT_EQ(back.to_text(), text) << original.name();
    EXPECT_EQ(back.devices().size(), original.devices().size());
    EXPECT_EQ(back.inputs(), original.inputs());
    EXPECT_EQ(back.outputs(), original.outputs());
    back.validate();
  }
}

TEST(NetlistData, ParseErrors) {
  EXPECT_THROW(Netlist::from_text("bogus directive"), ParseError);
  EXPECT_THROW(Netlist::from_text("nmos m1 g=a"), ParseError);  // missing d/s
  EXPECT_THROW(Netlist::from_text("cap c1 a=x b=y value=abc"), ParseError);
  EXPECT_THROW(Netlist::from_text("netlist"), ParseError);
  EXPECT_THROW(Netlist::from_text("nmos m1 g=a d=b s=c extra"), ParseError);
}

TEST(NetlistData, ValidationCatchesProblems) {
  Netlist nl("bad");
  nl.add_nmos("m1", "a", "b", "GND");
  nl.device_mut("m1").model.clear();
  EXPECT_THROW(nl.validate(), ExecError);
  Netlist nl2("bad2");
  nl2.add_capacitor("c1", "x", "GND", 0.1);
  nl2.device_mut("c1").value = -1;
  EXPECT_THROW(nl2.validate(), ExecError);
}

TEST(NetlistData, DeviceManagement) {
  Netlist nl = inverter_netlist();
  EXPECT_TRUE(nl.has_device("mn"));
  EXPECT_THROW(nl.add_nmos("mn", "a", "b", "GND"), ExecError);  // duplicate
  nl.remove_device("mn");
  EXPECT_FALSE(nl.has_device("mn"));
  EXPECT_THROW(nl.remove_device("mn"), ExecError);
  EXPECT_THROW((void)nl.device("mn"), ExecError);
  // Index integrity after removal.
  EXPECT_EQ(nl.device("mp").name, "mp");
  EXPECT_EQ(nl.mos_count(), 1u);
}

TEST(NetlistData, NetCapacitanceSums) {
  Netlist nl = inverter_netlist();
  nl.add_capacitor("c1", "out", "GND", 0.25);
  nl.add_capacitor("c2", "out", "GND", 0.5);
  nl.add_capacitor("c3", "in", "GND", 1.0);
  EXPECT_DOUBLE_EQ(nl.net_capacitance("out"), 0.75);
  EXPECT_DOUBLE_EQ(nl.net_capacitance("in"), 1.0);
  EXPECT_DOUBLE_EQ(nl.net_capacitance("nowhere"), 0.0);
}

TEST(NetlistData, InstantiatePrefixesAndRewires) {
  Netlist top("top");
  top.add_input("x");
  top.add_output("y");
  top.instantiate(inverter_netlist(), "u1", {{"in", "x"}, {"out", "mid"}});
  top.instantiate(inverter_netlist(), "u2", {{"in", "mid"}, {"out", "y"}});
  top.validate();
  EXPECT_TRUE(top.has_device("u1.mn"));
  EXPECT_TRUE(top.has_device("u2.mp"));
  EXPECT_EQ(top.device("u1.mn").terminals[1], "mid");
  // Rails are never prefixed.
  EXPECT_EQ(top.device("u1.mn").terminals[2], "GND");
}

TEST(ModelData, LibraryRoundTripAndLookup) {
  DeviceModelLibrary lib = DeviceModelLibrary::standard();
  lib.set_model(DeviceModel{"hv", true, 35.5, 1.2});
  const std::string text = lib.to_text();
  const DeviceModelLibrary back = DeviceModelLibrary::from_text(text);
  EXPECT_EQ(back.to_text(), text);
  EXPECT_TRUE(back.model("hv").is_pmos);
  EXPECT_DOUBLE_EQ(back.model("hv").resistance_kohm, 35.5);
  EXPECT_THROW((void)back.model("nope"), ExecError);
  // set_model replaces in place.
  lib.set_model(DeviceModel{"hv", true, 1.0, 1.2});
  EXPECT_DOUBLE_EQ(lib.model("hv").resistance_kohm, 1.0);
  lib.remove_model("hv");
  EXPECT_FALSE(lib.has_model("hv"));
  EXPECT_THROW(lib.remove_model("hv"), ExecError);
}

TEST(ModelData, ParseErrors) {
  EXPECT_THROW(DeviceModelLibrary::from_text("model x resistance=abc"),
               ParseError);
  EXPECT_THROW(DeviceModelLibrary::from_text("model x unknown=1"),
               ParseError);
  EXPECT_THROW(DeviceModelLibrary::from_text("nonsense"), ParseError);
}

TEST(StimuliData, WaveformSemantics) {
  Waveform w{"a", {{0, Level::kLow}, {10, Level::kHigh}, {20, Level::kLow}}};
  EXPECT_EQ(w.at(-1), Level::kX);   // before the first point
  EXPECT_EQ(w.at(0), Level::kLow);
  EXPECT_EQ(w.at(15), Level::kHigh);
  EXPECT_EQ(w.at(1000), Level::kLow);
  EXPECT_EQ(w.transitions(), 2u);
}

TEST(StimuliData, RoundTripAndValidation) {
  Stimuli st("s");
  st.add_wave(Waveform{"a", {{0, Level::kLow}, {5, Level::kX}}});
  st.add_wave(Waveform{"b", {{0, Level::kHigh}}});
  const std::string text = st.to_text();
  const Stimuli back = Stimuli::from_text(text);
  EXPECT_EQ(back.to_text(), text);
  EXPECT_EQ(back.wave("a").at(5), Level::kX);
  EXPECT_EQ(back.horizon_ps(), 5);
  EXPECT_EQ(back.event_times(), (std::vector<std::int64_t>{0, 5}));
  // Unsorted points rejected.
  Stimuli bad("b");
  EXPECT_THROW(
      bad.add_wave(Waveform{"x", {{5, Level::kLow}, {5, Level::kHigh}}}),
      ExecError);
  EXPECT_THROW(Stimuli::from_text("wave a 0:Z"), ParseError);
  EXPECT_THROW(Stimuli::from_text("wave a zero:1"), ParseError);
}

TEST(StimuliData, Generators) {
  const Stimuli counter = Stimuli::counter({"a", "b"}, 100);
  // Bit 0 toggles every step, bit 1 every two steps.
  EXPECT_EQ(counter.wave("a").at(0), Level::kLow);
  EXPECT_EQ(counter.wave("a").at(100), Level::kHigh);
  EXPECT_EQ(counter.wave("b").at(100), Level::kLow);
  EXPECT_EQ(counter.wave("b").at(200), Level::kHigh);

  const Waveform clk = Stimuli::clock("clk", 100, 3);
  EXPECT_EQ(clk.at(25), Level::kLow);
  EXPECT_EQ(clk.at(75), Level::kHigh);
  EXPECT_EQ(clk.at(125), Level::kLow);
  EXPECT_EQ(clk.transitions(), 6u);

  // Random generation is deterministic per seed.
  const Stimuli r1 = Stimuli::random({"x"}, 10, 32, 99);
  const Stimuli r2 = Stimuli::random({"x"}, 10, 32, 99);
  const Stimuli r3 = Stimuli::random({"x"}, 10, 32, 100);
  EXPECT_EQ(r1.to_text(), r2.to_text());
  EXPECT_NE(r1.to_text(), r3.to_text());
}

TEST(LayoutData, RoundTripAndGeometry) {
  Layout layout("l", "src", 4, 4);
  layout.place(inverter_netlist().device("mn"), 0, 0);
  layout.place(inverter_netlist().device("mp"), 2, 3);
  layout.add_pin("in", 0, 1, false);
  layout.add_pin("out", 3, 3, true);
  const std::string text = layout.to_text();
  const Layout back = Layout::from_text(text);
  EXPECT_EQ(back.to_text(), text);
  EXPECT_EQ(back.rows(), 4);
  EXPECT_EQ(back.placements().size(), 2u);
  EXPECT_EQ(back.pins().size(), 2u);
  // HPWL of net "out": mn(0,0), mp(2,3), pin(3,3) -> (3-0)+(3-0)=6.
  EXPECT_DOUBLE_EQ(back.net_hpwl("out"), 6.0);
  EXPECT_GT(back.total_hpwl(), 0.0);
}

TEST(LayoutData, DrcFindsViolations) {
  Layout layout("l", "src", 2, 2);
  const Device mn = inverter_netlist().device("mn");
  Device mp = inverter_netlist().device("mp");
  layout.place(mn, 0, 0);
  layout.place(mp, 0, 0);  // overlap
  Device far = mn;
  far.name = "m_far";
  layout.place(far, 7, 7);  // outside grid
  const auto violations = layout.drc();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_NE(violations[0].find("overlap"), std::string::npos);
  EXPECT_NE(violations[1].find("outside"), std::string::npos);
}

TEST(LayoutData, PlacementManagement) {
  Layout layout("l", "src", 4, 4);
  const Device mn = inverter_netlist().device("mn");
  layout.place(mn, 1, 1);
  EXPECT_THROW(layout.place(mn, 2, 2), ExecError);  // already placed
  layout.move("mn", 3, 3);
  EXPECT_EQ(layout.placement("mn").x, 3);
  EXPECT_THROW(layout.move("nope", 0, 0), ExecError);
  layout.unplace("mn");
  EXPECT_FALSE(layout.has_placement("mn"));
  EXPECT_THROW(layout.unplace("mn"), ExecError);
}

}  // namespace
}  // namespace herc::circuit
