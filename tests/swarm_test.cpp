// The swarm harness's own unit tests: trace generation is deterministic
// and profile-shaped, the name grammar cleanly separates harness data
// from everything else, the latency histogram reports sane percentiles,
// and a small in-process swarm — chaos events included — runs the full
// invariant chain clean end to end.  (SIGKILL semantics need a process
// boundary, so the torn-tail path is covered by the `herc swarm` smoke
// test over ChildProcessServer; in-process kill degrades to SIGTERM.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "server/latency.hpp"
#include "sim/swarm.hpp"
#include "sim/trace.hpp"
#include "storage/fsck.hpp"

namespace herc::sim {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> flatten(const Trace& trace) {
  std::vector<std::string> lines;
  for (const TraceClient& client : trace.clients) {
    lines.push_back("user " + client.user);
    for (const TraceRound& round : client.rounds) {
      for (const TraceOp& op : round.ops) {
        lines.push_back(op.line + "|" + op.body + "|" +
                        (op.tracked_import ? op.import_name : "-") +
                        (op.may_fail ? "|mayfail" : ""));
      }
    }
  }
  return lines;
}

TEST(SwarmTraceTest, SameSeedYieldsTheSameTraceDifferentSeedDoesNot) {
  for (const std::string& profile : profile_names()) {
    const Trace a = make_trace(profile, 6, 2, 42);
    const Trace b = make_trace(profile, 6, 2, 42);
    const Trace c = make_trace(profile, 6, 2, 43);
    EXPECT_EQ(flatten(a), flatten(b)) << profile;
    EXPECT_NE(flatten(a), flatten(c)) << profile;
    EXPECT_EQ(a.clients.size(), 6u);
    EXPECT_GT(a.total_ops(), 0u);
  }
  EXPECT_THROW((void)make_trace("no-such-profile", 2, 1, 1),
               std::invalid_argument);
}

TEST(SwarmTraceTest, TrackedImportsFollowTheSwarmGrammar) {
  const Trace trace = make_trace("mixed", 5, 3, 7);
  std::size_t tracked = 0;
  for (std::size_t c = 0; c < trace.clients.size(); ++c) {
    for (const TraceRound& round : trace.clients[c].rounds) {
      for (const TraceOp& op : round.ops) {
        if (!op.tracked_import) continue;
        ++tracked;
        EXPECT_TRUE(is_swarm_name(op.import_name)) << op.import_name;
        EXPECT_EQ(swarm_name_client(op.import_name), c) << op.import_name;
      }
    }
  }
  EXPECT_GT(tracked, 0u);
}

TEST(SwarmTraceTest, NameGrammarRejectsNearMisses) {
  EXPECT_TRUE(is_swarm_name("sw_c0_r0_0"));
  EXPECT_TRUE(is_swarm_name("sw_c12_r3_45"));
  EXPECT_FALSE(is_swarm_name("sw_c_r0_0"));       // no client digits
  EXPECT_FALSE(is_swarm_name("sw_c1_r_0"));       // no round digits
  EXPECT_FALSE(is_swarm_name("sw_c1_r2"));        // missing ordinal
  EXPECT_FALSE(is_swarm_name("sw_c1_r2_3x"));     // trailing junk
  EXPECT_FALSE(is_swarm_name("xsw_c1_r2_3"));     // leading junk
  EXPECT_FALSE(is_swarm_name("cz0_1"));           // chaos-client stem
  EXPECT_FALSE(is_swarm_name(""));
}

TEST(SwarmTraceTest, FaultRoundsAreUntrackedAndOutsideTheGrammar) {
  const TraceRound round = make_fault_round("cz3", "czf3", 99);
  EXPECT_FALSE(round.ops.empty());
  bool saw_run = false;
  for (const TraceOp& op : round.ops) {
    EXPECT_FALSE(op.tracked_import) << op.line;
    EXPECT_TRUE(op.import_name.empty()) << op.line;
    if (op.line.rfind("run ", 0) == 0) {
      saw_run = true;
      EXPECT_TRUE(op.may_fail) << op.line;
    }
  }
  EXPECT_TRUE(saw_run);
}

TEST(SwarmLatencyTest, PercentilesAreOrderedAndNeverUnderstate) {
  server::LatencyHistogram hist;
  EXPECT_EQ(hist.percentile(0.5), 0u);  // empty
  for (std::uint64_t us = 1; us <= 1000; ++us) hist.record(us);
  EXPECT_EQ(hist.count(), 1000u);
  const std::uint64_t p50 = hist.percentile(0.50);
  const std::uint64_t p95 = hist.percentile(0.95);
  const std::uint64_t p99 = hist.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Upper-edge reporting: never understates, and the ~25% bucket
  // resolution bounds the overstatement.
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 640u);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1280u);
  // Exact range stays exact.
  server::LatencyHistogram small;
  for (int i = 0; i < 10; ++i) small.record(7);
  EXPECT_EQ(small.percentile(0.5), 7u);
  EXPECT_EQ(small.percentile(1.0), 7u);
}

TEST(SwarmDriverTest, InProcessSwarmRunsCleanUnderChaos) {
  const std::string dir =
      (fs::temp_directory_path() / "herc_swarm_unit_store").string();
  fs::remove_all(dir);
  {
    InProcessServer control(dir);
    SwarmOptions options;
    options.profile = "mixed";
    options.clients = 8;
    options.rounds = 2;
    options.seed = 3;
    options.chaos = 2;  // fault, then sigterm (in-process: no SIGKILL)
    const SwarmReport report = run_swarm(control, options);
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << violation;
    }
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.ops_acked, 0u);
    ASSERT_EQ(report.events.size(), 2u);
    EXPECT_EQ(report.events[0].kind, "fault");
    EXPECT_EQ(report.events[1].kind, "sigterm");
    // Every crash event healed to a clean store.
    for (const ChaosRecord& event : report.events) {
      if (event.kind == "fault") continue;
      EXPECT_EQ(event.fsck_after, 0) << event.kind;
    }
    EXPECT_GT(report.final_survivors, 0u);
    // The report renders in both shapes without blowing up.
    EXPECT_NE(report.render_text().find("profile"), std::string::npos);
    EXPECT_NE(report.render_json().find("\"violations\""), std::string::npos);
  }
  // After the harness's own final heal the store audits clean offline.
  const storage::FsckReport fsck = storage::fsck_store(dir);
  EXPECT_EQ(fsck.exit_code(), 0) << fsck.render();
  fs::remove_all(dir);
}

TEST(SwarmDriverTest, NetChaosSwarmRunsCleanAndExactlyOnce) {
  const std::string dir =
      (fs::temp_directory_path() / "herc_swarm_netchaos_store").string();
  fs::remove_all(dir);
  {
    InProcessServer control(dir);
    SwarmOptions options;
    options.profile = "mixed";
    options.clients = 8;
    options.rounds = 2;
    options.seed = 5;
    options.chaos = 4;  // net-drop, sigkill->sigterm, net-delay, sigterm
    options.net_chaos = true;
    const SwarmReport report = run_swarm(control, options);
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << violation;
    }
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.ops_acked, 0u);
    ASSERT_EQ(report.events.size(), 4u);
    // The net-chaos cycle interleaves network faults with crashes.
    std::size_t net_events = 0;
    for (const ChaosRecord& event : report.events) {
      if (event.kind.rfind("net-", 0) == 0) ++net_events;
    }
    EXPECT_GE(net_events, 2u);
    EXPECT_GT(report.final_survivors, 0u);
    EXPECT_NE(report.render_text().find("net-"), std::string::npos);
  }
  // Exactly-once held all the way down: the store audits clean offline.
  const storage::FsckReport fsck = storage::fsck_store(dir);
  EXPECT_EQ(fsck.exit_code(), 0) << fsck.render();
  fs::remove_all(dir);
}

TEST(SwarmDriverTest, HealOfAFreshlySealedStoreIsANoOp) {
  const std::string dir =
      (fs::temp_directory_path() / "herc_swarm_heal_store").string();
  fs::remove_all(dir);
  {
    InProcessServer control(dir);
    SwarmOptions options;
    options.profile = "queries";
    options.clients = 2;
    options.rounds = 1;
    options.seed = 11;
    const SwarmReport report = run_swarm(control, options);
    EXPECT_TRUE(report.ok());
  }
  const HealReport heal = heal_store(dir);
  EXPECT_EQ(heal.error, "");
  EXPECT_EQ(heal.fsck_before, 0);
  EXPECT_FALSE(heal.repaired);
  EXPECT_EQ(heal.runs_resumed, 0u);
  EXPECT_EQ(heal.fsck_after, 0);
  for (const std::string& name : heal.survivors) {
    EXPECT_TRUE(is_swarm_name(name)) << name;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace herc::sim
