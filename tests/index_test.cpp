// The secondary indexes (src/index) and the query planner they feed:
// tokenization, planner path choice, index/scan parity, cursor pagination,
// annotation staleness (candidate supersets stay exact through
// verification), persistence round trips, skew-triggered rebuilds, and the
// observer hook that keeps replicas' indexes current.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "history/history_db.hpp"
#include "history/query_planner.hpp"
#include "index/indexes.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"
#include "support/text.hpp"

namespace herc::index {
namespace {

namespace fs = std::filesystem;
using data::InstanceId;
using history::AccessPath;
using history::HistoryDb;
using history::PageCursor;
using history::QueryFilter;
using history::QueryPage;
using history::RecordRequest;

std::string scratch(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small mixed history: imports across types/users, one derived record,
/// one annotation rename — enough to light up every index section.
void populate(HistoryDb& db, const schema::TaskSchema& schema) {
  const auto netlist = schema.require("EditedNetlist");
  const auto stimuli = schema.require("Stimuli");
  const auto perf = schema.require("Performance");
  const InstanceId sim =
      db.import_instance(schema.require("Simulator"), "spice", "bin", "ops");
  const InstanceId n0 =
      db.import_instance(netlist, "low pass filter", "aa", "alice");
  const InstanceId waves =
      db.import_instance(stimuli, "square waves", "bb", "bob");
  db.import_instance(netlist, "high pass filter", "cc", "alice", "tuned");
  RecordRequest run;
  run.type = perf;
  run.name = "filter gain";
  run.user = "bob";
  run.derivation.tool = sim;
  run.derivation.inputs = {n0, waves};
  run.derivation.input_roles = {"circuit", "stimuli"};
  run.derivation.task = "Simulator";
  db.record(run);
  db.import_instance(stimuli, "noise burst", "dd", "carol");
}

/// Runs `filter` through the index and through the bare scan; asserts the
/// pages agree and returns the verified ids.
std::vector<InstanceId> exact(const HistoryDb& db, const QueryFilter& filter,
                              const history::SecondaryIndex* index,
                              std::size_t limit = 100) {
  const QueryPage indexed = history::run_page(db, filter, index, limit);
  const QueryPage scanned = history::run_page(db, filter, nullptr, limit);
  EXPECT_EQ(indexed.ids, scanned.ids)
      << "plan " << indexed.plan.describe();
  return indexed.ids;
}

TEST(IndexTest, TokenizeLowercasesAndSplitsOnNonTokenChars) {
  EXPECT_EQ(tokenize("Low-pass Filter v2"),
            (std::vector<std::string>{"low", "pass", "filter", "v2"}));
  EXPECT_EQ(tokenize("sw_c3_r1_0"), (std::vector<std::string>{"sw_c3_r1_0"}));
  EXPECT_TRUE(tokenize("  ---  ").empty());
  EXPECT_TRUE(tokenize("").empty());
}

TEST(IndexTest, IndexableKeywordIsOneTokenRun) {
  EXPECT_TRUE(indexable_keyword("filter"));
  EXPECT_TRUE(indexable_keyword("Sw_C3"));  // case-folded before lookup
  EXPECT_FALSE(indexable_keyword("low pass"));
  EXPECT_FALSE(indexable_keyword("low-pass"));
  EXPECT_FALSE(indexable_keyword(""));
}

TEST(IndexTest, PlannerPicksIndexPathsForSelectivePredicates) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  populate(db, schema);
  HistoryIndexes idx(db);
  idx.rebuild();

  QueryFilter by_keyword;
  by_keyword.keyword = "filter";
  EXPECT_EQ(history::plan_query(db, by_keyword, &idx).path,
            AccessPath::kKeyword);
  // Without the index the only option is the scan.
  EXPECT_EQ(history::plan_query(db, by_keyword, nullptr).path,
            AccessPath::kScan);

  QueryFilter by_user;
  by_user.user = "carol";
  EXPECT_EQ(history::plan_query(db, by_user, &idx).path, AccessPath::kUser);

  QueryFilter by_type;
  by_type.type = schema.require("Stimuli");
  EXPECT_EQ(history::plan_query(db, by_type, &idx).path, AccessPath::kType);

  QueryFilter by_uses;
  by_uses.uses = InstanceId(1);
  // `uses` rides the database's own forward-derivation index, no
  // secondary index required.
  EXPECT_EQ(history::plan_query(db, by_uses, nullptr).path, AccessPath::kUses);

  // Too short for the trigram map and mixed-charset keywords are
  // unservable: the index declines and the planner falls back to the scan.
  QueryFilter short_kw;
  short_kw.keyword = "lo";
  EXPECT_EQ(idx.estimate(short_kw, AccessPath::kKeyword), std::nullopt);
  EXPECT_EQ(history::plan_query(db, short_kw, &idx).path, AccessPath::kScan);
  QueryFilter phrase;
  phrase.keyword = "pass filter";
  EXPECT_EQ(history::plan_query(db, phrase, &idx).path, AccessPath::kScan);
  // ...and the scan still answers substring queries the index cannot.
  EXPECT_EQ(exact(db, phrase, &idx).size(), 2u);
}

TEST(IndexTest, EveryPredicateClassMatchesTheScan) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  populate(db, schema);
  HistoryIndexes idx(db);
  idx.rebuild();

  QueryFilter f;
  f.keyword = "filter";
  EXPECT_EQ(exact(db, f, &idx).size(), 3u);  // both filters + "filter gain"
  f = QueryFilter{};
  f.user = "alice";
  EXPECT_EQ(exact(db, f, &idx).size(), 2u);
  f = QueryFilter{};
  f.type = schema.require("Netlist");  // abstract root: subtypes match
  EXPECT_EQ(exact(db, f, &idx).size(), 2u);
  f = QueryFilter{};
  f.from = db.instance(InstanceId(2)).created;  // inclusive window over
  f.to = db.instance(InstanceId(4)).created;    // the middle three rows
  EXPECT_EQ(exact(db, f, &idx).size(), 3u);
  f = QueryFilter{};
  f.uses = InstanceId(1);
  EXPECT_EQ(exact(db, f, &idx).size(), 1u);
  // Conjunction: keyword + user, verified against both.
  f = QueryFilter{};
  f.keyword = "filter";
  f.user = "alice";
  EXPECT_EQ(exact(db, f, &idx).size(), 2u);
}

TEST(IndexTest, CursorPaginationWalksEveryRowOnce) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  const auto netlist = schema.require("EditedNetlist");
  for (int i = 0; i < 57; ++i) {
    db.import_instance(netlist, "n" + std::to_string(i), "", "u");
  }
  HistoryIndexes idx(db);
  idx.rebuild();

  QueryFilter f;
  f.type = netlist;
  const QueryPage whole = history::run_page(db, f, &idx, 1000);
  ASSERT_EQ(whole.ids.size(), 57u);
  EXPECT_FALSE(whole.next.has_value());

  std::vector<InstanceId> walked;
  std::optional<PageCursor> cursor;
  std::size_t pages = 0;
  for (;;) {
    const QueryPage page = history::run_page(db, f, &idx, 10, cursor);
    EXPECT_LE(page.ids.size(), 10u);
    walked.insert(walked.end(), page.ids.begin(), page.ids.end());
    ++pages;
    if (!page.next) break;
    // The wire encoding round-trips the resume point.
    cursor = PageCursor::decode(page.next->encode());
    ASSERT_TRUE(cursor.has_value());
  }
  EXPECT_EQ(pages, 6u);
  EXPECT_EQ(walked, whole.ids);
}

TEST(IndexTest, AnnotationLeavesStalePostingsButQueriesStayExact) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  HistoryIndexes idx(db);
  idx.rebuild();
  idx.attach();
  const InstanceId id = db.import_instance(schema.require("EditedNetlist"),
                                           "alpha widget", "p", "u");
  db.annotate(id, "beta gadget", "renamed");

  // The old token still has a posting (supersets are kept, not tombstoned)
  // so the estimate is non-zero...
  QueryFilter old_kw;
  old_kw.keyword = "widget";
  ASSERT_TRUE(idx.estimate(old_kw, AccessPath::kKeyword).has_value());
  EXPECT_GE(*idx.estimate(old_kw, AccessPath::kKeyword), 1u);
  // ...but verification drops it, matching the scan exactly.
  EXPECT_TRUE(exact(db, old_kw, &idx).empty());
  QueryFilter new_kw;
  new_kw.keyword = "gadget";
  EXPECT_EQ(exact(db, new_kw, &idx), (std::vector<InstanceId>{id}));
}

TEST(IndexTest, NameCandidatesCoverCurrentNames) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  HistoryIndexes idx(db);
  idx.rebuild();
  idx.attach();
  const InstanceId id = db.import_instance(schema.require("EditedNetlist"),
                                           "low pass filter", "p", "u");
  const auto hits = idx.name_candidates("low pass filter");
  ASSERT_TRUE(hits.has_value());
  EXPECT_NE(std::find(hits->begin(), hits->end(), id), hits->end());
  // A renamed instance must be findable under the new name too.
  db.annotate(id, "output stage", "");
  const auto renamed = idx.name_candidates("output stage");
  ASSERT_TRUE(renamed.has_value());
  EXPECT_NE(std::find(renamed->begin(), renamed->end(), id), renamed->end());
}

TEST(IndexTest, ImageSerializeParseRoundTrips) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  populate(db, schema);
  HistoryIndexes idx(db);
  idx.rebuild();

  const std::string text = idx.image().serialize();
  IndexImage back;
  std::string error;
  ASSERT_TRUE(IndexImage::parse(text, back, error)) << error;
  EXPECT_EQ(back.serialize(), text);
  EXPECT_EQ(back.instances, idx.image().instances);
  EXPECT_EQ(back.edges, idx.image().edges);
  EXPECT_EQ(back.adjacency_digest, idx.image().adjacency_digest);
  EXPECT_EQ(back.by_date, idx.image().by_date);

  // Flipping any byte of the body must be caught by the checksum.
  std::string bent = text;
  bent[bent.size() / 2] ^= 0x20;
  EXPECT_FALSE(IndexImage::parse(bent, back, error));
}

TEST(IndexTest, OpenLoadsCleanFileAndCatchesUpFromJournal) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  const std::string dir = scratch("herc_index_open");
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  const auto stimuli = schema.require("Stimuli");
  db.import_instance(stimuli, "a waves", "p0", "alice");
  db.import_instance(stimuli, "b waves", "p1", "bob");
  db.import_instance(stimuli, "c waves", "p2", "alice");

  // Save at seq 3, then two more records land in the journal.
  HistoryIndexes writer(db);
  writer.rebuild();
  writer.save(dir, 7, 3);
  db.import_instance(stimuli, "late waves", "p3", "dana");
  db.import_instance(stimuli, "final waves", "p4", "dana");

  // save() ends with the instance lines in id order (no runs here), so
  // the last two lines are exactly the journal tail past seq 3.
  const std::vector<std::string> lines = support::split(db.save(), '\n');
  std::vector<std::string> journal(5, "");
  journal[3] = lines[lines.size() - 3];
  journal[4] = lines[lines.size() - 2];

  HistoryIndexes reader(db);
  const auto report = reader.open(dir, 7, journal);
  EXPECT_TRUE(report.loaded) << report.reason;
  EXPECT_FALSE(report.rebuilt);
  EXPECT_EQ(report.caught_up, 2u);
  QueryFilter f;
  f.user = "dana";
  EXPECT_EQ(exact(db, f, &reader).size(), 2u);
  f = QueryFilter{};
  f.keyword = "waves";
  EXPECT_EQ(exact(db, f, &reader).size(), 5u);
}

TEST(IndexTest, SkewAndCorruptionFallBackToRebuild) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  const std::string dir = scratch("herc_index_skew");
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  populate(db, schema);
  HistoryIndexes writer(db);
  writer.rebuild();
  writer.save(dir, 7, 2);
  const std::vector<std::string> journal(2, "");

  {  // Wrong epoch: the file predates a checkpoint.
    HistoryIndexes idx(db);
    const auto report = idx.open(dir, 8, journal);
    EXPECT_TRUE(report.rebuilt);
    EXPECT_FALSE(report.reason.empty());
    QueryFilter f;
    f.keyword = "filter";
    EXPECT_EQ(exact(db, f, &idx).size(), 3u);
  }
  {  // File seq ahead of the recovered journal: unreachable future image.
    HistoryIndexes idx(db);
    const auto report = idx.open(dir, 7, std::vector<std::string>(1, ""));
    EXPECT_TRUE(report.rebuilt);
  }
  {  // Truncated file: checksum fails, rebuild.
    std::ifstream in(HistoryIndexes::file_path(dir), std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(HistoryIndexes::file_path(dir),
                      std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size() / 2));
    out.close();
    HistoryIndexes idx(db);
    const auto report = idx.open(dir, 7, journal);
    EXPECT_TRUE(report.rebuilt);
  }
  {  // Missing file: cold start is a rebuild, not an error.
    fs::remove(HistoryIndexes::file_path(dir));
    HistoryIndexes idx(db);
    const auto report = idx.open(dir, 7, journal);
    EXPECT_TRUE(report.rebuilt);
    EXPECT_FALSE(report.loaded);
  }
}

TEST(IndexTest, ObserverMaintainsIndexThroughReplicaStyleApply) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock_a(1000, 10);
  HistoryDb leader(schema, clock_a);
  populate(leader, schema);

  // A follower applies the leader's save()-format records, exactly as the
  // replica applier feeds frames; its attached index must converge.
  support::ManualClock clock_b(0, 1);
  HistoryDb follower(schema, clock_b);
  HistoryIndexes live(follower);
  live.rebuild();
  live.attach();
  for (const std::string& line : support::split(leader.save(), '\n')) {
    if (!line.empty()) follower.apply_saved_line(line);
  }
  ASSERT_EQ(follower.size(), leader.size());

  HistoryIndexes fresh(follower);
  fresh.rebuild();
  for (const char* kw : {"filter", "waves", "noise"}) {
    QueryFilter f;
    f.keyword = kw;
    EXPECT_EQ(exact(follower, f, &live), exact(follower, f, &fresh)) << kw;
  }
  QueryFilter by_user;
  by_user.user = "carol";
  EXPECT_EQ(exact(follower, by_user, &live).size(), 1u);
}

TEST(IndexTest, MoveAssignResyncTriggersRebuildViaOnReset) {
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(1000, 10);
  HistoryDb db(schema, clock);
  db.import_instance(schema.require("Stimuli"), "old contents", "p", "u");
  HistoryIndexes idx(db);
  idx.rebuild();
  idx.attach();

  // The replica resync path: a freshly recovered database is move-assigned
  // over the live one.  The target keeps its observers and fires on_reset,
  // so the index re-derives itself from the new contents.
  support::ManualClock clock2(5000, 10);
  HistoryDb fresh(schema, clock2);
  populate(fresh, schema);
  db = std::move(fresh);

  QueryFilter gone;
  gone.keyword = "contents";
  EXPECT_TRUE(exact(db, gone, &idx).empty());
  QueryFilter now;
  now.keyword = "filter";
  EXPECT_EQ(exact(db, now, &idx).size(), 3u);
  // And the index keeps following post-resync mutations.
  db.import_instance(schema.require("Stimuli"), "post resync", "p", "erin");
  QueryFilter post;
  post.user = "erin";
  EXPECT_EQ(exact(db, post, &idx).size(), 1u);
}

}  // namespace
}  // namespace herc::index
