// Design-history database semantics (§3.3, §4.2).
#include <gtest/gtest.h>

#include <algorithm>

#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::history {
namespace {

using data::InstanceId;
using support::HistoryError;

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest()
      : schema_(schema::make_fig1_schema()),
        clock_(100, 10),
        db_(schema_, clock_) {}

  /// Shorthand: record an instance of `type` derived from tool+inputs.
  InstanceId derive(const char* type, InstanceId tool,
                    std::vector<InstanceId> inputs,
                    const char* payload = "x") {
    RecordRequest request;
    request.type = schema_.require(type);
    request.name = std::string(type);
    request.user = "t";
    request.payload = payload;
    request.derivation.tool = tool;
    request.derivation.inputs = std::move(inputs);
    request.derivation.input_roles.assign(request.derivation.inputs.size(),
                                          "");
    request.derivation.task = "test";
    return db_.record(request);
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  HistoryDb db_;
};

TEST_F(HistoryTest, ImportAndLookup) {
  const InstanceId id = db_.import_instance(
      schema_.require("Stimuli"), "step", "wave...", "sutton", "a comment");
  EXPECT_EQ(db_.size(), 1u);
  const Instance& inst = db_.instance(id);
  EXPECT_EQ(inst.name, "step");
  EXPECT_EQ(inst.user, "sutton");
  EXPECT_EQ(inst.comment, "a comment");
  EXPECT_EQ(inst.version, 1u);
  EXPECT_TRUE(inst.derivation.is_import());
  EXPECT_EQ(db_.payload(id), "wave...");
  // Timestamps strictly increase.
  const InstanceId id2 =
      db_.import_instance(schema_.require("Stimuli"), "s2", "y", "u");
  EXPECT_LT(db_.instance(id).created, db_.instance(id2).created);
}

TEST_F(HistoryTest, AbstractTypesCannotBeInstantiated) {
  EXPECT_THROW(
      db_.import_instance(schema_.require("Netlist"), "n", "x", "u"),
      HistoryError);
}

TEST_F(HistoryTest, DerivationValidation) {
  RecordRequest bad;
  bad.type = schema_.require("Performance");
  bad.derivation.inputs = {InstanceId(42)};  // unknown instance
  bad.derivation.input_roles = {""};
  EXPECT_THROW(db_.record(bad), HistoryError);
  RecordRequest mismatched;
  mismatched.type = schema_.require("Performance");
  mismatched.derivation.inputs = {};
  mismatched.derivation.input_roles = {"oops"};
  EXPECT_THROW(db_.record(mismatched), HistoryError);
}

TEST_F(HistoryTest, InstancesOfRespectsSubtypes) {
  const InstanceId edited = db_.import_instance(
      schema_.require("EditedNetlist"), "e", "x", "u");
  const InstanceId extracted = db_.import_instance(
      schema_.require("ExtractedNetlist"), "x", "y", "u");
  const auto all = db_.instances_of(schema_.require("Netlist"));
  EXPECT_EQ(all.size(), 2u);
  const auto only_edited =
      db_.instances_of(schema_.require("EditedNetlist"));
  ASSERT_EQ(only_edited.size(), 1u);
  EXPECT_EQ(only_edited[0], edited);
  const auto exact = db_.instances_of(schema_.require("Netlist"),
                                      /*include_subtypes=*/false);
  EXPECT_TRUE(exact.empty());
  (void)extracted;
}

TEST_F(HistoryTest, ChainingQueries) {
  const InstanceId editor =
      db_.import_instance(schema_.require("CircuitEditor"), "ed", "", "u");
  const InstanceId n1 = db_.import_instance(
      schema_.require("EditedNetlist"), "n1", "a", "u");
  const InstanceId n2 = derive("EditedNetlist", editor, {n1}, "b");
  const InstanceId placer =
      db_.import_instance(schema_.require("Placer"), "pl", "", "u");
  const InstanceId layout = derive("PlacedLayout", placer, {n2}, "c");

  // One-step backward (Fig. 10): tool first, then inputs.
  EXPECT_EQ(db_.derived_from(layout),
            (std::vector<InstanceId>{placer, n2}));
  // Transitive backward reaches the original netlist and the editor.
  const auto closure = db_.derivation_closure(layout);
  EXPECT_NE(std::find(closure.begin(), closure.end(), n1), closure.end());
  EXPECT_NE(std::find(closure.begin(), closure.end(), editor),
            closure.end());
  // Forward: n1 -> n2 -> layout.
  EXPECT_EQ(db_.used_by(n1), std::vector<InstanceId>{n2});
  const auto deps = db_.dependent_closure(n1);
  EXPECT_EQ(deps, (std::vector<InstanceId>{n2, layout}));
  // The tool's forward index sees its products.
  EXPECT_EQ(db_.used_by(placer), std::vector<InstanceId>{layout});
}

TEST_F(HistoryTest, VersionNumberingFollowsEditLineage) {
  const InstanceId editor =
      db_.import_instance(schema_.require("CircuitEditor"), "ed", "", "u");
  const InstanceId n1 = db_.import_instance(
      schema_.require("EditedNetlist"), "n1", "a", "u");
  const InstanceId n2 = derive("EditedNetlist", editor, {n1}, "b");
  const InstanceId n3 = derive("EditedNetlist", editor, {n2}, "c");
  EXPECT_EQ(db_.instance(n1).version, 1u);
  EXPECT_EQ(db_.instance(n2).version, 2u);
  EXPECT_EQ(db_.instance(n3).version, 3u);
  EXPECT_EQ(db_.edit_parent(n2), n1);
  EXPECT_EQ(db_.edit_children(n1), std::vector<InstanceId>{n2});
  EXPECT_TRUE(db_.superseded(n1));
  EXPECT_FALSE(db_.superseded(n3));
  // Cross-subtype edits continue the lineage (same root entity type).
  const InstanceId extractor =
      db_.import_instance(schema_.require("Extractor"), "ex", "", "u");
  const InstanceId placer =
      db_.import_instance(schema_.require("Placer"), "pl", "", "u");
  const InstanceId layout = derive("PlacedLayout", placer, {n3}, "d");
  const InstanceId extracted =
      derive("ExtractedNetlist", extractor, {layout}, "e");
  // Extraction is NOT an edit of n3: the netlist arrives via a layout.
  EXPECT_EQ(db_.instance(extracted).version, 1u);
  EXPECT_FALSE(db_.edit_parent(extracted).has_value());
}

TEST_F(HistoryTest, StalenessSemantics) {
  const InstanceId editor =
      db_.import_instance(schema_.require("CircuitEditor"), "ed", "", "u");
  const InstanceId sim =
      db_.import_instance(schema_.require("Simulator"), "s", "", "u");
  const InstanceId st =
      db_.import_instance(schema_.require("Stimuli"), "st", "w", "u");
  const InstanceId models = db_.import_instance(
      schema_.require("DeviceModels"), "m", "mm", "u");
  const InstanceId n1 = db_.import_instance(
      schema_.require("EditedNetlist"), "n1", "a", "u");

  RecordRequest compose;
  compose.type = schema_.require("Circuit");
  compose.payload = "cc";
  compose.derivation.inputs = {models, n1};
  compose.derivation.input_roles = {"", ""};
  compose.derivation.task = "compose";
  const InstanceId circuit = db_.record(compose);
  const InstanceId perf = derive("Performance", sim, {circuit, st}, "p");

  EXPECT_FALSE(db_.is_stale(perf));
  // A new netlist version appears.
  const InstanceId n2 = derive("EditedNetlist", editor, {n1}, "b");
  EXPECT_TRUE(db_.is_stale(perf));
  EXPECT_EQ(db_.stale_inputs(perf), std::vector<InstanceId>{n1});
  // The new version itself is fresh: its parent's successor is itself.
  EXPECT_FALSE(db_.is_stale(n2));
  // Imports are never stale.
  EXPECT_FALSE(db_.is_stale(n1));
}

TEST_F(HistoryTest, FindExistingMatchesExactDerivation) {
  const InstanceId sim =
      db_.import_instance(schema_.require("Simulator"), "s", "", "u");
  const InstanceId st =
      db_.import_instance(schema_.require("Stimuli"), "st", "w", "u");
  const InstanceId st2 =
      db_.import_instance(schema_.require("Stimuli"), "st2", "w2", "u");
  const InstanceId models = db_.import_instance(
      schema_.require("DeviceModels"), "m", "mm", "u");
  RecordRequest compose;
  compose.type = schema_.require("Circuit");
  compose.payload = "cc";
  compose.derivation.inputs = {models};
  compose.derivation.input_roles = {""};
  const InstanceId circuit = db_.record(compose);
  const InstanceId perf = derive("Performance", sim, {circuit, st}, "p");

  // Exact match, order-insensitive.
  EXPECT_EQ(db_.find_existing(schema_.require("Performance"), sim,
                              {st, circuit}),
            perf);
  // Different input set, tool, or type: no match.
  EXPECT_FALSE(db_.find_existing(schema_.require("Performance"), sim,
                                 {circuit, st2}));
  EXPECT_FALSE(db_.find_existing(schema_.require("Statistics"), sim,
                                 {circuit, st}));
  EXPECT_FALSE(db_.find_existing(schema_.require("Performance"), st,
                                 {circuit, st}));
}

TEST_F(HistoryTest, AnnotationUpdates) {
  const InstanceId id =
      db_.import_instance(schema_.require("Stimuli"), "old", "w", "u");
  db_.annotate(id, "Low pass filter", "renamed by the designer");
  EXPECT_EQ(db_.instance(id).name, "Low pass filter");
  EXPECT_EQ(db_.instance(id).comment, "renamed by the designer");
}

TEST_F(HistoryTest, BlobSharingAcrossInstances) {
  const InstanceId a =
      db_.import_instance(schema_.require("Stimuli"), "a", "same", "u");
  const InstanceId b =
      db_.import_instance(schema_.require("Stimuli"), "b", "same", "u");
  EXPECT_EQ(db_.instance(a).blob, db_.instance(b).blob);
  EXPECT_EQ(db_.blobs().size(), 1u);
  EXPECT_LT(db_.blobs().bytes_stored(), db_.blobs().bytes_logical());
}

TEST_F(HistoryTest, PersistenceRoundTrip) {
  const InstanceId editor =
      db_.import_instance(schema_.require("CircuitEditor"), "ed", "", "u");
  const InstanceId n1 = db_.import_instance(
      schema_.require("EditedNetlist"), "n1", "a", "u");
  const InstanceId n2 = derive("EditedNetlist", editor, {n1}, "b");
  const std::string text = db_.save();

  support::ManualClock clock2(0, 1);
  const HistoryDb back = HistoryDb::load(schema_, clock2, text);
  EXPECT_EQ(back.size(), db_.size());
  EXPECT_EQ(back.instance(n2).version, 2u);
  EXPECT_EQ(back.instance(n2).derivation.tool, editor);
  EXPECT_EQ(back.payload(n2), "b");
  EXPECT_EQ(back.instance(n1).created, db_.instance(n1).created);
  EXPECT_EQ(back.used_by(n1), std::vector<InstanceId>{n2});
  // Round trip is exact.
  EXPECT_EQ(back.save(), text);
}

TEST_F(HistoryTest, LoadRejectsCorruptInput) {
  support::ManualClock clock2(0, 1);
  EXPECT_THROW(HistoryDb::load(schema_, clock2, "mystery|field"),
               HistoryError);
  // An instance referencing a missing blob.
  EXPECT_THROW(
      HistoryDb::load(schema_, clock2,
                      "inst|0|Stimuli|n|u|5|c|deadbeefdeadbeef|1|import|-1|0"),
      HistoryError);
}

TEST_F(HistoryTest, LoadRejectsBlobHashMismatch) {
  db_.import_instance(schema_.require("Stimuli"), "st", "wave", "u");
  std::string text = db_.save();
  // Tamper with the stored payload but keep the recorded key: the reload
  // must recompute the hash and reject the corrupt record.
  const std::size_t at = text.find("wave");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 4, "wavX");
  support::ManualClock clock2(0, 1);
  EXPECT_THROW(HistoryDb::load(schema_, clock2, text), HistoryError);
}

TEST_F(HistoryTest, RoundTripFailureAndSkippedRecords) {
  const InstanceId sim =
      db_.import_instance(schema_.require("Simulator"), "s", "", "u");
  const InstanceId st =
      db_.import_instance(schema_.require("Stimuli"), "st", "w", "u");
  RecordRequest failed;
  failed.type = schema_.require("Performance");
  failed.name = "p";
  failed.user = "u";
  failed.comment = "simulator crashed";
  failed.status = InstanceStatus::kFailed;
  failed.derivation.tool = sim;
  failed.derivation.inputs = {st};
  failed.derivation.input_roles = {"stimuli"};
  failed.derivation.task = "Simulator";
  const InstanceId f = db_.record(failed);
  RecordRequest skipped = failed;
  skipped.comment = "dependency failed";
  skipped.status = InstanceStatus::kSkipped;
  const InstanceId k = db_.record(skipped);

  support::ManualClock clock2(0, 1);
  const HistoryDb back = HistoryDb::load(schema_, clock2, db_.save());
  EXPECT_EQ(back.save(), db_.save());
  EXPECT_EQ(back.instance(f).status, InstanceStatus::kFailed);
  EXPECT_EQ(back.instance(k).status, InstanceStatus::kSkipped);
  EXPECT_EQ(back.instance(f).comment, "simulator crashed");
  EXPECT_EQ(back.instance(f).derivation.input_roles,
            std::vector<std::string>{"stimuli"});
  EXPECT_EQ(back.failures(), (std::vector<InstanceId>{f, k}));
  // Failure semantics survive the round trip: invisible to listings and
  // memoization, version stays 1.
  EXPECT_TRUE(back.instances_of(schema_.require("Performance")).empty());
  EXPECT_FALSE(
      back.find_existing(schema_.require("Performance"), sim, {st}));
  EXPECT_EQ(back.instance(f).version, 1u);
}

TEST_F(HistoryTest, RoundTripCompositeAndEmptyPayloads) {
  // Empty payloads (the Simulator import) and a composite instance
  // (inputs, no tool) both survive save/load.
  const InstanceId sim =
      db_.import_instance(schema_.require("Simulator"), "s", "", "u");
  const InstanceId models = db_.import_instance(
      schema_.require("DeviceModels"), "m", "mm", "u");
  const InstanceId n1 = db_.import_instance(
      schema_.require("EditedNetlist"), "n1", "", "u");
  RecordRequest compose;
  compose.type = schema_.require("Circuit");
  compose.name = "c";
  compose.user = "u";
  compose.payload = "";
  compose.derivation.inputs = {models, n1};
  compose.derivation.input_roles = {"models", "netlist"};
  compose.derivation.task = "compose";
  const InstanceId circuit = db_.record(compose);

  support::ManualClock clock2(0, 1);
  const HistoryDb back = HistoryDb::load(schema_, clock2, db_.save());
  EXPECT_EQ(back.save(), db_.save());
  EXPECT_EQ(back.payload(sim), "");
  EXPECT_EQ(back.payload(circuit), "");
  // The three empty payloads share one blob.
  EXPECT_EQ(back.instance(sim).blob, back.instance(circuit).blob);
  EXPECT_FALSE(back.instance(circuit).derivation.tool.valid());
  EXPECT_EQ(back.instance(circuit).derivation.inputs,
            (std::vector<InstanceId>{models, n1}));
  EXPECT_EQ(back.derived_from(circuit),
            (std::vector<InstanceId>{models, n1}));
  EXPECT_EQ(back.used_by(models), std::vector<InstanceId>{circuit});
}

TEST_F(HistoryTest, AnnotationsSurviveRoundTrip) {
  const InstanceId st =
      db_.import_instance(schema_.require("Stimuli"), "st", "w", "u");
  db_.annotate(st, "renamed", "why I kept it");
  support::ManualClock clock2(0, 1);
  const HistoryDb back = HistoryDb::load(schema_, clock2, db_.save());
  EXPECT_EQ(back.instance(st).name, "renamed");
  EXPECT_EQ(back.instance(st).comment, "why I kept it");
}

TEST_F(HistoryTest, MutationListenerStreamReproducesDatabase) {
  // The journal contract: concatenating every on_mutation payload and
  // re-applying it line by line rebuilds an identical database.
  class Capture : public MutationListener {
   public:
    void on_mutation(std::string_view lines) override { log_ += lines; }
    std::string log_;
  };
  Capture capture;
  db_.attach_listener(&capture);
  const InstanceId editor =
      db_.import_instance(schema_.require("CircuitEditor"), "ed", "t", "u");
  const InstanceId n1 = db_.import_instance(
      schema_.require("EditedNetlist"), "n1", "a", "u");
  derive("EditedNetlist", editor, {n1}, "b");
  db_.annotate(n1, "n1x", "edited");
  db_.attach_listener(nullptr);

  support::ManualClock clock2(0, 1);
  HistoryDb replay(schema_, clock2);
  for (const std::string& line : support::split(capture.log_, '\n')) {
    replay.apply_saved_line(line);
  }
  EXPECT_EQ(replay.save(), db_.save());
  // Replaying through apply_saved_line must not re-notify a listener.
  Capture quiet;
  support::ManualClock clock3(0, 1);
  HistoryDb replay2(schema_, clock3);
  replay2.attach_listener(&quiet);
  for (const std::string& line : support::split(capture.log_, '\n')) {
    replay2.apply_saved_line(line);
  }
  EXPECT_TRUE(quiet.log_.empty());
}

}  // namespace
}  // namespace herc::history
