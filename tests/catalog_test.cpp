// The four catalogs and the four design approaches (§3.4, §4.1).
#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/catalogs.hpp"
#include "circuit/library.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "tools/standard_tools.hpp"

namespace herc::catalog {
namespace {

using support::FlowError;

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest()
      : session_(schema::make_full_schema(), "t",
                 std::make_unique<support::ManualClock>(0, 1)) {}
  core::DesignSession session_;
};

TEST_F(CatalogTest, EntityCatalogListsEveryType) {
  const auto entries = entity_catalog(session_.schema());
  EXPECT_EQ(entries.size(), session_.schema().size());
  const auto find = [&](const char* name) -> const EntityEntry& {
    const auto it =
        std::find_if(entries.begin(), entries.end(),
                     [&](const EntityEntry& e) { return e.name == name; });
    EXPECT_NE(it, entries.end()) << name;
    return *it;
  };
  EXPECT_TRUE(find("Simulator").is_tool);
  EXPECT_TRUE(find("Simulator").is_source);
  EXPECT_TRUE(find("Netlist").is_abstract);
  EXPECT_TRUE(find("Circuit").is_composite);
  EXPECT_FALSE(find("Performance").is_source);
}

TEST_F(CatalogTest, ToolCatalogShowsEncapsulations) {
  const auto entries = tool_catalog(session_.tools());
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [](const ToolEntry& e) { return e.name == "Placer"; });
  ASSERT_NE(it, entries.end());
  EXPECT_EQ(it->encapsulations.size(), 3u);  // default / fast / quality
  // Data entities never appear.
  EXPECT_EQ(std::find_if(entries.begin(), entries.end(),
                         [](const ToolEntry& e) {
                           return e.name == "Stimuli";
                         }),
            entries.end());
}

TEST_F(CatalogTest, DataCatalogFiltersByType) {
  const auto netlist = session_.import_data(
      "EditedNetlist", "n", herc::circuit::inverter_netlist().to_text());
  session_.import_data("Stimuli", "s", "stimuli s\n");
  const auto all = data_catalog(session_.db());
  EXPECT_EQ(all.size(), 2u);
  const auto netlists = data_catalog(
      session_.db(), session_.schema().require("Netlist"));
  ASSERT_EQ(netlists.size(), 1u);
  EXPECT_EQ(netlists[0].instance, netlist);
  EXPECT_EQ(netlists[0].type_name, "EditedNetlist");
}

TEST_F(CatalogTest, FlowCatalogLifecycle) {
  FlowCatalog catalog(session_.schema());
  graph::TaskGraph flow(session_.schema(), "plan-a");
  const graph::NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  flow.bind(flow.inputs_of(perf)[1], data::InstanceId(3));
  catalog.save(flow);
  EXPECT_TRUE(catalog.contains("plan-a"));
  EXPECT_THROW(catalog.save(flow), FlowError);  // duplicate
  catalog.save_or_replace(flow);                // fine

  // Instantiation clears bindings; with_bindings keeps them.
  const graph::TaskGraph fresh = catalog.instantiate("plan-a");
  EXPECT_EQ(fresh.node_count(), flow.node_count());
  for (const graph::NodeId n : fresh.nodes()) {
    EXPECT_TRUE(fresh.bindings(n).empty());
  }
  const graph::TaskGraph kept = catalog.instantiate_with_bindings("plan-a");
  bool any_bound = false;
  for (const graph::NodeId n : kept.nodes()) {
    any_bound |= !kept.bindings(n).empty();
  }
  EXPECT_TRUE(any_bound);

  // Whole-catalog persistence round trip.
  const std::string text = catalog.save_all();
  const FlowCatalog back = FlowCatalog::load_all(session_.schema(), text);
  EXPECT_EQ(back.names(), catalog.names());
  EXPECT_EQ(back.save_all(), text);

  catalog.remove("plan-a");
  EXPECT_FALSE(catalog.contains("plan-a"));
  EXPECT_THROW(catalog.remove("plan-a"), FlowError);
  EXPECT_THROW(catalog.instantiate("plan-a"), FlowError);
}

TEST_F(CatalogTest, GoalBasedStartSeedsGoalNode) {
  const graph::TaskGraph flow = start_from_goal(
      session_.schema(), session_.schema().require("Performance"));
  ASSERT_EQ(flow.node_count(), 1u);
  EXPECT_EQ(session_.schema().entity_name(
                flow.node(flow.nodes().front()).type),
            "Performance");
}

TEST_F(CatalogTest, ToolBasedStartListsProducibleEntities) {
  const ToolStart start = start_from_tool(
      session_.schema(), session_.schema().require("Simulator"));
  std::vector<std::string> names;
  for (const auto t : start.producible) {
    names.push_back(session_.schema().entity_name(t));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Performance"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Statistics"),
            names.end());
  // Starting from a data entity is rejected.
  EXPECT_THROW(
      start_from_tool(session_.schema(), session_.schema().require("Stimuli")),
      FlowError);
}

TEST_F(CatalogTest, DataBasedStartBindsAndListsConsumers) {
  const auto netlist = session_.import_data(
      "EditedNetlist", "n", herc::circuit::inverter_netlist().to_text());
  const DataStart start =
      start_from_data(session_.schema(), session_.db(), netlist);
  EXPECT_EQ(start.flow.bindings(start.data_node),
            std::vector<data::InstanceId>{netlist});
  std::vector<std::string> names;
  for (const auto t : start.consumers) {
    names.push_back(session_.schema().entity_name(t));
  }
  // An EditedNetlist can seed further edits, be placed, composed, verified.
  EXPECT_NE(std::find(names.begin(), names.end(), "PlacedLayout"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Circuit"), names.end());
}

}  // namespace
}  // namespace herc::catalog
