// Switch-level simulator behaviour: logic correctness of the library
// cells, charge retention, X handling, delay annotation.
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "support/error.hpp"

namespace herc::circuit {
namespace {

DeviceModelLibrary models() { return DeviceModelLibrary::standard(); }

/// Drives `nets` through all 2^n combinations and returns the settled
/// output level for each combination.
std::vector<Level> truth_table(const Netlist& nl,
                               const std::vector<std::string>& ins,
                               const std::string& out) {
  const Stimuli st = Stimuli::counter(ins, 1000);
  const SimResult r = simulate(nl, models(), st);
  std::vector<Level> tt;
  const std::size_t codes = std::size_t{1} << ins.size();
  for (std::size_t code = 0; code < codes; ++code) {
    // Sample just before the next code starts, when the net has settled.
    tt.push_back(r.wave(out).at(static_cast<std::int64_t>(code) * 1000 + 999));
  }
  return tt;
}

TEST(SwitchSim, InverterTruth) {
  const auto tt = truth_table(inverter_netlist(), {"in"}, "out");
  EXPECT_EQ(tt[0], Level::kHigh);  // in=0 -> out=1
  EXPECT_EQ(tt[1], Level::kLow);   // in=1 -> out=0
}

TEST(SwitchSim, Nand2Truth) {
  const auto tt = truth_table(nand2_netlist(), {"a", "b"}, "y");
  EXPECT_EQ(tt[0], Level::kHigh);  // 00
  EXPECT_EQ(tt[1], Level::kHigh);  // a=1 b=0
  EXPECT_EQ(tt[2], Level::kHigh);  // a=0 b=1
  EXPECT_EQ(tt[3], Level::kLow);   // 11
}

TEST(SwitchSim, Nor2Truth) {
  const auto tt = truth_table(nor2_netlist(), {"a", "b"}, "y");
  EXPECT_EQ(tt[0], Level::kHigh);
  EXPECT_EQ(tt[1], Level::kLow);
  EXPECT_EQ(tt[2], Level::kLow);
  EXPECT_EQ(tt[3], Level::kLow);
}

TEST(SwitchSim, Xor2Truth) {
  const auto tt = truth_table(xor2_netlist(), {"a", "b"}, "y");
  EXPECT_EQ(tt[0], Level::kLow);
  EXPECT_EQ(tt[1], Level::kHigh);
  EXPECT_EQ(tt[2], Level::kHigh);
  EXPECT_EQ(tt[3], Level::kLow);
}

TEST(SwitchSim, FullAdderTruth) {
  const Netlist fa = full_adder_netlist();
  const auto sum = truth_table(fa, {"a", "b", "cin"}, "sum");
  const auto cout = truth_table(fa, {"a", "b", "cin"}, "cout");
  for (std::size_t code = 0; code < 8; ++code) {
    const int a = static_cast<int>(code & 1);
    const int b = static_cast<int>((code >> 1) & 1);
    const int c = static_cast<int>((code >> 2) & 1);
    const int total = a + b + c;
    EXPECT_EQ(sum[code], (total & 1) != 0 ? Level::kHigh : Level::kLow)
        << "sum at code " << code;
    EXPECT_EQ(cout[code], total >= 2 ? Level::kHigh : Level::kLow)
        << "cout at code " << code;
  }
}

TEST(SwitchSim, LatchStoresData) {
  const Netlist latch = latch_netlist();
  Stimuli st("latch_drive");
  // en=1: q tracks ~~d = d through the forward inverter... q = ~m, m = d.
  // Write 1, close the latch, change d: q must hold.
  st.add_wave(Waveform{"d", {{0, Level::kHigh}, {3000, Level::kLow}}});
  st.add_wave(Waveform{"en", {{0, Level::kHigh}, {2000, Level::kLow}}});
  const SimResult r = simulate(latch, models(), st);
  // After writing d=1 the storage node m=1, so q=~1=0.
  EXPECT_EQ(r.wave("q").at(1500), Level::kLow);
  // Latch closed at t=2000; d drops at t=3000 but q must not change.
  EXPECT_EQ(r.wave("q").at(4000), Level::kLow);
}

TEST(SwitchSim, UndrivenInputIsX) {
  const Netlist inv = inverter_netlist();
  const Stimuli empty("none");
  const SimResult r = simulate(inv, models(), empty);
  EXPECT_EQ(r.wave("out").at(0), Level::kX);
  EXPECT_GE(r.stats.x_nets, 1u);
}

TEST(SwitchSim, DelayGrowsWithLoadCapacitance) {
  Netlist light = inverter_netlist();
  Netlist heavy = inverter_netlist();
  heavy.add_capacitor("cl", "out", "GND", 1.0);
  Stimuli st("step");
  st.add_wave(Waveform{"in", {{0, Level::kLow}, {5000, Level::kHigh}}});
  const auto d_light = simulate(light, models(), st).max_delay_ps;
  const auto d_heavy = simulate(heavy, models(), st).max_delay_ps;
  EXPECT_GT(d_heavy, d_light);
}

TEST(SwitchSim, WiderDriverIsFaster) {
  Netlist slow = inverter_netlist();
  slow.add_capacitor("cl", "out", "GND", 0.5);
  Netlist fast = slow;
  fast.device_mut("mn").value = 4.0;
  fast.device_mut("mp").value = 4.0;
  Stimuli st("step");
  st.add_wave(Waveform{"in", {{0, Level::kLow}, {5000, Level::kHigh}}});
  EXPECT_LT(simulate(fast, models(), st).max_delay_ps,
            simulate(slow, models(), st).max_delay_ps);
}

TEST(SwitchSim, StatisticsAreRecorded) {
  const Stimuli st = Stimuli::counter({"a", "b"}, 1000);
  const SimResult r = simulate(nand2_netlist(), models(), st);
  EXPECT_EQ(r.stats.input_events, st.event_times().size());
  EXPECT_GT(r.stats.relax_iterations, 0u);
  EXPECT_GT(r.stats.output_toggles, 0u);
  EXPECT_EQ(r.stats.x_nets, 0u);
}

TEST(SwitchSim, PerformanceRoundTripsThroughText) {
  const Stimuli st = Stimuli::counter({"a", "b"}, 1000);
  const SimResult r = simulate(nand2_netlist(), models(), st);
  const SimResult back = SimResult::from_text(r.to_text());
  EXPECT_EQ(back.max_delay_ps, r.max_delay_ps);
  ASSERT_EQ(back.waves.size(), r.waves.size());
  for (std::size_t i = 0; i < r.waves.size(); ++i) {
    EXPECT_EQ(back.waves[i].net, r.waves[i].net);
    ASSERT_EQ(back.waves[i].points.size(), r.waves[i].points.size());
    for (std::size_t p = 0; p < r.waves[i].points.size(); ++p) {
      EXPECT_EQ(back.waves[i].points[p].time_ps,
                r.waves[i].points[p].time_ps);
      EXPECT_EQ(back.waves[i].points[p].level, r.waves[i].points[p].level);
    }
  }
  EXPECT_EQ(back.stats.output_toggles, r.stats.output_toggles);
}

TEST(SwitchSim, UnknownModelIsRejected) {
  Netlist nl = inverter_netlist();
  nl.device_mut("mn").model = "mystery";
  const Stimuli st = Stimuli::counter({"in"}, 1000);
  EXPECT_THROW(simulate(nl, models(), st), support::ExecError);
}

TEST(SwitchSim, RippleAdderAddsCorrectly) {
  const Netlist adder = ripple_adder_netlist(2);
  // a=3 (a0=1,a1=1), b=1 (b0=1,b1=0), cin=0 -> sum=00, cout=1 (3+1=4).
  Stimuli st("add");
  st.add_wave(Waveform{"a0", {{0, Level::kHigh}}});
  st.add_wave(Waveform{"a1", {{0, Level::kHigh}}});
  st.add_wave(Waveform{"b0", {{0, Level::kHigh}}});
  st.add_wave(Waveform{"b1", {{0, Level::kLow}}});
  st.add_wave(Waveform{"cin", {{0, Level::kLow}, {1000, Level::kLow}}});
  const SimResult r = simulate(adder, models(), st);
  EXPECT_EQ(r.wave("s0").at(1999), Level::kLow);
  EXPECT_EQ(r.wave("s1").at(1999), Level::kLow);
  EXPECT_EQ(r.wave("cout").at(1999), Level::kHigh);
}

}  // namespace
}  // namespace herc::circuit
