// Index crash-recovery properties, swept exhaustively:
//
//   1. JOURNAL truncated at every byte offset: for each offset the frame
//      recovery yields some k-frame prefix (the per-byte frame mapping is
//      proved in storage_property_test); here, at every distinct k, three
//      independently derived indexes — incrementally maintained through
//      the observer hook, loaded-from-file + caught up from the journal
//      tail, and rebuilt cold from the recovered database — must answer
//      every predicate class identically to the verified table scan.
//   2. INDEX FILE truncated at every byte offset: `IndexImage::parse`
//      must reject every proper prefix (header/checksum discipline), and
//      `HistoryIndexes::open` on sampled truncations must fall back to a
//      rebuild whose answers are again scan-exact.  The index can never
//      be wrong, only cold.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "history/history_db.hpp"
#include "history/query_planner.hpp"
#include "index/indexes.hpp"
#include "property_seed.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/text.hpp"

namespace herc::index {
namespace {

namespace fs = std::filesystem;
using data::InstanceId;
using history::HistoryDb;
using history::QueryFilter;
using history::RecordRequest;

constexpr std::size_t kMutations = 220;
constexpr std::uint64_t kSeedFallback = 0x5851f42d4c957f2dULL;

std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Deterministic mutation mix touching every index section: imports across
/// types/users, derived records (adjacency), annotation renames (stale
/// postings), quarantines (token injection).
void mutate(HistoryDb& db, const schema::TaskSchema& schema,
            std::uint64_t seed) {
  const InstanceId editor =
      db.import_instance(schema.require("CircuitEditor"), "ed", "tool", "ops");
  std::vector<InstanceId> pool;
  std::uint64_t rng = seed;
  const std::vector<std::string> users = {"alice", "bob", "carol"};
  for (std::size_t i = 1; i < kMutations; ++i) {
    const std::uint64_t pick = next_rand(rng) % 10;
    const std::string& user = users[next_rand(rng) % users.size()];
    if (pick < 4 || pool.empty()) {
      const bool stim = next_rand(rng) % 3 == 0;
      pool.push_back(db.import_instance(
          schema.require(stim ? "Stimuli" : "EditedNetlist"),
          (stim ? "wave " : "net ") + std::to_string(i),
          "p" + std::to_string(next_rand(rng) % 5), user));
    } else if (pick < 7) {
      RecordRequest edit;
      edit.type = schema.require("EditedNetlist");
      edit.name = "edit " + std::to_string(i);
      edit.user = user;
      edit.payload = "q" + std::to_string(next_rand(rng) % 5);
      edit.derivation.tool = editor;
      edit.derivation.inputs = {pool[next_rand(rng) % pool.size()]};
      edit.derivation.input_roles = {""};
      edit.derivation.task = "edit";
      pool.push_back(db.record(edit));
    } else if (pick < 9) {
      db.annotate(pool[next_rand(rng) % pool.size()],
                  "renamed " + std::to_string(i), "tuned");
    } else {
      const InstanceId victim = pool[next_rand(rng) % pool.size()];
      if (db.instance(victim).ok()) db.quarantine(victim, "drift");
    }
  }
}

/// The predicate classes every index variant must answer exactly.
std::vector<QueryFilter> probes(const schema::TaskSchema& schema,
                                const HistoryDb& db) {
  std::vector<QueryFilter> out;
  QueryFilter f;
  f.keyword = "wave";
  out.push_back(f);
  f = QueryFilter{};
  f.keyword = "renamed";  // annotation-added tokens
  out.push_back(f);
  f = QueryFilter{};
  f.user = "carol";
  out.push_back(f);
  f = QueryFilter{};
  f.type = schema.require("Netlist");
  out.push_back(f);
  if (db.size() > 4) {
    f = QueryFilter{};
    f.from = db.instance(InstanceId(1)).created;
    f.to = db.instance(InstanceId(
                           static_cast<std::uint32_t>(db.size() / 2)))
               .created;
    out.push_back(f);
  }
  if (db.size() > 1) {
    f = QueryFilter{};
    f.uses = InstanceId(1);  // the first pool member, input to early edits
    f.include_failures = true;
    out.push_back(f);
  }
  return out;
}

/// Asserts `index` answers every probe identically to the bare scan,
/// including a paged walk of the first probe.
void expect_scan_exact(const schema::TaskSchema& schema, const HistoryDb& db,
                       const history::SecondaryIndex* index,
                       const std::string& what) {
  for (const QueryFilter& f : probes(schema, db)) {
    const auto indexed = history::run_page(db, f, index, 10000);
    const auto scanned = history::run_page(db, f, nullptr, 10000);
    ASSERT_EQ(indexed.ids, scanned.ids)
        << what << ", plan " << indexed.plan.describe();
  }
  if (db.size() == 0) return;
  QueryFilter walk;
  walk.keyword = "e";  // unindexable (too short): exercises scan+cursor
  std::vector<InstanceId> paged;
  std::optional<history::PageCursor> cursor;
  for (;;) {
    const auto page = history::run_page(db, walk, index, 7, cursor);
    paged.insert(paged.end(), page.ids.begin(), page.ids.end());
    if (!page.next) break;
    cursor = page.next;
  }
  const auto whole = history::run_page(db, walk, nullptr, 100000);
  ASSERT_EQ(paged, whole.ids) << what << " (paged walk)";
}

HistoryDb apply_records(const schema::TaskSchema& schema,
                        support::Clock& clock,
                        const std::vector<std::string>& records,
                        std::size_t count) {
  HistoryDb db(schema, clock);
  for (std::size_t i = 0; i < count; ++i) {
    for (const std::string& line : support::split(records[i], '\n')) {
      db.apply_saved_line(line);
    }
  }
  return db;
}

TEST(IndexPropertyTest, EveryJournalTruncationConvergesAllThreeWays) {
  const std::uint64_t seed = testprop::base_seed(kSeedFallback);
  SCOPED_TRACE(testprop::seed_note(seed));
  const schema::TaskSchema schema = schema::make_fig1_schema();
  const std::string dir =
      (fs::temp_directory_path() / "herc_index_property").string();
  fs::remove_all(dir);

  std::uint64_t epoch = 0;
  {
    support::ManualClock clock(100, 10);
    storage::StoreOptions options;
    options.journal.sync = storage::SyncPolicy::kNone;
    storage::DurableHistory store(schema, clock, dir, options);
    mutate(store.db(), schema, seed);
    // The quarantine branch is a no-op on non-OK picks, so the journaled
    // count is seed-dependent; the scan below is the reference.
    ASSERT_GE(store.records_journaled(), kMutations / 2);
    epoch = store.epoch();
  }
  std::string bytes;
  {
    std::ifstream in((fs::path(dir) / "journal.wal").string(),
                     std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  const storage::ScanResult reference = storage::scan_journal(bytes);
  ASSERT_TRUE(reference.header_valid);
  const std::size_t total = reference.records.size();

  // A mid-history index file: prefixes past kSavedAt exercise load+catchup,
  // prefixes before it exercise the seq-ahead rebuild.
  const std::size_t kSavedAt = total / 2;
  const std::string save_dir = dir + "_saved";
  fs::remove_all(save_dir);
  fs::create_directories(save_dir);
  {
    support::ManualClock clock(0, 1);
    HistoryDb at_save =
        apply_records(schema, clock, reference.records, kSavedAt);
    HistoryIndexes writer(at_save);
    writer.rebuild();
    writer.save(save_dir, epoch, kSavedAt);
  }

  // The incrementally maintained index lives on one growing database.
  support::ManualClock grow_clock(0, 1);
  HistoryDb grow(schema, grow_clock);
  HistoryIndexes live(grow);
  live.rebuild();
  live.attach();

  // Sweep every byte offset; the recovered frame count changes only at
  // frame boundaries, so the (expensive) three-way convergence check runs
  // once per distinct k — which still covers every byte offset, because
  // recovery is a pure function of the recovered frame list.
  std::size_t checked = 0;
  std::size_t frames_seen = 0;
  const std::string_view view(bytes);
  for (std::size_t t = storage::kJournalHeaderBytes; t <= bytes.size(); ++t) {
    const storage::ScanResult scan = storage::scan_journal(view.substr(0, t));
    ASSERT_TRUE(scan.header_valid) << "offset " << t;
    const std::size_t k = scan.records.size();
    if (k < frames_seen) FAIL() << "frame count regressed at " << t;
    if (k == frames_seen && t != storage::kJournalHeaderBytes) continue;
    frames_seen = k;
    ++checked;

    // (a) incremental: feed the newly completed frame to the live index.
    if (k > 0) {
      for (const std::string& line :
           support::split(scan.records[k - 1], '\n')) {
        grow.apply_saved_line(line);
      }
    }
    expect_scan_exact(schema, grow, &live,
                      "incremental @" + std::to_string(k));

    // (b) load + catch up (or seq-ahead rebuild) on a cold recovery.
    support::ManualClock clock(0, 1);
    HistoryDb recovered = apply_records(schema, clock, scan.records, k);
    ASSERT_EQ(recovered.size(), grow.size()) << "frames " << k;
    HistoryIndexes opened(recovered);
    const auto report = opened.open(save_dir, epoch, scan.records);
    if (k >= kSavedAt) {
      ASSERT_TRUE(report.loaded) << "frames " << k << ": " << report.reason;
      ASSERT_EQ(report.caught_up, k - kSavedAt);
    } else {
      ASSERT_TRUE(report.rebuilt) << "frames " << k;
    }
    expect_scan_exact(schema, recovered, &opened,
                      "opened @" + std::to_string(k));

    // (c) cold rebuild.
    HistoryIndexes rebuilt(recovered);
    rebuilt.rebuild();
    expect_scan_exact(schema, recovered, &rebuilt,
                      "rebuilt @" + std::to_string(k));
  }
  ASSERT_EQ(frames_seen, total);
  ASSERT_EQ(checked, total + 1);

  fs::remove_all(dir);
  fs::remove_all(save_dir);
}

TEST(IndexPropertyTest, EveryIndexFileTruncationIsRejectedThenRebuilt) {
  const std::uint64_t seed = testprop::base_seed(kSeedFallback);
  SCOPED_TRACE(testprop::seed_note(seed));
  const schema::TaskSchema schema = schema::make_fig1_schema();
  support::ManualClock clock(100, 10);
  HistoryDb db(schema, clock);
  mutate(db, schema, seed);

  HistoryIndexes writer(db);
  writer.rebuild();
  const std::string full = writer.image().serialize();
  ASSERT_GT(full.size(), 100u);

  // Every proper prefix must fail to parse — nothing shorter than the
  // whole file carries a valid checksum.
  IndexImage out;
  std::string error;
  ASSERT_TRUE(IndexImage::parse(full, out, error)) << error;
  for (std::size_t t = 0; t < full.size(); ++t) {
    ASSERT_FALSE(IndexImage::parse(std::string_view(full).substr(0, t), out,
                                   error))
        << "offset " << t;
  }

  // Sampled truncations through the real open() path: detect, rebuild,
  // answer scan-exact.
  const std::string dir =
      (fs::temp_directory_path() / "herc_index_property_file").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::vector<std::string> no_journal;
  std::vector<std::size_t> sampled;
  for (std::size_t t = 0; t < full.size(); t += 173) sampled.push_back(t);
  for (std::size_t back = 1; back <= 8 && back <= full.size(); ++back) {
    sampled.push_back(full.size() - back);
  }
  for (const std::size_t t : sampled) {
    {
      std::ofstream outf(HistoryIndexes::file_path(dir),
                         std::ios::binary | std::ios::trunc);
      outf.write(full.data(), static_cast<std::streamsize>(t));
    }
    HistoryIndexes idx(db);
    const auto report = idx.open(dir, writer.image().epoch, no_journal);
    ASSERT_TRUE(report.rebuilt) << "offset " << t;
    ASSERT_FALSE(report.reason.empty()) << "offset " << t;
    QueryFilter f;
    f.keyword = "wave";
    const auto indexed = history::run_page(db, f, &idx, 10000);
    const auto scanned = history::run_page(db, f, nullptr, 10000);
    ASSERT_EQ(indexed.ids, scanned.ids) << "offset " << t;
  }
  // And the untruncated file loads cleanly at the stamped epoch/seq.
  {
    std::ofstream outf(HistoryIndexes::file_path(dir),
                       std::ios::binary | std::ios::trunc);
    outf << full;
  }
  HistoryIndexes idx(db);
  const auto report = idx.open(dir, writer.image().epoch, no_journal);
  EXPECT_TRUE(report.loaded) << report.reason;
  EXPECT_FALSE(report.rebuilt);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace herc::index
