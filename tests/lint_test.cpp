// Fixture suite for the static analyzer (`herc lint`): every HLxxx
// diagnostic code has a positive test (a minimal defect that fires it) and
// a negative test (the corrected fixture stays clean of it).
#include <gtest/gtest.h>

#include <string>

#include "analyze/flow_lint.hpp"
#include "analyze/plan_check.hpp"
#include "analyze/schema_lint.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "tools/registry.hpp"

namespace herc::analyze {
namespace {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;

// ---------------------------------------------------------------------------
// Pass 1: schema lint (HL001–HL007)
// ---------------------------------------------------------------------------

TEST(SchemaLint, HL001FiresOnUnbreakableDependencyLoop) {
  schema::TaskSchema s("t");
  const auto tool = s.add_tool("T");
  const auto a = s.add_data("A");
  s.set_functional_dependency(a, tool);
  s.add_data_dependency(a, a, /*optional=*/false, "seed");
  const LintReport r = lint_schema(s);
  EXPECT_TRUE(r.has("HL001"));
  EXPECT_EQ(r.severity(), Severity::kError);
  EXPECT_EQ(r.exit_code(), 2);
}

TEST(SchemaLint, HL001CleanWhenLoopBrokenByOptionalArc) {
  schema::TaskSchema s("t");
  const auto tool = s.add_tool("T");
  const auto a = s.add_data("A");
  s.set_functional_dependency(a, tool);
  s.add_data_dependency(a, a, /*optional=*/true, "seed");
  const LintReport r = lint_schema(s);
  EXPECT_FALSE(r.has("HL001"));
  EXPECT_TRUE(r.clean()) << r.render();
}

TEST(SchemaLint, HL002FiresOnAbstractWithoutConcreteDescendant) {
  schema::TaskSchema s("t");
  s.add_data("A", /*abstract=*/true);
  const LintReport r = lint_schema(s);
  EXPECT_TRUE(r.has("HL002"));
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST(SchemaLint, HL002CleanWithConcreteSubtype) {
  schema::TaskSchema s("t");
  const auto a = s.add_data("A", /*abstract=*/true);
  s.add_subtype("B", a);
  const LintReport r = lint_schema(s);
  EXPECT_FALSE(r.has("HL002"));
  EXPECT_TRUE(r.clean()) << r.render();
}

TEST(SchemaLint, HL003FiresOnCompositeWithoutDataDependency) {
  schema::TaskSchema s("t");
  s.add_composite("C");
  const LintReport r = lint_schema(s);
  EXPECT_TRUE(r.has("HL003"));
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST(SchemaLint, HL003CleanWhenCompositeHasComponents) {
  schema::TaskSchema s("t");
  const auto c = s.add_composite("C");
  const auto part = s.add_data("Part");
  s.add_data_dependency(c, part);
  const LintReport r = lint_schema(s);
  EXPECT_FALSE(r.has("HL003"));
  EXPECT_TRUE(r.clean()) << r.render();
}

/// A base schema for the subtype-ambiguity fixtures: an abstract Base with
/// two concrete subtypes constructed by `tool_x`/`tool_y` from In.
schema::TaskSchema ambiguity_schema(bool same_tool) {
  schema::TaskSchema s("t");
  const auto tool_x = s.add_tool("ToolX");
  const auto tool_y = same_tool ? tool_x : s.add_tool("ToolY");
  const auto in = s.add_data("In");
  const auto base = s.add_data("Base", /*abstract=*/true);
  const auto x = s.add_subtype("X", base);
  const auto y = s.add_subtype("Y", base);
  s.set_functional_dependency(x, tool_x);
  s.add_data_dependency(x, in);
  s.set_functional_dependency(y, tool_y);
  s.add_data_dependency(y, in);
  return s;
}

TEST(SchemaLint, HL004FiresOnInterchangeableSubtypeRules) {
  const LintReport r = lint_schema(ambiguity_schema(/*same_tool=*/true));
  EXPECT_TRUE(r.has("HL004"));
  EXPECT_EQ(r.severity(), Severity::kWarning);
  EXPECT_EQ(r.exit_code(), 1);
}

TEST(SchemaLint, HL004CleanWhenToolsDistinguishSubtypes) {
  const LintReport r = lint_schema(ambiguity_schema(/*same_tool=*/false));
  EXPECT_FALSE(r.has("HL004"));
  EXPECT_TRUE(r.clean()) << r.render();
}

TEST(SchemaLint, HL005FiresOnDisconnectedDataEntity) {
  schema::TaskSchema s("t");
  const auto tool = s.add_tool("T");
  const auto a = s.add_data("A");
  s.set_functional_dependency(a, tool);
  s.add_data("Orphan");
  const LintReport r = lint_schema(s);
  EXPECT_TRUE(r.has("HL005"));
  EXPECT_EQ(r.severity(), Severity::kWarning);
}

TEST(SchemaLint, HL005CleanOnceEntityIsConsumed) {
  schema::TaskSchema s("t");
  const auto tool = s.add_tool("T");
  const auto a = s.add_data("A");
  s.set_functional_dependency(a, tool);
  const auto orphan = s.add_data("Orphan");
  s.add_data_dependency(a, orphan);
  const LintReport r = lint_schema(s);
  EXPECT_FALSE(r.has("HL005"));
  EXPECT_TRUE(r.clean()) << r.render();
}

TEST(SchemaLint, HL006FiresOnUnusedTool) {
  schema::TaskSchema s("t");
  const auto tool = s.add_tool("T");
  const auto a = s.add_data("A");
  s.set_functional_dependency(a, tool);
  s.add_tool("Unused");
  const LintReport r = lint_schema(s);
  EXPECT_TRUE(r.has("HL006"));
  EXPECT_EQ(r.severity(), Severity::kWarning);
}

TEST(SchemaLint, HL006CleanWhenToolServesARuleViaItsAncestor) {
  // Registration resolves through the hierarchy, so a concrete tool whose
  // *abstract ancestor* is the fd target is used (the paper's shared
  // Optimizer encapsulation).
  schema::TaskSchema s("t");
  const auto opt = s.add_tool("Optimizer", /*abstract=*/true);
  s.add_subtype("GradientOptimizer", opt);
  const auto a = s.add_data("A");
  s.set_functional_dependency(a, opt);
  const LintReport r = lint_schema(s);
  EXPECT_FALSE(r.has("HL006"));
  EXPECT_TRUE(r.clean()) << r.render();
}

/// Parent/child schema for the shadowing fixtures; `differ` adds an input
/// to the child so its rule is a genuine refinement.
schema::TaskSchema shadowing_schema(bool differ) {
  schema::TaskSchema s("t");
  const auto tool = s.add_tool("T");
  const auto in = s.add_data("In");
  const auto p = s.add_data("P");
  s.set_functional_dependency(p, tool);
  s.add_data_dependency(p, in);
  const auto c = s.add_subtype("C", p);
  s.set_functional_dependency(c, tool);
  s.add_data_dependency(c, in);
  if (differ) {
    const auto extra = s.add_data("Extra");
    s.add_data_dependency(c, extra);
  }
  return s;
}

TEST(SchemaLint, HL007FiresOnIdenticalShadowingRule) {
  const LintReport r = lint_schema(shadowing_schema(/*differ=*/false));
  EXPECT_TRUE(r.has("HL007"));
  EXPECT_EQ(r.severity(), Severity::kWarning);
}

TEST(SchemaLint, HL007CleanWhenShadowingRuleRefines) {
  const LintReport r = lint_schema(shadowing_schema(/*differ=*/true));
  EXPECT_FALSE(r.has("HL007"));
  EXPECT_TRUE(r.clean()) << r.render();
}

TEST(SchemaLint, StandardSchemasAreClean) {
  EXPECT_TRUE(lint_schema(schema::make_fig1_schema()).clean());
  EXPECT_TRUE(lint_schema(schema::make_fig2_schema()).clean());
  EXPECT_TRUE(lint_schema(schema::make_full_schema()).clean())
      << lint_schema(schema::make_full_schema()).render();
}

TEST(SchemaLint, ValidateDelegatesToTheAnalyzer) {
  // The historical validate() contract: errors throw SchemaError with the
  // analyzer's location + message, warnings do not throw.
  schema::TaskSchema bad("t");
  bad.add_composite("C");
  EXPECT_THROW(bad.validate(), support::SchemaError);
  schema::TaskSchema warn_only("t");
  const auto tool = warn_only.add_tool("T");
  const auto a = warn_only.add_data("A");
  warn_only.set_functional_dependency(a, tool);
  warn_only.add_data("Orphan");  // HL005 warning
  EXPECT_NO_THROW(warn_only.validate());
}

// ---------------------------------------------------------------------------
// Pass 2: flow lint (HL101–HL107)
// ---------------------------------------------------------------------------

class FlowLint : public ::testing::Test {
 protected:
  FlowLint()
      : schema_(schema::make_fig1_schema()),
        clock_(0, 1),
        db_(schema_, clock_) {}

  InstanceId imp(const char* type, const char* name) {
    return db_.import_instance(schema_.require(type), name, "payload", "u");
  }

  /// A Performance flow, expanded one level (tool + Circuit + Stimuli).
  TaskGraph perf_flow() {
    TaskGraph flow(schema_, "f");
    const NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    return flow;
  }

  NodeId node_of(const TaskGraph& flow, const char* type) {
    for (const NodeId n : flow.nodes()) {
      if (flow.node(n).type == schema_.require(type)) return n;
    }
    ADD_FAILURE() << "no node of type " << type;
    return NodeId();
  }

  LintReport lint(const TaskGraph& flow) {
    FlowLintOptions options;
    options.db = &db_;
    return lint_flow(flow, options);
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  history::HistoryDb db_;
};

TEST_F(FlowLint, HL101FiresOnUnknownInstance) {
  TaskGraph flow = perf_flow();
  flow.bind(node_of(flow, "Stimuli"), InstanceId(99));
  const LintReport r = lint(flow);
  EXPECT_TRUE(r.has("HL101"));
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST_F(FlowLint, HL101FiresOnTypeMismatchedBinding) {
  // TaskGraph::bind deliberately does not type-check; lint does.
  TaskGraph flow = perf_flow();
  flow.bind(node_of(flow, "Stimuli"), imp("DeviceModels", "m"));
  EXPECT_TRUE(lint(flow).has("HL101"));
}

TEST_F(FlowLint, HL101CleanOnSatisfyingBinding) {
  TaskGraph flow = perf_flow();
  flow.bind(node_of(flow, "Stimuli"), imp("Stimuli", "step"));
  EXPECT_FALSE(lint(flow).has("HL101"));
}

TEST_F(FlowLint, HL102FiresOnQuarantinedBinding) {
  TaskGraph flow = perf_flow();
  const InstanceId stim = imp("Stimuli", "step");
  db_.quarantine(stim, "crash recovery");
  flow.bind(node_of(flow, "Stimuli"), stim);
  const LintReport r = lint(flow);
  EXPECT_TRUE(r.has("HL102"));
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST_F(FlowLint, HL102CleanOnOkBinding) {
  TaskGraph flow = perf_flow();
  flow.bind(node_of(flow, "Stimuli"), imp("Stimuli", "step"));
  EXPECT_FALSE(lint(flow).has("HL102"));
}

TEST_F(FlowLint, HL103FiresOnUnbindableSourceLeaf) {
  // Stimuli is a source entity; with an empty history nothing can ever
  // satisfy the leaf.
  const TaskGraph flow = perf_flow();
  const LintReport r = lint(flow);
  EXPECT_TRUE(r.has("HL103"));
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST_F(FlowLint, HL103CleanOnceAnInstanceExistsOrTypeIsProducible) {
  TaskGraph flow = perf_flow();
  imp("Stimuli", "step");
  imp("Simulator", "spice");
  const LintReport r = lint(flow);
  // The unexpanded Circuit leaf has no instance either, but it *can* be
  // produced by expanding it — no HL103 for it.
  EXPECT_FALSE(r.has("HL103")) << r.render();
}

TEST_F(FlowLint, HL104FiresOnBranchOutsideTheGoalClosure) {
  TaskGraph flow = perf_flow();
  flow.add_node("Verification");
  FlowLintOptions options;
  options.db = &db_;
  options.goal = node_of(flow, "Performance");
  const LintReport r = lint_flow(flow, options);
  EXPECT_TRUE(r.has("HL104"));
}

TEST_F(FlowLint, HL104NotCheckedWithoutAGoal) {
  TaskGraph flow = perf_flow();
  flow.add_node("Verification");
  EXPECT_FALSE(lint(flow).has("HL104"));
}

TEST_F(FlowLint, HL105FiresWhenNondeterministicProductFeedsTasks) {
  TaskGraph flow = perf_flow();
  const NodeId perf = node_of(flow, "Performance");
  flow.expand_up(perf, schema_.require("PerformancePlot"));
  tools::ToolRegistry registry(schema_);
  tools::Encapsulation enc;
  enc.name = "sim.montecarlo";
  enc.tool_type = schema_.require("Simulator");
  enc.fn = [](const tools::ToolContext&) { return tools::ToolOutput{}; };
  enc.deterministic = false;
  registry.register_encapsulation(enc);
  FlowLintOptions options;
  options.tools = &registry;
  const LintReport r = lint_flow(flow, options);
  EXPECT_TRUE(r.has("HL105"));
}

TEST_F(FlowLint, HL105CleanForDeterministicToolOrTerminalProduct) {
  TaskGraph flow = perf_flow();
  tools::ToolRegistry registry(schema_);
  tools::Encapsulation enc;
  enc.name = "sim.montecarlo";
  enc.tool_type = schema_.require("Simulator");
  enc.fn = [](const tools::ToolContext&) { return tools::ToolOutput{}; };
  enc.deterministic = false;
  registry.register_encapsulation(enc);
  FlowLintOptions options;
  options.tools = &registry;
  // Nondeterministic but terminal (nothing consumes Performance): clean.
  EXPECT_FALSE(lint_flow(flow, options).has("HL105"));
  // Consumed but deterministic: clean.
  TaskGraph flow2 = perf_flow();
  flow2.expand_up(node_of(flow2, "Performance"),
                  schema_.require("PerformancePlot"));
  tools::ToolRegistry registry2(schema_);
  enc.deterministic = true;
  registry2.register_encapsulation(enc);
  FlowLintOptions options2;
  options2.tools = &registry2;
  EXPECT_FALSE(lint_flow(flow2, options2).has("HL105"));
}

TEST_F(FlowLint, HL106FiresOnDiscardedSiblingProduct) {
  // The simulator produces Performance *and* Statistics from the same
  // inputs (Fig. 5); a flow asking only for Performance silently drops
  // the statistics.
  const TaskGraph flow = perf_flow();
  const LintReport r = lint_flow(flow);
  EXPECT_TRUE(r.has("HL106"));
  const std::string text = r.render();
  EXPECT_NE(text.find("Statistics"), std::string::npos);
}

TEST_F(FlowLint, HL106CleanWithCoOutput) {
  TaskGraph flow = perf_flow();
  flow.add_co_output(node_of(flow, "Performance"),
                     schema_.require("Statistics"));
  EXPECT_FALSE(lint_flow(flow).has("HL106"));
}

TEST_F(FlowLint, HL107FiresWhenTheGoalCannotBeSatisfied) {
  TaskGraph flow = perf_flow();
  imp("Simulator", "spice");
  // No Stimuli instance anywhere: the leaf is unbindable (HL103) and the
  // goal's closure can never complete (HL107).
  const LintReport r = lint(flow);
  EXPECT_TRUE(r.has("HL107"));
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST_F(FlowLint, HL107CleanWhenEveryLeafIsSatisfiable) {
  TaskGraph flow = perf_flow();
  imp("Simulator", "spice");
  imp("Stimuli", "step");
  EXPECT_FALSE(lint(flow).has("HL107"));
}

// ---------------------------------------------------------------------------
// Pass 3: plan race check (HL201–HL203)
// ---------------------------------------------------------------------------

/// Two editors over an abstract Text: EditedText (EditorA) and RevisedText
/// (EditorB), both seeded from an optional Text input — the minimal
/// version-race schema.
schema::TaskSchema editors_schema() {
  schema::TaskSchema s("t");
  const auto editor_a = s.add_tool("EditorA");
  const auto editor_b = s.add_tool("EditorB");
  const auto text = s.add_data("Text", /*abstract=*/true);
  const auto edited = s.add_subtype("EditedText", text);
  const auto revised = s.add_subtype("RevisedText", text);
  s.set_functional_dependency(edited, editor_a);
  s.add_data_dependency(edited, text, /*optional=*/true, "seed");
  s.set_functional_dependency(revised, editor_b);
  s.add_data_dependency(revised, text, /*optional=*/true, "seed");
  return s;
}

/// Flow in which both editors consume one shared seed node; `chained`
/// instead feeds the first edit into the second (no race).
TaskGraph editors_flow(const schema::TaskSchema& s, bool chained) {
  TaskGraph flow(s, "edits");
  const NodeId edited = flow.add_node("EditedText");
  graph::ExpandOptions opts;
  opts.include_optional = true;
  flow.expand(edited, opts);
  NodeId seed;
  for (const NodeId n : flow.inputs_of(edited)) seed = n;
  const NodeId revised = flow.add_node("RevisedText");
  const NodeId editor_b = flow.add_node("EditorB");
  flow.connect(revised, editor_b);
  flow.connect(revised, chained ? edited : seed);
  return flow;
}

TEST(PlanCheck, HL201FiresOnConcurrentEditsOfOneLineage) {
  const schema::TaskSchema s = editors_schema();
  const TaskGraph flow = editors_flow(s, /*chained=*/false);
  PlanCheckOptions options;
  options.parallel = true;
  const LintReport r = lint_plan(flow, options);
  EXPECT_TRUE(r.has("HL201")) << r.render();
  EXPECT_EQ(r.severity(), Severity::kError);
}

TEST(PlanCheck, HL201CleanWhenEditsAreChained) {
  const schema::TaskSchema s = editors_schema();
  const TaskGraph flow = editors_flow(s, /*chained=*/true);
  PlanCheckOptions options;
  options.parallel = true;
  EXPECT_FALSE(lint_plan(flow, options).has("HL201"));
}

TEST(PlanCheck, HL201NotCheckedForSerialSchedules) {
  // A serial run executes the groups in plan order: the double edit is a
  // legitimate version branch, not a race.
  const schema::TaskSchema s = editors_schema();
  const TaskGraph flow = editors_flow(s, /*chained=*/false);
  PlanCheckOptions options;
  options.parallel = false;
  EXPECT_TRUE(lint_plan(flow, options).clean());
}

TEST(PlanCheck, HL202FiresOnDuplicateComposeWork) {
  const schema::TaskSchema s = schema::make_fig1_schema();
  TaskGraph flow(s, "dup");
  const NodeId c1 = flow.add_node("Circuit");
  flow.expand(c1);
  const NodeId c2 = flow.add_node("Circuit");
  for (const NodeId in : flow.inputs_of(c1)) flow.connect(c2, in);
  PlanCheckOptions options;
  options.parallel = true;
  const LintReport r = lint_plan(flow, options);
  EXPECT_TRUE(r.has("HL202")) << r.render();
  EXPECT_EQ(r.severity(), Severity::kWarning);
}

TEST(PlanCheck, HL202CleanForIndependentWork) {
  const schema::TaskSchema s = schema::make_fig1_schema();
  TaskGraph flow(s, "nodup");
  flow.expand(flow.add_node("Circuit"));
  flow.expand(flow.add_node("Circuit"));  // distinct input nodes
  PlanCheckOptions options;
  options.parallel = true;
  EXPECT_FALSE(lint_plan(flow, options).has("HL202"));
}

/// Producer/consumer schema where the consumer's only produced input is an
/// optional Mid (`mandatory_link` adds a produced mandatory input too).
schema::TaskSchema continue_schema() {
  schema::TaskSchema s("t");
  const auto p = s.add_tool("P");
  const auto q = s.add_tool("Q");
  const auto src = s.add_data("Src");
  const auto mid = s.add_data("Mid");
  const auto out = s.add_data("Out");
  s.set_functional_dependency(mid, p);
  s.set_functional_dependency(out, q);
  s.add_data_dependency(out, src);
  s.add_data_dependency(out, mid, /*optional=*/true, "hint");
  return s;
}

TaskGraph continue_flow(const schema::TaskSchema& s) {
  TaskGraph flow(s, "cont");
  const NodeId out = flow.add_node("Out");
  graph::ExpandOptions opts;
  opts.include_optional = true;
  flow.expand(out, opts);
  NodeId mid;
  for (const NodeId n : flow.nodes()) {
    if (flow.node(n).type == s.require("Mid")) mid = n;
  }
  flow.expand(mid);
  return flow;
}

TEST(PlanCheck, HL203FiresOnOptionalOnlyLinkUnderContinue) {
  const schema::TaskSchema s = continue_schema();
  const TaskGraph flow = continue_flow(s);
  PlanCheckOptions options;
  options.parallel = false;
  options.continue_on_failure = true;
  const LintReport r = lint_plan(flow, options);
  EXPECT_TRUE(r.has("HL203")) << r.render();
  EXPECT_EQ(r.severity(), Severity::kWarning);
}

TEST(PlanCheck, HL203NotCheckedUnderFailFast) {
  const schema::TaskSchema s = continue_schema();
  const TaskGraph flow = continue_flow(s);
  EXPECT_TRUE(lint_plan(flow, PlanCheckOptions{}).clean());
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

TEST(LintReport, SeverityMergingAndExitCodes) {
  LintReport r("x");
  EXPECT_EQ(r.severity(), Severity::kClean);
  EXPECT_EQ(r.exit_code(), 0);
  r.add("HL005", Severity::kWarning, "entity 'A'", "w");
  EXPECT_EQ(r.exit_code(), 1);
  LintReport other("y");
  other.add("HL001", Severity::kError, "entity 'B'", "e", "fix it");
  r.merge(other);
  EXPECT_EQ(r.exit_code(), 2);
  EXPECT_EQ(r.count(Severity::kWarning), 1u);
  EXPECT_EQ(r.count(Severity::kError), 1u);
  EXPECT_TRUE(r.has("HL001"));
  EXPECT_FALSE(r.has("HL999"));
}

TEST(LintReport, RendersTextAndJson) {
  LintReport r("schema 'demo'");
  r.add("HL001", Severity::kError, "entity 'A'", "broken \"here\"", "fix");
  const std::string text = r.render();
  EXPECT_NE(text.find("HL001"), std::string::npos);
  EXPECT_NE(text.find("fix"), std::string::npos);
  const std::string json = r.render_json();
  EXPECT_NE(json.find("\"code\":\"HL001\""), std::string::npos);
  EXPECT_NE(json.find("\\\"here\\\""), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\":2"), std::string::npos);
}

TEST(LintReport, JsonDiagnosticsAreSortedForStableDiffs) {
  // Two reports whose passes emitted the same findings in different
  // orders must serialize identically: JSON output is sorted by
  // (code, location, message), independent of emission order.
  LintReport a("flow 'sim'");
  a.add("HL020", Severity::kWarning, "node 7", "later");
  a.add("HL004", Severity::kError, "entity 'Netlist'", "earlier");
  a.add("HL004", Severity::kError, "entity 'Models'", "earlier");
  LintReport b("flow 'sim'");
  b.add("HL004", Severity::kError, "entity 'Models'", "earlier");
  b.add("HL004", Severity::kError, "entity 'Netlist'", "earlier");
  b.add("HL020", Severity::kWarning, "node 7", "later");
  EXPECT_EQ(a.render_json(), b.render_json());
  const std::string json = a.render_json();
  EXPECT_LT(json.find("entity 'Models'"), json.find("entity 'Netlist'"));
  EXPECT_LT(json.find("HL004"), json.find("HL020"));
  // The human rendering keeps emission order.
  EXPECT_NE(a.render(), b.render());
}

}  // namespace
}  // namespace herc::analyze
