// Execution-engine behaviour beyond the happy path: error handling,
// sub-flow execution, set-accepting encapsulations, tool-instance
// selection of encapsulations.
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/stimuli.hpp"
#include "exec/consistency.hpp"
#include "exec/executor.hpp"
#include "history/flow_trace.hpp"
#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "tools/standard_tools.hpp"

namespace herc::exec {
namespace {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using support::ExecError;
using support::FlowError;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : schema_(schema::make_full_schema()),
        clock_(0, 1),
        db_(schema_, clock_),
        registry_(schema_),
        executor_(db_, registry_) {
    tools::install_standard_compose_checks(schema_);
    tools::register_standard_tools(registry_);
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  history::HistoryDb db_;
  tools::ToolRegistry registry_;
  Executor executor_;
};

TEST_F(ExecutorTest, UnboundLeavesAreRejectedWithContext) {
  TaskGraph flow(schema_, "f");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  try {
    executor_.run(flow);
    FAIL() << "expected FlowError";
  } catch (const FlowError& e) {
    EXPECT_NE(std::string(e.what()).find("not bound"), std::string::npos);
  }
}

TEST_F(ExecutorTest, ToolFailuresPropagateAsExecErrors) {
  // An editor whose script deletes a nonexistent device fails mid-run.
  const InstanceId bad_editor = db_.import_instance(
      schema_.require("CircuitEditor"), "bad", "del ghost\n", "u");
  const InstanceId netlist = db_.import_instance(
      schema_.require("EditedNetlist"), "n",
      circuit::inverter_netlist().to_text(), "u");
  TaskGraph flow(schema_, "f");
  const NodeId goal = flow.add_node("EditedNetlist");
  flow.expand(goal, graph::ExpandOptions{.include_optional = true});
  flow.bind(flow.tool_of(goal), bad_editor);
  flow.bind(flow.inputs_of(goal)[0], netlist);
  EXPECT_THROW(executor_.run(flow), ExecError);
  // The failed run recorded nothing for the goal.
  EXPECT_TRUE(db_.instances_of(schema_.require("EditedNetlist")).size() ==
              1u);
}

TEST_F(ExecutorTest, ParallelFailurePropagates) {
  const InstanceId bad_editor = db_.import_instance(
      schema_.require("CircuitEditor"), "bad", "del ghost\n", "u");
  const InstanceId netlist = db_.import_instance(
      schema_.require("EditedNetlist"), "n",
      circuit::inverter_netlist().to_text(), "u");
  TaskGraph flow(schema_, "f");
  for (int i = 0; i < 3; ++i) {
    const NodeId goal = flow.add_node("EditedNetlist");
    flow.expand(goal, graph::ExpandOptions{.include_optional = true});
    flow.bind(flow.tool_of(goal), bad_editor);
    flow.bind(flow.inputs_of(goal)[0], netlist);
  }
  ExecOptions options;
  options.parallel = true;
  EXPECT_THROW(executor_.run(flow, options), ExecError);
}

TEST_F(ExecutorTest, EncapsulationChosenByToolInstanceType) {
  // Binding a GradientOptimizer vs AnnealingOptimizer instance to the
  // abstract Optimizer node picks the matching encapsulation arguments.
  const InstanceId netlist = db_.import_instance(
      schema_.require("EditedNetlist"), "n",
      circuit::inverter_chain(2).to_text(), "u");
  const InstanceId models = db_.import_instance(
      schema_.require("DeviceModels"), "m",
      circuit::DeviceModelLibrary::standard().to_text(), "u");
  const InstanceId stimuli = db_.import_instance(
      schema_.require("Stimuli"), "st",
      circuit::Stimuli::random({"in"}, 2000, 6, 3).to_text(), "u");
  const InstanceId gradient = db_.import_instance(
      schema_.require("GradientOptimizer"), "grad", "", "u");
  const InstanceId annealing = db_.import_instance(
      schema_.require("AnnealingOptimizer"), "anneal", "", "u");

  TaskGraph flow(schema_, "opt");
  const NodeId goal = flow.add_node("OptimizedNetlist");
  flow.expand(goal);
  const auto circuit_inputs = flow.expand(flow.inputs_of(goal)[0]);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);
  flow.bind(flow.inputs_of(goal)[1], stimuli);
  // Select BOTH optimizer instances: the task fans out over the tools.
  flow.bind_set(flow.tool_of(goal), {gradient, annealing});

  const ExecResult result = executor_.run(flow);
  ASSERT_EQ(result.of(goal).size(), 2u);
  // Each product records which tool instance made it.
  EXPECT_EQ(db_.instance(result.of(goal)[0]).derivation.tool, gradient);
  EXPECT_EQ(db_.instance(result.of(goal)[1]).derivation.tool, annealing);
  EXPECT_NE(db_.instance(result.of(goal)[0]).derivation.task,
            db_.instance(result.of(goal)[1]).derivation.task);
}

TEST_F(ExecutorTest, RunGoalSkipsUnrelatedBranches) {
  const InstanceId netlist = db_.import_instance(
      schema_.require("EditedNetlist"), "n",
      circuit::inverter_netlist().to_text(), "u");
  const InstanceId models = db_.import_instance(
      schema_.require("DeviceModels"), "m",
      circuit::DeviceModelLibrary::standard().to_text(), "u");
  TaskGraph flow(schema_, "f");
  // Branch 1: a circuit compose (fully bound).
  const NodeId circuit = flow.add_node("Circuit");
  const auto circuit_inputs = flow.expand(circuit);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);
  // Branch 2: an unbound verification task.
  const NodeId verification = flow.add_node("Verification");
  flow.expand(verification);

  const ExecResult result = executor_.run_goal(flow, circuit);
  EXPECT_EQ(result.tasks_run, 1u);
  EXPECT_TRUE(result.single(circuit).valid());
  // run_goal on the unbound branch fails.
  EXPECT_THROW(executor_.run_goal(flow, verification), FlowError);
}

TEST_F(ExecutorTest, RetraceOnFreshInstanceIsAnError) {
  const InstanceId netlist = db_.import_instance(
      schema_.require("EditedNetlist"), "n",
      circuit::inverter_netlist().to_text(), "u");
  EXPECT_THROW(retrace(db_, registry_, netlist), ExecError);
}

TEST_F(ExecutorTest, LatestVersionFollowsNewestBranch) {
  const InstanceId editor = db_.import_instance(
      schema_.require("CircuitEditor"), "e", "set mn value=2\n", "u");
  const InstanceId v1 = db_.import_instance(
      schema_.require("EditedNetlist"), "v1",
      circuit::inverter_netlist().to_text(), "u");
  const auto edit = [&](InstanceId base) {
    TaskGraph flow(schema_, "edit");
    const NodeId goal = flow.add_node("EditedNetlist");
    flow.expand(goal, graph::ExpandOptions{.include_optional = true});
    flow.bind(flow.tool_of(goal), editor);
    flow.bind(flow.inputs_of(goal)[0], base);
    return executor_.run(flow).single(goal);
  };
  const InstanceId v2a = edit(v1);
  const InstanceId v2b = edit(v1);  // branch, created later
  EXPECT_EQ(latest_version(db_, v1), v2b);
  const InstanceId v3 = edit(v2a);
  // v2a's lineage continues to v3; the walk from v1 prefers the newest
  // child at each step (v2b is newer than v2a, and v2b has no children).
  EXPECT_EQ(latest_version(db_, v2a), v3);
  EXPECT_EQ(latest_version(db_, v1), v2b);
}

TEST_F(ExecutorTest, SetAcceptingEncapsulationGetsOneCall) {
  // A batch plotter that renders all selected performances in one call
  // (the paper: the encapsulation "may pass all of the data to a single
  // call of the tool").
  tools::Encapsulation batch;
  batch.name = "Plotter.batch";
  batch.tool_type = schema_.require("Plotter");
  batch.accepts_instance_sets = true;
  batch.fn = [](const tools::ToolContext& ctx) {
    const auto& in = ctx.input("Performance");
    tools::ToolOutput out;
    out.set("PerformancePlot",
            "batch of " + std::to_string(in.payloads.size()) + " plots");
    return out;
  };
  registry_.register_encapsulation(std::move(batch));
  registry_.set_default("Plotter.batch");

  const InstanceId plotter =
      db_.import_instance(schema_.require("Plotter"), "p", "", "u");
  const InstanceId perf1 = db_.import_instance(
      schema_.require("Performance"), "p1", "performance\n", "u");
  const InstanceId perf2 = db_.import_instance(
      schema_.require("Performance"), "p2", "performance\nmetric "
      "max_delay_ps=1\n", "u");
  TaskGraph flow(schema_, "plots");
  const NodeId plot = flow.add_node("PerformancePlot");
  flow.expand(plot);
  flow.bind(flow.tool_of(plot), plotter);
  flow.bind_set(flow.inputs_of(plot)[0], {perf1, perf2});

  const ExecResult result = executor_.run(flow);
  // One call, one product, derivation recording both inputs.
  EXPECT_EQ(result.tasks_run, 1u);
  const InstanceId product = result.single(plot);
  EXPECT_EQ(db_.payload(product), "batch of 2 plots");
  EXPECT_EQ(db_.instance(product).derivation.inputs,
            (std::vector<InstanceId>{perf1, perf2}));
  // With the per-instance default restored, the same flow fans out.
  registry_.set_default("Plotter.default");
  const ExecResult fanned = executor_.run(flow);
  EXPECT_EQ(fanned.tasks_run, 2u);
  EXPECT_EQ(fanned.of(plot).size(), 2u);
}

TEST_F(ExecutorTest, SetConsumingDerivationsRetrace) {
  // Regression: a set-accepting task records more inputs than its schema
  // arc's multiplicity; its backward trace must still build (relaxed
  // edges) and retrace must re-run it with the full set.
  tools::Encapsulation batch;
  batch.name = "Plotter.batch";
  batch.tool_type = schema_.require("Plotter");
  batch.accepts_instance_sets = true;
  batch.fn = [](const tools::ToolContext& ctx) {
    std::string joined;
    for (const std::string& p : ctx.input("Performance").payloads) {
      joined += p + "|";
    }
    tools::ToolOutput out;
    out.set("PerformancePlot", joined);
    return out;
  };
  registry_.register_encapsulation(std::move(batch));
  registry_.set_default("Plotter.batch");

  const InstanceId plotter =
      db_.import_instance(schema_.require("Plotter"), "p", "", "u");
  const InstanceId editor = db_.import_instance(
      schema_.require("CircuitEditor"), "e", "set mn value=2\n", "u");
  // Two "performances" with edit lineage so one can go stale.  (Use
  // netlist payloads for the editor; the plotter here just concatenates.)
  const InstanceId perf1 = db_.import_instance(
      schema_.require("Performance"), "p1", "performance\n", "u");
  const InstanceId perf2 = db_.import_instance(
      schema_.require("Performance"), "p2", "performance\n"
      "metric max_delay_ps=5\n", "u");

  TaskGraph flow(schema_, "plots");
  const NodeId plot = flow.add_node("PerformancePlot");
  flow.expand(plot);
  flow.bind(flow.tool_of(plot), plotter);
  flow.bind_set(flow.inputs_of(plot)[0], {perf1, perf2});
  const InstanceId product = executor_.run(flow).single(plot);
  ASSERT_EQ(db_.instance(product).derivation.inputs.size(), 2u);

  // The backward trace builds despite the arc-multiplicity excess...
  const graph::TaskGraph trace = history::backward_trace(db_, product);
  EXPECT_TRUE(trace.relaxed());
  trace.check();
  // ...and supersede one input: retrace re-runs the batch with both.
  history::RecordRequest edit;
  edit.type = schema_.require("Performance");
  edit.name = "p1v2";
  edit.user = "u";
  edit.payload = "performance\nmetric max_delay_ps=9\n";
  edit.derivation.tool = editor;
  edit.derivation.inputs = {perf1};
  edit.derivation.input_roles = {""};
  edit.derivation.task = "edit";
  const InstanceId perf1_v2 = db_.record(edit);
  EXPECT_TRUE(db_.is_stale(product));
  const auto fresh = retrace(db_, registry_, product);
  ASSERT_EQ(fresh.size(), 1u);
  const auto& new_inputs = db_.instance(fresh[0]).derivation.inputs;
  ASSERT_EQ(new_inputs.size(), 2u);
  EXPECT_NE(std::find(new_inputs.begin(), new_inputs.end(), perf1_v2),
            new_inputs.end());
  EXPECT_NE(std::find(new_inputs.begin(), new_inputs.end(), perf2),
            new_inputs.end());
  // The batch payload contains both performances.
  EXPECT_NE(db_.payload(fresh[0]).find("max_delay_ps=9"),
            std::string::npos);
  EXPECT_NE(db_.payload(fresh[0]).find("max_delay_ps=5"),
            std::string::npos);
}

TEST_F(ExecutorTest, ExecResultSingleRejectsFanOut) {
  ExecResult result;
  const NodeId n(0);
  EXPECT_THROW((void)result.single(n), ExecError);  // nothing produced
  result.produced[n] = {InstanceId(1), InstanceId(2)};
  EXPECT_THROW((void)result.single(n), ExecError);  // fan-out
  result.produced[n] = {InstanceId(1)};
  EXPECT_EQ(result.single(n), InstanceId(1));
}

}  // namespace
}  // namespace herc::exec
