// The server under concurrent load: many clients mixing queries and
// mutations, pipelined replies in order, shared-session refusals, and
// graceful shutdown mid-run leaving a resumable, fsck-clean store.
//
// Runs under the thread-sanitizer CI job: the reader-writer lock around
// the shared DesignSession is the contract being checked.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "storage/fsck.hpp"
#include "support/error.hpp"

namespace herc::server {
namespace {

namespace fs = std::filesystem;

/// A served in-memory session bound to an ephemeral localhost port.
struct ServedSession {
  core::DesignSession session{schema::make_full_schema()};
  Server server{session};
  Endpoint bound;

  ServedSession() {
    bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
    server.start();
  }
};

/// Imports the four Fig. 1 inputs and builds the simulate flow `f` in the
/// client's workspace; returns the number of failed commands.
int build_simulate_flow(Client& client) {
  int failures = 0;
  const auto run = [&](std::string_view line, std::string_view body = "") {
    if (!client.call(line, body).ok()) ++failures;
  };
  run("import EditedNetlist inv", circuit::inverter_netlist().to_text());
  run("import DeviceModels std",
      circuit::DeviceModelLibrary::standard().to_text());
  run("import Stimuli walk", "stimuli walk\nwave in 0:0 1000:1 2000:0\n");
  run("import Simulator sim \"\"");
  run("flow new f goal Performance");
  run("flow expand f 0");
  run("flow expand f 2");
  run("flow bind f 1 i3");
  run("flow bind f 3 i2");
  run("flow bind f 4 i1");
  run("flow bind f 5 i0");
  return failures;
}

TEST(ServerStressTest, ManyClientsMixQueriesAndMutations) {
  ServedSession served;
  constexpr int kClients = 8;
  constexpr int kRounds = 24;
  std::atomic<int> errors{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client = Client::connect(served.bound);
      if (!client.call("session user user" + std::to_string(c)).ok()) {
        ++errors;
      }
      for (int i = 0; i < kRounds; ++i) {
        CallResult result;
        if (i % 3 == 0) {
          // A mutation: imports serialize through the exclusive lock and
          // the shared history db.
          result = client.call(
              "import Stimuli s" + std::to_string(c) + "_" +
                  std::to_string(i),
              "stimuli s\nwave in 0:0 100:1\n");
        } else if (i % 3 == 1) {
          // A query under the shared lock.
          result = client.call("entities");
        } else {
          // Flow building stays in this connection's private workspace.
          result = client.call(i == 2 ? "flow new w" + std::to_string(c) +
                                            " goal Performance"
                                      : "plans");
        }
        if (!result.ok()) ++errors;
      }
      client.close();
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(errors.load(), 0);
  const ServerStats& stats = served.server.stats();
  EXPECT_EQ(stats.connections_accepted.load(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.command_errors.load(), 0u);
  // Every import from every client landed: one instance per mutation round.
  int imports = 0;
  for (int i = 0; i < kRounds; ++i) {
    if (i % 3 == 0) imports += kClients;
  }
  Client checker = Client::connect(served.bound);
  const CallResult browse = checker.call("browse Stimuli");
  EXPECT_TRUE(browse.ok());
  // One browser row per import, plus the banner and column-header lines.
  const long rows =
      std::count(browse.output.begin(), browse.output.end(), '\n') - 2;
  EXPECT_EQ(rows, imports);
  checker.close();
  served.server.stop();
}

TEST(ServerStressTest, PipelinedRepliesArriveStrictlyInOrder) {
  ServedSession served;
  Client client = Client::connect(served.bound);
  constexpr int kDepth = 64;  // deeper than the queue: backpressure path
  for (int i = 0; i < kDepth; ++i) {
    client.send("echo msg-" + std::to_string(i));
  }
  for (int i = 0; i < kDepth; ++i) {
    const CallResult result = client.receive();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.output, "msg-" + std::to_string(i) + "\n");
  }
  client.close();
  served.server.stop();
}

TEST(ServerStressTest, SessionScopedCommandsAreRefusedOnTheSharedSession) {
  ServedSession served;
  Client client = Client::connect(served.bound);
  for (const char* line :
       {"session new full", "session load x", "open /tmp/elsewhere",
        "store close"}) {
    const CallResult result = client.call(line);
    EXPECT_FALSE(result.ok()) << line;
    EXPECT_NE(result.error.find("shared session"), std::string::npos)
        << line << " -> " << result.error;
  }
  // The connection survives a refusal and keeps serving.
  EXPECT_TRUE(client.call("entities").ok());
  client.close();
  served.server.stop();
}

TEST(ServerStressTest, PerConnectionUserIsStampedOnProducts) {
  ServedSession served;
  Client alice = Client::connect(served.bound);
  ASSERT_TRUE(alice.call("session user alice").ok());
  ASSERT_EQ(build_simulate_flow(alice), 0);
  ASSERT_TRUE(alice.call("run f").ok());
  const CallResult browse = alice.call("browse Performance");
  EXPECT_TRUE(browse.ok());
  EXPECT_NE(browse.output.find("alice"), std::string::npos) << browse.output;

  // A second connection has its own identity and its own workspace.
  Client bob = Client::connect(served.bound);
  ASSERT_TRUE(bob.call("session user bob").ok());
  const CallResult result = bob.call("run f");
  EXPECT_FALSE(result.ok());  // alice's flow workspace is not bob's
  bob.close();

  const CallResult stats = alice.call("stats");
  EXPECT_TRUE(stats.ok());
  EXPECT_NE(stats.output.find("user 'alice'"), std::string::npos)
      << stats.output;
  EXPECT_NE(stats.output.find("connection"), std::string::npos);
  alice.close();
  served.server.stop();
}

TEST(ServerStressTest, StopMidRunLeavesAResumableFsckCleanStore) {
  const std::string dir =
      (fs::temp_directory_path() / "herc_server_stress_store").string();
  fs::remove_all(dir);
  {
    core::DesignSession session(schema::make_full_schema());
    session.open_storage(dir);
    Server server(session);
    const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
    server.start();

    Client client = Client::connect(bound);
    ASSERT_EQ(build_simulate_flow(client), 0);
    // Pipelined: don't wait for the reply — the run must still be in
    // flight when stop() lands.  Two chained task groups at 500ms each
    // leave a wide window.
    client.send("run f parallel latency=500");
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server.stop();
    client.close();
    session.close_storage();
  }

  const storage::FsckReport report = storage::fsck_store(dir);
  EXPECT_EQ(report.exit_code(), 0) << report.render();
  EXPECT_TRUE(report.has("resumable-run")) << report.render();

  // A fresh session picks the sealed run back up and finishes it.
  core::DesignSession session(schema::make_full_schema());
  const storage::RecoveryReport recovery = session.open_storage(dir);
  EXPECT_EQ(recovery.interrupted_runs, 1u);
  const auto open = session.db().open_runs();
  ASSERT_EQ(open.size(), 1u);
  const exec::ExecResult result = session.resume_run(open.front()->id);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(session.db().open_runs().empty());
  session.close_storage();

  const storage::FsckReport after = storage::fsck_store(dir);
  EXPECT_EQ(after.exit_code(), 0) << after.render();
  fs::remove_all(dir);
}

// ---- stop() edge cases ------------------------------------------------------
//
// The two nastiest shutdown windows: a client mid-pipeline (replies and
// refusals must stay strictly ordered, with no ok after the first
// refusal), and a client whose bounded queue is full (its reader is
// parked on backpressure when the stop lands).  Both run under the TSan
// CI job, so a leaked connection thread or a lock order mistake in
// `stop()` fails the suite, not just this process's exit code.

TEST(ServerStressTest, StopMidPipelineDrainsOrRefusesInOrder) {
  core::DesignSession session(schema::make_full_schema());
  ServeOptions options;
  options.queue_depth = 4;  // small queue: the reader parks early
  Server server(session, options);
  const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
  server.start();

  constexpr int kCommands = 200;
  Client client = Client::connect(bound);
  // Sends run in a second thread: once the queue is full the server stops
  // draining the socket and a blocked send must not deadlock the test.
  std::thread sender([&] {
    try {
      for (int i = 0; i < kCommands; ++i) {
        client.send("echo " + std::to_string(i));
      }
    } catch (const support::NetError&) {
      // Connection torn by stop() mid-send: expected.
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread stopper([&] { server.stop(); });

  int acked = 0;
  int refused = 0;
  bool out_of_order = false;
  try {
    for (int i = 0; i < kCommands; ++i) {
      const CallResult result = client.receive();
      if (result.ok()) {
        // Replies must arrive strictly in order, and an ok after the
        // first refusal would mean a command overtook the shutdown.
        if (refused > 0 || result.output != std::to_string(acked) + "\n") {
          out_of_order = true;
        }
        ++acked;
      } else {
        EXPECT_NE(result.error.find("shutting down"), std::string::npos)
            << result.error;
        ++refused;
      }
    }
  } catch (const support::NetError&) {
    // Remaining commands never reached the server: the torn connection
    // accounts for them.
  }
  stopper.join();
  sender.join();
  client.close();

  EXPECT_FALSE(out_of_order);
  EXPECT_LE(acked + refused, kCommands);
  EXPECT_FALSE(server.running());
  // The session survives the shutdown intact and is servable again.
  Server second(session);
  const Endpoint again = second.add_listener(Endpoint::parse("127.0.0.1:0"));
  second.start();
  Client probe = Client::connect(again);
  EXPECT_TRUE(probe.call("entities").ok());
  probe.close();
  second.stop();
}

TEST(ServerStressTest, StopWithFullQueueSealsAResumableStore) {
  const std::string dir =
      (fs::temp_directory_path() / "herc_server_stop_full_queue").string();
  fs::remove_all(dir);
  bool resumable = false;
  {
    core::DesignSession session(schema::make_full_schema());
    session.open_storage(dir);
    ServeOptions options;
    options.queue_depth = 2;
    Server server(session, options);
    const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
    server.start();

    Client client = Client::connect(bound);
    ASSERT_EQ(build_simulate_flow(client), 0);
    // A slow run at the queue head plus a flood behind it: the worker is
    // busy, the 2-slot queue fills, the reader parks on backpressure —
    // exactly the state stop() must unwind without losing the store.
    std::thread sender([&] {
      try {
        client.send("run f latency=400");
        for (int i = 0; i < 64; ++i) client.send("entities");
      } catch (const support::NetError&) {
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    server.stop();
    sender.join();

    // Whatever drained must still be well-formed: the run either finished
    // or was cancelled; everything refused says so cleanly.
    try {
      const CallResult run_result = client.receive();
      if (!run_result.ok()) {
        EXPECT_TRUE(
            run_result.error.find("cancelled") != std::string::npos ||
            run_result.error.find("shutting down") != std::string::npos)
            << run_result.error;
      }
      for (int i = 0; i < 64; ++i) {
        const CallResult result = client.receive();
        if (!result.ok()) {
          EXPECT_NE(result.error.find("shutting down"), std::string::npos)
              << result.error;
        }
      }
    } catch (const support::NetError&) {
      // Torn before every reply: fine, the store checks below are the
      // real contract.
    }
    client.close();
    resumable = !session.db().open_runs().empty();
    session.close_storage();
  }

  // The store is fsck-clean; if the run was cut mid-flight it is sealed
  // resumable and a fresh session finishes it.
  const storage::FsckReport report = storage::fsck_store(dir);
  EXPECT_EQ(report.exit_code(), 0) << report.render();
  if (resumable) {
    EXPECT_TRUE(report.has("resumable-run")) << report.render();
    core::DesignSession session(schema::make_full_schema());
    session.open_storage(dir);
    const auto open = session.db().open_runs();
    ASSERT_EQ(open.size(), 1u);
    const exec::ExecResult result = session.resume_run(open.front()->id);
    EXPECT_TRUE(result.complete());
    EXPECT_TRUE(session.db().open_runs().empty());
    session.close_storage();
    const storage::FsckReport after = storage::fsck_store(dir);
    EXPECT_EQ(after.exit_code(), 0) << after.render();
  }
  fs::remove_all(dir);
}

// ---- half-open and dying clients --------------------------------------------
//
// A client that dies mid-frame (or goes silent holding a connection)
// must cost the server one reaped connection, not a wedged worker: the
// deadline reads in the reader loop are the contract.

TEST(ServerStressTest, MidFrameClientDeathDoesNotWedgeTheServer) {
  ServedSession served;
  // A frame header promising 4096 bytes, followed by a fraction of them
  // and an abrupt close: the reader is mid-frame when the peer vanishes.
  std::string torn;
  torn.push_back(static_cast<char>(0x00));
  torn.push_back(static_cast<char>(0x10));
  torn.push_back(static_cast<char>(0x00));
  torn.push_back(static_cast<char>(0x00));
  torn.push_back(static_cast<char>(FrameType::kCommand));
  torn += std::string(64, 'x');
  {
    Socket dying = connect_to(served.bound, 2'000);
    Frame hello;
    ASSERT_TRUE(read_frame(dying.fd(), hello));
    ASSERT_EQ(::send(dying.fd(), torn.data(), torn.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(torn.size()));
    dying.close();
  }
  // The server sheds the torn connection and keeps serving new ones with
  // replies intact and in order.
  Client survivor = Client::connect(served.bound);
  for (int i = 0; i < 8; ++i) {
    const CallResult result = survivor.call("echo after-" + std::to_string(i));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.output, "after-" + std::to_string(i) + "\n");
  }
  survivor.close();
  served.server.stop();
}

TEST(ServerStressTest, MidFrameStallIsReapedByTheFrameDeadline) {
  core::DesignSession session(schema::make_full_schema());
  ServeOptions options;
  options.frame_timeout_ms = 150;
  Server server(session, options);
  const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
  server.start();

  // Half-open: the frame starts, then the peer goes silent WITHOUT
  // closing — only the frame deadline can unpin the reader.
  Socket stalled = connect_to(bound, 2'000);
  Frame hello;
  ASSERT_TRUE(read_frame(stalled.fd(), hello));
  const char header[5] = {0x00, 0x04, 0x00, 0x00,
                          static_cast<char>(FrameType::kCommand)};
  ASSERT_EQ(::send(stalled.fd(), header, sizeof(header), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(header)));

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.stats().connections_reaped.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().connections_reaped.load(), 1u);
  stalled.close();

  Client survivor = Client::connect(bound);
  EXPECT_TRUE(survivor.call("entities").ok());
  survivor.close();
  server.stop();
}

TEST(ServerStressTest, IdleConnectionsAreReapedAndNewOnesStillServed) {
  core::DesignSession session(schema::make_full_schema());
  ServeOptions options;
  options.idle_timeout_ms = 120;
  Server server(session, options);
  const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
  server.start();

  Client idler = Client::connect(bound);
  ASSERT_TRUE(idler.call("entities").ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.stats().connections_reaped.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().connections_reaped.load(), 1u);
  // The reaped socket is dead from the client's side...
  EXPECT_THROW((void)idler.call("entities"), support::NetError);
  idler.close();
  // ...and an active client is never reaped while it keeps talking.
  Client active = Client::connect(bound);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(active.call("entities").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  active.close();
  server.stop();
}

}  // namespace
}  // namespace herc::server
