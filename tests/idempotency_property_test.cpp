// Exactly-once retries, proved the hard way (the journal-truncation
// sweep's discipline applied to the wire):
//
//   1. Kill the connection at EVERY byte offset of an encoded tokened
//      mutation — inside the length prefix, the type byte, the token
//      line, the command, the heredoc body, and after the full frame —
//      then retry the SAME token over a fresh connection.  The retry
//      must succeed and the store must hold exactly one instance: the
//      mutation applied once, never zero times, never twice.
//   2. A replayed token of an applied mutation returns the original
//      reply verbatim (the cached-reply path), not a fresh execution.
//   3. A token older than the dedup window is refused with a structured
//      error instead of silently re-executing.
//   4. Boot ids are fresh per server incarnation — the signal a client
//      uses to know the dedup window is gone.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <string>

#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "support/error.hpp"

namespace herc::server {
namespace {

/// A served in-memory session bound to an ephemeral localhost port.
struct ServedSession {
  core::DesignSession session{schema::make_full_schema()};
  Server server;
  Endpoint bound;

  explicit ServedSession(ServeOptions options = {})
      : server(session, options) {
    bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
    server.start();
  }
  ~ServedSession() { server.stop(); }
};

/// Occurrences of `needle` in `haystack` (the instance count of a
/// fixed-width unique name in a browse listing).
std::size_t count_in(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

/// Connects raw, consumes the server hello, delivers exactly `bytes`,
/// then dies abruptly — a client killed mid-send.
void send_partial_and_die(const Endpoint& endpoint, const std::string& bytes) {
  Socket sock = connect_to(endpoint, 2'000);
  Frame hello;
  ASSERT_TRUE(read_frame(sock.fd(), hello));
  ASSERT_EQ(hello.type, FrameType::kHello);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(sock.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  sock.close();
}

TEST(IdempotencyPropertyTest, KillAtEveryByteThenRetryAppliesExactlyOnce) {
  ServedSession served;
  const std::string kClientId = "prop-client";
  const std::string kBody = "stimuli s\nwave in 0:0 1000:1 2000:0\n";

  // One mutation per cut offset, each with a fixed-width unique name so
  // substring counting in the browse listing is exact.
  const auto name_for = [](std::size_t cut) {
    std::string name = "cut";
    name += static_cast<char>('0' + cut / 100 % 10);
    name += static_cast<char>('0' + cut / 10 % 10);
    name += static_cast<char>('0' + cut % 10);
    return name;
  };

  // Sequence numbers start at 101 so they stay three digits for the
  // whole sweep: with the fixed-width names that keeps every offset's
  // encoded frame the same length.
  const auto seq_for = [](std::size_t cut) {
    return static_cast<std::uint64_t>(101 + cut);
  };
  const auto frame_bytes = [&](std::size_t cut) {
    Frame frame;
    frame.type = FrameType::kTokenCommand;
    frame.payload = encode_token(kClientId, seq_for(cut),
                                 "import Stimuli " + name_for(cut) + "\n" +
                                     kBody);
    return encode_frame(frame);
  };
  const std::size_t frame_size = frame_bytes(0).size();

  Client checker = Client::connect(served.bound);
  // Cut at every offset, including `frame_size` itself: the full frame
  // delivered but the client dead before reading the reply — the one
  // case where the mutation HAS applied and the retry must dedup.
  for (std::size_t cut = 0; cut <= frame_size; ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    const std::string bytes = frame_bytes(cut);
    ASSERT_EQ(bytes.size(), frame_size);
    send_partial_and_die(served.bound, bytes.substr(0, cut));

    // The retry: same client id, same sequence, fresh connection.
    Client retry = Client::connect(served.bound);
    retry.send_token(kClientId, seq_for(cut),
                     "import Stimuli " + name_for(cut), kBody);
    const CallResult result = retry.receive();
    ASSERT_TRUE(result.ok()) << result.error;
    retry.close();

    const CallResult browse = checker.call("browse Stimuli");
    ASSERT_TRUE(browse.ok());
    EXPECT_EQ(count_in(browse.output, name_for(cut)), 1u);
  }

  // The whole sweep applied exactly one instance per offset.
  const CallResult browse = checker.call("browse Stimuli");
  ASSERT_TRUE(browse.ok());
  const long rows =
      std::count(browse.output.begin(), browse.output.end(), '\n') - 2;
  EXPECT_EQ(static_cast<std::size_t>(rows), frame_size + 1);
  // Only full-frame deliveries count as duplicates; every shorter cut
  // never reached the interpreter, so its retry was a first execution.
  EXPECT_GE(served.server.stats().replays_served.load(), 1u);
  checker.close();
}

TEST(IdempotencyPropertyTest, ReplayedTokenReturnsTheCachedReplyVerbatim) {
  ServedSession served;
  Client client = Client::connect(served.bound);
  const std::string body = "stimuli s\nwave in 0:0 100:1\n";

  client.send_token("replayer", 1, "import Stimuli dup_probe", body);
  const CallResult original = client.receive();
  ASSERT_TRUE(original.ok()) << original.error;

  // Same token again on a live connection: the dedup window answers.
  client.send_token("replayer", 1, "import Stimuli dup_probe", body);
  const CallResult replay = client.receive();
  EXPECT_TRUE(replay.ok());
  EXPECT_EQ(replay.output, original.output);
  EXPECT_EQ(replay.severity, original.severity);

  const CallResult browse = client.call("browse Stimuli");
  ASSERT_TRUE(browse.ok());
  EXPECT_EQ(count_in(browse.output, "dup_probe"), 1u);
  EXPECT_GE(served.server.stats().dedup_hits.load(), 1u);
  EXPECT_GE(served.server.stats().replays_served.load(), 1u);
  client.close();
}

TEST(IdempotencyPropertyTest, TokenOlderThanTheWindowIsRefusedNotReExecuted) {
  ServeOptions options;
  options.dedup_window = 4;
  ServedSession served(options);
  Client client = Client::connect(served.bound);
  const std::string body = "stimuli s\nwave in 0:0 100:1\n";

  constexpr std::uint64_t kSends = 10;
  for (std::uint64_t seq = 1; seq <= kSends; ++seq) {
    client.send_token("ager", seq,
                      "import Stimuli age_" + std::to_string(seq), body);
    ASSERT_TRUE(client.receive().ok());
  }
  // Seq 1 fell off the 4-deep window long ago: the server can no longer
  // prove it was applied, so it must refuse — silently re-executing
  // would break exactly-once.
  client.send_token("ager", 1, "import Stimuli age_1", body);
  const CallResult stale = client.receive();
  EXPECT_FALSE(stale.ok());
  EXPECT_NE(stale.error.find("outside the dedup window"), std::string::npos)
      << stale.error;

  const CallResult browse = client.call("browse Stimuli");
  ASSERT_TRUE(browse.ok());
  // age_1 still has exactly its original instance ("age_1" is a prefix
  // of "age_10", so subtract that hit), and nothing was re-executed.
  EXPECT_EQ(count_in(browse.output, "age_10"), 1u);
  EXPECT_EQ(count_in(browse.output, "age_1") - count_in(browse.output,
                                                        "age_10"),
            1u);
  client.close();
}

TEST(IdempotencyPropertyTest, EachServerIncarnationHasAFreshBootId) {
  core::DesignSession session{schema::make_full_schema()};
  std::uint64_t first_boot = 0;
  {
    Server server(session);
    const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
    server.start();
    Client client = Client::connect(bound);
    first_boot = client.server_boot();
    EXPECT_NE(first_boot, 0u);
    EXPECT_EQ(client.role(), "leader");
    EXPECT_FALSE(client.is_replica());
    client.close();
    server.stop();
  }
  Server server(session);
  const Endpoint bound = server.add_listener(Endpoint::parse("127.0.0.1:0"));
  server.start();
  Client client = Client::connect(bound);
  EXPECT_NE(client.server_boot(), 0u);
  EXPECT_NE(client.server_boot(), first_boot);
  client.close();
  server.stop();
}

}  // namespace
}  // namespace herc::server
