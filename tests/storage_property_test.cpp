// Crash-recovery property: truncating the journal at EVERY byte offset
// recovers to a valid prefix of the original history — no exceptions, no
// partial records surfaced.
//
// Structure of the argument (so the full sweep stays fast):
//   1. A 1k-mutation history is journaled; the journal bytes are captured.
//   2. For every byte offset t, `scan_journal` (the exact frame-recovery
//      code the store runs) is applied to the t-byte prefix and must
//      return precisely the frames that fit entirely below t — verified
//      byte-for-byte against the reference frame list.
//   3. Recovery is scan + apply, and apply is a pure function of the
//      frame list; applying every distinct frame-count prefix (0..n) to a
//      fresh database must reproduce the reference database prefix
//      exactly (save()-image hash), which together with (2) covers every
//      byte offset.
//   4. A sampled set of offsets additionally goes through the real
//      file-level path: truncate journal.wal on disk, reopen the store,
//      and keep writing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "history/history_db.hpp"
#include "property_seed.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/hash.hpp"
#include "support/text.hpp"

namespace herc::storage {
namespace {

namespace fs = std::filesystem;
using data::InstanceId;
using history::HistoryDb;
using history::InstanceStatus;
using history::RecordRequest;

constexpr std::size_t kMutations = 1000;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Deterministic xorshift so the mutation mix is reproducible.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Applies `kMutations` deterministic mutations: imports, derived edits,
/// failure records, annotations, with payloads drawn from a small shared
/// pool (exercising blob deduplication in the journal).
void mutate(HistoryDb& db, const schema::TaskSchema& schema) {
  const std::vector<std::string> payloads = {"", "aa", "bb", "cc", "dd",
                                             "ee", "ff", "gg"};
  const InstanceId editor =
      db.import_instance(schema.require("CircuitEditor"), "ed", "tool", "u");
  std::vector<InstanceId> netlists;
  std::uint64_t rng = testprop::base_seed(0x9e3779b97f4a7c15ULL);
  for (std::size_t i = 1; i < kMutations; ++i) {
    const std::uint64_t pick = next_rand(rng) % 10;
    if (pick < 3 || netlists.empty()) {
      netlists.push_back(db.import_instance(
          schema.require("EditedNetlist"), "n" + std::to_string(i),
          payloads[next_rand(rng) % payloads.size()], "u"));
    } else if (pick < 7) {
      RecordRequest edit;
      edit.type = schema.require("EditedNetlist");
      edit.name = "e" + std::to_string(i);
      edit.user = "u";
      edit.payload = payloads[next_rand(rng) % payloads.size()];
      edit.derivation.tool = editor;
      edit.derivation.inputs = {netlists[next_rand(rng) % netlists.size()]};
      edit.derivation.input_roles = {""};
      edit.derivation.task = "edit";
      netlists.push_back(db.record(edit));
    } else if (pick < 9) {
      RecordRequest failed;
      failed.type = schema.require("Stimuli");
      failed.name = "f" + std::to_string(i);
      failed.user = "u";
      failed.comment = "boom";
      failed.status = next_rand(rng) % 2 == 0 ? InstanceStatus::kFailed
                                              : InstanceStatus::kSkipped;
      failed.derivation.tool = editor;
      failed.derivation.inputs = {netlists[next_rand(rng) % netlists.size()]};
      failed.derivation.input_roles = {""};
      failed.derivation.task = "simulate";
      db.record(failed);
    } else {
      const InstanceId target = netlists[next_rand(rng) % netlists.size()];
      db.annotate(target, "renamed" + std::to_string(i), "note");
    }
  }
}

HistoryDb apply_records(const schema::TaskSchema& schema,
                        support::Clock& clock,
                        const std::vector<std::string>& records,
                        std::size_t count) {
  HistoryDb db(schema, clock);
  for (std::size_t i = 0; i < count; ++i) {
    for (const std::string& line : support::split(records[i], '\n')) {
      db.apply_saved_line(line);
    }
  }
  return db;
}

TEST(StoragePropertyTest, EveryByteTruncationRecoversAValidPrefix) {
  SCOPED_TRACE(testprop::seed_note(testprop::base_seed(0x9e3779b97f4a7c15ULL)));
  const schema::TaskSchema schema = schema::make_fig1_schema();
  const std::string dir =
      (fs::temp_directory_path() / "herc_storage_property").string();
  fs::remove_all(dir);

  std::string full_image;
  {
    support::ManualClock clock(100, 10);
    StoreOptions options;
    options.journal.sync = SyncPolicy::kNone;  // CPU-bound sweep, no fsyncs
    DurableHistory store(schema, clock, dir, options);
    mutate(store.db(), schema);
    ASSERT_EQ(store.records_journaled(), kMutations);
    full_image = store.db().save();
  }
  const std::string bytes = slurp((fs::path(dir) / "journal.wal").string());

  // Reference frame list and per-frame end offsets.
  const ScanResult reference = scan_journal(bytes);
  ASSERT_TRUE(reference.header_valid);
  ASSERT_FALSE(reference.torn);
  ASSERT_EQ(reference.records.size(), kMutations);
  std::vector<std::size_t> frame_end;  // frame_end[i] = end of frame i
  std::size_t at = kJournalHeaderBytes;
  for (const std::string& record : reference.records) {
    at += kFrameHeaderBytes + record.size();
    frame_end.push_back(at);
  }
  ASSERT_EQ(at, bytes.size());

  // (3) Applying every frame-count prefix reproduces the reference
  // database prefix exactly.  Expected images come from one incrementally
  // grown database; full recovery must land on the original image.
  std::vector<std::uint64_t> expected_hash(kMutations + 1);
  std::vector<std::size_t> expected_size(kMutations + 1);
  {
    support::ManualClock clock(0, 1);
    HistoryDb grow(schema, clock);
    expected_hash[0] = support::fnv1a(grow.save());
    expected_size[0] = 0;
    for (std::size_t k = 0; k < kMutations; ++k) {
      for (const std::string& line :
           support::split(reference.records[k], '\n')) {
        grow.apply_saved_line(line);
      }
      expected_hash[k + 1] = support::fnv1a(grow.save());
      expected_size[k + 1] = grow.size();
    }
    EXPECT_EQ(grow.save(), full_image);
  }
  for (std::size_t k = 0; k <= kMutations; k += 1) {
    support::ManualClock clock(0, 1);
    const HistoryDb db =
        apply_records(schema, clock, reference.records, k);
    ASSERT_EQ(db.size(), expected_size[k]) << "prefix " << k;
    ASSERT_EQ(support::fnv1a(db.save()), expected_hash[k]) << "prefix " << k;
  }

  // (2) Every byte offset: frame-level recovery returns exactly the
  // frames that fit, byte-for-byte, and never throws.
  const std::string_view view(bytes);
  std::size_t expect_frames = 0;
  for (std::size_t t = 0; t <= bytes.size(); ++t) {
    while (expect_frames < frame_end.size() &&
           frame_end[expect_frames] <= t) {
      ++expect_frames;
    }
    const ScanResult scan = scan_journal(view.substr(0, t));
    if (t < kJournalHeaderBytes) {
      ASSERT_FALSE(scan.header_valid) << "offset " << t;
      ASSERT_TRUE(scan.records.empty()) << "offset " << t;
      continue;
    }
    ASSERT_TRUE(scan.header_valid) << "offset " << t;
    ASSERT_EQ(scan.records.size(), expect_frames) << "offset " << t;
    ASSERT_EQ(scan.valid_bytes, expect_frames == 0
                                    ? kJournalHeaderBytes
                                    : frame_end[expect_frames - 1])
        << "offset " << t;
    ASSERT_EQ(scan.torn, scan.valid_bytes != t) << "offset " << t;
    if (!scan.records.empty()) {
      ASSERT_EQ(scan.records.back(), reference.records[expect_frames - 1])
          << "offset " << t;
    }
  }

  // (4) Sampled offsets through the real file path: truncate on disk,
  // reopen, keep writing.
  std::vector<std::size_t> sampled;
  for (std::size_t t = 0; t <= bytes.size(); t += 997) sampled.push_back(t);
  for (std::size_t back = 0; back <= 40 && back <= bytes.size(); ++back) {
    sampled.push_back(bytes.size() - back);
  }
  sampled.push_back(kJournalHeaderBytes);
  sampled.push_back(kJournalHeaderBytes - 1);
  for (const std::size_t t : sampled) {
    const std::string trial_dir = dir + "_trial";
    fs::remove_all(trial_dir);
    fs::create_directories(trial_dir);
    fs::copy_file(fs::path(dir) / "schema.herc",
                  fs::path(trial_dir) / "schema.herc");
    {
      std::ofstream out((fs::path(trial_dir) / "journal.wal").string(),
                        std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(t));
    }
    support::ManualClock clock(0, 1);
    std::size_t frames = 0;
    while (frames < frame_end.size() && frame_end[frames] <= t) ++frames;
    StoreOptions options;
    options.journal.sync = SyncPolicy::kNone;
    DurableHistory store(schema, clock, trial_dir, options);
    ASSERT_EQ(store.recovery().journal_records_applied, frames)
        << "offset " << t;
    ASSERT_EQ(store.db().size(), expected_size[frames]) << "offset " << t;
    ASSERT_EQ(support::fnv1a(store.db().save()), expected_hash[frames])
        << "offset " << t;
    // The store stays writable after recovery.
    store.db().import_instance(schema.require("Stimuli"), "post", "w", "u");
    ASSERT_EQ(store.db().size(), expected_size[frames] + 1);
    fs::remove_all(trial_dir);
  }

  fs::remove_all(dir);
}

}  // namespace
}  // namespace herc::storage
