// Sequential and pass-transistor cells: mux, SR latch, D flip-flop —
// exercising charge retention, ratioed feedback and clocked behaviour in
// both simulators.
#include <gtest/gtest.h>

#include "circuit/cosmos.hpp"
#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"

namespace herc::circuit {
namespace {

DeviceModelLibrary models() { return DeviceModelLibrary::standard(); }

TEST(Sequential, Mux2SelectsEitherInput) {
  const Netlist mux = mux2_netlist();
  const Stimuli st = Stimuli::counter({"a", "b", "sel"}, 1000);
  const SimResult r = simulate(mux, models(), st);
  for (std::size_t code = 0; code < 8; ++code) {
    const bool a = (code & 1) != 0;
    const bool b = (code & 2) != 0;
    const bool sel = (code & 4) != 0;
    const bool y = sel ? b : a;
    const auto t = static_cast<std::int64_t>(code) * 1000 + 999;
    EXPECT_EQ(r.wave("y").at(t), y ? Level::kHigh : Level::kLow)
        << "code " << code;
  }
}

TEST(Sequential, SrLatchSetsResetsAndHolds) {
  const Netlist latch = sr_latch_netlist();
  Stimuli st("drive");
  // Set (sn=0), release, reset (rn=0), release.
  st.add_wave(Waveform{"sn", {{0, Level::kLow},
                              {1000, Level::kHigh},
                              {4000, Level::kHigh}}});
  st.add_wave(Waveform{"rn", {{0, Level::kHigh},
                              {2000, Level::kLow},
                              {3000, Level::kHigh}}});
  const SimResult r = simulate(latch, models(), st);
  EXPECT_EQ(r.wave("q").at(500), Level::kHigh);    // set
  EXPECT_EQ(r.wave("q").at(1500), Level::kHigh);   // held
  EXPECT_EQ(r.wave("q").at(2500), Level::kLow);    // reset
  EXPECT_EQ(r.wave("q").at(3500), Level::kLow);    // held
  EXPECT_EQ(r.wave("qn").at(3500), Level::kHigh);
}

TEST(Sequential, DffCapturesOnRisingEdge) {
  const Netlist dff = dff_netlist();
  Stimuli st("clocking");
  st.add_wave(Stimuli::clock("clk", 2000, 4));  // edges at 1000,3000,5000,7000
  // d changes while clk is high (must be ignored) and while low (sampled).
  st.add_wave(Waveform{"d", {{0, Level::kHigh},
                             {1500, Level::kLow},    // clk high: ignored now
                             {3500, Level::kHigh},   // clk high: ignored now
                             {6500, Level::kLow}}}); // clk low: sampled next
  const SimResult r = simulate(dff, models(), st);
  // Rising edge at 1000: d was 1 -> q=1.
  EXPECT_EQ(r.wave("q").at(1400), Level::kHigh);
  // d dropped at 1500 (clk high): q must still be 1 until the next edge.
  EXPECT_EQ(r.wave("q").at(2500), Level::kHigh);
  // Rising edge at 3000: master sampled d=0 during clk low? d fell at
  // 1500, clk fell at 2000, so master reopened with d=0 -> q=0.
  EXPECT_EQ(r.wave("q").at(3400), Level::kLow);
  // d rose at 3500 (clk high: ignored); clk low 4000-5000 samples d=1;
  // rising edge at 5000 -> q=1.
  EXPECT_EQ(r.wave("q").at(4900), Level::kLow);
  EXPECT_EQ(r.wave("q").at(5400), Level::kHigh);
  // d fell at 6500 (clk low) -> rising edge at 7000 -> q=0.
  EXPECT_EQ(r.wave("q").at(7400), Level::kLow);
}

TEST(Sequential, CompiledDffMatchesInterpreted) {
  const Netlist dff = dff_netlist();
  const CompiledSim program = compile_netlist(dff, models());
  Stimuli st("clocking");
  st.add_wave(Stimuli::clock("clk", 2000, 4));
  st.add_wave(Waveform{"d", {{0, Level::kHigh},
                             {1500, Level::kLow},
                             {3500, Level::kHigh},
                             {6500, Level::kLow}}});
  const SimResult interpreted = simulate(dff, models(), st);
  const SimResult compiled = run_compiled(program, st);
  for (const std::int64_t t : st.event_times()) {
    if (t == 0) continue;  // initial-charge conventions may differ
    EXPECT_EQ(interpreted.wave("q").at(t - 1), compiled.wave("q").at(t - 1))
        << "q at t=" << t - 1;
  }
}

TEST(Sequential, CompiledSrLatchMatchesInterpreted) {
  const Netlist latch = sr_latch_netlist();
  const CompiledSim program = compile_netlist(latch, models());
  Stimuli st("drive");
  st.add_wave(Waveform{"sn", {{0, Level::kLow},
                              {1000, Level::kHigh},
                              {4000, Level::kHigh}}});
  st.add_wave(Waveform{"rn", {{0, Level::kHigh},
                              {2000, Level::kLow},
                              {3000, Level::kHigh}}});
  const SimResult interpreted = simulate(latch, models(), st);
  const SimResult compiled = run_compiled(program, st);
  // Sample well clear of the input events: the interpreted simulator
  // annotates RC delays (hundreds of ps here) that the zero-delay
  // compiled simulator does not model.
  for (const std::int64_t t : {900, 1900, 2950, 3950}) {
    EXPECT_EQ(interpreted.wave("q").at(t), compiled.wave("q").at(t))
        << "q at t=" << t;
    EXPECT_EQ(interpreted.wave("qn").at(t), compiled.wave("qn").at(t))
        << "qn at t=" << t;
  }
}

}  // namespace
}  // namespace herc::circuit
