// Replication-shipment property test (the wire-side sibling of the
// storage journal's every-byte sweep):
//
//   1. Truncation at EVERY byte offset of an encoded snapshot and of
//      every encoded journal shipment: decoding a strict prefix always
//      throws NetError — the embedded checksum (or the strict header
//      grammar) catches the cut, so a follower can never install a torn
//      shipment.
//   2. Corruption of every single byte (XOR 0x5A), applied to a live
//      follower: the decode either throws, or the decoded shipment is
//      rejected by the apply path (duplicate/gap/fence), or it is
//      byte-identical to the original and applies cleanly.  In no case
//      does the follower's position or local journal advance on bad
//      bytes, and the replica store stays fsck-clean throughout.
//   3. After both sweeps the follower applies the untouched remainder of
//      the stream and converges to the leader's exact database.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "property_seed.hpp"
#include "replica/applier.hpp"
#include "replica/replication.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "server/socket.hpp"
#include "storage/fsck.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"

namespace herc::replica {
namespace {

namespace fs = std::filesystem;

std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::string wave_body(std::uint64_t& rng) {
  const std::uint64_t half = 100 + next_rand(rng) % 4000;
  return "stimuli sw\nwave in 0:0 " + std::to_string(half) + ":1 " +
         std::to_string(2 * half) + ":0\n";
}

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("herc_repl_prop_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (path / name).string();
  }
};

struct CaptureTap final : storage::JournalTap {
  std::vector<JournalShipment> frames;
  void on_frame(std::uint64_t epoch, std::uint64_t seq,
                std::string_view payload) override {
    frames.push_back({epoch, seq, std::string(payload)});
  }
  void on_checkpoint(std::uint64_t) override {}
};

/// A leader's worth of shipped bytes: the bootstrap snapshot plus every
/// journal frame after it, pre-encoded to their wire payloads.
struct Shipment {
  SnapshotShipment snapshot;
  std::vector<JournalShipment> frames;
  std::string snapshot_payload;
  std::vector<std::string> frame_payloads;
  std::size_t leader_size = 0;
};

Shipment make_shipment(const std::string& leader_dir, std::uint64_t seed) {
  Shipment ship;
  std::uint64_t rng = seed | 1;
  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(leader_dir);
  (void)session.import_data("Stimuli", "base_0", wave_body(rng));
  ship.snapshot = {session.storage()->epoch(),
                   session.storage()->journal_seq(),
                   schema::write_schema(session.schema()),
                   session.db().save()};
  CaptureTap tap;
  session.storage()->attach_tap(&tap);
  for (int i = 0; i < 5; ++i) {
    (void)session.import_data("Stimuli", "live_" + std::to_string(i),
                              wave_body(rng));
  }
  session.storage()->attach_tap(nullptr);
  ship.leader_size = session.db().size();
  session.close_storage();

  ship.frames = tap.frames;
  ship.snapshot_payload = encode_snapshot(ship.snapshot);
  for (const JournalShipment& frame : ship.frames) {
    ship.frame_payloads.push_back(
        encode_journal(frame.epoch, frame.seq, frame.lines));
  }
  return ship;
}

TEST(ReplicationPropertyTest, TruncationAtEveryByteOffsetNeverDecodes) {
  const std::uint64_t seed = testprop::base_seed(0x5ead5ea1);
  SCOPED_TRACE(testprop::seed_note(seed));
  TempDir tmp;
  const Shipment ship = make_shipment(tmp.sub("leader"), seed);

  // Snapshot: any strict prefix is torn and must throw.
  for (std::size_t cut = 0; cut < ship.snapshot_payload.size(); ++cut) {
    EXPECT_THROW((void)decode_snapshot(
                     std::string_view(ship.snapshot_payload).substr(0, cut)),
                 support::NetError)
        << "snapshot prefix of " << cut << " bytes decoded";
  }
  // Every journal shipment, every cut.
  for (std::size_t fi = 0; fi < ship.frame_payloads.size(); ++fi) {
    const std::string& payload = ship.frame_payloads[fi];
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      EXPECT_THROW(
          (void)decode_journal(std::string_view(payload).substr(0, cut)),
          support::NetError)
          << "frame " << fi << " prefix of " << cut << " bytes decoded";
    }
  }
}

TEST(ReplicationPropertyTest, CorruptionOfEveryByteNeverAdvancesAFollower) {
  const std::uint64_t seed = testprop::base_seed(0xc0de5ea1);
  SCOPED_TRACE(testprop::seed_note(seed));
  TempDir tmp;
  const Shipment ship = make_shipment(tmp.sub("leader"), seed);
  const std::string follower_dir = tmp.sub("follower");

  // A live follower mid-stream: snapshot installed, first two frames in.
  ReplicaApplier applier(server::Endpoint::parse("127.0.0.1:1"),
                         follower_dir);
  applier.install_snapshot(decode_snapshot(ship.snapshot_payload));
  ASSERT_GE(ship.frames.size(), 3u);
  ASSERT_EQ(applier.apply_frame(decode_journal(ship.frame_payloads[0])),
            ApplyOutcome::kApplied);
  ASSERT_EQ(applier.apply_frame(decode_journal(ship.frame_payloads[1])),
            ApplyOutcome::kApplied);
  const StreamPosition held = applier.position();
  const std::uint64_t held_bytes = applier.journal_bytes();

  // The next expected shipment arrives with every byte corrupted in
  // turn.  Whatever the corruption does — unparseable header, checksum
  // mismatch, a mutated epoch/seq — the follower must hold its position
  // unless the shipment survived bit-identical.
  const std::string& target = ship.frame_payloads[2];
  std::size_t decoded_identical = 0;
  for (std::size_t at = 0; at < target.size(); ++at) {
    std::string corrupted = target;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5A);
    JournalShipment shipment;
    try {
      shipment = decode_journal(corrupted);
    } catch (const support::NetError&) {
      continue;  // torn shipment detected at the codec — the common case
    }
    if (shipment.epoch == ship.frames[2].epoch &&
        shipment.seq == ship.frames[2].seq &&
        shipment.lines == ship.frames[2].lines) {
      ++decoded_identical;  // corruption didn't change meaning: fine
      continue;
    }
    const ApplyOutcome outcome = applier.apply_frame(shipment);
    EXPECT_NE(outcome, ApplyOutcome::kApplied)
        << "byte " << at << ": corrupted shipment applied (epoch "
        << shipment.epoch << " seq " << shipment.seq << ")";
    EXPECT_EQ(applier.position(), held) << "byte " << at;
    EXPECT_EQ(applier.journal_bytes(), held_bytes) << "byte " << at;
  }
  EXPECT_EQ(decoded_identical, 0u)
      << "XOR 0x5A should never round-trip a byte to itself";

  // The sweep over, the untouched stream still lands: the follower
  // converges to the leader's exact database and audits clean.
  for (std::size_t fi = 2; fi < ship.frame_payloads.size(); ++fi) {
    EXPECT_EQ(applier.apply_frame(decode_journal(ship.frame_payloads[fi])),
              ApplyOutcome::kApplied)
        << "frame " << fi;
  }
  EXPECT_EQ(applier.db().size(), ship.leader_size);
  EXPECT_EQ(storage::fsck_store(follower_dir).exit_code(), 0);
}

TEST(ReplicationPropertyTest, SnapshotCorruptionNeverInstalls) {
  const std::uint64_t seed = testprop::base_seed(0x5afe5ea1);
  SCOPED_TRACE(testprop::seed_note(seed));
  TempDir tmp;
  const Shipment ship = make_shipment(tmp.sub("leader"), seed);

  // Sweep a stride of offsets (the payload is large; every byte of the
  // header plus a spread through schema and image bytes).
  const std::string& payload = ship.snapshot_payload;
  const std::size_t header_end = payload.find('\n') + 1;
  std::vector<std::size_t> offsets;
  for (std::size_t at = 0; at < header_end; ++at) offsets.push_back(at);
  for (std::size_t at = header_end; at < payload.size();
       at += 31) {  // prime stride: hits all residues over long payloads
    offsets.push_back(at);
  }
  for (const std::size_t at : offsets) {
    std::string corrupted = payload;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5A);
    try {
      const SnapshotShipment snapshot = decode_snapshot(corrupted);
      // Decoded: only acceptable if meaning is unchanged.
      EXPECT_EQ(snapshot.epoch, ship.snapshot.epoch) << "byte " << at;
      EXPECT_EQ(snapshot.seq, ship.snapshot.seq) << "byte " << at;
      EXPECT_EQ(snapshot.schema_text, ship.snapshot.schema_text)
          << "byte " << at;
      EXPECT_EQ(snapshot.image, ship.snapshot.image) << "byte " << at;
    } catch (const support::NetError&) {
      // Detected: the follower would disconnect and resync.
    }
  }
}

TEST(ReplicationPropertyTest, SubscribePayloadRoundTripsWithAndWithoutTail) {
  const std::uint64_t seed = testprop::base_seed(0x5ab5c81b);
  SCOPED_TRACE(testprop::seed_note(seed));
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 200; ++i) {
    const StreamPosition pos{rng(), rng()};
    // Legacy two-field form: the checksum is optional on the wire, so a
    // follower that cannot vouch for a tail still subscribes.
    {
      const SubscribeInfo info = decode_subscribe_info(encode_subscribe(pos));
      ASSERT_TRUE(info.position.has_value());
      EXPECT_EQ(*info.position, pos);
      EXPECT_FALSE(info.tail_checksum.has_value());
    }
    // Three-field form round-trips the checksum exactly.
    {
      const std::uint64_t tail = rng();
      const SubscribeInfo info =
          decode_subscribe_info(encode_subscribe(pos, tail));
      ASSERT_TRUE(info.position.has_value());
      EXPECT_EQ(*info.position, pos);
      ASSERT_TRUE(info.tail_checksum.has_value());
      EXPECT_EQ(*info.tail_checksum, tail);
    }
  }
  // Bootstrap stays empty regardless of a requested checksum: nothing to
  // vouch for when asking for a snapshot.
  EXPECT_TRUE(encode_subscribe({}, 42).empty());
  EXPECT_FALSE(decode_subscribe_info("").position.has_value());
  // Malformed shapes are protocol errors, not guesses.
  EXPECT_THROW((void)decode_subscribe_info("1"), support::NetError);
  EXPECT_THROW((void)decode_subscribe_info("1 2 3 4"), support::NetError);
  EXPECT_THROW((void)decode_subscribe_info("1 2 x"), support::NetError);
}

}  // namespace
}  // namespace herc::replica
