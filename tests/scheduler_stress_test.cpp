// Scheduler stress: a 200-way fan-out/fan-in flow (200 independent tasks
// off one root, joined into one composite) with deterministic pseudo-random
// per-task latencies, run at several thread-pool widths.  Checks that the
// parallel scheduler neither deadlocks nor loses products, that the run
// accounting stays exact at scale, and that large faulted runs remain
// deterministic across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault_test_util.hpp"

namespace herc::faulttest {
namespace {

using exec::ExecOptions;
using exec::ExecResult;
using exec::Executor;
using exec::FailureMode;
using exec::TaskStatus;

constexpr std::size_t kFanOut = 200;  // 201 task groups, 402 flow nodes

TEST(SchedulerStressTest, FanOutFanInCompletesAtEveryPoolWidth) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("max_threads=" + std::to_string(threads));
    World w;
    const graph::TaskGraph flow = make_fan(w, kFanOut);
    Executor ex(w.db, w.tools);
    ExecOptions opt;
    opt.parallel = true;
    opt.max_threads = threads;
    const ExecResult r = ex.run(flow, opt);

    EXPECT_TRUE(r.complete());
    EXPECT_EQ(r.tasks_run, kFanOut + 1);
    EXPECT_EQ(r.tasks_reused, 0u);
    EXPECT_EQ(r.tasks_failed, 0u);
    EXPECT_EQ(r.tasks_skipped, 0u);

    // No lost products: every fan task produced exactly one instance and
    // the join consumed every one of them.
    for (std::size_t i = 0; i < kFanOut; ++i) {
      const graph::NodeId n = node_of(flow, "F" + std::to_string(i));
      ASSERT_EQ(r.of(n).size(), 1u) << "F" << i;
    }
    const graph::NodeId join = node_of(flow, "Join");
    const std::string joined = w.db.payload(r.single(join));
    for (std::size_t i = 0; i < kFanOut; ++i) {
      EXPECT_NE(joined.find(">FT" + std::to_string(i)), std::string::npos)
          << "join lost the product of FT" << i;
    }
    const history::Instance& join_inst = w.db.instance(r.single(join));
    EXPECT_EQ(join_inst.derivation.inputs.size(), kFanOut);
  }
}

TEST(SchedulerStressTest, FaultedStressRunKeepsExactAccounting) {
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("max_threads=" + std::to_string(threads));
    World w;
    const graph::TaskGraph flow = make_fan(w, kFanOut);
    tools::FaultInjectingRegistry faulty(w.tools, 99);
    faulty.inject_random(0.1, tools::FaultKind::kThrow);
    Executor ex(w.db, faulty);
    ExecOptions opt;
    opt.parallel = true;
    opt.max_threads = threads;
    opt.fault.mode = FailureMode::kContinueBranches;
    opt.fault.max_retries = 1;
    const ExecResult r = ex.run(flow, opt);

    // Every group is accounted for exactly once: the fan tasks either ran
    // or failed, the join either ran or was skipped.
    EXPECT_EQ(r.tasks_run + r.tasks_failed + r.tasks_skipped, kFanOut + 1);
    const graph::NodeId join = node_of(flow, "Join");
    std::size_t produced = 0;
    for (std::size_t i = 0; i < kFanOut; ++i) {
      const graph::NodeId n = node_of(flow, "F" + std::to_string(i));
      const exec::TaskOutcome* outcome = r.outcome(n);
      ASSERT_NE(outcome, nullptr) << "F" << i << " has no outcome";
      if (outcome->status == TaskStatus::kOk) {
        EXPECT_EQ(r.of(n).size(), 1u);
        ++produced;
      } else {
        EXPECT_EQ(outcome->status, TaskStatus::kFailed);
        EXPECT_TRUE(r.of(n).empty());
      }
    }
    EXPECT_EQ(produced + r.tasks_failed, kFanOut);
    // The join depends on every fan task, so it runs iff all succeeded.
    if (r.tasks_failed == 0) {
      EXPECT_EQ(r.of(join).size(), 1u);
    } else {
      ASSERT_NE(r.outcome(join), nullptr);
      EXPECT_EQ(r.outcome(join)->status, TaskStatus::kSkipped);
      EXPECT_EQ(r.tasks_skipped, 1u);
    }
    // Failure records match the failed-task count exactly.
    std::size_t failed_records = 0;
    for (const data::InstanceId id : w.db.failures()) {
      if (w.db.instance(id).status == history::InstanceStatus::kFailed) {
        ++failed_records;
      }
    }
    EXPECT_EQ(failed_records, r.tasks_failed);
  }
}

// The same faulted stress flow must resolve identically at every pool
// width: fault decisions are a pure function of (seed, tool, invocation).
TEST(SchedulerStressTest, FaultedRunsAgreeAcrossThreadCounts) {
  const auto run_once = [](std::size_t threads) {
    World w;
    const graph::TaskGraph flow = make_fan(w, kFanOut);
    tools::FaultInjectingRegistry faulty(w.tools, 1234);
    faulty.inject_random(0.05, tools::FaultKind::kThrow);
    Executor ex(w.db, faulty);
    ExecOptions opt;
    opt.parallel = true;
    opt.max_threads = threads;
    opt.fault.mode = FailureMode::kBestEffort;
    const ExecResult r = ex.run(flow, opt);
    return std::make_pair(
        std::make_tuple(r.tasks_run, r.tasks_failed, r.tasks_skipped),
        history_signature(w.db));
  };
  const auto narrow = run_once(1);
  const auto medium = run_once(2);
  const auto wide = run_once(8);
  EXPECT_EQ(narrow.first, medium.first);
  EXPECT_EQ(narrow.first, wide.first);
  EXPECT_EQ(narrow.second, medium.second);
  EXPECT_EQ(narrow.second, wide.second);
}

}  // namespace
}  // namespace herc::faulttest
