// VCD export: structure of the emitted document and the Plotter.vcd
// encapsulation variant.
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "circuit/vcd.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"

namespace herc::circuit {
namespace {

TEST(Vcd, WellFormedDocument) {
  const Stimuli st = Stimuli::counter({"a", "b"}, 1000);
  const SimResult r =
      simulate(nand2_netlist(), DeviceModelLibrary::standard(), st);
  const std::string vcd = to_vcd(r);
  // Header sections in order.
  const std::size_t ts = vcd.find("$timescale 1ps $end");
  const std::size_t scope = vcd.find("$scope module dut $end");
  const std::size_t var = vcd.find("$var wire 1 ! y $end");
  const std::size_t enddefs = vcd.find("$enddefinitions $end");
  const std::size_t dump = vcd.find("$dumpvars");
  ASSERT_NE(ts, std::string::npos);
  ASSERT_NE(scope, std::string::npos);
  ASSERT_NE(var, std::string::npos);
  ASSERT_NE(enddefs, std::string::npos);
  ASSERT_NE(dump, std::string::npos);
  EXPECT_LT(ts, scope);
  EXPECT_LT(scope, var);
  EXPECT_LT(var, enddefs);
  EXPECT_LT(enddefs, dump);
  // Time markers and value changes follow.
  EXPECT_NE(vcd.find("\n#"), std::string::npos);
  // Every transition of the output appears as a value change line.
  const std::size_t toggles = r.wave("y").transitions();
  std::size_t changes = 0;
  for (std::size_t pos = vcd.find("$end\n", dump) + 5;
       pos < vcd.size() && pos != std::string::npos;) {
    if (vcd[pos] == '0' || vcd[pos] == '1' || vcd[pos] == 'x') ++changes;
    pos = vcd.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  EXPECT_GE(changes, toggles);
}

TEST(Vcd, XLevelsRenderAsX) {
  SimResult r;
  r.waves.push_back(Waveform{"w", {{0, Level::kX}, {10, Level::kHigh}}});
  const std::string vcd = to_vcd(r);
  EXPECT_NE(vcd.find("x!"), std::string::npos);
  EXPECT_NE(vcd.find("#10\n1!"), std::string::npos);
}

TEST(Vcd, ManyNetsGetDistinctCodes) {
  SimResult r;
  for (int i = 0; i < 100; ++i) {
    r.waves.push_back(
        Waveform{"n" + std::to_string(i), {{0, Level::kLow}}});
  }
  const std::string vcd = to_vcd(r);
  // The 95th signal wraps into a two-character code.
  EXPECT_NE(vcd.find("$var wire 1 !\" n94 $end"), std::string::npos);
}

TEST(Vcd, PlotterVcdEncapsulationProducesVcdPayload) {
  core::DesignSession session(
      schema::make_full_schema(), "t",
      std::make_unique<support::ManualClock>(0, 1));
  const auto perf = session.import_data(
      "Performance", "p",
      simulate(inverter_netlist(), DeviceModelLibrary::standard(),
               Stimuli::counter({"in"}, 1000))
          .to_text());
  const auto plotter = session.import_data("Plotter", "pl", "");
  session.tools().set_default("Plotter.vcd");

  graph::TaskGraph flow(session.schema(), "plot");
  const graph::NodeId plot = flow.add_node("PerformancePlot");
  flow.expand(plot);
  flow.bind(flow.tool_of(plot), plotter);
  flow.bind(flow.inputs_of(plot)[0], perf);
  const auto inst = session.run(flow).single(plot);
  const std::string payload = session.db().payload(inst);
  EXPECT_EQ(payload.rfind("$date", 0), 0u);
  EXPECT_NE(payload.find("$var wire 1 ! out $end"), std::string::npos);
}

}  // namespace
}  // namespace herc::circuit
