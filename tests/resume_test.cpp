// Crash-resumable execution: run intents in the journal, quarantine of
// partial products on recovery, and `Executor::resume` re-running only the
// tasks a crash left unfinished.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "fault_test_util.hpp"
#include "storage/fsck.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::exec {
namespace {

namespace fs = std::filesystem;
using data::InstanceId;
using faulttest::World;
using graph::TaskGraph;
using history::HistoryDb;
using history::InstanceStatus;
using history::RunRecord;
using storage::DurableHistory;
using storage::ScanResult;
using storage::StoreOptions;
using storage::SyncPolicy;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A bound linear-chain flow of `depth` tasks over `w`'s schema.
TaskGraph chain_flow(World& w, std::size_t depth) {
  faulttest::add_chain(w, "C", depth);
  TaskGraph flow(w.schema, "chain");
  flow.add_node(w.schema.require("CD" + std::to_string(depth)));
  faulttest::expand_all(flow);
  faulttest::bind_leaves(w, flow);
  return flow;
}

/// Signature restricted to OK instances: quarantined partials and the
/// re-derived replacements must not both count.
std::vector<std::string> active_signature(const HistoryDb& db) {
  std::vector<std::string> sig;
  for (const std::string& line : faulttest::history_signature(db)) {
    if (line.find("|status=0|") != std::string::npos) sig.push_back(line);
  }
  return sig;
}

StoreOptions fast_store() {
  StoreOptions options;
  options.journal.sync = SyncPolicy::kNone;
  return options;
}

/// Copies schema + snapshot of `dir` into `trial` and installs the first
/// `bytes` bytes of `journal` as the trial's journal — the on-disk state a
/// crash at that point would leave behind.
void make_trial(const std::string& dir, const std::string& trial,
                const std::string& journal, std::size_t bytes) {
  fs::remove_all(trial);
  fs::create_directories(trial);
  fs::copy_file(fs::path(dir) / "schema.herc",
                fs::path(trial) / "schema.herc");
  fs::copy_file(fs::path(dir) / "snapshot.herc",
                fs::path(trial) / "snapshot.herc");
  std::ofstream out((fs::path(trial) / "journal.wal").string(),
                    std::ios::binary);
  out.write(journal.data(), static_cast<std::streamsize>(bytes));
}

TEST(ResumeTest, RunIntentsAreJournaledAndSurviveReopen) {
  World w;
  const TaskGraph flow = chain_flow(w, 3);
  const std::string dir =
      (fs::temp_directory_path() / "herc_resume_intents").string();
  fs::remove_all(dir);
  std::string saved;
  {
    DurableHistory store(w.schema, w.clock, dir, fast_store());
    store.adopt(std::move(w.db));
    Executor exec(store.db(), w.tools);
    const ExecResult result = exec.run(flow);
    EXPECT_EQ(result.tasks_run, 3u);

    ASSERT_EQ(store.db().runs().size(), 1u);
    const RunRecord& run = store.db().runs().front();
    EXPECT_EQ(run.id, 0u);
    EXPECT_EQ(run.flow_name, "chain");
    EXPECT_EQ(run.outcome, "complete");
    EXPECT_FALSE(run.open());
    EXPECT_EQ(run.tasks.size(), 3u);
    EXPECT_EQ(run.tasks_finished(), 3u);
    for (const auto& task : run.tasks) EXPECT_EQ(task.status, "ok");
    EXPECT_EQ(run.covered.size(), 3u);  // one product per chain task
    EXPECT_TRUE(run.flow_text.empty()) << "cleared once the run ends";
    saved = store.db().save();
  }
  {
    support::ManualClock clock(0, 1);
    DurableHistory store(w.schema, clock, dir, fast_store());
    EXPECT_EQ(store.recovery().interrupted_runs, 0u);
    EXPECT_EQ(store.db().save(), saved)
        << "run log replays identically from disk";
  }
  fs::remove_all(dir);
}

TEST(ResumeTest, CrashMidRunQuarantinesPartialsAndResumeFinishes) {
  constexpr std::size_t kDepth = 6;
  World w;
  const TaskGraph flow = chain_flow(w, kDepth);
  const std::string dir =
      (fs::temp_directory_path() / "herc_resume_crash").string();
  fs::remove_all(dir);

  std::vector<std::string> reference;
  std::string goal_payload;
  {
    DurableHistory store(w.schema, w.clock, dir, fast_store());
    store.adopt(std::move(w.db));
    Executor exec(store.db(), w.tools);
    const ExecResult result = exec.run(flow);
    ASSERT_EQ(result.tasks_run, kDepth);
    reference = active_signature(store.db());
    goal_payload =
        store.db().payload(result.of(flow.nodes().front()).front());
  }
  const std::string journal = slurp((fs::path(dir) / "journal.wal").string());
  const ScanResult scan = storage::scan_journal(journal);
  ASSERT_TRUE(scan.header_valid);

  // Frame boundaries, labeled by the kind of their first record line.
  std::vector<std::size_t> frame_end;
  std::vector<std::string> frame_kind;
  std::size_t at = storage::kJournalHeaderBytes;
  for (const std::string& record : scan.records) {
    at += storage::kFrameHeaderBytes + record.size();
    frame_end.push_back(at);
    frame_kind.push_back(record.substr(0, record.find('|')));
  }

  // Crash A: right after the third task's product landed but before its
  // coverage frame — the product must be quarantined and re-derived.
  std::size_t inst_frames = 0;
  std::size_t cut_a = 0;
  for (std::size_t i = 0; i < frame_kind.size(); ++i) {
    if (frame_kind[i] == "inst" || frame_kind[i] == "blob") {
      if (++inst_frames == 3) cut_a = frame_end[i];
    }
  }
  ASSERT_GT(cut_a, 0u);
  {
    const std::string trial = dir + "_a";
    make_trial(dir, trial, journal, cut_a);
    support::ManualClock clock(1000, 1);
    DurableHistory store(w.schema, clock, trial, fast_store());
    EXPECT_EQ(store.recovery().interrupted_runs, 1u);
    EXPECT_EQ(store.recovery().quarantined, 1u);
    ASSERT_EQ(store.db().open_runs().size(), 1u);

    // Resume the interrupted run: the first two tasks are reused, the
    // quarantined third is re-derived, and the chain re-runs from there.
    Executor exec(store.db(), w.tools);
    const std::uint64_t open_id = store.db().open_runs().front()->id;
    const ExecResult resumed = exec.resume(open_id);
    EXPECT_EQ(resumed.tasks_failed, 0u);
    EXPECT_EQ(resumed.tasks_skipped, 0u);
    EXPECT_EQ(resumed.tasks_reused, 2u);
    EXPECT_EQ(resumed.tasks_run, kDepth - 2);
    EXPECT_EQ(active_signature(store.db()), reference);
    EXPECT_EQ(store.db().payload(resumed.of(flow.nodes().front()).front()),
              goal_payload);
    EXPECT_FALSE(store.db().find_run(open_id)->open());
    EXPECT_EQ(store.db().find_run(open_id)->outcome, "resumed");
  }

  // Crash B: after the fourth task fully finished (its `tfin` frame is the
  // crash point) — resume reuses 4 tasks and re-runs exactly the rest.
  std::size_t fin_frames = 0;
  std::size_t cut_b = 0;
  for (std::size_t i = 0; i < frame_kind.size(); ++i) {
    if (frame_kind[i] == "tfin" && ++fin_frames == 4) cut_b = frame_end[i];
  }
  ASSERT_GT(cut_b, 0u);
  {
    const std::string trial = dir + "_b";
    make_trial(dir, trial, journal, cut_b);
    support::ManualClock clock(1000, 1);
    DurableHistory store(w.schema, clock, trial, fast_store());
    EXPECT_EQ(store.recovery().interrupted_runs, 1u);
    EXPECT_EQ(store.recovery().quarantined, 0u)
        << "every product of a finished task is covered";

    Executor exec(store.db(), w.tools);
    const ExecResult resumed =
        exec.resume(store.db().open_runs().front()->id);
    EXPECT_EQ(resumed.tasks_reused, 4u);
    EXPECT_EQ(resumed.tasks_run, kDepth - 4);
    EXPECT_EQ(active_signature(store.db()), reference);
    EXPECT_EQ(store.db().payload(resumed.of(flow.nodes().front()).front()),
              goal_payload);
  }

  // Both repaired stores audit clean once their runs are closed.
  for (const char* suffix : {"_a", "_b"}) {
    const storage::FsckReport report = storage::fsck_store(dir + suffix);
    EXPECT_EQ(report.exit_code(), 0) << suffix << "\n" << report.render();
    fs::remove_all(dir + suffix);
  }
  fs::remove_all(dir);
}

TEST(ResumeTest, PostCrashWorkIsNeverSweptByALaterReopen) {
  // A crashed run left unresumed must not poison later sessions: recovery
  // seals its sweep window, so work recorded afterwards (new complete
  // runs, out-of-run records) survives any number of reopens.
  World w;
  const TaskGraph flow = chain_flow(w, 3);
  const std::string dir =
      (fs::temp_directory_path() / "herc_resume_seal").string();
  fs::remove_all(dir);
  {
    DurableHistory store(w.schema, w.clock, dir, fast_store());
    store.adopt(std::move(w.db));
    Executor exec(store.db(), w.tools);
    exec.run(flow);
  }
  const std::string journal = slurp((fs::path(dir) / "journal.wal").string());
  const ScanResult scan = storage::scan_journal(journal);
  ASSERT_TRUE(scan.header_valid);

  // Crash after the second task's product frame (uncovered partial).
  std::size_t at = storage::kJournalHeaderBytes;
  std::size_t inst_frames = 0;
  std::size_t cut = 0;
  for (const std::string& record : scan.records) {
    at += storage::kFrameHeaderBytes + record.size();
    const std::string kind = record.substr(0, record.find('|'));
    if ((kind == "inst" || kind == "blob") && ++inst_frames == 2) cut = at;
  }
  ASSERT_GT(cut, 0u);
  const std::string trial = dir + "_seal";
  make_trial(dir, trial, journal, cut);

  std::size_t size_after_recovery = 0;
  {
    // First reopen: recovery quarantines the partial and seals the run.
    support::ManualClock clock(1000, 1);
    DurableHistory store(w.schema, clock, trial, fast_store());
    EXPECT_EQ(store.recovery().interrupted_runs, 1u);
    EXPECT_EQ(store.recovery().quarantined, 1u);
    ASSERT_EQ(store.db().open_runs().size(), 1u);
    EXPECT_TRUE(store.db().runs().front().sealed());
    size_after_recovery = store.db().size();

    // The designer moves on without resuming: a fresh complete run of the
    // same flow, plus a record made outside any run (decompose-style).
    Executor exec(store.db(), w.tools);
    const ExecResult redo = exec.run(flow);
    EXPECT_EQ(redo.tasks_failed, 0u);
    history::RecordRequest manual;
    manual.type = w.schema.require("CD1");
    manual.name = "manual";
    manual.user = "tester";
    manual.payload = "manual-payload";
    manual.derivation.task = "manual";
    manual.derivation.inputs = {w.imports.at("CSrc#src")};
    manual.derivation.input_roles = {""};
    store.db().record(manual);
  }
  {
    // Second reopen: the crashed run is still open, but none of the later
    // work falls in its sealed window — nothing new is quarantined.
    support::ManualClock clock(2000, 1);
    DurableHistory store(w.schema, clock, trial, fast_store());
    EXPECT_EQ(store.recovery().interrupted_runs, 1u);
    EXPECT_EQ(store.recovery().quarantined, 0u)
        << "post-crash work swept as another run's partials";
    for (std::size_t i = size_after_recovery; i < store.db().size(); ++i) {
      EXPECT_TRUE(store.db().instance(data::InstanceId(
                      static_cast<std::uint32_t>(i))).ok())
          << "i" << i << " lost to the quarantine sweep";
    }
  }
  const storage::FsckReport report = storage::fsck_store(trial);
  // Recovery sealed and swept the crashed run, so fsck records it as a
  // clean resumable-run note rather than an interrupted-run warning.
  EXPECT_TRUE(report.has("resumable-run")) << report.render();
  EXPECT_FALSE(report.has("unquarantined-partial")) << report.render();
  fs::remove_all(trial);
  fs::remove_all(dir);
}

TEST(ResumeTest, SealBoundsThePartialSweepAndRoundTrips) {
  World w;
  faulttest::add_chain(w, "C", 1);
  const InstanceId src = faulttest::import_once(
      w, w.schema.require("CSrc"), "src", "seed");
  const auto derived = [&](const std::string& name) {
    history::RecordRequest req;
    req.type = w.schema.require("CD1");
    req.name = name;
    req.user = "tester";
    req.payload = name;
    req.derivation.task = "derive";
    req.derivation.inputs = {src};
    req.derivation.input_roles = {""};
    return w.db.record(req);
  };

  history::RunRecord run;
  run.flow_name = "f";
  run.flow_text = "x";
  const std::uint64_t open_id = w.db.begin_run(std::move(run));
  const InstanceId partial = derived("partial");
  ASSERT_EQ(w.db.partial_products(),
            std::vector<InstanceId>{partial});

  // Sealing fixes the window: records made afterwards are not partials.
  w.db.seal_run(open_id);
  const InstanceId later = derived("later");
  EXPECT_TRUE(w.db.instance(later).ok());
  EXPECT_EQ(w.db.partial_products(), std::vector<InstanceId>{partial});

  // A later closed run's covered products are excluded too (coverage
  // unions over all runs, open or not).
  history::RunRecord run2;
  run2.flow_name = "g";
  run2.flow_text = "y";
  const std::uint64_t closed_id = w.db.begin_run(std::move(run2));
  const InstanceId covered = derived("covered");
  w.db.run_task_covered(closed_id, {covered});
  w.db.end_run(closed_id, "complete");
  EXPECT_EQ(w.db.partial_products(), std::vector<InstanceId>{partial});

  // The seal survives a save/load round trip.
  support::ManualClock clock2(0, 1);
  const HistoryDb back = HistoryDb::load(w.schema, clock2, w.db.save());
  ASSERT_EQ(back.runs().size(), 2u);
  EXPECT_TRUE(back.runs().front().sealed());
  EXPECT_EQ(back.runs().front().sweep_end,
            w.db.runs().front().sweep_end);
  EXPECT_EQ(back.partial_products(), std::vector<InstanceId>{partial});
}

TEST(ResumeTest, ResumeJournalsTheNewRunBeforeClosingTheOld) {
  // Ordering matters for crash safety: if the process dies between the
  // two frames, the interrupted run must still be resumable.  The old
  // run's "resumed" close therefore lands *after* the replacement's
  // run-begin frame in the journal.
  World w;
  const TaskGraph flow = chain_flow(w, 3);
  const std::string dir =
      (fs::temp_directory_path() / "herc_resume_order").string();
  fs::remove_all(dir);
  {
    DurableHistory store(w.schema, w.clock, dir, fast_store());
    store.adopt(std::move(w.db));
    Executor exec(store.db(), w.tools);
    exec.run(flow);
  }
  const std::string journal = slurp((fs::path(dir) / "journal.wal").string());
  const ScanResult scan = storage::scan_journal(journal);
  ASSERT_TRUE(scan.header_valid);
  std::size_t at = storage::kJournalHeaderBytes;
  std::size_t fin_frames = 0;
  std::size_t cut = 0;
  for (const std::string& record : scan.records) {
    at += storage::kFrameHeaderBytes + record.size();
    if (record.rfind("tfin", 0) == 0 && ++fin_frames == 2) cut = at;
  }
  ASSERT_GT(cut, 0u);
  const std::string trial = dir + "_order";
  make_trial(dir, trial, journal, cut);
  {
    support::ManualClock clock(1000, 1);
    DurableHistory store(w.schema, clock, trial, fast_store());
    Executor exec(store.db(), w.tools);
    exec.resume(store.db().open_runs().front()->id);
    EXPECT_EQ(store.db().find_run(0)->outcome, "resumed");
    EXPECT_EQ(store.db().find_run(1)->outcome, "complete");
    store.sync();
  }
  const ScanResult after =
      storage::scan_journal(slurp((fs::path(trial) / "journal.wal").string()));
  ASSERT_TRUE(after.header_valid);
  std::size_t new_begin = 0;
  std::size_t old_close = 0;
  for (std::size_t i = 0; i < after.records.size(); ++i) {
    if (after.records[i].rfind("runb|1|", 0) == 0) new_begin = i;
    if (after.records[i].rfind("rune|0|", 0) == 0) old_close = i;
  }
  ASSERT_GT(new_begin, 0u);
  ASSERT_GT(old_close, 0u);
  EXPECT_LT(new_begin, old_close)
      << "a crash between the frames must leave run #0 resumable";
  fs::remove_all(trial);
  fs::remove_all(dir);
}

TEST(ResumeTest, ResumeRejectsClosedAndUnknownRuns) {
  World w;
  const TaskGraph flow = chain_flow(w, 2);
  Executor exec(w.db, w.tools);
  exec.run(flow);
  EXPECT_THROW(exec.resume(0), support::ExecError);  // ended "complete"
  EXPECT_THROW(exec.resume(7), support::ExecError);  // never existed
}

TEST(ResumeTest, QuarantinedInstancesAreInvisibleToMemoization) {
  World w;
  const TaskGraph flow = chain_flow(w, 2);
  Executor exec(w.db, w.tools);
  ExecOptions reuse;
  reuse.reuse_existing = true;
  const ExecResult first = exec.run(flow, reuse);
  EXPECT_EQ(first.tasks_run, 2u);
  const ExecResult again = exec.run(flow, reuse);
  EXPECT_EQ(again.tasks_reused, 2u);
  EXPECT_EQ(again.tasks_run, 0u);

  // Quarantining the first task's product re-derives the whole chain: the
  // replacement product has a new id, so the dependent's memo key changes.
  const InstanceId d1 = first.of(faulttest::node_of(flow, "CD1")).front();
  w.db.quarantine(d1, "test");
  EXPECT_FALSE(w.db.instance(d1).ok());
  const ExecResult redo = exec.run(flow, reuse);
  EXPECT_EQ(redo.tasks_run, 2u);
  EXPECT_EQ(redo.tasks_reused, 0u);
}

TEST(ResumeTest, ExecOptionsRoundTripThroughTheRunRecord) {
  ExecOptions options;
  options.parallel = true;
  options.max_threads = 7;
  options.reuse_existing = true;
  options.user = "resumer";
  options.task_latency = std::chrono::milliseconds{3};
  options.fault.mode = FailureMode::kBestEffort;
  options.fault.max_retries = 2;
  options.fault.backoff = std::chrono::milliseconds{40};
  options.fault.backoff_multiplier = 1.5;
  options.fault.timeout = std::chrono::milliseconds{900};
  options.fault.seed = 0xfeedface;
  const ExecOptions back = decode_exec_options(encode_exec_options(options));
  EXPECT_TRUE(back.parallel);
  EXPECT_EQ(back.max_threads, 7u);
  EXPECT_TRUE(back.reuse_existing);
  EXPECT_EQ(back.user, "resumer");
  EXPECT_EQ(back.task_latency.count(), 3);
  EXPECT_EQ(back.fault.mode, FailureMode::kBestEffort);
  EXPECT_EQ(back.fault.max_retries, 2u);
  EXPECT_EQ(back.fault.backoff.count(), 40);
  EXPECT_DOUBLE_EQ(back.fault.backoff_multiplier, 1.5);
  EXPECT_EQ(back.fault.timeout.count(), 900);
  EXPECT_EQ(back.fault.seed, 0xfeedfaceu);
}

}  // namespace
}  // namespace herc::exec
