// Property: a flow the analyzer passes as error-free really is safe to
// hand to the framework.  Randomized flows are grown over the full schema
// (expand / specialize / co-output / bind, the §3.4 moves); whenever the
// combined schema+flow+plan lint reports no error-severity diagnostic, the
// flow must survive `check()`, task grouping and an actual executor run
// without SchemaError/FlowError/HistoryError.  (ExecError is a *tool*
// failing, which no static analysis can rule out — but the standard
// encapsulations on well-formed payloads do not fail either.)
#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyze/flow_lint.hpp"
#include "property_seed.hpp"
#include "analyze/plan_check.hpp"
#include "analyze/schema_lint.hpp"
#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "tools/registry.hpp"

namespace herc::analyze {
namespace {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using schema::EntityTypeId;

class LintProperty : public ::testing::Test {
 protected:
  LintProperty()
      : schema_(schema::make_full_schema()),
        clock_(0, 1),
        db_(schema_, clock_),
        registry_(schema_) {
    // Every tool type gets a trivial deterministic encapsulation, so a
    // lint-clean flow is executable end to end.
    for (const EntityTypeId id : schema_.all()) {
      if (!schema_.is_tool(id) || schema_.is_abstract(id)) continue;
      tools::Encapsulation enc;
      enc.name = schema_.entity_name(id) + ".stub";
      enc.tool_type = id;
      enc.fn = [](const tools::ToolContext& ctx) {
        tools::ToolOutput out;
        // Emit every product any rule could ask of this tool; extras are
        // ignored by the executor.
        for (const auto& [type_name, payload] : kAllProducts) {
          out.set(type_name, payload);
        }
        (void)ctx;
        return out;
      };
      registry_.register_encapsulation(std::move(enc));
    }
  }

  /// Products covering every data type the full schema can construct.
  static const std::vector<std::pair<std::string, std::string>> kAllProducts;

  /// Imports one instance of every *source* entity type (concrete, no
  /// construction rule), so leaves are always bindable.
  void import_sources() {
    for (const EntityTypeId id : schema_.all()) {
      if (schema_.is_abstract(id) || !schema_.is_source(id)) continue;
      sources_[id.value()] = db_.import_instance(
          id, schema_.entity_name(id) + "_src", "payload", "prop");
    }
  }

  /// Grows a random flow: start at a random constructible goal, then a
  /// few random expand/specialize moves, then bind every leaf that has an
  /// imported instance.
  TaskGraph random_flow(std::mt19937& rng) {
    std::vector<EntityTypeId> goals;
    for (const EntityTypeId id : schema_.all()) {
      if (schema_.is_abstract(id) || schema_.is_source(id) ||
          schema_.is_tool(id)) {
        continue;
      }
      goals.push_back(id);
    }
    TaskGraph flow(schema_, "prop");
    flow.add_node(goals[rng() % goals.size()]);
    for (int step = 0; step < 8; ++step) {
      const auto nodes = flow.nodes();
      const NodeId n = nodes[rng() % nodes.size()];
      const graph::Node& node = flow.node(n);
      try {
        if (schema_.is_abstract(node.type)) {
          const auto concrete = schema_.concrete_descendants(node.type);
          flow.specialize(n, concrete[rng() % concrete.size()]);
        } else if (!node.expanded && !schema_.is_source(node.type) &&
                   node.bound.empty()) {
          graph::ExpandOptions opts;
          opts.include_optional = (rng() % 4) == 0;
          flow.expand(n, opts);
        }
      } catch (const support::FlowError&) {
        // Some random moves are illegal (expanding a tool output that is
        // already wired, cycles); the generator just tries another node.
      }
    }
    for (const NodeId n : flow.nodes()) {
      const graph::Node& node = flow.node(n);
      if (!flow.is_leaf(n) || !node.bound.empty()) continue;
      const auto it = sources_.find(node.type.value());
      if (it != sources_.end()) flow.bind(n, it->second);
    }
    return flow;
  }

  /// The combined static verdict the property gates on.
  bool lint_clean(const TaskGraph& flow) {
    FlowLintOptions options;
    options.db = &db_;
    options.tools = &registry_;
    LintReport report = lint_flow(flow, options);
    report.merge(lint_plan(flow, {.parallel = true}));
    return report.severity() != Severity::kError;
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  history::HistoryDb db_;
  tools::ToolRegistry registry_;
  std::unordered_map<std::uint32_t, InstanceId> sources_;
};

const std::vector<std::pair<std::string, std::string>>
    LintProperty::kAllProducts = {
        {"DeviceModels", "m"},   {"EditedNetlist", "n"},
        {"ExtractedNetlist", "n"}, {"PlacedLayout", "l"},
        {"EditedLayout", "l"},   {"Performance", "p"},
        {"Statistics", "s"},     {"Verification", "v"},
        {"PerformancePlot", "g"}, {"SwitchPerformance", "p"},
        {"SwitchStatistics", "s"}, {"CompiledSimulator", "x"},
        {"SynthesizedNetlist", "n"}, {"RoutedLayout", "l"},
        {"PerformanceDiff", "d"}, {"OptimizedNetlist", "n"},
        {"LogicView", "lv"},
};

TEST_F(LintProperty, ErrorFreeFlowsSurviveCheckAndGrouping) {
  import_sources();
  const std::uint64_t seed = testprop::base_seed(20260807);
  SCOPED_TRACE(testprop::seed_note(seed));
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  int clean_flows = 0;
  for (int round = 0; round < 200; ++round) {
    const TaskGraph flow = random_flow(rng);
    if (!lint_clean(flow)) continue;
    ++clean_flows;
    // The analyzer said "no errors": the structural machinery must agree.
    EXPECT_NO_THROW(flow.check());
    EXPECT_NO_THROW((void)flow.task_groups());
  }
  // The generator is gentle; most of its flows should pass lint.
  EXPECT_GT(clean_flows, 100);
}

TEST_F(LintProperty, ErrorFreeFullyBoundFlowsExecute) {
  import_sources();
  const std::uint64_t seed = testprop::base_seed(42);
  SCOPED_TRACE(testprop::seed_note(seed));
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  int executed = 0;
  for (int round = 0; round < 60 && executed < 25; ++round) {
    const TaskGraph flow = random_flow(rng);
    if (!flow.unbound_leaves().empty()) continue;
    if (!lint_clean(flow)) continue;
    exec::Executor executor(db_, registry_);
    exec::ExecOptions options;
    options.parallel = (round % 2) == 0;
    try {
      (void)executor.run(flow, options);
      ++executed;
    } catch (const support::ExecError&) {
      // A tool refusing its input is outside lint's contract.
      ++executed;
    } catch (const support::HercError& e) {
      ADD_FAILURE() << "lint-clean flow failed structurally: " << e.what()
                    << "\n" << flow.save();
    }
  }
  EXPECT_GT(executed, 0);
}

}  // namespace
}  // namespace herc::analyze
