// View management as flows (§3.3, Figs. 7–8).
#include <gtest/gtest.h>

#include "circuit/edits.hpp"
#include "circuit/layout.hpp"
#include "circuit/logic_view.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "views/view_manager.hpp"

namespace herc::views {
namespace {

using support::ExecError;

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest()
      : session_(schema::make_full_schema(), "t",
                 std::make_unique<support::ManualClock>(0, 1)),
        manager_(session_.db(), session_.tools()) {
    synthesizer_ = session_.import_data("Synthesizer", "syn", "");
    placer_ = session_.import_data("Placer", "pl", "");
    verifier_ = session_.import_data("Verifier", "lvs", "");
    logic_ = session_.import_data("LogicView", "adder",
                                  circuit::full_adder_logic().to_text());
  }

  core::DesignSession session_;
  ViewManager manager_;
  data::InstanceId synthesizer_, placer_, verifier_, logic_;
};

TEST_F(ViewsTest, RegisterValidatesViewKind) {
  manager_.register_view("adder", ViewKind::kLogic, logic_);
  EXPECT_EQ(manager_.view("adder", ViewKind::kLogic), logic_);
  EXPECT_FALSE(manager_.view("adder", ViewKind::kPhysical).has_value());
  EXPECT_FALSE(manager_.view("ghost", ViewKind::kLogic).has_value());
  // A logic view cannot stand in the physical slot.
  EXPECT_THROW(manager_.register_view("adder", ViewKind::kPhysical, logic_),
               ExecError);
}

TEST_F(ViewsTest, SynthesisChainProducesConsistentViews) {
  manager_.register_view("adder", ViewKind::kLogic, logic_);
  const auto transistor =
      manager_.synthesize_transistor("adder", synthesizer_);
  EXPECT_EQ(manager_.view("adder", ViewKind::kTransistor), transistor);
  const auto physical = manager_.synthesize_physical("adder", placer_);
  EXPECT_EQ(manager_.view("adder", ViewKind::kPhysical), physical);
  EXPECT_TRUE(manager_.physical_up_to_date("adder"));
  const auto report = manager_.verify_correspondence("adder", verifier_);
  EXPECT_TRUE(report.pass) << report.to_text();
}

TEST_F(ViewsTest, MissingViewsAreReported) {
  EXPECT_THROW(manager_.synthesize_transistor("adder", synthesizer_),
               ExecError);  // no logic view yet
  manager_.register_view("adder", ViewKind::kLogic, logic_);
  EXPECT_THROW(manager_.synthesize_physical("adder", placer_),
               ExecError);  // no transistor view yet
  EXPECT_THROW(manager_.verify_correspondence("adder", verifier_),
               ExecError);
  EXPECT_FALSE(manager_.physical_up_to_date("adder"));
}

TEST_F(ViewsTest, BrokenLayoutFailsVerification) {
  manager_.register_view("adder", ViewKind::kLogic, logic_);
  manager_.synthesize_transistor("adder", synthesizer_);
  const auto physical = manager_.synthesize_physical("adder", placer_);
  // Delete a device via the layout editor.
  const circuit::Layout placed =
      circuit::Layout::from_text(session_.db().payload(physical));
  const std::string victim = placed.placements().front().device.name;
  const auto editor = session_.import_data("LayoutEditor", "sabotage",
                                           "unplace " + victim + "\n");
  graph::TaskGraph edit = session_.task_from_goal("EditedLayout");
  const graph::NodeId goal = edit.nodes().front();
  edit.expand(goal, graph::ExpandOptions{.include_optional = true});
  edit.bind(edit.tool_of(goal), editor);
  edit.bind(edit.inputs_of(goal)[0], physical);
  const auto broken = session_.run(edit).single(goal);
  manager_.register_view("adder", ViewKind::kPhysical, broken);

  const auto report = manager_.verify_correspondence("adder", verifier_);
  EXPECT_FALSE(report.pass);
  EXPECT_FALSE(report.errors.empty());
}

TEST_F(ViewsTest, StaleTransistorViewDetected) {
  manager_.register_view("adder", ViewKind::kLogic, logic_);
  manager_.synthesize_transistor("adder", synthesizer_);
  manager_.synthesize_physical("adder", placer_);
  EXPECT_TRUE(manager_.physical_up_to_date("adder"));
  // Re-synthesizing the transistor view leaves the old physical view
  // pointing at the superseded... actually at a *different* instance.
  const auto transistor2 =
      manager_.synthesize_transistor("adder", synthesizer_);
  (void)transistor2;
  EXPECT_FALSE(manager_.physical_up_to_date("adder"));
  // Regenerating the physical view restores consistency.
  manager_.synthesize_physical("adder", placer_);
  EXPECT_TRUE(manager_.physical_up_to_date("adder"));
}

TEST_F(ViewsTest, Fig8FlowsHaveThePaperShape) {
  const graph::TaskGraph synth = manager_.synthesis_flow();
  const graph::NodeId sg = synth.goals().front();
  EXPECT_EQ(session_.schema().entity_name(synth.node(sg).type),
            "PlacedLayout");
  EXPECT_EQ(session_.schema().entity_name(
                synth.node(synth.tool_of(sg)).type),
            "Placer");
  const graph::TaskGraph verify = manager_.verification_flow();
  const graph::NodeId vg = verify.goals().front();
  EXPECT_EQ(verify.inputs_of(vg).size(), 2u);  // Layout + Netlist
}

}  // namespace
}  // namespace herc::views
