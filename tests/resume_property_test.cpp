// Crash-resume property: killing a journaled 20-task run at EVERY byte
// offset of the journal leaves a store that (a) recovers without error,
// (b) resumes (or re-runs) to a complete flow, and (c) ends with exactly
// the uninterrupted run's active history — no task record lost, none
// duplicated.
//
// Structure (mirrors storage_property_test):
//   1. A random 20-task DAG is run once against a fresh store; the journal
//      bytes and the reference active-history signature are captured (the
//      imports live in the snapshot, so the journal holds only run-era
//      frames: run intents and products).
//   2. For every byte offset t, a trial store is built from the snapshot
//      plus the t-byte journal prefix and recovered — partial products are
//      quarantined.  If the run-begin frame survived, the run is resumed;
//      otherwise the flow is re-run with memoization.  Either way the
//      final active signature must equal the reference exactly (equality
//      of the sorted multiset rules out both duplicates and losses).
//   3. Sampled offsets additionally fsck the finished store: clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "exec/executor.hpp"
#include "fault_test_util.hpp"
#include "property_seed.hpp"
#include "storage/fsck.hpp"
#include "storage/store.hpp"
#include "support/text.hpp"

namespace herc::exec {
namespace {

namespace fs = std::filesystem;
using faulttest::World;
using graph::TaskGraph;
using storage::DurableHistory;
using storage::StoreOptions;
using storage::SyncPolicy;

constexpr std::size_t kTasks = 20;
const std::uint64_t kSeed = testprop::base_seed(0xD1CEu);

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> active_signature(const history::HistoryDb& db) {
  std::vector<std::string> sig;
  for (const std::string& line : faulttest::history_signature(db)) {
    if (line.find("|status=0|") != std::string::npos) sig.push_back(line);
  }
  return sig;
}

TEST(ResumePropertyTest, EveryByteCrashPointResumesToTheSameHistory) {
  SCOPED_TRACE(testprop::seed_note(kSeed));
  World w;
  const TaskGraph flow = faulttest::make_random_dag(w, kTasks, kSeed);
  const std::string dir =
      (fs::temp_directory_path() / "herc_resume_property").string();
  fs::remove_all(dir);

  StoreOptions options;
  options.journal.sync = SyncPolicy::kNone;

  std::vector<std::string> reference;
  {
    DurableHistory store(w.schema, w.clock, dir, options);
    store.adopt(std::move(w.db));  // imports -> snapshot; journal = run era
    Executor exec(store.db(), w.tools);
    const ExecResult result = exec.run(flow);
    ASSERT_EQ(result.tasks_run, kTasks);
    ASSERT_EQ(result.tasks_failed, 0u);
    reference = active_signature(store.db());
  }
  const std::string journal = slurp((fs::path(dir) / "journal.wal").string());
  ASSERT_GT(journal.size(), storage::kJournalHeaderBytes);

  const std::string trial = dir + "_trial";
  for (std::size_t t = 0; t <= journal.size(); ++t) {
    fs::remove_all(trial);
    fs::create_directories(trial);
    fs::copy_file(fs::path(dir) / "schema.herc",
                  fs::path(trial) / "schema.herc");
    fs::copy_file(fs::path(dir) / "snapshot.herc",
                  fs::path(trial) / "snapshot.herc");
    {
      std::ofstream out((fs::path(trial) / "journal.wal").string(),
                        std::ios::binary);
      out.write(journal.data(), static_cast<std::streamsize>(t));
    }

    support::ManualClock clock(1u << 20, 1);
    DurableHistory store(w.schema, clock, trial, options);
    Executor exec(store.db(), w.tools);
    ExecResult result;
    const auto open = store.db().open_runs();
    if (!open.empty()) {
      ASSERT_EQ(open.size(), 1u) << "offset " << t;
      result = exec.resume(open.front()->id);
    } else {
      // The crash predates the run-begin frame (or ate the journal header
      // entirely): nothing to resume, so the flow runs afresh — with
      // memoization, so any surviving products are still not duplicated.
      ExecOptions redo;
      redo.reuse_existing = true;
      result = exec.run(flow, redo);
    }
    ASSERT_EQ(result.tasks_failed, 0u) << "offset " << t;
    ASSERT_EQ(result.tasks_skipped, 0u) << "offset " << t;
    ASSERT_EQ(result.tasks_run + result.tasks_reused, kTasks)
        << "offset " << t;
    ASSERT_EQ(active_signature(store.db()), reference) << "offset " << t;
    ASSERT_TRUE(store.db().open_runs().empty()) << "offset " << t;

    // Sampled offsets: the healed store must audit clean on disk.
    if (t % 509 == 0 || t == journal.size()) {
      store.sync();
      const storage::FsckReport report = storage::fsck_store(trial);
      ASSERT_EQ(report.exit_code(), 0)
          << "offset " << t << "\n" << report.render();
    }
  }
  fs::remove_all(trial);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace herc::exec
