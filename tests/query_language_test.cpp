// The textual query language compiled onto task-graph templates (§4.2).
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "history/query_language.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"

namespace herc::history {
namespace {

using data::InstanceId;
using support::FlowError;
using support::HistoryError;
using support::ParseError;

class QueryTest : public ::testing::Test {
 protected:
  QueryTest()
      : session_(schema::make_full_schema(), "q",
                 std::make_unique<support::ManualClock>(0, 1)) {
    netlist_ = session_.import_data("EditedNetlist", "CMOS Full adder",
                                    circuit::full_adder_netlist().to_text());
    other_netlist_ = session_.import_data(
        "EditedNetlist", "inverter", circuit::inverter_netlist().to_text());
    models_ = session_.import_data(
        "DeviceModels", "std",
        circuit::DeviceModelLibrary::standard().to_text());
    stimuli_a_ = session_.import_data(
        "Stimuli", "walk A",
        circuit::Stimuli::counter({"a", "b", "cin"}, 1000).to_text());
    stimuli_b_ = session_.import_data(
        "Stimuli", "walk B",
        circuit::Stimuli::random({"a", "b", "cin"}, 1000, 6, 9).to_text());
    simulator_ = session_.import_data("Simulator", "sim", "");
    perf_a_ = simulate_once(netlist_, stimuli_a_);
    perf_b_ = simulate_once(netlist_, stimuli_b_);
    perf_inv_ = simulate_once(other_netlist_, stimuli_a_);
  }

  InstanceId simulate_once(InstanceId nl, InstanceId st) {
    graph::TaskGraph flow(session_.schema(), "sim");
    const graph::NodeId perf = flow.add_node("Performance");
    flow.expand(perf);
    const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
    flow.bind(flow.tool_of(perf), simulator_);
    flow.bind(flow.inputs_of(perf)[1], st);
    flow.bind(circuit_inputs[0], models_);
    flow.bind(circuit_inputs[1], nl);
    return session_.run(flow).single(perf);
  }

  core::DesignSession session_;
  InstanceId netlist_, other_netlist_, models_, stimuli_a_, stimuli_b_;
  InstanceId simulator_, perf_a_, perf_b_, perf_inv_;
};

TEST_F(QueryTest, UnconstrainedFindListsAll) {
  const auto hits = run_query(session_.db(), "find Performance");
  EXPECT_EQ(hits.size(), 3u);
  // Subtype-aware: find Netlist sees both EditedNetlists.
  EXPECT_EQ(run_query(session_.db(), "find Netlist").size(), 2u);
}

TEST_F(QueryTest, PathThroughCompositeFindsSimulationsOfNetlist) {
  // The paper's flagship query.
  const auto hits = run_query(
      session_.db(),
      "find Performance where circuit.netlist = i" +
          std::to_string(netlist_.value()));
  EXPECT_EQ(hits, (std::vector<InstanceId>{perf_a_, perf_b_}));
}

TEST_F(QueryTest, ConjunctionNarrows) {
  const auto hits = run_query(
      session_.db(),
      "find Performance where circuit.netlist = i" +
          std::to_string(netlist_.value()) + " and stimuli = i" +
          std::to_string(stimuli_b_.value()));
  EXPECT_EQ(hits, std::vector<InstanceId>{perf_b_});
}

TEST_F(QueryTest, QuotedNamesResolve) {
  const auto hits = run_query(
      session_.db(),
      "find Performance where circuit.netlist = \"CMOS Full adder\" "
      "and stimuli = \"walk A\"");
  EXPECT_EQ(hits, std::vector<InstanceId>{perf_a_});
}

TEST_F(QueryTest, ToolStepMatchesTheFd) {
  const auto hits = run_query(
      session_.db(), "find Performance where tool = i" +
                         std::to_string(simulator_.value()));
  EXPECT_EQ(hits.size(), 3u);
}

TEST_F(QueryTest, RoleStepsWork) {
  // Edit the netlist; find edits seeded from it via the role name.
  const auto editor = session_.import_data("CircuitEditor", "ed",
                                           "set x1.u1.mn1 value=2\n");
  graph::TaskGraph edit(session_.schema(), "e");
  const graph::NodeId goal = edit.add_node("EditedNetlist");
  edit.expand(goal, graph::ExpandOptions{.include_optional = true});
  edit.bind(edit.tool_of(goal), editor);
  edit.bind(edit.inputs_of(goal)[0], netlist_);
  const auto v2 = session_.run(edit).single(goal);

  const auto hits = run_query(
      session_.db(),
      "find EditedNetlist where seed = i" + std::to_string(netlist_.value()));
  EXPECT_EQ(hits, std::vector<InstanceId>{v2});
}

TEST_F(QueryTest, SyntaxErrors) {
  EXPECT_THROW(run_query(session_.db(), "seek Performance"), ParseError);
  EXPECT_THROW(run_query(session_.db(), "find"), ParseError);
  EXPECT_THROW(run_query(session_.db(), "find Performance when x = i1"),
               ParseError);
  EXPECT_THROW(run_query(session_.db(), "find Performance where stimuli"),
               ParseError);
  EXPECT_THROW(
      run_query(session_.db(), "find Performance where stimuli = banana"),
      ParseError);
  EXPECT_THROW(
      run_query(session_.db(),
                "find Performance where stimuli = \"unterminated"),
      ParseError);
}

TEST_F(QueryTest, SemanticErrors) {
  // Unknown entity.
  EXPECT_THROW(run_query(session_.db(), "find Wormhole"),
               support::SchemaError);
  // Unknown path step.
  EXPECT_THROW(
      run_query(session_.db(), "find Performance where layout = i0"),
      FlowError);
  // Source entities have no tool step.
  EXPECT_THROW(run_query(session_.db(), "find Stimuli where tool = i0"),
               FlowError);
  // Ambiguous / unknown instance names.
  EXPECT_THROW(
      run_query(session_.db(),
                "find Performance where stimuli = \"missing thing\""),
      HistoryError);
  session_.import_data("Stimuli", "walk A", "stimuli dup\n");
  EXPECT_THROW(run_query(session_.db(),
                         "find Performance where stimuli = \"walk A\""),
               HistoryError);
}

TEST_F(QueryTest, SameTypeRolesAreDisambiguated) {
  // PerformanceDiff has two Performance inputs; querying by role must
  // distinguish them.
  const auto comparator = session_.import_data("Comparator", "cmp", "");
  graph::TaskGraph cmp(session_.schema(), "cmp");
  const graph::NodeId diff = cmp.add_node("PerformanceDiff");
  cmp.expand(diff);
  cmp.bind(cmp.tool_of(diff), comparator);
  cmp.bind(cmp.inputs_of(diff)[0], perf_a_);
  cmp.bind(cmp.inputs_of(diff)[1], perf_b_);
  const auto diff_inst = session_.run(cmp).single(diff);

  const auto by_golden = run_query(
      session_.db(), "find PerformanceDiff where golden = i" +
                         std::to_string(perf_a_.value()));
  EXPECT_EQ(by_golden, std::vector<InstanceId>{diff_inst});
  const auto wrong_role = run_query(
      session_.db(), "find PerformanceDiff where candidate = i" +
                         std::to_string(perf_a_.value()));
  EXPECT_TRUE(wrong_role.empty());
  // The bare entity step is ambiguous here.
  EXPECT_THROW(run_query(session_.db(),
                         "find PerformanceDiff where performance = i" +
                             std::to_string(perf_a_.value())),
               FlowError);
}

}  // namespace
}  // namespace herc::history
