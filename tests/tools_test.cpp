// Tool encapsulation layer: registry resolution, composite payloads,
// context lookup.
#include <gtest/gtest.h>

#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "tools/composite.hpp"
#include "tools/registry.hpp"
#include "tools/standard_tools.hpp"

namespace herc::tools {
namespace {

using support::ExecError;

ToolOutput noop(const ToolContext&) { return ToolOutput(); }

TEST(Registry, RegistersAndResolves) {
  const schema::TaskSchema schema = schema::make_full_schema();
  ToolRegistry registry(schema);
  registry.register_encapsulation(
      Encapsulation{"Placer.default", schema.require("Placer"), noop, {},
                    false});
  EXPECT_TRUE(registry.has(schema.require("Placer")));
  EXPECT_EQ(registry.resolve(schema.require("Placer")).name,
            "Placer.default");
  EXPECT_FALSE(registry.has(schema.require("Verifier")));
  EXPECT_THROW((void)registry.resolve(schema.require("Verifier")), ExecError);
}

TEST(Registry, RejectsBadRegistrations) {
  const schema::TaskSchema schema = schema::make_full_schema();
  ToolRegistry registry(schema);
  // Non-tool entity.
  EXPECT_THROW(registry.register_encapsulation(
                   Encapsulation{"x", schema.require("Stimuli"), noop, {},
                                 false}),
               ExecError);
  // Missing function.
  EXPECT_THROW(registry.register_encapsulation(
                   Encapsulation{"y", schema.require("Placer"), nullptr, {},
                                 false}),
               ExecError);
  registry.register_encapsulation(
      Encapsulation{"dup", schema.require("Placer"), noop, {}, false});
  EXPECT_THROW(registry.register_encapsulation(
                   Encapsulation{"dup", schema.require("Placer"), noop, {},
                                 false}),
               ExecError);
}

TEST(Registry, SubtypeResolutionSharesEncapsulation) {
  // One registration on abstract Optimizer serves every concrete subtype
  // (the paper's shared encapsulation).
  const schema::TaskSchema schema = schema::make_full_schema();
  ToolRegistry registry(schema);
  registry.register_encapsulation(
      Encapsulation{"Optimizer.shared", schema.require("Optimizer"), noop,
                    {}, false});
  EXPECT_EQ(registry.resolve(schema.require("GradientOptimizer")).name,
            "Optimizer.shared");
  EXPECT_EQ(registry.resolve(schema.require("AnnealingOptimizer")).name,
            "Optimizer.shared");
  // A more specific registration takes precedence.
  registry.register_encapsulation(
      Encapsulation{"Gradient.special", schema.require("GradientOptimizer"),
                    noop, {}, false});
  EXPECT_EQ(registry.resolve(schema.require("GradientOptimizer")).name,
            "Gradient.special");
  EXPECT_EQ(registry.resolve(schema.require("AnnealingOptimizer")).name,
            "Optimizer.shared");
}

TEST(Registry, VariantsAndDefaults) {
  const schema::TaskSchema schema = schema::make_full_schema();
  ToolRegistry registry(schema);
  tools::register_standard_tools(registry);
  // The placer ships three variants differing only in arguments.
  const auto variants = registry.variants(schema.require("Placer"));
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(registry.resolve(schema.require("Placer")).name,
            "Placer.default");
  registry.set_default("Placer.fast");
  EXPECT_EQ(registry.resolve(schema.require("Placer")).name, "Placer.fast");
  EXPECT_EQ(registry.resolve(schema.require("Placer")).args.at("moves"),
            "100");
  EXPECT_THROW(registry.set_default("Placer.imaginary"), ExecError);
  EXPECT_NE(registry.find("Placer.quality"), nullptr);
  EXPECT_EQ(registry.find("nothing"), nullptr);
  EXPECT_FALSE(registry.names().empty());
}

TEST(Composite, JoinSplitRoundTrip) {
  const std::vector<std::string> parts{
      "first", "", "with\nnewlines and @part markers\n@composite 2\n",
      std::string(1000, 'x')};
  const std::string packed = join_composite(parts);
  EXPECT_EQ(split_composite(packed), parts);
}

TEST(Composite, RejectsMalformedPayloads) {
  EXPECT_THROW(split_composite("not a composite"), ExecError);
  EXPECT_THROW(split_composite("@composite abc\n"), ExecError);
  EXPECT_THROW(split_composite("@composite 2\n@part 5\nabc"), ExecError);
  EXPECT_THROW(split_composite("@composite 2\n@part 1\na\n"), ExecError);
}

TEST(ToolContext, LookupByRoleTypeAndSubtype) {
  const schema::TaskSchema schema = schema::make_full_schema();
  ToolContext ctx;
  ctx.schema = &schema;
  ctx.tool_type_name = "T";
  ToolInput seed;
  seed.type = schema.require("ExtractedNetlist");
  seed.type_name = "ExtractedNetlist";
  seed.role = "seed";
  seed.payloads = {"p1"};
  ctx.inputs.push_back(seed);
  // By role.
  EXPECT_EQ(ctx.payload("seed"), "p1");
  // By exact type name.
  EXPECT_EQ(ctx.payload("ExtractedNetlist"), "p1");
  // By supertype name (the subtype-tolerant fallback).
  EXPECT_EQ(ctx.payload("Netlist"), "p1");
  EXPECT_TRUE(ctx.has_input("Netlist"));
  EXPECT_FALSE(ctx.has_input("Layout"));
  EXPECT_THROW((void)ctx.input("Layout"), ExecError);
  // Sets refuse the single-payload accessor.
  ctx.inputs[0].payloads.push_back("p2");
  EXPECT_THROW((void)ctx.payload("seed"), ExecError);
  // Argument defaults.
  ctx.args["k"] = "v";
  EXPECT_EQ(ctx.arg("k"), "v");
  EXPECT_EQ(ctx.arg("missing", "fallback"), "fallback");
}

TEST(ToolOutput, SetReplacesAndFinds) {
  ToolOutput out;
  out.set("A", "1");
  out.set("B", "2");
  out.set("A", "3");
  ASSERT_NE(out.find("A"), nullptr);
  EXPECT_EQ(*out.find("A"), "3");
  EXPECT_EQ(out.find("C"), nullptr);
  EXPECT_EQ(out.products().size(), 2u);
}

TEST(StandardTools, RegistersOnlyEntitiesPresentInSchema) {
  // The Fig. 2 schema lacks most Fig. 1 tools; registration must skip them.
  const schema::TaskSchema fig2 = schema::make_fig2_schema();
  ToolRegistry registry(fig2);
  register_standard_tools(registry);
  EXPECT_TRUE(registry.has(fig2.require("SimCompiler")));
  EXPECT_TRUE(registry.has(fig2.require("CompiledSimulator")));
  EXPECT_EQ(registry.find("Placer.default"), nullptr);
}

TEST(StandardTools, ComposeCheckInstalledOnCircuit) {
  schema::TaskSchema schema = schema::make_full_schema();
  install_standard_compose_checks(schema);
  const auto* check = schema.compose_check(schema.require("Circuit"));
  ASSERT_NE(check, nullptr);
  std::string why;
  EXPECT_FALSE((*check)({"just one part"}, why));
  EXPECT_FALSE(why.empty());
  // The decompose hook mirrors split_composite.
  const auto* decompose = schema.decompose(schema.require("Circuit"));
  ASSERT_NE(decompose, nullptr);
  const auto parts = (*decompose)(join_composite({"a", "b"}));
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace herc::tools
