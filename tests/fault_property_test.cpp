// Property: for randomly generated DAG flows under a fixed fault schedule,
// serial and parallel execution are observationally equivalent — they
// produce identical history-database contents (instance counts, payloads,
// failure records, derivations) and identical run accounting.  Instance
// ids, names and timestamps depend on the schedule and are excluded via
// the order-independent `history_signature`.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault_test_util.hpp"
#include "property_seed.hpp"

namespace herc::faulttest {
namespace {

using exec::ExecOptions;
using exec::ExecResult;
using exec::Executor;
using exec::FailureMode;

constexpr std::size_t kTasks = 12;

ExecResult run_dag(World& w, const graph::TaskGraph& flow,
                   const std::vector<tools::FaultSpec>& faults, bool parallel,
                   FailureMode mode) {
  tools::FaultInjectingRegistry faulty(w.tools);
  for (const tools::FaultSpec& spec : faults) faulty.inject(spec);
  Executor ex(w.db, faulty);
  ExecOptions opt;
  opt.parallel = parallel;
  opt.max_threads = 4;
  opt.fault.mode = mode;
  opt.fault.max_retries = 1;
  opt.fault.backoff = std::chrono::milliseconds{1};
  opt.fault.clock = &w.clock;  // virtual backoff: no real sleeps
  return ex.run(flow, opt);
}

TEST(FaultPropertyTest, SerialAndParallelProduceIdenticalHistories) {
  std::size_t total_failed = 0;
  std::size_t total_ok = 0;
  const std::uint64_t base = testprop::base_seed(1);
  for (std::uint64_t seed = base; seed < base + 8; ++seed) {
    SCOPED_TRACE(testprop::seed_note(seed));
    const FailureMode mode = (seed % 2 == 0) ? FailureMode::kBestEffort
                                             : FailureMode::kContinueBranches;
    World serial_world;
    const graph::TaskGraph serial_flow =
        make_random_dag(serial_world, kTasks, seed);
    World parallel_world;
    const graph::TaskGraph parallel_flow =
        make_random_dag(parallel_world, kTasks, seed);
    const auto faults = random_faults(kTasks, seed);

    const ExecResult a =
        run_dag(serial_world, serial_flow, faults, /*parallel=*/false, mode);
    const ExecResult b =
        run_dag(parallel_world, parallel_flow, faults, /*parallel=*/true, mode);

    EXPECT_EQ(a.tasks_run, b.tasks_run);
    EXPECT_EQ(a.tasks_failed, b.tasks_failed);
    EXPECT_EQ(a.tasks_skipped, b.tasks_skipped);
    EXPECT_EQ(history_signature(serial_world.db),
              history_signature(parallel_world.db));
    total_failed += a.tasks_failed + a.tasks_skipped;
    total_ok += a.tasks_run;
  }
  // Guard against a vacuous property: across the eight seeds some tasks
  // must have failed or been skipped, and some must have succeeded.
  EXPECT_GT(total_failed, 0u);
  EXPECT_GT(total_ok, 0u);
}

TEST(FaultPropertyTest, RepeatedRunsAreBitIdentical) {
  const auto run_once = [](std::uint64_t seed) {
    World w;
    const graph::TaskGraph flow = make_random_dag(w, kTasks, seed);
    const auto faults = random_faults(kTasks, seed);
    const ExecResult r = run_dag(w, flow, faults, /*parallel=*/true,
                                 FailureMode::kContinueBranches);
    return std::make_pair(
        std::make_tuple(r.tasks_run, r.tasks_failed, r.tasks_skipped),
        history_signature(w.db));
  };
  const std::uint64_t base = testprop::base_seed(11);
  for (std::uint64_t seed = base; seed < base + 4; ++seed) {
    SCOPED_TRACE(testprop::seed_note(seed));
    const auto a = run_once(seed);
    const auto b = run_once(seed);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
  }
}

TEST(FaultPropertyTest, FailureRecordCountsMatchRunAccounting) {
  const std::uint64_t base = testprop::base_seed(21);
  for (std::uint64_t seed = base; seed < base + 4; ++seed) {
    SCOPED_TRACE(testprop::seed_note(seed));
    World w;
    const graph::TaskGraph flow = make_random_dag(w, kTasks, seed);
    const auto faults = random_faults(kTasks, seed);
    const ExecResult r = run_dag(w, flow, faults, /*parallel=*/true,
                                 FailureMode::kContinueBranches);
    // One failure record per failed combination plus one per skipped task
    // (every task here has exactly one output node and fan-out one).
    std::size_t failed_records = 0;
    std::size_t skipped_records = 0;
    for (const data::InstanceId id : w.db.failures()) {
      const history::Instance& inst = w.db.instance(id);
      if (inst.status == history::InstanceStatus::kFailed) ++failed_records;
      if (inst.status == history::InstanceStatus::kSkipped) ++skipped_records;
      // Failure records carry no payload; the error is in the comment.
      EXPECT_TRUE(w.db.payload(id).empty());
      EXPECT_FALSE(inst.comment.empty());
    }
    EXPECT_EQ(failed_records, r.tasks_failed);
    EXPECT_EQ(skipped_records, r.tasks_skipped);
    // Every task is accounted for exactly once.
    EXPECT_EQ(r.tasks_run + r.tasks_failed + r.tasks_skipped, kTasks);
  }
}

}  // namespace
}  // namespace herc::faulttest
