// Task-schema semantics (§3.1): construction rules, subtyping, optional
// arcs, composites, groundability.
#include <gtest/gtest.h>

#include "schema/standard_schemas.hpp"
#include "schema/task_schema.hpp"
#include "support/error.hpp"

namespace herc::schema {
namespace {

using support::SchemaError;

TEST(Schema, EntityDeclarationBasics) {
  TaskSchema s("t");
  const auto tool = s.add_tool("Tool");
  const auto data = s.add_data("Data");
  EXPECT_TRUE(s.is_tool(tool));
  EXPECT_FALSE(s.is_tool(data));
  EXPECT_EQ(s.entity_name(tool), "Tool");
  EXPECT_EQ(s.find("Tool"), tool);
  EXPECT_FALSE(s.find("Missing").valid());
  EXPECT_THROW((void)s.require("Missing"), SchemaError);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Schema, RejectsDuplicateAndIllegalNames) {
  TaskSchema s("t");
  s.add_data("Data");
  EXPECT_THROW(s.add_data("Data"), SchemaError);
  EXPECT_THROW(s.add_tool("Data"), SchemaError);
  EXPECT_THROW(s.add_data("9starts_with_digit"), SchemaError);
  EXPECT_THROW(s.add_data("has space"), SchemaError);
  EXPECT_THROW(s.add_data(""), SchemaError);
}

TEST(Schema, FunctionalDependencyRules) {
  TaskSchema s("t");
  const auto tool = s.add_tool("Tool");
  const auto tool2 = s.add_tool("Tool2");
  const auto data = s.add_data("Data");
  const auto other = s.add_data("Other");
  s.set_functional_dependency(data, tool);
  // At most one fd.
  EXPECT_THROW(s.set_functional_dependency(data, tool2), SchemaError);
  // fd must target a tool.
  EXPECT_THROW(s.set_functional_dependency(other, data), SchemaError);
  const ConstructionRule rule = s.construction(data);
  EXPECT_EQ(rule.tool, tool);
  EXPECT_TRUE(rule.inputs.empty());
}

TEST(Schema, DataDependencyDuplicatesNeedDistinctRoles) {
  TaskSchema s("t");
  const auto a = s.add_data("A");
  const auto b = s.add_data("B");
  s.add_data_dependency(a, b, false, "left");
  s.add_data_dependency(a, b, false, "right");
  EXPECT_THROW(s.add_data_dependency(a, b, false, "left"), SchemaError);
  EXPECT_EQ(s.construction(a).inputs.size(), 2u);
}

TEST(Schema, SubtypeInheritsKindAndRule) {
  TaskSchema s("t");
  const auto tool = s.add_tool("Editor");
  const auto base = s.add_data("Doc", /*abstract=*/true);
  const auto sub = s.add_subtype("RichDoc", base);
  EXPECT_FALSE(s.is_tool(sub));
  EXPECT_TRUE(s.is_ancestor_or_self(base, sub));
  EXPECT_FALSE(s.is_ancestor_or_self(sub, base));
  // Subtype with no own arcs inherits the nearest ancestor's rule.
  s.set_functional_dependency(base, tool);
  const ConstructionRule rule = s.construction(sub);
  EXPECT_EQ(rule.tool, tool);
  EXPECT_EQ(rule.owner, base);
  // A subtype declaring its own arcs overrides.
  const auto tool2 = s.add_tool("Editor2");
  const auto sub2 = s.add_subtype("PlainDoc", base);
  s.set_functional_dependency(sub2, tool2);
  EXPECT_EQ(s.construction(sub2).tool, tool2);
  EXPECT_EQ(s.construction(sub2).owner, sub2);
}

TEST(Schema, SubtypeKindMatchesParent) {
  TaskSchema s("t");
  const auto tool = s.add_tool("Tool", /*abstract=*/true);
  const auto sub = s.add_subtype("FastTool", tool);
  EXPECT_TRUE(s.is_tool(sub));
}

TEST(Schema, ConcreteDescendants) {
  const TaskSchema s = make_fig1_schema();
  const auto netlist = s.require("Netlist");
  const auto descendants = s.concrete_descendants(netlist);
  ASSERT_EQ(descendants.size(), 2u);
  // Abstract root is excluded, itself concrete types included.
  const auto layout = s.require("PlacedLayout");
  const auto self = s.concrete_descendants(layout);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], layout);
}

TEST(Schema, CompositeRules) {
  TaskSchema s("t");
  const auto c = s.add_composite("Pair");
  const auto tool = s.add_tool("Tool");
  // Composites may not have an fd and may not be subtyped.
  EXPECT_THROW(s.set_functional_dependency(c, tool), SchemaError);
  EXPECT_THROW(s.add_subtype("SubPair", c), SchemaError);
  // Composite without any dd fails validation.
  EXPECT_THROW(s.validate(), SchemaError);
  const auto a = s.add_data("A");
  const auto b = s.add_data("B");
  s.add_data_dependency(c, a);
  s.add_data_dependency(c, b);
  s.validate();
  EXPECT_TRUE(s.is_composite(c));
}

TEST(Schema, ComposeHooksOnlyOnComposites) {
  TaskSchema s("t");
  const auto d = s.add_data("D");
  EXPECT_THROW(
      s.set_compose_check(d, [](const auto&, std::string&) { return true; }),
      SchemaError);
  const auto c = s.add_composite("C");
  s.add_data_dependency(c, d);
  s.set_compose_check(c, [](const auto&, std::string&) { return true; });
  EXPECT_NE(s.compose_check(c), nullptr);
  EXPECT_EQ(s.compose_check(d), nullptr);
  s.set_decompose(c, [](const std::string&) {
    return std::vector<std::string>{};
  });
  EXPECT_NE(s.decompose(c), nullptr);
}

TEST(Schema, GroundabilityCatchesForgottenOptional) {
  // The paper's loop: EditedNetlist needs a Netlist which only
  // EditedNetlist can produce.  Without the optional arc no instance can
  // ever be bootstrapped.
  TaskSchema s("t");
  const auto editor = s.add_tool("Editor");
  const auto netlist = s.add_data("Netlist", /*abstract=*/true);
  const auto edited = s.add_subtype("EditedNetlist", netlist);
  s.set_functional_dependency(edited, editor);
  s.add_data_dependency(edited, netlist, /*optional=*/false, "seed");
  EXPECT_FALSE(s.groundable(edited));
  EXPECT_THROW(s.validate(), SchemaError);

  // Marking the arc optional (the paper's fix) makes it groundable.
  TaskSchema s2("t2");
  const auto editor2 = s2.add_tool("Editor");
  const auto netlist2 = s2.add_data("Netlist", /*abstract=*/true);
  const auto edited2 = s2.add_subtype("EditedNetlist", netlist2);
  s2.set_functional_dependency(edited2, editor2);
  s2.add_data_dependency(edited2, netlist2, /*optional=*/true, "seed");
  EXPECT_TRUE(s2.groundable(edited2));
  s2.validate();
}

TEST(Schema, GroundabilityAcceptsAlternativeSubtype) {
  // A mandatory loop with an escape through a sibling subtype is fine.
  TaskSchema s("t");
  const auto editor = s.add_tool("Editor");
  const auto extractor = s.add_tool("Extractor");
  const auto layout = s.add_data("Layout");
  const auto netlist = s.add_data("Netlist", /*abstract=*/true);
  const auto edited = s.add_subtype("EditedNetlist", netlist);
  const auto extracted = s.add_subtype("ExtractedNetlist", netlist);
  s.set_functional_dependency(edited, editor);
  s.add_data_dependency(edited, netlist, /*optional=*/false, "seed");
  s.set_functional_dependency(extracted, extractor);
  s.add_data_dependency(extracted, layout);
  EXPECT_TRUE(s.groundable(edited));
  s.validate();
}

TEST(Schema, AbstractWithoutConcreteDescendantFailsValidation) {
  TaskSchema s("t");
  s.add_data("Ghost", /*abstract=*/true);
  EXPECT_THROW(s.validate(), SchemaError);
}

TEST(Schema, ConsumersOfRespectsSubtyping) {
  const TaskSchema s = make_fig1_schema();
  // ExtractedNetlist satisfies every arc targeting Netlist.
  const auto extracted = s.require("ExtractedNetlist");
  const auto usages = s.consumers_of(extracted);
  std::vector<std::string> consumers;
  for (const Usage& u : usages) {
    consumers.push_back(s.entity_name(u.consumer));
  }
  EXPECT_NE(std::find(consumers.begin(), consumers.end(), "PlacedLayout"),
            consumers.end());
  EXPECT_NE(std::find(consumers.begin(), consumers.end(), "Circuit"),
            consumers.end());
  EXPECT_NE(std::find(consumers.begin(), consumers.end(), "Verification"),
            consumers.end());
}

TEST(Schema, SourceEntities) {
  const TaskSchema s = make_fig1_schema();
  EXPECT_TRUE(s.is_source(s.require("Stimuli")));
  EXPECT_TRUE(s.is_source(s.require("Simulator")));
  EXPECT_FALSE(s.is_source(s.require("Performance")));
  EXPECT_FALSE(s.is_source(s.require("Circuit")));
  // A subtype of a rule-bearing ancestor is not a source.
  EXPECT_FALSE(s.is_source(s.require("ExtractedNetlist")));
}

TEST(Schema, StandardSchemasValidate) {
  make_fig1_schema().validate();
  make_fig2_schema().validate();
  make_full_schema().validate();
}

TEST(Schema, DotRenderingMentionsEveryEntity) {
  const TaskSchema s = make_fig1_schema();
  const std::string dot = s.to_dot();
  for (const EntityTypeId id : s.all()) {
    EXPECT_NE(dot.find(s.entity_name(id)), std::string::npos)
        << s.entity_name(id);
  }
  EXPECT_NE(dot.find("dashed"), std::string::npos);  // optional arcs
}

TEST(Schema, InvalidIdIsRejected) {
  const TaskSchema s = make_fig1_schema();
  EXPECT_THROW((void)s.entity(EntityTypeId()), SchemaError);
  EXPECT_THROW((void)s.entity(EntityTypeId(9999)), SchemaError);
}

}  // namespace
}  // namespace herc::schema
