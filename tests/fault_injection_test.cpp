// Failure semantics of the execution engine, driven by the deterministic
// fault-injecting tool registry: every failure mode crossed with throwing,
// hanging (timed-out) and corrupt-output faults, retry/backoff behaviour on
// the virtual clock, fan-out survival under best-effort, failure records in
// the history database, and the interplay with memoization and versioning.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "fault_test_util.hpp"
#include "support/error.hpp"

namespace herc::faulttest {
namespace {

using data::InstanceId;
using exec::ExecOptions;
using exec::ExecResult;
using exec::Executor;
using exec::FailureMode;
using exec::TaskStatus;
using history::InstanceStatus;
using support::ExecError;
using tools::FaultInjectingRegistry;
using tools::FaultKind;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// The Fig. 6 shape reduced to its essence: two disjoint branches
/// (LSrc -> LD1 -> LD2 and RSrc -> RD1 -> RD2), four task groups.
struct TwoBranch {
  World w;
  graph::TaskGraph flow;
  graph::NodeId ld1, ld2, rd1, rd2;

  TwoBranch() : flow(w.schema, "two-branch") {
    add_chain(w, "L", 2);
    add_chain(w, "R", 2);
    flow.add_node("LD2");
    flow.add_node("RD2");
    expand_all(flow);
    bind_leaves(w, flow);
    ld1 = node_of(flow, "LD1");
    ld2 = node_of(flow, "LD2");
    rd1 = node_of(flow, "RD1");
    rd2 = node_of(flow, "RD2");
  }
};

TEST(FaultInjectionTest, NoFaultsArmedRunsCleanly) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools, 7);
  Executor ex(tb.w.db, faulty);
  const ExecResult r = ex.run(tb.flow);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.tasks_run, 4u);
  EXPECT_EQ(faulty.faults_fired(), 0u);
  EXPECT_EQ(faulty.invocations("LT1.enc"), 1u);
  EXPECT_EQ(tb.w.db.payload(r.single(tb.ld2)), "seed:LSrc>LT1>LT2");
  EXPECT_TRUE(tb.w.db.failures().empty());
}

TEST(FaultInjectionTest, FailFastThrowAbortsAndRecordsTheFailure) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools);
  faulty.inject({"LT1.enc", 0, FaultKind::kThrow, {}});
  Executor ex(tb.w.db, faulty);
  try {
    ex.run(tb.flow);
    FAIL() << "expected ExecError";
  } catch (const ExecError& e) {
    EXPECT_TRUE(contains(e.what(), "injected fault")) << e.what();
  }
  // The failure is in the history even though the run aborted.
  const auto failures = tb.w.db.failures();
  ASSERT_EQ(failures.size(), 1u);
  const history::Instance& rec = tb.w.db.instance(failures[0]);
  EXPECT_EQ(rec.status, InstanceStatus::kFailed);
  EXPECT_EQ(tb.w.schema.entity_name(rec.type), "LD1");
  // Failed outputs do not exist as design data...
  EXPECT_TRUE(tb.w.db.instances_of(rec.type).empty());
  // ...but are queryable on request.
  EXPECT_EQ(tb.w.db.instances_of(rec.type, true, true).size(), 1u);
}

// Acceptance: a continue_branches run of a two-branch flow with one branch
// faulted records the surviving branch's instances plus queryable failure
// records carrying the attempt's derivation.  Serial and parallel agree.
TEST(FaultInjectionTest, ContinueBranchesPreservesTheDisjointBranch) {
  for (const bool parallel : {false, true}) {
    SCOPED_TRACE(parallel ? "parallel" : "serial");
    TwoBranch tb;
    FaultInjectingRegistry faulty(tb.w.tools);
    faulty.inject({"LT1.enc", 0, FaultKind::kThrow, {}});
    Executor ex(tb.w.db, faulty);
    ExecOptions opt;
    opt.parallel = parallel;
    opt.fault.mode = FailureMode::kContinueBranches;
    const ExecResult r = ex.run(tb.flow, opt);

    EXPECT_EQ(r.tasks_run, 2u);  // the whole right branch
    EXPECT_EQ(r.tasks_failed, 1u);
    EXPECT_EQ(r.tasks_skipped, 1u);
    EXPECT_FALSE(r.complete());
    EXPECT_EQ(tb.w.db.payload(r.single(tb.rd1)), "seed:RSrc>RT1");
    EXPECT_EQ(tb.w.db.payload(r.single(tb.rd2)), "seed:RSrc>RT1>RT2");
    EXPECT_TRUE(r.of(tb.ld1).empty());
    EXPECT_TRUE(r.of(tb.ld2).empty());

    ASSERT_NE(r.outcome(tb.ld1), nullptr);
    EXPECT_EQ(r.outcome(tb.ld1)->status, TaskStatus::kFailed);
    ASSERT_NE(r.outcome(tb.ld2), nullptr);
    EXPECT_EQ(r.outcome(tb.ld2)->status, TaskStatus::kSkipped);
    ASSERT_NE(r.outcome(tb.rd2), nullptr);
    EXPECT_EQ(r.outcome(tb.rd2)->status, TaskStatus::kOk);

    // Two failure records: the failed LD1 attempt (with the derivation it
    // was attempted with) and the skipped LD2 task.
    const auto failures = tb.w.db.failures();
    ASSERT_EQ(failures.size(), 2u);
    const history::Instance& failed = tb.w.db.instance(failures[0]);
    EXPECT_EQ(failed.status, InstanceStatus::kFailed);
    EXPECT_EQ(tb.w.schema.entity_name(failed.type), "LD1");
    EXPECT_EQ(failed.derivation.task, "LT1.enc");
    EXPECT_TRUE(contains(failed.comment, "injected fault")) << failed.comment;
    ASSERT_EQ(failed.derivation.inputs.size(), 1u);
    EXPECT_EQ(tb.w.db.payload(failed.derivation.inputs[0]), "seed:LSrc");
    const history::Instance& skipped = tb.w.db.instance(failures[1]);
    EXPECT_EQ(skipped.status, InstanceStatus::kSkipped);
    EXPECT_EQ(tb.w.schema.entity_name(skipped.type), "LD2");
    EXPECT_TRUE(contains(skipped.comment, "task producing 'LD1' failed"))
        << skipped.comment;
  }
}

// Every failure mode crossed with every fault kind on the same two-branch
// flow: fail_fast throws; the continue modes always finish the right branch
// and fail/skip the left one.
TEST(FaultInjectionTest, EveryModeHandlesEveryFaultKind) {
  for (const FailureMode mode :
       {FailureMode::kFailFast, FailureMode::kContinueBranches,
        FailureMode::kBestEffort}) {
    for (const FaultKind kind :
         {FaultKind::kThrow, FaultKind::kHang, FaultKind::kCorrupt}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " kind=" + std::to_string(static_cast<int>(kind)));
      TwoBranch tb;
      FaultInjectingRegistry faulty(tb.w.tools);
      faulty.inject({"LT1.enc", 0, kind, std::chrono::milliseconds{60}});
      Executor ex(tb.w.db, faulty);
      ExecOptions opt;
      opt.fault.mode = mode;
      if (kind == FaultKind::kHang) {
        opt.fault.timeout = std::chrono::milliseconds{15};
      }
      if (mode == FailureMode::kFailFast) {
        EXPECT_THROW(ex.run(tb.flow, opt), ExecError);
        continue;
      }
      const ExecResult r = ex.run(tb.flow, opt);
      EXPECT_EQ(r.tasks_failed, 1u);
      EXPECT_EQ(r.tasks_skipped, 1u);
      EXPECT_EQ(tb.w.db.payload(r.single(tb.rd2)), "seed:RSrc>RT1>RT2");
      ASSERT_NE(r.outcome(tb.ld1), nullptr);
      EXPECT_EQ(r.outcome(tb.ld1)->status, TaskStatus::kFailed);
      ASSERT_EQ(r.outcome(tb.ld1)->errors.size(), 1u);
      const std::string& error = r.outcome(tb.ld1)->errors[0];
      switch (kind) {
        case FaultKind::kThrow:
          EXPECT_TRUE(contains(error, "injected fault")) << error;
          break;
        case FaultKind::kHang:
          EXPECT_TRUE(contains(error, "timed out after 15ms")) << error;
          break;
        case FaultKind::kCorrupt:
          EXPECT_TRUE(contains(error, "did not produce a 'LD1'")) << error;
          break;
      }
    }
  }
}

TEST(FaultInjectionTest, HangWithoutTimeoutMerelyDelays) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools);
  faulty.inject({"LT1.enc", 0, FaultKind::kHang, std::chrono::milliseconds{20}});
  Executor ex(tb.w.db, faulty);
  const ExecResult r = ex.run(tb.flow);  // no timeout configured
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.tasks_run, 4u);
  EXPECT_EQ(faulty.faults_fired(), 1u);
  EXPECT_EQ(tb.w.db.payload(r.single(tb.ld2)), "seed:LSrc>LT1>LT2");
}

TEST(FaultInjectionTest, RetryRecoversFromATransientFault) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools);
  faulty.inject({"LT1.enc", 0, FaultKind::kThrow, {}});  // first call only
  Executor ex(tb.w.db, faulty);
  ExecOptions opt;
  opt.fault.max_retries = 1;
  const ExecResult r = ex.run(tb.flow, opt);  // fail_fast, but retry saves it
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.tasks_run, 4u);
  ASSERT_NE(r.outcome(tb.ld1), nullptr);
  EXPECT_EQ(r.outcome(tb.ld1)->attempts, 2u);
  EXPECT_EQ(faulty.invocations("LT1.enc"), 2u);
  EXPECT_EQ(faulty.faults_fired(), 1u);
  // A recovered task leaves no failure record behind.
  EXPECT_TRUE(tb.w.db.failures().empty());
}

TEST(FaultInjectionTest, BackoffIsExponentialOnTheVirtualClock) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools);
  for (std::size_t inv = 0; inv < 3; ++inv) {
    faulty.inject({"LT1.enc", inv, FaultKind::kThrow, {}});
  }
  support::ManualClock sleeper(0, 0);  // advanced only by sleep_for
  Executor ex(tb.w.db, faulty);
  ExecOptions opt;
  opt.fault.mode = FailureMode::kContinueBranches;
  opt.fault.max_retries = 2;
  opt.fault.backoff = std::chrono::milliseconds{10};
  opt.fault.backoff_multiplier = 2.0;
  opt.fault.clock = &sleeper;
  const ExecResult r = ex.run(tb.flow, opt);
  ASSERT_NE(r.outcome(tb.ld1), nullptr);
  EXPECT_EQ(r.outcome(tb.ld1)->status, TaskStatus::kFailed);
  EXPECT_EQ(r.outcome(tb.ld1)->attempts, 3u);
  // Waits between the three attempts: 10ms, then 10ms * 2 = 20ms — all
  // virtual, observed as exactly 30ms on the clock.
  EXPECT_EQ(sleeper.current_micros(), 30000);
}

// The satellite bugfix: a parallel fail-fast run aggregates *every* failure
// observed before the abort instead of keeping just the first exception.
// Both branch roots start immediately and both time out, so both failures
// must surface in the thrown error.
TEST(FaultInjectionTest, ParallelFailFastAggregatesAllObservedFailures) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools);
  faulty.inject({"LT1.enc", 0, FaultKind::kHang, std::chrono::milliseconds{150}});
  faulty.inject({"RT1.enc", 0, FaultKind::kHang, std::chrono::milliseconds{150}});
  Executor ex(tb.w.db, faulty);
  ExecOptions opt;
  opt.parallel = true;
  opt.max_threads = 4;
  opt.fault.timeout = std::chrono::milliseconds{20};
  try {
    ex.run(tb.flow, opt);
    FAIL() << "expected ExecError";
  } catch (const ExecError& e) {
    const std::string message = e.what();
    EXPECT_TRUE(contains(message, "2 tasks failed")) << message;
    EXPECT_TRUE(contains(message, "'LT1.enc' timed out")) << message;
    EXPECT_TRUE(contains(message, "'RT1.enc' timed out")) << message;
  }
  EXPECT_EQ(tb.w.db.failures().size(), 2u);
}

// Fan-out: the same task bound to a three-seed instance set, with the
// second combination faulted.
TEST(FaultInjectionTest, BestEffortKeepsSurvivingFanOutCombinations) {
  World w;
  graph::TaskGraph flow(w.schema, "fan-out");
  add_chain(w, "L", 2);
  flow.add_node("LD2");
  expand_all(flow);
  bind_leaves(w, flow);
  const graph::NodeId src = node_of(flow, "LSrc");
  const graph::NodeId ld1 = node_of(flow, "LD1");
  const graph::NodeId ld2 = node_of(flow, "LD2");
  const schema::EntityTypeId src_type = flow.node(src).type;
  std::vector<InstanceId> seeds;
  for (int i = 0; i < 3; ++i) {
    seeds.push_back(w.db.import_instance(src_type,
                                         "seed" + std::to_string(i),
                                         "s" + std::to_string(i), "tester"));
  }
  flow.bind_set(src, seeds);

  FaultInjectingRegistry faulty(w.tools);
  faulty.inject({"LT1.enc", 1, FaultKind::kThrow, {}});  // second combination
  Executor ex(w.db, faulty);
  ExecOptions opt;
  opt.fault.mode = FailureMode::kBestEffort;
  const ExecResult r = ex.run(flow, opt);

  ASSERT_NE(r.outcome(ld1), nullptr);
  EXPECT_EQ(r.outcome(ld1)->status, TaskStatus::kPartial);
  EXPECT_EQ(r.outcome(ld1)->combinations_ok, 2u);
  EXPECT_EQ(r.outcome(ld1)->combinations_failed, 1u);
  EXPECT_EQ(r.of(ld1).size(), 2u);
  // The dependent task runs over the two survivors.
  ASSERT_NE(r.outcome(ld2), nullptr);
  EXPECT_EQ(r.outcome(ld2)->status, TaskStatus::kOk);
  EXPECT_EQ(r.of(ld2).size(), 2u);
  EXPECT_EQ(r.tasks_failed, 1u);
  EXPECT_EQ(r.tasks_skipped, 0u);
  ASSERT_EQ(w.db.failures().size(), 1u);
  EXPECT_EQ(w.db.payload(
                w.db.instance(w.db.failures()[0]).derivation.inputs[0]),
            "s1");
}

TEST(FaultInjectionTest, ContinueBranchesAbandonsAFanOutTaskOnFirstFailure) {
  World w;
  graph::TaskGraph flow(w.schema, "fan-out");
  add_chain(w, "L", 2);
  flow.add_node("LD2");
  expand_all(flow);
  bind_leaves(w, flow);
  const graph::NodeId src = node_of(flow, "LSrc");
  const graph::NodeId ld1 = node_of(flow, "LD1");
  const graph::NodeId ld2 = node_of(flow, "LD2");
  const schema::EntityTypeId src_type = flow.node(src).type;
  std::vector<InstanceId> seeds;
  for (int i = 0; i < 3; ++i) {
    seeds.push_back(w.db.import_instance(src_type,
                                         "seed" + std::to_string(i),
                                         "s" + std::to_string(i), "tester"));
  }
  flow.bind_set(src, seeds);

  FaultInjectingRegistry faulty(w.tools);
  faulty.inject({"LT1.enc", 1, FaultKind::kThrow, {}});
  Executor ex(w.db, faulty);
  ExecOptions opt;
  opt.fault.mode = FailureMode::kContinueBranches;
  const ExecResult r = ex.run(flow, opt);

  // The first combination's product stays recorded, but the task counts as
  // failed and its dependent is skipped (no partial propagation).
  ASSERT_NE(r.outcome(ld1), nullptr);
  EXPECT_EQ(r.outcome(ld1)->status, TaskStatus::kFailed);
  EXPECT_EQ(r.outcome(ld1)->combinations_ok, 1u);
  EXPECT_EQ(r.of(ld1).size(), 1u);
  ASSERT_NE(r.outcome(ld2), nullptr);
  EXPECT_EQ(r.outcome(ld2)->status, TaskStatus::kSkipped);
  EXPECT_TRUE(r.of(ld2).empty());
  EXPECT_EQ(r.tasks_skipped, 1u);
}

// Failure records must be invisible to memoization and versioning: a rerun
// with reuse enabled reuses the surviving branch and re-runs the failed one.
TEST(FaultInjectionTest, FailureRecordsAreInvisibleToReuseAndVersions) {
  TwoBranch tb;
  FaultInjectingRegistry faulty(tb.w.tools);
  faulty.inject({"LT1.enc", 0, FaultKind::kThrow, {}});
  Executor ex(tb.w.db, faulty);
  ExecOptions opt;
  opt.fault.mode = FailureMode::kContinueBranches;
  const ExecResult first = ex.run(tb.flow, opt);
  EXPECT_FALSE(first.complete());
  ASSERT_EQ(tb.w.db.failures().size(), 2u);
  const InstanceId failed_ld1 = tb.w.db.failures()[0];
  EXPECT_FALSE(tb.w.db.edit_parent(failed_ld1).has_value());
  EXPECT_FALSE(tb.w.db.superseded(failed_ld1));

  // Second run: the fault was armed for invocation 0 only, so LT1 now
  // succeeds; the right branch is satisfied from history.
  opt.reuse_existing = true;
  const ExecResult second = ex.run(tb.flow, opt);
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.tasks_reused, 2u);  // RD1 and RD2
  EXPECT_EQ(second.tasks_run, 2u);     // LD1 and LD2, for real this time
  const auto ld1_instances =
      tb.w.db.instances_of(tb.flow.node(tb.ld1).type);
  ASSERT_EQ(ld1_instances.size(), 1u);
  // The fresh instance starts its own lineage at version 1; the failure
  // record never entered the version tree.
  EXPECT_EQ(tb.w.db.instance(ld1_instances[0]).version, 1u);
  // The old failure records are still there for §4.2-style queries.
  EXPECT_EQ(tb.w.db.failures().size(), 2u);
}

TEST(FaultInjectionTest, RandomPlanIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    TwoBranch tb;
    FaultInjectingRegistry faulty(tb.w.tools, seed);
    faulty.inject_random(0.5, FaultKind::kThrow);
    Executor ex(tb.w.db, faulty);
    ExecOptions opt;
    opt.fault.mode = FailureMode::kContinueBranches;
    const ExecResult r = ex.run(tb.flow, opt);
    return std::make_tuple(faulty.faults_fired(), r.tasks_failed,
                           r.tasks_skipped, history_signature(tb.w.db));
  };
  std::size_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto a = run_once(seed);
    const auto b = run_once(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    total_faults += std::get<0>(a);
  }
  // The plan is random but must not be vacuous across five seeds.
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace herc::faulttest
