// The bipartite flow-diagram conversion (Fig. 3a).
#include <gtest/gtest.h>

#include "graph/bipartite.hpp"
#include "schema/standard_schemas.hpp"

namespace herc::graph {
namespace {

class BipartiteTest : public ::testing::Test {
 protected:
  BipartiteTest() : schema_(schema::make_full_schema()) {}
  schema::TaskSchema schema_;
};

TEST_F(BipartiteTest, SimpleFlowConverts) {
  // Fig. 3: PlacedLayout <- Placer <- EditedNetlist <- CircuitEditor.
  TaskGraph flow(schema_, "fig3");
  const NodeId placed = flow.add_node("PlacedLayout");
  flow.expand(placed);
  const NodeId netlist = flow.inputs_of(placed)[0];
  flow.specialize(netlist, schema_.require("EditedNetlist"));
  flow.expand(netlist);

  const BipartiteDiagram diagram = to_bipartite(flow);
  ASSERT_EQ(diagram.activities.size(), 2u);
  // Data boxes: EditedNetlist and PlacedLayout (tools become activities).
  std::vector<std::string> data_names;
  for (const auto& d : diagram.data) data_names.push_back(d.entity);
  EXPECT_NE(std::find(data_names.begin(), data_names.end(), "PlacedLayout"),
            data_names.end());
  EXPECT_NE(std::find(data_names.begin(), data_names.end(), "EditedNetlist"),
            data_names.end());
  // The text rendering matches the paper's left-to-right reading.
  const std::string text = diagram.render_text();
  EXPECT_NE(text.find("--CircuitEditor--> [EditedNetlist]"),
            std::string::npos);
  EXPECT_NE(text.find("[EditedNetlist] --Placer--> [PlacedLayout]"),
            std::string::npos);
}

TEST_F(BipartiteTest, MultiOutputBecomesOneActivity) {
  TaskGraph flow(schema_, "multi");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  flow.add_co_output(perf, schema_.require("Statistics"));
  const BipartiteDiagram diagram = to_bipartite(flow);
  ASSERT_EQ(diagram.activities.size(), 1u);
  EXPECT_EQ(diagram.activities[0].outputs.size(), 2u);
  EXPECT_EQ(diagram.activities[0].tool, "Simulator");
}

TEST_F(BipartiteTest, ComposeTasksAppear) {
  TaskGraph flow(schema_, "compose");
  const NodeId circuit = flow.add_node("Circuit");
  flow.expand(circuit);
  const BipartiteDiagram diagram = to_bipartite(flow);
  ASSERT_EQ(diagram.activities.size(), 1u);
  EXPECT_EQ(diagram.activities[0].tool, "compose");
  EXPECT_EQ(diagram.activities[0].inputs.size(), 2u);
}

TEST_F(BipartiteTest, ProducedToolIsAlsoData) {
  // Fig. 2: the compiled simulator is an activity for the simulate task
  // and a data box for the compile task.
  TaskGraph flow(schema_, "cosmos");
  const NodeId perf = flow.add_node("SwitchPerformance");
  flow.expand(perf);
  const NodeId compiled = flow.tool_of(perf);
  flow.expand(compiled);
  const BipartiteDiagram diagram = to_bipartite(flow);
  EXPECT_EQ(diagram.activities.size(), 2u);
  bool compiled_as_data = false;
  for (const auto& d : diagram.data) {
    compiled_as_data |= d.entity == "CompiledSimulator";
  }
  EXPECT_TRUE(compiled_as_data);
  bool compiled_as_activity = false;
  for (const auto& a : diagram.activities) {
    compiled_as_activity |= a.tool == "CompiledSimulator";
  }
  EXPECT_TRUE(compiled_as_activity);
}

TEST_F(BipartiteTest, FreeStandingNodesBecomeDataBoxes) {
  TaskGraph flow(schema_, "lonely");
  flow.add_node("Stimuli");
  const BipartiteDiagram diagram = to_bipartite(flow);
  EXPECT_TRUE(diagram.activities.empty());
  ASSERT_EQ(diagram.data.size(), 1u);
  EXPECT_EQ(diagram.data[0].entity, "Stimuli");
}

TEST_F(BipartiteTest, DotRendersBothBoxKinds) {
  TaskGraph flow(schema_, "fig3");
  const NodeId placed = flow.add_node("PlacedLayout");
  flow.expand(placed);
  const std::string dot = to_bipartite(flow).to_dot();
  EXPECT_NE(dot.find("shape=\"box\""), std::string::npos);
  EXPECT_NE(dot.find("shape=\"ellipse\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=\"LR\""), std::string::npos);
}

}  // namespace
}  // namespace herc::graph
