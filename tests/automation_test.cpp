// Flow automation (automatic task sequencing, §3.3) and composite
// decomposition (§3.1).
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "exec/automation.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"
#include "tools/composite.hpp"

namespace herc::exec {
namespace {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using support::ExecError;
using support::FlowError;

class AutomationTest : public ::testing::Test {
 protected:
  AutomationTest()
      : session_(schema::make_full_schema(), "auto",
                 std::make_unique<support::ManualClock>(0, 1)) {}

  void import_basics() {
    netlist_ = session_.import_data("EditedNetlist", "n",
                                    circuit::inverter_netlist().to_text());
    models_ = session_.import_data(
        "DeviceModels", "m",
        circuit::DeviceModelLibrary::standard().to_text());
    stimuli_ = session_.import_data(
        "Stimuli", "st", circuit::Stimuli::counter({"in"}, 1000).to_text());
    simulator_ = session_.import_data("Simulator", "sim", "");
  }

  core::DesignSession session_;
  InstanceId netlist_, models_, stimuli_, simulator_;
};

TEST_F(AutomationTest, BuildsAndRunsACompleteFlow) {
  import_basics();
  const TaskGraph flow = auto_flow(
      session_.db(), session_.schema().require("Performance"));
  // Fully bound: no interaction needed.
  EXPECT_TRUE(flow.unbound_leaves().empty());
  const auto result = session_.run(flow);
  EXPECT_EQ(result.tasks_run, 2u);  // compose + simulate
  const auto perf = result.single(flow.goals().front());
  EXPECT_EQ(session_.db().instance(perf).type,
            session_.schema().require("Performance"));
}

TEST_F(AutomationTest, PrefersNewestAndExistingInstances) {
  import_basics();
  // A newer netlist appears; auto_flow must pick it.
  const auto newer = session_.import_data(
      "EditedNetlist", "newer", circuit::inverter_chain(2).to_text());
  const TaskGraph flow = auto_flow(
      session_.db(), session_.schema().require("Performance"));
  bool found = false;
  for (const NodeId n : flow.nodes()) {
    for (const InstanceId b : flow.bindings(n)) found |= (b == newer);
  }
  EXPECT_TRUE(found);
}

TEST_F(AutomationTest, ExistingIntermediateShortCircuitsExpansion) {
  import_basics();
  // Pre-compose a circuit; the auto flow binds it instead of re-composing.
  graph::TaskGraph compose(session_.schema(), "c");
  const NodeId cnode = compose.add_node("Circuit");
  const auto inputs = compose.expand(cnode);
  compose.bind(inputs[0], models_);
  compose.bind(inputs[1], netlist_);
  session_.run(compose);

  const TaskGraph flow = auto_flow(
      session_.db(), session_.schema().require("Performance"));
  const auto result = session_.run(flow);
  EXPECT_EQ(result.tasks_run, 1u);  // simulate only: circuit was bound
}

TEST_F(AutomationTest, SpecializationPreferenceIsHonored) {
  import_basics();
  session_.import_data("Placer", "pl", "");
  session_.import_data("Verifier", "lvs", "");
  session_.import_data("CircuitEditor", "ed",
                       "name fresh\ninput a\noutput y\n"
                       "add nmos m1 g=a d=y s=GND\n"
                       "add pmos m2 g=a d=y s=VDD\n");
  AutoFlowOptions options;
  options.prefer_existing = false;
  options.specializations["Netlist"] = "EditedNetlist";
  options.specializations["Layout"] = "PlacedLayout";
  const TaskGraph flow = auto_flow(
      session_.db(), session_.schema().require("Verification"), options);
  // The flow derives a layout by placement and a netlist by editing.
  bool has_placer = false;
  for (const NodeId n : flow.nodes()) {
    has_placer |= session_.schema().entity_name(flow.node(n).type) ==
                  "Placer";
  }
  EXPECT_TRUE(has_placer);
  session_.run(flow);
  // Bad preference is rejected.
  options.specializations["Netlist"] = "PlacedLayout";
  EXPECT_THROW(auto_flow(session_.db(),
                         session_.schema().require("Verification"), options),
               FlowError);
}

TEST_F(AutomationTest, MissingSourceInstanceIsReported) {
  // No simulator imported: automation cannot bind the tool leaf.
  netlist_ = session_.import_data("EditedNetlist", "n",
                                  circuit::inverter_netlist().to_text());
  models_ = session_.import_data(
      "DeviceModels", "m", circuit::DeviceModelLibrary::standard().to_text());
  try {
    (void)auto_flow(session_.db(), session_.schema().require("Performance"));
    FAIL() << "expected FlowError";
  } catch (const FlowError& e) {
    EXPECT_NE(std::string(e.what()).find("no instance of source entity"),
              std::string::npos);
  }
}

TEST_F(AutomationTest, DecomposeRecoversComponents) {
  import_basics();
  graph::TaskGraph compose(session_.schema(), "c");
  const NodeId cnode = compose.add_node("Circuit");
  const auto inputs = compose.expand(cnode);
  compose.bind(inputs[0], models_);
  compose.bind(inputs[1], netlist_);
  const auto circuit = session_.run(compose).single(cnode);

  const auto parts =
      decompose_instance(session_.db(), circuit, "tester");
  ASSERT_EQ(parts.size(), 2u);
  // Payloads equal the original components; concrete types recovered from
  // the composite's derivation.
  EXPECT_EQ(session_.db().payload(parts[0]), session_.db().payload(models_));
  EXPECT_EQ(session_.db().payload(parts[1]),
            session_.db().payload(netlist_));
  EXPECT_EQ(session_.db().instance(parts[1]).type,
            session_.schema().require("EditedNetlist"));
  // The decomposition is itself recorded in the history.
  EXPECT_EQ(session_.db().instance(parts[0]).derivation.task, "decompose");
  EXPECT_EQ(session_.db().instance(parts[0]).derivation.inputs,
            std::vector<InstanceId>{circuit});
}

TEST_F(AutomationTest, DecomposeErrorPaths) {
  import_basics();
  // Not a composite.
  EXPECT_THROW(decompose_instance(session_.db(), netlist_, "t"), ExecError);
}

}  // namespace
}  // namespace herc::exec
