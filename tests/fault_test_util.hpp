// Shared scaffolding for the fault-injection, fault-property and scheduler
// stress tests: tiny synthetic schemas built to order (chains, random DAGs,
// fan-out/fan-in), leaf binding, and an order-independent fingerprint of a
// history database for comparing serial vs parallel runs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "schema/task_schema.hpp"
#include "support/clock.hpp"
#include "tools/fault_injection.hpp"
#include "tools/registry.hpp"

namespace herc::faulttest {

/// A self-contained execution world.  Member order matters: the database
/// and registry hold references to the schema and clock.
struct World {
  schema::TaskSchema schema{"faultworld"};
  support::ManualClock clock{0, 1};
  history::HistoryDb db{schema, clock};
  tools::ToolRegistry tools{schema};
  /// Imports created by `bind_leaves`, keyed by instance name.
  std::unordered_map<std::string, data::InstanceId> imports;

  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;
};

/// Registers an encapsulation named `<tool>.enc` for `tool` that produces
/// `out_entity` by concatenating every input payload (sorted, so fan-in
/// order does not matter) and appending its own marker.  `latency` adds a
/// real per-call delay for the stress tests.
inline void register_enc(World& w, schema::EntityTypeId tool,
                         const std::string& tool_name,
                         const std::string& out_entity,
                         std::chrono::microseconds latency =
                             std::chrono::microseconds{0}) {
  tools::Encapsulation enc;
  enc.name = tool_name + ".enc";
  enc.tool_type = tool;
  enc.fn = [out_entity, tool_name, latency](const tools::ToolContext& ctx) {
    if (latency.count() > 0) std::this_thread::sleep_for(latency);
    std::vector<std::string> parts;
    for (const tools::ToolInput& in : ctx.inputs) {
      for (const std::string& p : in.payloads) parts.push_back(p);
    }
    std::sort(parts.begin(), parts.end());
    std::string joined;
    for (const std::string& p : parts) {
      if (!joined.empty()) joined += "+";
      joined += p;
    }
    tools::ToolOutput out;
    out.set(out_entity, joined + ">" + tool_name);
    return out;
  };
  w.tools.register_encapsulation(std::move(enc));
}

/// Adds a linear chain to the schema: source `<prefix>Src`, then `depth`
/// tasks `<prefix>D1 .. <prefix>D<depth>`, each produced by its own tool
/// `<prefix>T<i>` from the previous entity.  Encapsulations are named
/// `<prefix>T<i>.enc`.
inline void add_chain(World& w, const std::string& prefix, std::size_t depth) {
  schema::EntityTypeId prev = w.schema.add_data(prefix + "Src");
  for (std::size_t i = 1; i <= depth; ++i) {
    const std::string tool_name = prefix + "T" + std::to_string(i);
    const std::string data_name = prefix + "D" + std::to_string(i);
    const schema::EntityTypeId tool = w.schema.add_tool(tool_name);
    const schema::EntityTypeId d = w.schema.add_data(data_name);
    w.schema.set_functional_dependency(d, tool);
    w.schema.add_data_dependency(d, prev);
    register_enc(w, tool, tool_name, data_name);
    prev = d;
  }
}

/// Expands every expandable node until the flow is fully grown.
inline void expand_all(graph::TaskGraph& flow) {
  bool again = true;
  while (again) {
    again = false;
    for (const graph::NodeId n : flow.nodes()) {
      const graph::Node& node = flow.node(n);
      if (node.expanded) continue;
      const schema::TaskSchema& s = flow.schema();
      if (s.is_tool(node.type) || s.is_source(node.type)) continue;
      flow.expand(n);
      again = true;
    }
  }
}

/// Imports an instance once per name (repeat calls reuse the first import).
inline data::InstanceId import_once(World& w, schema::EntityTypeId type,
                                    const std::string& name,
                                    const std::string& payload) {
  const auto it = w.imports.find(name);
  if (it != w.imports.end()) return it->second;
  const data::InstanceId id =
      w.db.import_instance(type, name, payload, "tester");
  w.imports.emplace(name, id);
  return id;
}

/// Binds every unbound leaf: tool leaves get an imported tool instance,
/// source leaves an imported seed payload.  Deterministic (node-id order).
inline void bind_leaves(World& w, graph::TaskGraph& flow) {
  for (const graph::NodeId n : flow.unbound_leaves()) {
    const schema::EntityTypeId type = flow.node(n).type;
    const std::string& name = w.schema.entity_name(type);
    if (w.schema.is_tool(type)) {
      flow.bind(n, import_once(w, type, name + "#tool", "tool:" + name));
    } else {
      flow.bind(n, import_once(w, type, name + "#src", "seed:" + name));
    }
  }
}

/// First alive node whose entity type is named `type_name`.
inline graph::NodeId node_of(const graph::TaskGraph& flow,
                             std::string_view type_name) {
  for (const graph::NodeId n : flow.nodes()) {
    if (flow.schema().entity_name(flow.node(n).type) == type_name) return n;
  }
  throw std::runtime_error("no node of type '" + std::string(type_name) + "'");
}

/// An order-independent fingerprint of the database: one line per instance
/// built from schedule-invariant fields (type, status, payload, producing
/// task, comment, and the types+payloads of the derivation), sorted.
/// Instance ids, names and timestamps vary with execution order and are
/// deliberately excluded.
inline std::vector<std::string> history_signature(
    const history::HistoryDb& db) {
  std::vector<std::string> sig;
  for (const data::InstanceId id : db.all()) {
    const history::Instance& inst = db.instance(id);
    std::string s = db.schema().entity_name(inst.type);
    s += "|status=" +
         std::to_string(static_cast<unsigned>(inst.status));
    s += "|payload=" + db.payload(id);
    s += "|task=" + inst.derivation.task;
    s += "|comment=" + inst.comment;
    std::vector<std::string> ins;
    if (inst.derivation.tool.valid()) {
      ins.push_back("tool:" +
                    db.schema().entity_name(
                        db.instance(inst.derivation.tool).type));
    }
    for (const data::InstanceId in : inst.derivation.inputs) {
      ins.push_back(db.schema().entity_name(db.instance(in).type) + ":" +
                    db.payload(in));
    }
    std::sort(ins.begin(), ins.end());
    for (const std::string& i : ins) s += "|" + i;
    sig.push_back(std::move(s));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

// ---- random DAG flows (property test) --------------------------------------

/// Populates `w` with a seeded random DAG of `n_tasks` tasks (each with its
/// own tool `T<i>` producing data `D<i>` from 1-2 earlier entities) and
/// returns a fully bound flow over all of them.  The same (n_tasks, seed)
/// always builds the same schema and flow.
inline graph::TaskGraph make_random_dag(World& w, std::size_t n_tasks,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<schema::EntityTypeId> data;
  data.push_back(w.schema.add_data("Src"));
  std::vector<schema::EntityTypeId> tool_types;
  std::vector<std::vector<std::size_t>> inputs_of(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const std::string tool_name = "T" + std::to_string(i);
    const std::string data_name = "D" + std::to_string(i);
    const schema::EntityTypeId tool = w.schema.add_tool(tool_name);
    const schema::EntityTypeId d = w.schema.add_data(data_name);
    w.schema.set_functional_dependency(d, tool);
    // 1-2 distinct inputs drawn from everything built so far.
    std::vector<std::size_t> pool(data.size());
    for (std::size_t p = 0; p < pool.size(); ++p) pool[p] = p;
    std::shuffle(pool.begin(), pool.end(), rng);
    const std::size_t k = std::min<std::size_t>(1 + rng() % 2, pool.size());
    pool.resize(k);
    std::sort(pool.begin(), pool.end());
    for (const std::size_t p : pool) {
      w.schema.add_data_dependency(d, data[p]);
    }
    inputs_of[i] = pool;
    register_enc(w, tool, tool_name, data_name);
    tool_types.push_back(tool);
    data.push_back(d);
  }

  graph::TaskGraph flow(w.schema, "random-dag");
  std::vector<graph::NodeId> node;
  node.push_back(flow.add_node(data[0]));
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const graph::NodeId d = flow.add_node(data[i + 1]);
    const graph::NodeId t = flow.add_node(tool_types[i]);
    flow.connect(d, t);
    for (const std::size_t p : inputs_of[i]) flow.connect(d, node[p]);
    node.push_back(d);
  }
  bind_leaves(w, flow);
  return flow;
}

/// A seeded fault schedule over the tasks of `make_random_dag`: roughly a
/// quarter of the tasks fault (alternating throw/corrupt); half of those
/// also fault their first retry, so with one retry some tasks recover and
/// some are exhausted.
inline std::vector<tools::FaultSpec> random_faults(std::size_t n_tasks,
                                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<tools::FaultSpec> out;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (rng() % 4 != 0) continue;
    const tools::FaultKind kind =
        (rng() % 2 == 0) ? tools::FaultKind::kThrow : tools::FaultKind::kCorrupt;
    const bool kill_retry = rng() % 2 == 0;
    const std::string enc = "T" + std::to_string(i) + ".enc";
    out.push_back({enc, 0, kind, std::chrono::milliseconds{0}});
    if (kill_retry) out.push_back({enc, 1, kind, std::chrono::milliseconds{0}});
  }
  return out;
}

// ---- fan-out / fan-in flows (stress test) ----------------------------------

/// Populates `w` with a fan-out/fan-in shape — `Root` feeding `n` parallel
/// tasks `F<i>` (each with its own tool `FT<i>` and a deterministic
/// pseudo-random latency) joined into one composite `Join` — and returns the
/// bound flow: n + 1 task groups, 2n + 2 nodes.
inline graph::TaskGraph make_fan(World& w, std::size_t n) {
  const schema::EntityTypeId root = w.schema.add_data("Root");
  const schema::EntityTypeId join = w.schema.add_composite("Join");
  std::vector<schema::EntityTypeId> fan_data;
  std::vector<schema::EntityTypeId> fan_tools;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string tool_name = "FT" + std::to_string(i);
    const std::string data_name = "F" + std::to_string(i);
    const schema::EntityTypeId tool = w.schema.add_tool(tool_name);
    const schema::EntityTypeId d = w.schema.add_data(data_name);
    w.schema.set_functional_dependency(d, tool);
    w.schema.add_data_dependency(d, root);
    w.schema.add_data_dependency(join, d);
    const auto latency = std::chrono::microseconds(
        (i * 2654435761u) % 400);  // 0..399us, fixed per task
    register_enc(w, tool, tool_name, data_name, latency);
    fan_data.push_back(d);
    fan_tools.push_back(tool);
  }

  graph::TaskGraph flow(w.schema, "fan");
  const graph::NodeId root_node = flow.add_node(root);
  const graph::NodeId join_node = flow.add_node(join);
  for (std::size_t i = 0; i < n; ++i) {
    const graph::NodeId d = flow.add_node(fan_data[i]);
    const graph::NodeId t = flow.add_node(fan_tools[i]);
    flow.connect(d, t);
    flow.connect(d, root_node);
    flow.connect(join_node, d);
  }
  bind_leaves(w, flow);
  return flow;
}

}  // namespace herc::faulttest
