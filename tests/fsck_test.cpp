// The history integrity auditor: every corruption class it must detect,
// the severity taxonomy, and `--repair`'s round trip back to a store that
// both recovers and audits clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/blob_store.hpp"
#include "exec/executor.hpp"
#include "fault_test_util.hpp"
#include "index/indexes.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/fsck.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"
#include "support/record.hpp"

namespace herc::storage {
namespace {

namespace fs = std::filesystem;
using data::BlobStore;
using support::RecordWriter;

/// Scratch directory per test, wiped on entry.
std::string scratch(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void put(const std::string& dir, const std::string& file,
         const std::string& content) {
  std::ofstream out((fs::path(dir) / file).string(), std::ios::binary);
  out << content;
}

/// A hand-built store: tiny schema, crafted snapshot lines, no journal.
/// Writing the files directly gives the tests byte-level control over the
/// defects they seed.
struct Forge {
  schema::TaskSchema schema{"forge"};
  std::string dir;
  std::vector<std::string> lines;

  explicit Forge(const std::string& name) : dir(scratch(name)) {
    const auto tool = schema.add_tool("T");
    const auto src = schema.add_data("S");
    const auto d = schema.add_data("D");
    schema.set_functional_dependency(d, tool);
    schema.add_data_dependency(d, src);
    schema.validate();
    put(dir, "schema.herc", schema::write_schema(schema));
  }

  void blob(const std::string& payload) {
    lines.push_back(RecordWriter("blob")
                        .field(BlobStore::key_for(payload))
                        .field(payload)
                        .str());
  }

  /// One instance line; `tool`/`inputs` use -1 / ids like the real format.
  void inst(std::uint32_t id, const std::string& type,
            const std::string& payload, std::uint32_t status = 0,
            std::int64_t tool = -1,
            const std::vector<std::uint32_t>& inputs = {},
            const std::string& blob_override = "") {
    RecordWriter w("inst");
    w.field(id);
    w.field(type);
    w.field("n" + std::to_string(id));
    w.field(std::string_view("tester"));
    w.field(std::int64_t{100 + id});
    w.field(std::string_view(""));  // comment
    w.field(blob_override.empty() ? BlobStore::key_for(payload)
                                  : blob_override);
    w.field(std::uint32_t{1});
    w.field(status);
    w.field(std::string_view(tool >= 0 ? "derive" : "import"));
    w.field(tool);
    w.field(static_cast<std::uint32_t>(inputs.size()));
    for (const std::uint32_t in : inputs) {
      w.field(in);
      w.field(std::string_view(""));
    }
    lines.push_back(w.str());
  }

  void raw(const std::string& line) { lines.push_back(line); }

  /// Writes snapshot.herc with the collected lines under epoch 0.
  void commit(std::int64_t declared_count = -1) {
    std::string text = RecordWriter("snap")
                           .field(std::int64_t{0})
                           .field(declared_count >= 0
                                      ? static_cast<std::uint32_t>(
                                            declared_count)
                                      : count_insts())
                           .str() +
                       "\n";
    for (const std::string& line : lines) text += line + "\n";
    put(dir, "snapshot.herc", text);
  }

  std::uint32_t count_insts() const {
    std::uint32_t n = 0;
    for (const std::string& line : lines) {
      if (line.rfind("inst|", 0) == 0) ++n;
    }
    return n;
  }
};

TEST(FsckTest, NotAStoreThrowsInsteadOfReporting) {
  const std::string dir = scratch("herc_fsck_nostore");
  EXPECT_THROW((void)fsck_store(dir), support::HistoryError);
}

TEST(FsckTest, CleanStoreAuditsClean) {
  Forge f("herc_fsck_clean");
  f.blob("tool");
  f.blob("seed");
  f.blob("out");
  f.inst(0, "T", "tool");
  f.inst(1, "S", "seed");
  f.inst(2, "D", "out", 0, 0, {1});
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.findings.empty()) << report.render();
  EXPECT_EQ(report.severity(), FsckSeverity::kClean);
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_EQ(report.stats.instances, 3u);
  EXPECT_EQ(report.stats.blobs, 3u);
}

TEST(FsckTest, DanglingReferenceIsCorruption) {
  Forge f("herc_fsck_dangling");
  f.blob("tool");
  f.blob("out");
  f.inst(0, "T", "tool");
  f.inst(1, "D", "out", 0, 0, {9});  // input i9 does not exist
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("dangling-reference")) << report.render();
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(FsckTest, BlobHashMismatchIsCorruption) {
  Forge f("herc_fsck_hash");
  // A blob whose payload was altered after the key was computed.
  f.raw(RecordWriter("blob")
            .field(BlobStore::key_for("original"))
            .field("tampered")
            .str());
  f.inst(0, "S", "", 0, -1, {}, BlobStore::key_for("original"));
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("blob-hash-mismatch")) << report.render();
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(FsckTest, MissingBlobIsCorruption) {
  Forge f("herc_fsck_missing");
  f.inst(0, "S", "never-stored");  // references a key with no blob line
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("missing-blob")) << report.render();
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(FsckTest, OrphanBlobIsOnlyAWarning) {
  Forge f("herc_fsck_orphan");
  f.blob("seed");
  f.blob("nobody-references-me");
  f.inst(0, "S", "seed");
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("orphan-blob")) << report.render();
  EXPECT_EQ(report.severity(), FsckSeverity::kWarning);
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(FsckTest, InterruptedRunAndUnquarantinedPartialAreWarnings) {
  Forge f("herc_fsck_openrun");
  f.blob("tool");
  f.blob("seed");
  f.blob("half");
  f.inst(0, "T", "tool");
  f.inst(1, "S", "seed");
  f.inst(2, "D", "half", 0, 0, {1});  // produced after the run began
  f.raw(RecordWriter("runb")
            .field(std::int64_t{0})
            .field(std::string_view("flow"))
            .field(std::string_view(""))
            .field(std::int64_t{-1})
            .field(std::string_view("tester"))
            .field(std::string_view(""))
            .field(std::int64_t{0})
            .field(std::uint32_t{2})  // db size at begin: the two imports
            .field(std::string_view("flowtext"))
            .str());
  f.raw(RecordWriter("tstart")
            .field(std::int64_t{0})
            .field(std::string_view("1:D"))
            .str());
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("interrupted-run")) << report.render();
  EXPECT_TRUE(report.has("unquarantined-partial")) << report.render();
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.stats.open_runs, 1u);
}

TEST(FsckTest, SealedWindowAndClosedRunsBoundThePartialSweep) {
  // The sweep for an interrupted run's partials must stop at its sealed
  // window: work recorded after a recovery (new instances, later complete
  // runs) is not the crashed run's doing and must never be flagged — or,
  // under --repair, quarantined.
  Forge f("herc_fsck_seal");
  f.blob("tool");
  f.blob("seed");
  f.blob("half");
  f.blob("later");
  f.blob("redone");
  f.inst(0, "T", "tool");
  f.inst(1, "S", "seed");
  f.inst(2, "D", "half", 0, 0, {1});  // the run's true partial product
  f.raw(RecordWriter("runb")
            .field(std::int64_t{0})
            .field(std::string_view("flow"))
            .field(std::string_view(""))
            .field(std::int64_t{-1})
            .field(std::string_view("tester"))
            .field(std::string_view(""))
            .field(std::int64_t{0})
            .field(std::uint32_t{2})  // db size at begin: the two imports
            .field(std::string_view("flowtext"))
            .str());
  f.raw(RecordWriter("tstart")
            .field(std::int64_t{0})
            .field(std::string_view("1:D"))
            .str());
  // A recovery sealed the run's window at table size 3 …
  f.raw(RecordWriter("runseal")
            .field(std::int64_t{0})
            .field(std::uint32_t{3})
            .str());
  // … so this later record is outside it.
  f.inst(3, "D", "later", 0, 0, {1});
  // A later run that finished cleanly and covered its product.
  f.raw(RecordWriter("runb")
            .field(std::int64_t{1})
            .field(std::string_view("flow"))
            .field(std::string_view(""))
            .field(std::int64_t{-1})
            .field(std::string_view("tester"))
            .field(std::string_view(""))
            .field(std::int64_t{0})
            .field(std::uint32_t{4})
            .field(std::string_view("flowtext"))
            .str());
  f.raw(RecordWriter("tstart")
            .field(std::int64_t{1})
            .field(std::string_view("1:D"))
            .str());
  f.inst(4, "D", "redone", 0, 0, {1});
  f.raw(RecordWriter("tcover")
            .field(std::int64_t{1})
            .field(std::uint32_t{1})
            .field(std::uint32_t{4})
            .str());
  f.raw(RecordWriter("tfin")
            .field(std::int64_t{1})
            .field(std::string_view("1:D"))
            .field(std::string_view("ok"))
            .str());
  f.raw(RecordWriter("rune")
            .field(std::int64_t{1})
            .field(std::string_view("complete"))
            .str());
  f.commit();

  FsckOptions repair;
  repair.repair = true;
  const FsckReport report = fsck_store(f.dir, repair);
  EXPECT_TRUE(report.has("interrupted-run")) << report.render();
  std::size_t partials = 0;
  for (const FsckFinding& finding : report.findings) {
    if (finding.code != "unquarantined-partial") continue;
    ++partials;
    EXPECT_NE(finding.detail.find("instance i2"), std::string::npos)
        << finding.detail;
  }
  EXPECT_EQ(partials, 1u) << report.render();

  // The repaired store quarantined only the true partial.
  support::ManualClock clock(0, 1);
  DurableHistory store(f.schema, clock, f.dir, {});
  EXPECT_EQ(store.recovery().quarantined, 0u);
  ASSERT_EQ(store.db().size(), 5u);
  EXPECT_FALSE(store.db().instance(data::InstanceId(2)).ok());
  EXPECT_TRUE(store.db().instance(data::InstanceId(3)).ok())
      << "post-seal work swept by --repair";
  EXPECT_TRUE(store.db().instance(data::InstanceId(4)).ok())
      << "a closed run's covered product swept by --repair";
}

TEST(FsckTest, BadRecordAndCountMismatchAreCorruption) {
  Forge f("herc_fsck_badrec");
  f.blob("seed");
  f.inst(0, "S", "seed");
  f.raw("gibberish|what|even");
  f.commit(5);  // declared count != actual
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("bad-record")) << report.render();
  EXPECT_TRUE(report.has("snapshot-count-mismatch")) << report.render();
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(FsckTest, UnknownEntityAndOutOfOrderIdsAreCorruption) {
  Forge f("herc_fsck_entity");
  f.blob("seed");
  f.inst(0, "Phantom", "seed");  // not in the schema
  f.inst(3, "S", "seed");        // id gap
  f.commit();
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("unknown-entity")) << report.render();
  EXPECT_TRUE(report.has("out-of-order-instance")) << report.render();
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(FsckTest, JournalEpochSkewSeverities) {
  // Ahead of the snapshot: the snapshot those frames extend is gone.
  {
    Forge f("herc_fsck_future");
    f.blob("seed");
    f.inst(0, "S", "seed");
    f.commit();
    Journal::create((fs::path(f.dir) / "journal.wal").string(), 7, {});
    const FsckReport report = fsck_store(f.dir);
    EXPECT_TRUE(report.has("future-journal-epoch")) << report.render();
    EXPECT_EQ(report.exit_code(), 2);
  }
  // Behind the snapshot: the checkpoint crashed between its two steps;
  // recovery discards the journal, so it is only a warning.
  {
    Forge f("herc_fsck_stale");
    f.blob("seed");
    f.inst(0, "S", "seed");
    std::string text = RecordWriter("snap")
                           .field(std::int64_t{3})
                           .field(std::uint32_t{1})
                           .str() +
                       "\n";
    for (const std::string& line : f.lines) text += line + "\n";
    put(f.dir, "snapshot.herc", text);
    Journal::create((fs::path(f.dir) / "journal.wal").string(), 2, {});
    const FsckReport report = fsck_store(f.dir);
    EXPECT_TRUE(report.has("stale-journal-epoch")) << report.render();
    EXPECT_EQ(report.exit_code(), 1);
  }
}

TEST(FsckTest, TornJournalTailIsAWarning) {
  Forge f("herc_fsck_torn");
  f.blob("seed");
  f.inst(0, "S", "seed");
  f.commit();
  {
    Journal j = Journal::create((fs::path(f.dir) / "journal.wal").string(),
                                0, {});
    j.append("annot|0|renamed|note\n");
    j.sync();
  }
  // Chop the last byte of the final frame.
  const std::string path = (fs::path(f.dir) / "journal.wal").string();
  std::error_code ec;
  fs::resize_file(path, fs::file_size(path) - 1, ec);
  ASSERT_FALSE(ec);
  const FsckReport report = fsck_store(f.dir);
  EXPECT_TRUE(report.has("torn-journal-tail")) << report.render();
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(FsckTest, RepairProducesAStoreThatRecoversAndAuditsClean) {
  Forge f("herc_fsck_repair");
  f.blob("tool");
  f.blob("seed");
  f.blob("orphaned");
  f.inst(0, "T", "tool");
  f.inst(1, "S", "seed");
  f.inst(2, "D", "lost-payload", 0, 0, {1});  // missing blob
  f.inst(3, "D", "seed", 0, 0, {9});          // dangling input
  f.commit();

  FsckOptions repair;
  repair.repair = true;
  const FsckReport before = fsck_store(f.dir, repair);
  EXPECT_EQ(before.exit_code(), 2);
  EXPECT_TRUE(before.has("missing-blob"));
  EXPECT_TRUE(before.has("dangling-reference"));
  EXPECT_TRUE(before.has("orphan-blob"));
  EXPECT_FALSE(before.repairs.empty());

  const FsckReport after = fsck_store(f.dir);
  EXPECT_EQ(after.exit_code(), 0) << after.render();

  // The repaired store recovers through the real path: tombstoned
  // instances keep their id slot with quarantined status.
  support::ManualClock clock(0, 1);
  DurableHistory store(f.schema, clock, f.dir, {});
  EXPECT_EQ(store.db().size(), 4u);
  EXPECT_FALSE(store.db().instance(data::InstanceId(2)).ok());
  EXPECT_FALSE(store.db().instance(data::InstanceId(3)).ok());
  EXPECT_TRUE(store.db().instance(data::InstanceId(1)).ok());
  EXPECT_EQ(store.epoch(), 1u) << "repair checkpoints under the next epoch";
}

/// A real journaled store (fig1 schema, three imports) with its secondary
/// index saved at the store's exact (epoch, seq) — the baseline the index
/// audit tests then perturb.
struct IndexedStore {
  schema::TaskSchema schema = schema::make_fig1_schema();
  std::string dir;
  std::uint64_t epoch = 0;
  index::IndexImage image;  // the correct image, stamped (epoch, seq)

  explicit IndexedStore(const std::string& name) : dir(scratch(name)) {
    support::ManualClock clock(100, 10);
    DurableHistory store(schema, clock, dir, {});
    store.db().import_instance(schema.require("EditedNetlist"), "low pass",
                               "aa", "alice");
    store.db().import_instance(schema.require("Stimuli"), "waves", "bb",
                               "bob");
    store.db().import_instance(schema.require("EditedNetlist"), "high pass",
                               "cc", "alice");
    index::HistoryIndexes idx(store.db());
    idx.rebuild();
    idx.save(dir, store.epoch(), store.journal_seq());
    epoch = store.epoch();
    image = idx.image();
    image.epoch = store.epoch();
    image.seq = store.journal_seq();
  }

  void write_index(const index::IndexImage& img) const {
    std::ofstream out(index::HistoryIndexes::file_path(dir),
                      std::ios::binary | std::ios::trunc);
    out << img.serialize();
  }
};

TEST(FsckTest, CleanStoreWithIndexAuditsClean) {
  IndexedStore s("herc_fsck_idx_clean");
  const FsckReport report = fsck_store(s.dir);
  EXPECT_TRUE(report.findings.empty()) << report.render();
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(FsckTest, StaleIndexEpochIsAWarning) {
  IndexedStore s("herc_fsck_idx_epoch");
  index::IndexImage img = s.image;
  img.epoch += 1;  // index from a future the store never reached
  s.write_index(img);
  const FsckReport report = fsck_store(s.dir);
  EXPECT_TRUE(report.has("stale-index-epoch")) << report.render();
  EXPECT_EQ(report.exit_code(), 1);

  // A seq the journal never reached is the same verdict.
  img = s.image;
  img.seq += 5;
  s.write_index(img);
  const FsckReport ahead = fsck_store(s.dir);
  EXPECT_TRUE(ahead.has("stale-index-epoch")) << ahead.render();
  EXPECT_EQ(ahead.exit_code(), 1);
}

TEST(FsckTest, MissingPostingAndOrphanIndexAreWarnings) {
  IndexedStore s("herc_fsck_idx_postings");
  index::IndexImage img = s.image;
  img.users.erase("alice");  // the index forgot a user's instances
  s.write_index(img);
  const FsckReport missing = fsck_store(s.dir);
  EXPECT_TRUE(missing.has("missing-posting")) << missing.render();
  EXPECT_EQ(missing.exit_code(), 1);

  img = s.image;
  img.users["ghost"] = {0};  // a posting no journal record legitimizes
  s.write_index(img);
  const FsckReport orphan = fsck_store(s.dir);
  EXPECT_TRUE(orphan.has("orphan-index")) << orphan.render();
  EXPECT_EQ(orphan.exit_code(), 1);
}

TEST(FsckTest, AdjacencyMismatchAndUnreadableIndexAreWarnings) {
  IndexedStore s("herc_fsck_idx_adj");
  index::IndexImage img = s.image;
  img.edges += 1;  // claims a derivation edge the history never recorded
  s.write_index(img);
  const FsckReport adj = fsck_store(s.dir);
  EXPECT_TRUE(adj.has("index-adjacency-mismatch")) << adj.render();
  EXPECT_EQ(adj.exit_code(), 1);

  put(s.dir, std::string(index::kIndexFileName), "not an index file");
  const FsckReport bad = fsck_store(s.dir);
  EXPECT_TRUE(bad.has("index-unreadable")) << bad.render();
  EXPECT_EQ(bad.exit_code(), 1);
}

TEST(FsckTest, RepairRebuildsTheIndexAtTheNewEpoch) {
  IndexedStore s("herc_fsck_idx_repair");
  put(s.dir, std::string(index::kIndexFileName), "shredded");
  FsckOptions repair;
  repair.repair = true;
  const FsckReport before = fsck_store(s.dir, repair);
  EXPECT_TRUE(before.has("index-unreadable")) << before.render();
  EXPECT_FALSE(before.repairs.empty());

  // The repaired store audits clean and carries a warm index stamped at
  // the repair checkpoint's epoch with an empty journal.
  const FsckReport after = fsck_store(s.dir);
  EXPECT_EQ(after.exit_code(), 0) << after.render();
  std::ifstream in(index::HistoryIndexes::file_path(s.dir),
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  index::IndexImage rebuilt;
  std::string error;
  ASSERT_TRUE(index::IndexImage::parse(text, rebuilt, error)) << error;
  EXPECT_EQ(rebuilt.epoch, s.epoch + 1);
  EXPECT_EQ(rebuilt.seq, 0u);
  EXPECT_EQ(rebuilt.instances, 3u);
}

TEST(FsckTest, JsonRenderingLabelsSeveritiesAndNotesStayClean) {
  // A warning store: orphan blob -> severity "warning", exit 1.
  Forge w("herc_fsck_json_warn");
  w.blob("seed");
  w.blob("orphaned");
  w.inst(0, "S", "seed");
  w.commit();
  const std::string warn_json = fsck_store(w.dir).render_json();
  EXPECT_NE(warn_json.find("\"severity\":\"warning\""), std::string::npos)
      << warn_json;
  EXPECT_NE(warn_json.find("\"code\":\"orphan-blob\""), std::string::npos);
  EXPECT_NE(warn_json.find("\"verdict\":\"warnings\""), std::string::npos);
  EXPECT_NE(warn_json.find("\"exit_code\":1"), std::string::npos);

  // A replica marker is a clean-severity note: rendered with severity
  // "note", verdict and exit code unchanged.
  Forge r("herc_fsck_json_note");
  r.blob("seed");
  r.inst(0, "S", "seed");
  r.commit();
  put(r.dir, "replica.herc", "follower of /tmp/leader");
  const FsckReport note_report = fsck_store(r.dir);
  EXPECT_EQ(note_report.exit_code(), 0) << note_report.render();
  const std::string note_json = note_report.render_json();
  EXPECT_NE(note_json.find("\"severity\":\"note\""), std::string::npos)
      << note_json;
  EXPECT_NE(note_json.find("\"code\":\"replica-store\""), std::string::npos);
  EXPECT_NE(note_json.find("\"verdict\":\"clean\""), std::string::npos);
  EXPECT_NE(note_json.find("\"exit_code\":0"), std::string::npos);
}

TEST(FsckTest, RealExecutedStoreAuditsCleanEndToEnd) {
  // Not a forged store: a real executor run through the real journal.
  faulttest::World w;
  faulttest::add_chain(w, "C", 3);
  graph::TaskGraph flow(w.schema, "chain");
  flow.add_node(w.schema.require("CD3"));
  faulttest::expand_all(flow);
  faulttest::bind_leaves(w, flow);

  const std::string dir = scratch("herc_fsck_real");
  fs::remove_all(dir);
  {
    DurableHistory store(w.schema, w.clock, dir, {});
    store.adopt(std::move(w.db));
    exec::Executor exec(store.db(), w.tools);
    exec.run(flow);
  }
  const FsckReport report = fsck_store(dir);
  EXPECT_EQ(report.exit_code(), 0) << report.render();
  EXPECT_EQ(report.stats.runs, 1u);
  EXPECT_EQ(report.stats.open_runs, 0u);
}

}  // namespace
}  // namespace herc::storage
