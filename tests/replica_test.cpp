// The replication subsystem end to end: leader-side shipping
// (JournalShipper), follower-side apply (ReplicaApplier), and the epoch
// fence between them.
//
//   - Wire bootstrap + live streaming: a follower snapshots off a live
//     leader, then receives every subsequent mutation frame; a read-only
//     server over the replica refuses write commands.
//   - Restart catch-up: a follower that stops and comes back recovers
//     its store locally and receives exactly the missed frames.
//   - The apply-path outcome matrix: duplicate, gap, and — the failover
//     guarantee — kFenced for any frame from a stale epoch, so a demoted
//     ex-leader can never mutate a promoted replica.
//   - Leader-side fencing: a subscriber claiming a future-epoch position
//     is a fenced stale leader and is refused outright.
//   - Promotion: `promote_store` runs leader recovery, bumps the epoch
//     and removes the marker; the failover drill then rebuilds the whole
//     chain (new leader, new follower) on top of the promoted store.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "replica/applier.hpp"
#include "replica/replication.hpp"
#include "replica/shipper.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "storage/fsck.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"

namespace herc::replica {
namespace {

namespace fs = std::filesystem;

constexpr const char* kWaveBody = "stimuli sw\nwave in 0:0 10:1 20:0\n";

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("herc_replica_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (path / name).string();
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

/// Captures the leader's raw journal frames — the ground truth the
/// apply-path tests feed to a follower by hand.
struct CaptureTap final : storage::JournalTap {
  std::vector<JournalShipment> frames;
  void on_frame(std::uint64_t epoch, std::uint64_t seq,
                std::string_view payload) override {
    frames.push_back({epoch, seq, std::string(payload)});
  }
  void on_checkpoint(std::uint64_t) override {}
};

bool wait_until(const std::function<bool()>& done, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

TEST(ReplicaTest, EndToEndStreamingAndReadOnlyServe) {
  TempDir tmp;
  const std::string leader_dir = tmp.sub("leader");
  const std::string follower_dir = tmp.sub("follower");

  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(leader_dir);
  {
    JournalShipper shipper(session);
    server::Server server(session);
    server.set_replication_hub(&shipper);
    const server::Endpoint ep =
        server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
    server.start();

    server::Client writer = server::Client::connect(ep);
    ASSERT_TRUE(writer.call("import Stimuli before_boot", kWaveBody).ok());

    // Bootstrap off the live leader: the snapshot already carries the
    // pre-bootstrap import.
    ReplicaApplier applier(ep, follower_dir);
    ASSERT_TRUE(applier.bootstrap()) << applier.last_error();
    EXPECT_TRUE(applier.bootstrapped());
    // Leader-side size reads go through the server's session lock: the
    // imports ran on its worker threads.
    std::size_t leader_size = 0;
    server.with_exclusive_session([&] { leader_size = session.db().size(); });
    EXPECT_EQ(applier.db().size(), leader_size);

    // A read-only server over the replica, gated exactly as `herc serve
    // --replicate-from` wires it.
    core::DesignSession replica_session(applier.schema());
    replica_session.attach_replica(&applier.db());
    server::ServeOptions read_only;
    read_only.read_only = true;
    server::Server replica_server(replica_session, read_only);
    applier.set_gate([&replica_server](const std::function<void()>& fn) {
      replica_server.with_exclusive_session(fn);
    });
    const server::Endpoint replica_ep =
        replica_server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
    replica_server.start();
    applier.start();

    ASSERT_TRUE(writer.call("import Stimuli live_one", kWaveBody).ok());
    ASSERT_TRUE(writer.call("import Stimuli live_two", kWaveBody).ok());
    ASSERT_TRUE(wait_until(
        [&applier] { return applier.frames_applied() >= 2; }))
        << "follower never saw the live frames; position "
        << applier.position().epoch << ":" << applier.position().seq;
    // Size comparisons under both servers' session locks: the leader's
    // workers wrote, the applier's stream thread applies through the
    // replica server's exclusive gate.
    EXPECT_TRUE(wait_until([&] {
      std::size_t replica_size = 0;
      server.with_exclusive_session([&] { leader_size = session.db().size(); });
      replica_server.with_exclusive_session(
          [&] { replica_size = applier.db().size(); });
      return replica_size == leader_size;
    }));

    // Reads flow, writes are refused with a pointer at the leader.
    server::Client reader = server::Client::connect(replica_ep);
    const server::CallResult browse = reader.call("browse Stimuli");
    ASSERT_TRUE(browse.ok()) << browse.error;
    EXPECT_NE(browse.output.find("live_two"), std::string::npos);
    const server::CallResult refused =
        reader.call("import Stimuli on_replica", kWaveBody);
    EXPECT_FALSE(refused.ok());
    EXPECT_NE(refused.error.find("read-only replica"), std::string::npos);
    reader.close();
    writer.close();

    applier.stop();
    replica_server.stop();
    server.stop();
  }
  session.close_storage();

  EXPECT_EQ(storage::fsck_store(leader_dir).exit_code(), 0);
  EXPECT_EQ(storage::fsck_store(follower_dir).exit_code(), 0);
  EXPECT_TRUE(ReplicaApplier::is_replica_store(follower_dir));
  EXPECT_FALSE(ReplicaApplier::is_replica_store(leader_dir));
}

TEST(ReplicaTest, RestartCatchUpReceivesExactlyTheMissedFrames) {
  TempDir tmp;
  const std::string leader_dir = tmp.sub("leader");
  const std::string follower_dir = tmp.sub("follower");

  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(leader_dir);
  {
    JournalShipper shipper(session);
    server::Server server(session);
    server.set_replication_hub(&shipper);
    const server::Endpoint ep =
        server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
    server.start();
    server::Client writer = server::Client::connect(ep);
    ASSERT_TRUE(writer.call("import Stimuli first", kWaveBody).ok());

    StreamPosition parked;
    {
      ReplicaApplier applier(ep, follower_dir);
      ASSERT_TRUE(applier.bootstrap()) << applier.last_error();
      parked = applier.position();
    }

    // Two frames land while no follower is attached.
    ASSERT_TRUE(writer.call("import Stimuli while_away_a", kWaveBody).ok());
    ASSERT_TRUE(writer.call("import Stimuli while_away_b", kWaveBody).ok());
    writer.close();

    // The restarted follower recovers locally (no leader involved), then
    // its subscribe position triggers the journal-file catch-up path.
    ReplicaApplier applier(ep, follower_dir);
    ASSERT_TRUE(applier.bootstrap()) << applier.last_error();
    EXPECT_EQ(applier.position(), parked);
    applier.start();
    ASSERT_TRUE(wait_until([&applier, &parked] {
      return applier.position().seq >= parked.seq + 2;
    })) << applier.last_error();
    EXPECT_EQ(applier.frames_applied(), 2u);
    std::size_t leader_size = 0;
    server.with_exclusive_session([&] { leader_size = session.db().size(); });
    EXPECT_EQ(applier.db().size(), leader_size);
    applier.stop();
    server.stop();
  }
  session.close_storage();
  EXPECT_EQ(storage::fsck_store(follower_dir).exit_code(), 0);
}

TEST(ReplicaTest, ApplyOutcomesDuplicateGapAndFence) {
  TempDir tmp;
  const std::string leader_dir = tmp.sub("leader");
  const std::string follower_dir = tmp.sub("follower");

  // Capture real journal frames from a tapped leader store.
  CaptureTap tap;
  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(leader_dir);
  (void)session.import_data("Stimuli", "cap_0", kWaveBody);
  const SnapshotShipment snap{session.storage()->epoch(),
                              session.storage()->journal_seq(),
                              schema::write_schema(session.schema()),
                              session.db().save()};
  // Tap attaches after the snapshot: every captured frame post-dates it.
  session.storage()->attach_tap(&tap);
  (void)session.import_data("Stimuli", "cap_1", kWaveBody);
  (void)session.import_data("Stimuli", "cap_2", kWaveBody);
  (void)session.import_data("Stimuli", "cap_3", kWaveBody);
  session.storage()->attach_tap(nullptr);
  session.close_storage();
  ASSERT_GE(tap.frames.size(), 3u);
  const std::uint64_t base = snap.seq;

  // The applier never contacts this address: every call below is direct.
  ReplicaApplier applier(server::Endpoint::parse("127.0.0.1:1"),
                         follower_dir);
  applier.install_snapshot(snap);
  EXPECT_EQ(applier.position(), (StreamPosition{snap.epoch, base}));

  EXPECT_EQ(applier.apply_frame(tap.frames[0]), ApplyOutcome::kApplied);
  EXPECT_EQ(applier.position().seq, base + 1);
  const std::uint64_t journal_bytes = applier.journal_bytes();

  // Replay of an applied frame: harmless, nothing written.
  EXPECT_EQ(applier.apply_frame(tap.frames[0]), ApplyOutcome::kDuplicate);
  EXPECT_EQ(applier.journal_bytes(), journal_bytes);

  // A frame from beyond our position: resync, nothing written.
  EXPECT_EQ(applier.apply_frame(tap.frames[2]), ApplyOutcome::kGap);
  EXPECT_EQ(applier.position().seq, base + 1);
  EXPECT_EQ(applier.journal_bytes(), journal_bytes);

  // A frame from a future epoch: also a gap (we missed a checkpoint).
  JournalShipment future = tap.frames[1];
  future.epoch = snap.epoch + 1;
  future.seq = 0;
  EXPECT_EQ(applier.apply_frame(future), ApplyOutcome::kGap);

  // Cross the fence: after the checkpoint to epoch+1, any frame from the
  // old epoch is a demoted ex-leader talking — rejected, counted.
  applier.apply_checkpoint(snap.epoch + 1);
  EXPECT_EQ(applier.position(), (StreamPosition{snap.epoch + 1, 0}));
  EXPECT_EQ(applier.apply_frame(tap.frames[1]), ApplyOutcome::kFenced);
  EXPECT_EQ(applier.fenced_frames(), 1u);
  EXPECT_EQ(applier.position(), (StreamPosition{snap.epoch + 1, 0}));

  EXPECT_EQ(storage::fsck_store(follower_dir).exit_code(), 0);
}

TEST(ReplicaTest, LeaderRefusesSubscriberFromAFutureEpoch) {
  TempDir tmp;
  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(tmp.sub("leader"));
  {
    JournalShipper shipper(session);
    (void)session.import_data("Stimuli", "s0", kWaveBody);

    // A follower claiming a position *ahead* of this leader's epoch has
    // seen a promotion this leader missed: this leader is the stale one,
    // and serving the subscriber would split-brain the store.
    const std::uint64_t ahead = session.storage()->epoch() + 1;
    std::string error;
    EXPECT_FALSE(shipper.subscribe(
        1, "test-peer", encode_subscribe(StreamPosition{ahead, 0}), &error));
    EXPECT_NE(error.find("fenced"), std::string::npos) << error;
    EXPECT_EQ(shipper.fenced_subscribes(), 1u);
    EXPECT_EQ(shipper.follower_count(), 0u);

    // A same-epoch subscriber is fine.
    error.clear();
    EXPECT_TRUE(shipper.subscribe(
        2, "test-peer",
        encode_subscribe(StreamPosition{session.storage()->epoch(), 0}),
        &error))
        << error;
    EXPECT_EQ(shipper.follower_count(), 1u);
    shipper.close_all();
  }
  session.close_storage();
}

TEST(ReplicaTest, SlowFollowerOverflowsWithoutBlockingTheLeader) {
  TempDir tmp;
  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(tmp.sub("leader"));
  {
    ShipperOptions options;
    options.max_queued_frames = 2;
    JournalShipper shipper(session, options);
    std::string error;
    ASSERT_TRUE(shipper.subscribe(7, "slowpoke", encode_subscribe({}),
                                  &error))
        << error;

    // Nobody pumps follower 7; the mutation path must sail through and
    // drop the follower at the bound.
    (void)session.import_data("Stimuli", "q0", kWaveBody);
    (void)session.import_data("Stimuli", "q1", kWaveBody);
    (void)session.import_data("Stimuli", "q2", kWaveBody);
    (void)session.import_data("Stimuli", "q3", kWaveBody);
    EXPECT_EQ(shipper.overflows(), 1u);
    // The frames queued before the overflow still drain — the bootstrap
    // snapshot first, then journal frames — and then the pump learns the
    // follower was dropped (it reconnects and resyncs).
    server::Frame frame;
    bool first = true;
    while (shipper.next_frame(7, frame)) {
      EXPECT_EQ(frame.type, first ? server::FrameType::kSnapshot
                                  : server::FrameType::kJournal);
      first = false;
    }
    EXPECT_FALSE(first) << "the bootstrap snapshot never drained";
    EXPECT_FALSE(shipper.next_frame(7, frame));
    shipper.unsubscribe(7);
    EXPECT_EQ(shipper.follower_count(), 0u);
  }
  session.close_storage();
}

TEST(ReplicaTest, PromoteBumpsTheEpochAndRemovesTheMarker) {
  TempDir tmp;
  const std::string leader_dir = tmp.sub("leader");
  const std::string replica_dir = tmp.sub("replica");

  CaptureTap tap;
  core::DesignSession session(schema::make_full_schema());
  (void)session.open_storage(leader_dir);
  (void)session.import_data("Stimuli", "p0", kWaveBody);
  const SnapshotShipment snap{session.storage()->epoch(),
                              session.storage()->journal_seq(),
                              schema::write_schema(session.schema()),
                              session.db().save()};
  session.storage()->attach_tap(&tap);
  (void)session.import_data("Stimuli", "p1", kWaveBody);
  session.storage()->attach_tap(nullptr);
  const std::size_t leader_size = session.db().size();
  session.close_storage();

  {
    ReplicaApplier applier(server::Endpoint::parse("127.0.0.1:1"),
                           replica_dir);
    applier.install_snapshot(snap);
    for (const JournalShipment& frame : tap.frames) {
      ASSERT_EQ(applier.apply_frame(frame), ApplyOutcome::kApplied);
    }
  }
  ASSERT_TRUE(ReplicaApplier::is_replica_store(replica_dir));

  const PromoteReport report = promote_store(replica_dir);
  EXPECT_EQ(report.epoch, snap.epoch + 1);
  EXPECT_FALSE(ReplicaApplier::is_replica_store(replica_dir));
  EXPECT_EQ(storage::fsck_store(replica_dir).exit_code(), 0);

  // The promoted store is a leader store: it opens and serves the full
  // replicated history.
  core::DesignSession promoted(schema::make_full_schema());
  (void)promoted.open_storage(replica_dir);
  EXPECT_EQ(promoted.db().size(), leader_size);
  EXPECT_EQ(promoted.storage()->epoch(), report.epoch);
  promoted.close_storage();

  // A second promote must refuse: the marker is gone.
  EXPECT_THROW((void)promote_store(replica_dir), support::HistoryError);
}

TEST(ReplicaTest, FailoverDrillPromotedFollowerLeadsAndFencesTheOldEpoch) {
  TempDir tmp;
  const std::string a_dir = tmp.sub("a");  // original leader
  const std::string b_dir = tmp.sub("b");  // follower -> promoted leader
  const std::string c_dir = tmp.sub("c");  // follower of the new leader

  CaptureTap old_epoch_tap;
  std::size_t size_before_failover = 0;

  // Epoch 0: A leads, B follows, frames flow.
  {
    core::DesignSession session_a(schema::make_full_schema());
    (void)session_a.open_storage(a_dir);
    {
      JournalShipper shipper_a(session_a);
      server::Server server_a(session_a);
      server_a.set_replication_hub(&shipper_a);
      const server::Endpoint ep_a =
          server_a.add_listener(server::Endpoint::parse("127.0.0.1:0"));
      server_a.start();

      ReplicaApplier applier_b(ep_a, b_dir);
      ASSERT_TRUE(applier_b.bootstrap()) << applier_b.last_error();
      applier_b.start();

      server::Client writer = server::Client::connect(ep_a);
      ASSERT_TRUE(writer.call("import Stimuli wave_one", kWaveBody).ok());
      ASSERT_TRUE(writer.call("import Stimuli wave_two", kWaveBody).ok());
      writer.close();
      ASSERT_TRUE(wait_until(
          [&applier_b] { return applier_b.frames_applied() >= 2; }));
      size_before_failover = session_a.db().size();
      EXPECT_EQ(applier_b.db().size(), size_before_failover);

      // Capture one old-epoch frame for the fence assertion below.
      session_a.storage()->attach_tap(&old_epoch_tap);
      (void)session_a.import_data("Stimuli", "straggler", kWaveBody);
      session_a.storage()->attach_tap(nullptr);

      // A "dies" (hard stop; its store keeps the straggler frame B never
      // saw — exactly the divergence failover must fence off).
      applier_b.stop();
      server_a.stop();
    }
    session_a.close_storage();
  }
  ASSERT_EQ(old_epoch_tap.frames.size(), 1u);

  // Promote B: epoch 0 -> 1.
  const PromoteReport promotion = promote_store(b_dir);
  EXPECT_EQ(promotion.epoch, 1u);

  // Epoch 1: B leads, C follows and sees everything B replicated.
  core::DesignSession session_b(schema::make_full_schema());
  (void)session_b.open_storage(b_dir);
  ASSERT_EQ(session_b.storage()->epoch(), 1u);
  {
    JournalShipper shipper_b(session_b);
    server::Server server_b(session_b);
    server_b.set_replication_hub(&shipper_b);
    const server::Endpoint ep_b =
        server_b.add_listener(server::Endpoint::parse("127.0.0.1:0"));
    server_b.start();

    server::Client writer = server::Client::connect(ep_b);
    ASSERT_TRUE(writer.call("import Stimuli after_failover", kWaveBody).ok());
    writer.close();

    ReplicaApplier applier_c(ep_b, c_dir);
    ASSERT_TRUE(applier_c.bootstrap()) << applier_c.last_error();
    EXPECT_EQ(applier_c.position().epoch, 1u);
    EXPECT_EQ(applier_c.db().size(), size_before_failover + 1);

    // The fence, both directions: the ex-leader's epoch-0 frame is
    // rejected by the promoted world...
    EXPECT_EQ(applier_c.apply_frame(old_epoch_tap.frames[0]),
              ApplyOutcome::kFenced);
    EXPECT_EQ(applier_c.fenced_frames(), 1u);
    // ...and an epoch-1 subscriber would be refused by the ex-leader
    // (its epoch is 0 — the future-epoch refusal of
    // LeaderRefusesSubscriberFromAFutureEpoch, exercised here against
    // the promoted position).
    std::string error;
    core::DesignSession stale(schema::make_full_schema());
    (void)stale.open_storage(a_dir);
    {
      JournalShipper stale_shipper(stale);
      EXPECT_FALSE(stale_shipper.subscribe(
          9, "c", encode_subscribe(applier_c.position()), &error));
      EXPECT_NE(error.find("fenced"), std::string::npos) << error;
    }
    stale.close_storage();

    server_b.stop();
  }
  session_b.close_storage();
  EXPECT_EQ(storage::fsck_store(b_dir).exit_code(), 0);
  EXPECT_EQ(storage::fsck_store(c_dir).exit_code(), 0);
}

// The torn-tail divergence: the leader crashes mid-journal-write AFTER the
// tap shipped the final frame complete, so the follower holds a frame the
// healed leader's journal never kept.  Once the restarted leader writes a
// replacement frame, both sides sit at the same (epoch, seq) on different
// histories — seq equality alone would register the follower as caught up
// and it would silently diverge forever.  The follower's subscribe tail
// checksum is what disproves prefix equality; the leader must answer with
// a snapshot resync.
TEST(ReplicaTest, TornTailDivergenceForcesASnapshotResync) {
  TempDir tmp;
  const std::string leader_dir = tmp.sub("leader");
  const std::string follower_dir = tmp.sub("follower");

  // Phase 1: a follower streams the frame that is about to be torn.
  {
    core::DesignSession session(schema::make_full_schema());
    (void)session.open_storage(leader_dir);
    JournalShipper shipper(session);
    server::Server server(session);
    server.set_replication_hub(&shipper);
    const server::Endpoint ep =
        server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
    server.start();
    server::Client writer = server::Client::connect(ep);
    ASSERT_TRUE(writer.call("import Stimuli first", kWaveBody).ok());

    ReplicaApplier applier(ep, follower_dir);
    ASSERT_TRUE(applier.bootstrap()) << applier.last_error();
    applier.start();
    ASSERT_TRUE(writer.call("import Stimuli torn_tail", kWaveBody).ok());
    ASSERT_TRUE(wait_until(
        [&applier] { return applier.frames_applied() >= 1; }))
        << applier.last_error();
    applier.stop();
    writer.close();
    server.stop();
    session.close_storage();
  }

  // Phase 2: the crash.  Chop one byte off the leader's journal so its
  // final frame — the one the follower already applied — is torn; the
  // restart heals by truncating it away.
  const std::string journal_path =
      (fs::path(leader_dir) / "journal.wal").string();
  {
    std::ifstream in(journal_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    const storage::ScanResult before = storage::scan_journal(bytes);
    ASSERT_EQ(before.records.size(), 2u);
    fs::resize_file(journal_path, before.valid_bytes - 1);
  }

  // Phase 3: the healed leader replaces the lost frame with different
  // content, landing back on the follower's (epoch, seq).
  core::DesignSession session(schema::make_full_schema());
  const storage::RecoveryReport recovery = session.open_storage(leader_dir);
  EXPECT_TRUE(recovery.torn_tail);
  ASSERT_EQ(session.storage()->journal_seq(), 1u);
  {
    JournalShipper shipper(session);
    server::Server server(session);
    server.set_replication_hub(&shipper);
    const server::Endpoint ep =
        server.add_listener(server::Endpoint::parse("127.0.0.1:0"));
    server.start();
    server::Client writer = server::Client::connect(ep);
    ASSERT_TRUE(writer.call("import Stimuli replacement", kWaveBody).ok());
    ASSERT_EQ(session.storage()->journal_seq(), 2u);

    // Phase 4: the follower returns at the same position on the divergent
    // history.  The tail checksum must out it; the snapshot resync must
    // replace its torn frame with the leader's replacement, after which it
    // streams live again.
    ReplicaApplier applier(ep, follower_dir);
    ASSERT_TRUE(applier.bootstrap()) << applier.last_error();
    EXPECT_EQ(applier.position().seq, 2u);
    applier.start();
    ASSERT_TRUE(wait_until(
        [&shipper] { return shipper.divergent_subscribes() >= 1; }))
        << "the leader accepted the diverged follower as caught up";
    ASSERT_TRUE(writer.call("import Stimuli after_heal", kWaveBody).ok());
    ASSERT_TRUE(wait_until(
        [&applier] { return applier.position().seq >= 3; }))
        << applier.last_error();
    applier.stop();

    const std::string replica_image = applier.db().save();
    EXPECT_NE(replica_image.find("replacement"), std::string::npos);
    EXPECT_NE(replica_image.find("after_heal"), std::string::npos);
    EXPECT_EQ(replica_image.find("torn_tail"), std::string::npos);

    writer.close();
    server.stop();
  }
  session.close_storage();
  EXPECT_EQ(storage::fsck_store(leader_dir).exit_code(), 0);
  EXPECT_EQ(storage::fsck_store(follower_dir).exit_code(), 0);
}

}  // namespace
}  // namespace herc::replica
