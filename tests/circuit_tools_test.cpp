// The circuit tools: placer, extractor, verifier, editors, plotter,
// optimizers, synthesizer.
#include <gtest/gtest.h>

#include "circuit/edits.hpp"
#include "circuit/extract.hpp"
#include "circuit/library.hpp"
#include "circuit/logic_view.hpp"
#include "circuit/optimize.hpp"
#include "circuit/place.hpp"
#include "circuit/plot.hpp"
#include "circuit/sim.hpp"
#include "circuit/verify.hpp"
#include "support/error.hpp"

namespace herc::circuit {
namespace {

using support::ExecError;
using support::ParseError;

TEST(Placer, ProducesCleanLayouts) {
  const Netlist nl = full_adder_netlist();
  const Layout layout = place(nl);
  EXPECT_TRUE(layout.drc().empty());
  EXPECT_EQ(layout.placements().size(), nl.devices().size());
  EXPECT_EQ(layout.pins().size(), nl.inputs().size() + nl.outputs().size());
  EXPECT_EQ(layout.source_netlist(), nl.name());
}

TEST(Placer, AnnealingImprovesWirelength) {
  const Netlist nl = ripple_adder_netlist(2);
  PlaceOptions rough;
  rough.moves = 0;
  PlaceOptions refined;
  refined.moves = 5000;
  const double rough_hpwl = place(nl, rough).total_hpwl();
  const double refined_hpwl = place(nl, refined).total_hpwl();
  EXPECT_LT(refined_hpwl, rough_hpwl);
}

TEST(Placer, DeterministicPerSeed) {
  const Netlist nl = full_adder_netlist();
  PlaceOptions options;
  options.seed = 42;
  EXPECT_EQ(place(nl, options).to_text(), place(nl, options).to_text());
  options.seed = 43;
  // Different seed almost surely lands elsewhere (same cost class though).
  EXPECT_TRUE(place(nl, options).drc().empty());
}

TEST(Extractor, RecoversConnectivityAndAddsParasitics) {
  const Netlist nl = nand2_netlist();
  const Layout layout = place(nl);
  ExtractStatistics stats;
  const Netlist extracted = extract(layout, {}, &stats);
  extracted.validate();
  // All original devices recovered.
  for (const Device& d : nl.devices()) {
    EXPECT_TRUE(extracted.has_device(d.name));
    EXPECT_EQ(extracted.device(d.name).terminals, d.terminals);
  }
  // Parasitic capacitors appear on routed nets.
  EXPECT_GT(stats.parasitics, 0u);
  EXPECT_GT(stats.total_parasitic_pf, 0.0);
  EXPECT_GT(extracted.device_count(DeviceType::kCapacitor), 0u);
  EXPECT_EQ(stats.devices, nl.devices().size());
  EXPECT_NE(stats.to_text().find("parasitics="), std::string::npos);
}

TEST(Extractor, ExtractedNetlistSimulatesSlower) {
  // The consistency-maintenance motivation: parasitics change behaviour.
  const Netlist nl = inverter_chain(4);
  const Layout layout = place(nl);
  const Netlist extracted = extract(layout);
  const DeviceModelLibrary models = DeviceModelLibrary::standard();
  Stimuli st("step");
  st.add_wave(Waveform{"in", {{0, Level::kLow}, {20000, Level::kHigh}}});
  const auto schematic_delay = simulate(nl, models, st).max_delay_ps;
  const auto extracted_delay = simulate(extracted, models, st).max_delay_ps;
  EXPECT_GT(extracted_delay, schematic_delay);
}

TEST(Verifier, PassesOnFaithfulLayout) {
  const Netlist nl = full_adder_netlist();
  const VerificationReport report = verify_layout(place(nl), nl);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.errors.empty());
}

TEST(Verifier, CatchesMissingExtraAndRewired) {
  const Netlist nl = nand2_netlist();
  Layout layout = place(nl);
  layout.unplace("mn1");                       // missing
  Device stray = nl.device("mn2");
  stray.name = "intruder";
  layout.place(stray, 3, 3);                   // extra
  layout.move("mp1", 0, 0);                    // overlap with whatever is there
  const VerificationReport report = verify_layout(layout, nl);
  EXPECT_FALSE(report.pass);
  bool missing = false;
  bool extra = false;
  for (const std::string& e : report.errors) {
    missing |= e.find("mn1") != std::string::npos &&
               e.find("not placed") != std::string::npos;
    extra |= e.find("intruder") != std::string::npos;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(extra);
}

TEST(Verifier, IgnoresParasiticsAndRoundTripsReport) {
  const Netlist nl = nand2_netlist();
  const Layout layout = place(nl);
  const Netlist extracted = extract(layout);
  // Verifying the layout against its own extraction passes: the cpar_*
  // devices are skipped on the schematic side.
  const VerificationReport report = verify_layout(layout, extracted);
  EXPECT_TRUE(report.pass) << report.to_text();
  const VerificationReport back =
      VerificationReport::from_text(report.to_text());
  EXPECT_EQ(back.pass, report.pass);
  VerificationReport failing;
  failing.pass = false;
  failing.errors = {"one", "two"};
  const VerificationReport back2 =
      VerificationReport::from_text(failing.to_text());
  EXPECT_FALSE(back2.pass);
  EXPECT_EQ(back2.errors, failing.errors);
}

TEST(Editors, NetlistEditScript) {
  const Netlist base = inverter_netlist();
  const Netlist edited = apply_netlist_edits(base,
                                             "name inv2\n"
                                             "net mid\n"
                                             "add cap cl a=out b=GND value=0.5\n"
                                             "set mn value=2 model=nch\n"
                                             "del mp\n");
  EXPECT_EQ(edited.name(), "inv2");
  EXPECT_TRUE(edited.has_device("cl"));
  EXPECT_FALSE(edited.has_device("mp"));
  EXPECT_DOUBLE_EQ(edited.device("mn").value, 2.0);
  // The base is untouched.
  EXPECT_TRUE(base.has_device("mp"));
  // Errors: bad command, impossible edit.
  EXPECT_THROW(apply_netlist_edits(base, "teleport mn"), ParseError);
  EXPECT_THROW(apply_netlist_edits(base, "del nothere"), ExecError);
  EXPECT_THROW(apply_netlist_edits(base, "set mn nonsense=1"), ParseError);
}

TEST(Editors, EditFromScratch) {
  const Netlist built = apply_netlist_edits(Netlist(),
                                            "name fresh\n"
                                            "input a\noutput y\n"
                                            "add nmos m1 g=a d=y s=GND\n"
                                            "add pmos m2 g=a d=y s=VDD\n");
  built.validate();
  EXPECT_EQ(built.mos_count(), 2u);
}

TEST(Editors, LayoutEditScript) {
  const Layout base = place(inverter_netlist());
  const Layout edited = apply_layout_edits(base,
                                           "move mn 0 0\n"
                                           "unplace mp\n"
                                           "resize 8 8\n"
                                           "pin extra x=7 y=7 dir=out\n");
  EXPECT_EQ(edited.placement("mn").x, 0);
  EXPECT_FALSE(edited.has_placement("mp"));
  EXPECT_EQ(edited.rows(), 8);
  EXPECT_EQ(edited.pins().back().net, "extra");
  EXPECT_THROW(apply_layout_edits(base, "move ghost 1 1"), ExecError);
  EXPECT_THROW(apply_layout_edits(base, "move mn one 1"), ParseError);
}

TEST(Editors, ModelEditScript) {
  const DeviceModelLibrary base = DeviceModelLibrary::standard();
  const DeviceModelLibrary edited =
      apply_model_edits(base,
                        "set nch resistance=5\n"
                        "model hs type=pmos resistance=2 threshold=0.4\n"
                        "del pch\n");
  EXPECT_DOUBLE_EQ(edited.model("nch").resistance_kohm, 5.0);
  EXPECT_TRUE(edited.has_model("hs"));
  EXPECT_FALSE(edited.has_model("pch"));
}

TEST(Plotter, RendersEveryWave) {
  const Stimuli st = Stimuli::counter({"a", "b"}, 1000);
  const SimResult r =
      simulate(nand2_netlist(), DeviceModelLibrary::standard(), st);
  const std::string plot = ascii_plot(r, PlotOptions{60, "nand check"});
  EXPECT_NE(plot.find("nand check"), std::string::npos);
  EXPECT_NE(plot.find("y"), std::string::npos);
  EXPECT_NE(plot.find("max_delay_ps"), std::string::npos);
  // High and low glyphs both appear for a toggling output.
  EXPECT_NE(plot.find('~'), std::string::npos);
  EXPECT_NE(plot.find('_'), std::string::npos);
}

class OptimizerTest : public ::testing::TestWithParam<OptAlgorithm> {};

TEST_P(OptimizerTest, NeverWorsensDelay) {
  // A deliberately bad sizing: optimization must not end worse than start.
  Netlist nl = inverter_chain(3);
  nl.add_capacitor("cl", "out", "GND", 0.8);
  for (const Device& d : std::vector<Device>(nl.devices())) {
    if (d.is_mos()) nl.device_mut(d.name).value = 0.6;
  }
  const DeviceModelLibrary models = DeviceModelLibrary::standard();
  Stimuli st("step");
  st.add_wave(Waveform{"in", {{0, Level::kLow}, {50000, Level::kHigh}}});
  OptimizeOptions options;
  options.algorithm = GetParam();
  options.iterations = 12;
  const OptimizeResult result = optimize(nl, models, st, options);
  EXPECT_LE(result.final_delay_ps, result.initial_delay_ps);
  EXPECT_GT(result.evaluations, 0u);
  result.netlist.validate();
  EXPECT_NE(result.summary().find("->"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, OptimizerTest,
                         ::testing::Values(OptAlgorithm::kGradient,
                                           OptAlgorithm::kAnnealing,
                                           OptAlgorithm::kRandomSearch),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Optimizer, AlgorithmNames) {
  EXPECT_EQ(opt_algorithm_from("gradient"), OptAlgorithm::kGradient);
  EXPECT_EQ(opt_algorithm_from("annealing"), OptAlgorithm::kAnnealing);
  EXPECT_EQ(opt_algorithm_from("random"), OptAlgorithm::kRandomSearch);
  EXPECT_FALSE(opt_algorithm_from("magic").has_value());
}

TEST(Synthesizer, ExpandsGatesToWorkingTransistors) {
  const LogicView view = full_adder_logic();
  const Netlist syn = synthesize(view);
  syn.validate();
  EXPECT_GT(syn.mos_count(), 30u);
  // The synthesized netlist computes the same function as the hand-built
  // full adder.
  const DeviceModelLibrary models = DeviceModelLibrary::standard();
  const Stimuli st = Stimuli::counter({"a", "b", "cin"}, 1000);
  const SimResult ours = simulate(syn, models, st);
  const SimResult reference = simulate(full_adder_netlist(), models, st);
  for (const char* out : {"sum", "cout"}) {
    for (std::size_t code = 0; code < 8; ++code) {
      const auto t = static_cast<std::int64_t>(code) * 1000 + 999;
      EXPECT_EQ(ours.wave(out).at(t), reference.wave(out).at(t))
          << out << " at code " << code;
    }
  }
}

TEST(Synthesizer, AllGateKindsSynthesize) {
  LogicView view("gates");
  view.add_input("a");
  view.add_input("b");
  view.add_output("y");
  view.add_gate(LogicGate{"g1", GateKind::kAnd2,
                          {{"a", "a"}, {"b", "b"}, {"y", "n1"}}});
  view.add_gate(LogicGate{"g2", GateKind::kOr2,
                          {{"a", "n1"}, {"b", "b"}, {"y", "n2"}}});
  view.add_gate(LogicGate{"g3", GateKind::kInv, {{"a", "n2"}, {"y", "y"}}});
  const Netlist syn = synthesize(view);
  syn.validate();
  // y = ~((a&b) | b) = ~b.
  const Stimuli st = Stimuli::counter({"a", "b"}, 1000);
  const SimResult r = simulate(syn, DeviceModelLibrary::standard(), st);
  EXPECT_EQ(r.wave("y").at(999), Level::kHigh);    // a=0 b=0
  EXPECT_EQ(r.wave("y").at(2999), Level::kLow);    // a=0 b=1
}

TEST(Synthesizer, LogicViewValidation) {
  LogicView bad("bad");
  bad.add_output("y");
  LogicGate incomplete{"g", GateKind::kNand2, {{"a", "x"}, {"y", "y"}}};
  bad.add_gate(incomplete);
  EXPECT_THROW(bad.validate(), ExecError);
  LogicView dup("dup");
  dup.add_gate(LogicGate{"g", GateKind::kInv, {{"a", "a"}, {"y", "y"}}});
  EXPECT_THROW(
      dup.add_gate(LogicGate{"g", GateKind::kInv, {{"a", "a"}, {"y", "z"}}}),
      ExecError);
}

TEST(Synthesizer, LogicViewRoundTrip) {
  const LogicView view = full_adder_logic();
  const std::string text = view.to_text();
  const LogicView back = LogicView::from_text(text);
  EXPECT_EQ(back.to_text(), text);
  EXPECT_EQ(back.gates().size(), view.gates().size());
  EXPECT_THROW(LogicView::from_text("gate g1 warp a=b"), ParseError);
}

}  // namespace
}  // namespace herc::circuit
