// Detail routing: connectivity, two-layer DRC, extraction from routed
// wirelength, and the place->route->extract->verify flow.
#include <gtest/gtest.h>

#include "circuit/extract.hpp"
#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/place.hpp"
#include "circuit/route.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "circuit/verify.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"

namespace herc::circuit {
namespace {

TEST(WireSegment, GeometryHelpers) {
  const WireSegment h{"n", 1, 2, 5, 2};
  EXPECT_TRUE(h.horizontal());
  EXPECT_EQ(h.length(), 4);
  EXPECT_TRUE(h.covers(3, 2));
  EXPECT_TRUE(h.covers(1, 2));
  EXPECT_FALSE(h.covers(3, 3));
  EXPECT_FALSE(h.covers(6, 2));
  const WireSegment v{"n", 5, 0, 5, 4};
  EXPECT_FALSE(v.horizontal());
  EXPECT_EQ(v.length(), 4);
}

TEST(LayoutWires, DiagonalWiresRejected) {
  Layout layout("l", "", 4, 4);
  EXPECT_THROW(layout.add_wire("n", 0, 0, 2, 2), support::ExecError);
}

TEST(LayoutWires, ConnectivityCheck) {
  Layout layout("l", "", 8, 8);
  Device d1 = inverter_netlist().device("mn");
  Device d2 = inverter_netlist().device("mp");
  layout.place(d1, 0, 0);  // touches nets in/out/GND at (0,0)
  layout.place(d2, 4, 4);  // touches in/out/VDD at (4,4)
  EXPECT_FALSE(layout.net_connected("out"));
  // A single L connects them.
  layout.add_wire("out", 0, 0, 4, 0);
  EXPECT_FALSE(layout.net_connected("out"));
  layout.add_wire("out", 4, 0, 4, 4);
  EXPECT_TRUE(layout.net_connected("out"));
  // Single-terminal nets are trivially connected.
  EXPECT_TRUE(layout.net_connected("GND"));
}

TEST(LayoutWires, TwoLayerDrc) {
  Layout layout("l", "", 8, 8);
  layout.add_wire("a", 0, 1, 4, 1);
  layout.add_wire("b", 2, 0, 2, 3);  // crosses 'a': legal (other layer)
  EXPECT_TRUE(layout.drc().empty());
  layout.add_wire("c", 3, 1, 6, 1);  // overlaps 'a' on the same row
  const auto violations = layout.drc();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("overlap on the same layer"),
            std::string::npos);
  // Same-net overlap is fine.
  layout.add_wire("a", 1, 1, 2, 1);
  EXPECT_EQ(layout.drc().size(), 1u);
}

TEST(LayoutWires, TextRoundTripIncludesWires) {
  Layout layout("l", "src", 4, 4);
  layout.add_wire("n1", 0, 0, 3, 0);
  layout.add_wire("n1", 3, 0, 3, 2);
  const Layout back = Layout::from_text(layout.to_text());
  EXPECT_EQ(back.to_text(), layout.to_text());
  EXPECT_EQ(back.wires().size(), 2u);
  EXPECT_DOUBLE_EQ(back.routed_length("n1"), 5.0);
  EXPECT_THROW(Layout::from_text("wire n 0 0"), support::ParseError);
}

TEST(Router, EveryNetConnectedAfterRouting) {
  const Netlist nl = full_adder_netlist();
  const Layout placed = place(nl);
  RouteStatistics stats;
  const Layout routed = route(placed, {}, &stats);
  EXPECT_GT(stats.nets_routed, 0u);
  EXPECT_GT(stats.total_wirelength, 0.0);
  for (const std::string& net : routed.nets()) {
    if (net == std::string(kVdd) || net == std::string(kGnd)) continue;
    EXPECT_TRUE(routed.net_connected(net)) << net;
  }
  // Placements and pins intact.
  EXPECT_EQ(routed.placements().size(), placed.placements().size());
  EXPECT_EQ(routed.pins().size(), placed.pins().size());
  EXPECT_NE(stats.to_text().find("nets_routed="), std::string::npos);
}

TEST(Router, RefusesAlreadyRoutedLayouts) {
  Layout layout("l", "", 4, 4);
  layout.add_wire("n", 0, 0, 1, 0);
  EXPECT_THROW(route(layout), support::ExecError);
}

TEST(Router, RoutedWirelengthDrivesExtraction) {
  // Routed length >= HPWL, so the routed extraction carries at least as
  // much parasitic capacitance.
  const Netlist nl = nand2_netlist();
  const Layout placed = place(nl);
  const Layout routed = route(placed);
  ExtractStatistics placed_stats;
  ExtractStatistics routed_stats;
  (void)extract(placed, {}, &placed_stats);
  const Netlist routed_netlist = extract(routed, {}, &routed_stats);
  EXPECT_GE(routed_stats.total_parasitic_pf,
            placed_stats.total_parasitic_pf);
  routed_netlist.validate();
}

TEST(Router, CleanlyRoutableCircuitVerifies) {
  // The inverter routes without same-layer conflicts; the full report
  // (LVS + DRC + connectivity) passes.
  const Netlist nl = inverter_netlist();
  RouteStatistics stats;
  const Layout routed = route(place(nl), {}, &stats);
  EXPECT_EQ(stats.conflicts, 0u);
  const VerificationReport report = verify_layout(routed, nl);
  EXPECT_TRUE(report.pass) << report.to_text();
}

TEST(Router, UnavoidableConflictsAreReportedAsDrcViolations) {
  // The track-less router cannot always avoid same-layer shorts (stacked
  // terminals share columns); it must *say so* — in its statistics and in
  // the layout's DRC — rather than silently produce a shorted layout.
  const Netlist nl = nand2_netlist();
  RouteStatistics stats;
  const Layout routed = route(place(nl), {}, &stats);
  std::size_t drc_wire_violations = 0;
  for (const std::string& v : routed.drc()) {
    drc_wire_violations +=
        v.find("same layer") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(stats.conflicts, drc_wire_violations);
  if (stats.conflicts > 0) {
    EXPECT_FALSE(verify_layout(routed, nl).pass);
  }
}

TEST(Router, VerifierChecksRoutedConnectivity) {
  // A hand-built layout whose routed net misses one terminal.
  Netlist nl("pair");
  nl.add_input("a");
  nl.add_net("n");
  nl.add_nmos("m1", "a", "n", "GND");
  nl.add_nmos("m2", "a", "n", "GND");
  Layout layout("l", "pair", 8, 8);
  layout.place(nl.device("m1"), 0, 0);
  layout.place(nl.device("m2"), 5, 5);
  layout.add_pin("a", 0, 7, false);
  // Net 'n' gets a stub that reaches neither device pair fully.
  layout.add_wire("n", 0, 0, 2, 0);
  const VerificationReport report = verify_layout(layout, nl);
  EXPECT_FALSE(report.pass);
  bool connectivity_error = false;
  for (const std::string& e : report.errors) {
    connectivity_error |= e.find("not fully connected") != std::string::npos;
  }
  EXPECT_TRUE(connectivity_error) << report.to_text();
}

TEST(Router, RunsAsAFrameworkTool) {
  // Place -> route -> extract as a flow over the full schema.
  core::DesignSession session(
      schema::make_full_schema(), "t",
      std::make_unique<support::ManualClock>(0, 1));
  const auto netlist = session.import_data(
      "EditedNetlist", "n", nand2_netlist().to_text());
  const auto placer = session.import_data("Placer", "pl", "");
  const auto router = session.import_data("Router", "rt", "");
  const auto extractor = session.import_data("Extractor", "ex", "");

  graph::TaskGraph flow(session.schema(), "pnr");
  const graph::NodeId extracted = flow.add_node("ExtractedNetlist");
  flow.expand(extracted);
  const graph::NodeId layout_node = flow.inputs_of(extracted)[0];
  flow.specialize(layout_node, session.schema().require("RoutedLayout"));
  flow.expand(layout_node);
  const graph::NodeId placed_node = flow.inputs_of(layout_node)[0];
  flow.specialize(placed_node, session.schema().require("PlacedLayout"));
  flow.expand(placed_node);
  flow.bind(flow.tool_of(extracted), extractor);
  flow.bind(flow.tool_of(layout_node), router);
  flow.bind(flow.tool_of(placed_node), placer);
  flow.bind(flow.inputs_of(placed_node)[0], netlist);

  const auto result = session.run(flow);
  EXPECT_EQ(result.tasks_run, 3u);
  const Layout routed = Layout::from_text(
      session.db().payload(result.single(layout_node)));
  EXPECT_FALSE(routed.wires().empty());
  const Netlist out = Netlist::from_text(
      session.db().payload(result.single(extracted)));
  out.validate();
  EXPECT_GT(out.device_count(DeviceType::kCapacitor), 0u);
}

}  // namespace
}  // namespace herc::circuit
