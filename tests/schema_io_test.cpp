// The schema definition language: parsing, writing, round trips, errors.
#include <gtest/gtest.h>

#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"

namespace herc::schema {
namespace {

using support::ParseError;
using support::SchemaError;

TEST(SchemaIo, ParsesSmallSchema) {
  const TaskSchema s = parse_schema(R"(
    # a comment
    schema demo
    tool Editor
    data Doc abstract
    data RichDoc : Doc
    composite Bundle
    fd RichDoc -> Editor
    dd RichDoc -> Doc ? as seed
    dd Bundle -> RichDoc
  )");
  EXPECT_EQ(s.name(), "demo");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.is_abstract(s.require("Doc")));
  EXPECT_TRUE(s.is_composite(s.require("Bundle")));
  const ConstructionRule rule = s.construction(s.require("RichDoc"));
  EXPECT_EQ(rule.tool, s.require("Editor"));
  ASSERT_EQ(rule.inputs.size(), 1u);
  EXPECT_TRUE(rule.inputs[0].optional);
  EXPECT_EQ(rule.inputs[0].role, "seed");
  s.validate();
}

TEST(SchemaIo, DependenciesMayPrecedeDeclarations) {
  const TaskSchema s = parse_schema(
      "fd B -> T\n"
      "tool T\n"
      "data B\n");
  EXPECT_EQ(s.construction(s.require("B")).tool, s.require("T"));
}

TEST(SchemaIo, RoundTripsStandardSchemas) {
  for (const TaskSchema& original :
       {make_fig1_schema(), make_fig2_schema(), make_full_schema()}) {
    const std::string text = write_schema(original);
    const TaskSchema back = parse_schema(text);
    EXPECT_EQ(write_schema(back), text);
    EXPECT_EQ(back.size(), original.size());
    back.validate();
  }
}

TEST(SchemaIo, ParseErrors) {
  EXPECT_THROW(parse_schema("bogus Line"), ParseError);
  EXPECT_THROW(parse_schema("schema"), ParseError);
  EXPECT_THROW(parse_schema("data"), ParseError);
  EXPECT_THROW(parse_schema("data A extra tokens here"), ParseError);
  EXPECT_THROW(parse_schema("data A : Missing"), ParseError);
  EXPECT_THROW(parse_schema("tool T\ndata A\nfd A ->"), ParseError);
  EXPECT_THROW(parse_schema("tool T\ndata A\nfd A -> Missing"), ParseError);
  EXPECT_THROW(parse_schema("tool T\ndata A\ndd A -> T junk"), ParseError);
  // Subtype kind mismatch: a tool cannot subtype a data entity.
  EXPECT_THROW(parse_schema("data A\ntool B : A"), ParseError);
}

TEST(SchemaIo, RuleViolationsSurfaceAsSchemaErrors) {
  // Two fds on one entity.
  EXPECT_THROW(parse_schema("tool T1\ntool T2\ndata A\n"
                            "fd A -> T1\nfd A -> T2\n"),
               SchemaError);
  // fd to a data entity.
  EXPECT_THROW(parse_schema("data A\ndata B\nfd A -> B\n"), SchemaError);
}

TEST(SchemaIo, ExtendAddsToolsWithoutDisturbingExistingEntities) {
  TaskSchema schema = make_fig1_schema();
  const std::size_t before = schema.size();
  // Incorporate a timing analyzer: a new tool producing a new entity from
  // an existing one — the paper's "simplifying the incorporation of new
  // tools" in one fragment.
  extend_schema(schema,
                "tool TimingAnalyzer\n"
                "data TimingReport\n"
                "fd TimingReport -> TimingAnalyzer\n"
                "dd TimingReport -> Netlist\n");
  EXPECT_EQ(schema.size(), before + 2);
  const ConstructionRule rule =
      schema.construction(schema.require("TimingReport"));
  EXPECT_EQ(rule.tool, schema.require("TimingAnalyzer"));
  ASSERT_EQ(rule.inputs.size(), 1u);
  EXPECT_EQ(rule.inputs[0].target, schema.require("Netlist"));
  // The extended schema still validates and old rules are intact.
  schema.validate();
  EXPECT_EQ(schema.construction(schema.require("Performance")).tool,
            schema.require("Simulator"));
}

TEST(SchemaIo, ExtendRejectsBadFragments) {
  TaskSchema schema = make_fig1_schema();
  // Renaming is not extension.
  EXPECT_THROW(extend_schema(schema, "schema other\n"), ParseError);
  // Duplicate entity.
  EXPECT_THROW(extend_schema(schema, "data Netlist\n"), SchemaError);
  // A fragment that breaks groundability is rejected by the re-validation.
  EXPECT_THROW(extend_schema(schema,
                             "tool Oracle\ndata Prophecy\n"
                             "fd Prophecy -> Oracle\n"
                             "dd Prophecy -> Prophecy\n"),
               SchemaError);
}

TEST(SchemaIo, CommentsAndBlankLinesIgnored) {
  const TaskSchema s = parse_schema(
      "\n"
      "# leading comment\n"
      "data A   # trailing comment\n"
      "\n");
  EXPECT_TRUE(s.find("A").valid());
}

}  // namespace
}  // namespace herc::schema
