// The DesignSession facade and instance browser (paper §4, Fig. 9).
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "support/error.hpp"

namespace herc::core {
namespace {

std::unique_ptr<DesignSession> make_session(const char* user = "sutton") {
  return std::make_unique<DesignSession>(
      schema::make_full_schema(), user,
      std::make_unique<support::ManualClock>(718000000000000LL, 60000000));
}

TEST(Session, ImportRunAndAnnotate) {
  auto session = make_session();
  const auto netlist = session->import_data(
      "EditedNetlist", "inv", circuit::inverter_netlist().to_text());
  const auto models = session->import_data(
      "DeviceModels", "m", circuit::DeviceModelLibrary::standard().to_text());
  const auto stimuli = session->import_data(
      "Stimuli", "st", circuit::Stimuli::counter({"in"}, 1000).to_text());
  const auto simulator = session->import_data("Simulator", "sim", "");

  graph::TaskGraph flow = session->task_from_goal("Performance");
  const graph::NodeId perf = flow.nodes().front();
  flow.expand(perf);
  const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
  flow.bind(flow.tool_of(perf), simulator);
  flow.bind(flow.inputs_of(perf)[1], stimuli);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);

  const auto result = session->run(flow);
  const auto perf_inst = result.single(perf);
  // The session's user is stamped on the product.
  EXPECT_EQ(session->db().instance(perf_inst).user, "sutton");
  session->annotate(perf_inst, "first run", "looks plausible");
  EXPECT_EQ(session->db().instance(perf_inst).name, "first run");
}

TEST(Session, RunGoalExecutesSubflowOnly) {
  auto session = make_session();
  const auto netlist = session->import_data(
      "EditedNetlist", "inv", circuit::inverter_netlist().to_text());
  const auto models = session->import_data(
      "DeviceModels", "m", circuit::DeviceModelLibrary::standard().to_text());
  graph::TaskGraph flow = session->task_from_goal("Performance");
  const graph::NodeId perf = flow.nodes().front();
  flow.expand(perf);
  const graph::NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  flow.bind(circuit_inputs[0], models);
  flow.bind(circuit_inputs[1], netlist);
  // Stimuli and Simulator are unbound, but the circuit sub-flow can run
  // independently (§4.1).
  const auto result = session->run_goal(flow, circuit_node);
  EXPECT_EQ(result.tasks_run, 1u);
  EXPECT_TRUE(result.single(circuit_node).valid());
  // Running the whole flow still fails on the unbound leaves.
  EXPECT_THROW(session->run(flow), support::FlowError);
}

TEST(Session, BrowserFiltersLikeFig9) {
  auto session = make_session();
  const auto n1 = session->import_data(
      "EditedNetlist", "Low pass filter",
      circuit::inverter_netlist().to_text(), "first cut");
  session->set_user("director");
  const auto n2 = session->import_data(
      "EditedNetlist", "CMOS Full adder",
      circuit::full_adder_netlist().to_text());
  const auto browser = session->browse("Netlist");

  EXPECT_EQ(browser.rows({}).size(), 2u);
  // Newest first.
  EXPECT_EQ(browser.rows({}).front().id, n2);

  BrowserFilter filter;
  filter.keyword = "low pass";
  ASSERT_EQ(browser.rows(filter).size(), 1u);
  EXPECT_EQ(browser.rows(filter)[0].id, n1);
  // Keyword also matches comments.
  filter.keyword = "first cut";
  EXPECT_EQ(browser.rows(filter).size(), 1u);

  filter = {};
  filter.user = "director";
  ASSERT_EQ(browser.rows(filter).size(), 1u);
  EXPECT_EQ(browser.rows(filter)[0].id, n2);

  filter = {};
  filter.from = session->db().instance(n2).created;
  EXPECT_EQ(browser.rows(filter).size(), 1u);
  filter = {};
  filter.to = session->db().instance(n1).created;
  EXPECT_EQ(browser.rows(filter).size(), 1u);

  // The rendering carries user, date and name columns.
  const std::string rendered = browser.render({});
  EXPECT_NE(rendered.find("Low pass filter"), std::string::npos);
  EXPECT_NE(rendered.find("director"), std::string::npos);
  EXPECT_NE(rendered.find("1992-"), std::string::npos);
}

TEST(Session, BrowserUseDependenciesFilter) {
  auto session = make_session();
  const auto n1 = session->import_data(
      "EditedNetlist", "v1", circuit::inverter_netlist().to_text());
  const auto editor = session->import_data("CircuitEditor", "e",
                                           "set mn value=2\n");
  graph::TaskGraph edit = session->task_from_goal("EditedNetlist");
  const graph::NodeId goal = edit.nodes().front();
  edit.expand(goal, graph::ExpandOptions{.include_optional = true});
  edit.bind(edit.tool_of(goal), editor);
  edit.bind(edit.inputs_of(goal)[0], n1);
  const auto n2 = session->run(edit).single(goal);

  BrowserFilter filter;
  filter.uses = n1;
  const auto browser = session->browse("Netlist");
  ASSERT_EQ(browser.rows(filter).size(), 1u);
  EXPECT_EQ(browser.rows(filter)[0].id, n2);
  // Superseded flag shows on the old version.
  for (const BrowserRow& row : browser.rows({})) {
    EXPECT_EQ(row.superseded, row.id == n1);
  }
}

TEST(Session, TaskWindowRendering) {
  auto session = make_session();
  const auto stimuli = session->import_data(
      "Stimuli", "steps", circuit::Stimuli::counter({"in"}, 100).to_text());
  graph::TaskGraph flow = session->task_from_goal("Performance");
  const graph::NodeId perf = flow.nodes().front();
  flow.expand(perf);
  flow.bind(flow.inputs_of(perf)[1], stimuli);
  const std::string window = session->render_task_window(flow);
  EXPECT_NE(window.find("Performance"), std::string::npos);
  EXPECT_NE(window.find("{steps}"), std::string::npos);
  EXPECT_NE(window.find("unbound leaves"), std::string::npos);
}

TEST(Session, SaveLoadRoundTrip) {
  auto session = make_session();
  const auto netlist = session->import_data(
      "EditedNetlist", "inv", circuit::inverter_netlist().to_text());
  graph::TaskGraph flow = session->task_from_goal("Performance");
  flow.expand(flow.nodes().front());
  flow.set_name("my-plan");
  session->flows().save(flow);

  const std::string saved = session->save();
  const auto restored = DesignSession::load(saved);
  EXPECT_EQ(restored->user(), "sutton");
  EXPECT_EQ(restored->db().size(), session->db().size());
  EXPECT_EQ(restored->db().payload(netlist), session->db().payload(netlist));
  EXPECT_TRUE(restored->flows().contains("my-plan"));
  EXPECT_EQ(restored->schema().size(), session->schema().size());
  // The restored session saves back to the identical document.
  EXPECT_EQ(restored->save(), saved);
  // And is fully operational: tools are re-registered.
  const auto plan = restored->task_from_plan("my-plan");
  EXPECT_EQ(plan.node_count(), flow.node_count());
}

TEST(Session, LoadRejectsGarbage) {
  EXPECT_THROW(DesignSession::load("stuff before any section"),
               support::ParseError);
  EXPECT_THROW(DesignSession::load("@section mystery\n"),
               support::ParseError);
}

}  // namespace
}  // namespace herc::core
