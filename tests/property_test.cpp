// Property-style sweeps over randomized flows and schemas (TEST_P).
//
// Invariants checked:
//  * any flow grown by random legal expand/specialize/connect operations
//    passes full schema-conformance checking and round-trips through text;
//  * executing a flow records exactly its task groups in the history, and
//    every product's derivation mirrors the flow structure;
//  * parallel and serial execution produce identical payloads;
//  * version trees are always contained in their lineage traces;
//  * the simulator is deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "core/session.hpp"
#include "exec/executor.hpp"
#include "history/flow_trace.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"

namespace herc {
namespace {

using graph::NodeId;
using graph::TaskGraph;

/// Deterministic xorshift for the sweeps.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  std::size_t below(std::size_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// Grows a random, always-legal flow on the full schema by repeatedly
/// picking an applicable operation.
TaskGraph grow_random_flow(const schema::TaskSchema& schema,
                           std::uint64_t seed, std::size_t ops) {
  Rng rng(seed);
  TaskGraph flow(schema, "random" + std::to_string(seed));
  const std::vector<std::string> seeds{"Performance", "Verification",
                                       "PerformancePlot", "PlacedLayout",
                                       "SwitchPerformance", "Circuit"};
  flow.add_node(seeds[rng.below(seeds.size())]);
  for (std::size_t op = 0; op < ops; ++op) {
    const auto nodes = flow.nodes();
    const NodeId n = nodes[rng.below(nodes.size())];
    const auto& node = flow.node(n);
    switch (rng.below(3)) {
      case 0: {  // expand when legal
        if (!node.expanded && !schema.is_abstract(node.type) &&
            !schema.is_source(node.type) && flow.deps(n).empty()) {
          flow.expand(n, graph::ExpandOptions{
                             .include_optional = rng.below(2) == 0});
        }
        break;
      }
      case 1: {  // specialize an abstract unexpanded node
        if (!node.expanded && schema.is_abstract(node.type)) {
          const auto choices = schema.concrete_descendants(node.type);
          if (!choices.empty()) {
            flow.specialize(n, choices[rng.below(choices.size())]);
          }
        }
        break;
      }
      default: {  // co-output when the tool supports another product
        if (flow.tool_of(n).valid()) {
          const auto tool_type = flow.node(flow.tool_of(n)).type;
          for (const char* extra : {"Statistics", "SwitchStatistics"}) {
            const auto t = schema.find(extra);
            if (t.valid() &&
                schema.construction(t).has_tool() &&
                schema.is_ancestor_or_self(schema.construction(t).tool,
                                           tool_type) &&
                rng.below(2) == 0) {
              flow.add_co_output(n, t);
              break;
            }
          }
        }
        break;
      }
    }
  }
  return flow;
}

class RandomFlowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFlowTest, GrownFlowsAlwaysConform) {
  const schema::TaskSchema schema = schema::make_full_schema();
  const TaskGraph flow = grow_random_flow(schema, GetParam(), 40);
  // Every grown flow passes the schema check...
  flow.check();
  // ...and round-trips through its text form exactly.
  const std::string text = flow.save();
  const TaskGraph back = TaskGraph::load(schema, text);
  EXPECT_EQ(back.save(), text);
  EXPECT_EQ(back.node_count(), flow.node_count());
  // Task groups are consistent: every computable node appears in exactly
  // one group's outputs.
  std::size_t computable = 0;
  for (const NodeId n : flow.nodes()) {
    computable += flow.deps(n).empty() ? 0 : 1;
  }
  std::size_t grouped = 0;
  for (const auto& group : flow.task_groups()) grouped += group.outputs.size();
  EXPECT_EQ(grouped, computable);
}

TEST_P(RandomFlowTest, SubflowsOfRandomFlowsConform) {
  const schema::TaskSchema schema = schema::make_full_schema();
  const TaskGraph flow = grow_random_flow(schema, GetParam(), 40);
  for (const NodeId goal : flow.goals()) {
    const TaskGraph sub = flow.subflow(goal);
    sub.check();
    EXPECT_LE(sub.node_count(), flow.node_count());
    EXPECT_EQ(sub.node_count(), flow.closure(goal).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowTest,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

class ExecutionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ExecutionPropertyTest()
      : session_(schema::make_full_schema(), "prop",
                 std::make_unique<support::ManualClock>(0, 1)) {}

  /// A runnable random-ish flow: 1-3 simulate branches over shared or
  /// private circuits.
  TaskGraph build_runnable(Rng& rng) {
    const auto netlist = session_.import_data(
        "EditedNetlist", "n",
        circuit::inverter_chain(2 + rng.below(3)).to_text());
    const auto models = session_.import_data(
        "DeviceModels", "m",
        circuit::DeviceModelLibrary::standard().to_text());
    const auto simulator = session_.import_data("Simulator", "s", "");
    TaskGraph flow(session_.schema(), "prop");
    const std::size_t branches = 1 + rng.below(3);
    for (std::size_t b = 0; b < branches; ++b) {
      const auto stimuli = session_.import_data(
          "Stimuli", "st" + std::to_string(b),
          circuit::Stimuli::random({"in"}, 1000, 8, rng.next()).to_text());
      const NodeId perf = flow.add_node("Performance");
      flow.expand(perf);
      const auto circuit_inputs = flow.expand(flow.inputs_of(perf)[0]);
      flow.bind(flow.tool_of(perf), simulator);
      flow.bind(flow.inputs_of(perf)[1], stimuli);
      flow.bind(circuit_inputs[0], models);
      flow.bind(circuit_inputs[1], netlist);
      if (rng.below(2) == 0) {
        flow.add_co_output(perf, session_.schema().require("Statistics"));
      }
    }
    return flow;
  }

  core::DesignSession session_;
};

TEST_P(ExecutionPropertyTest, HistoryMirrorsFlowStructure) {
  Rng rng(GetParam());
  const TaskGraph flow = build_runnable(rng);
  const auto before = session_.db().size();
  const auto result = session_.run(flow);
  // One instance per computable node (no fan-out here).
  std::size_t computable = 0;
  for (const NodeId n : flow.nodes()) {
    computable += flow.deps(n).empty() ? 0 : 1;
  }
  EXPECT_EQ(session_.db().size() - before, computable);
  // Each product's derivation matches the flow edges.
  for (const NodeId n : flow.nodes()) {
    if (flow.deps(n).empty()) continue;
    const auto inst = result.single(n);
    const auto& derivation = session_.db().instance(inst).derivation;
    EXPECT_EQ(derivation.inputs.size(), flow.inputs_of(n).size());
    const NodeId tool = flow.tool_of(n);
    if (tool.valid()) {
      EXPECT_EQ(derivation.tool, flow.bindings(tool).empty()
                                     ? result.single(tool)
                                     : flow.bindings(tool).front());
    } else {
      EXPECT_FALSE(derivation.tool.valid());
    }
    // The backward trace of the product embeds the flow shape: closure
    // size equals the flow closure size.
    EXPECT_EQ(session_.db().derivation_closure(inst).size(),
              flow.closure(n).size() - 1);
  }
}

TEST_P(ExecutionPropertyTest, ParallelMatchesSerialPayloads) {
  Rng rng(GetParam());
  const TaskGraph flow = build_runnable(rng);
  const auto serial = session_.run(flow);
  exec::ExecOptions options;
  options.parallel = true;
  options.max_threads = 3;
  const auto parallel = session_.run(flow, options);
  EXPECT_EQ(serial.tasks_run, parallel.tasks_run);
  for (const NodeId goal : flow.goals()) {
    EXPECT_EQ(session_.db().instance(serial.single(goal)).blob,
              session_.db().instance(parallel.single(goal)).blob);
  }
}

TEST_P(ExecutionPropertyTest, VersionTreeWithinLineageTrace) {
  Rng rng(GetParam());
  const auto base = session_.import_data(
      "EditedNetlist", "v1", circuit::inverter_netlist().to_text());
  const auto editor = session_.import_data("CircuitEditor", "e",
                                           "set mn value=2\n");
  // Random edit tree: each new version edits a random existing one.
  std::vector<data::InstanceId> versions{base};
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph edit(session_.schema(), "edit");
    const NodeId goal = edit.add_node("EditedNetlist");
    edit.expand(goal, graph::ExpandOptions{.include_optional = true});
    edit.bind(edit.tool_of(goal), editor);
    edit.bind(edit.inputs_of(goal)[0],
              versions[rng.below(versions.size())]);
    versions.push_back(session_.run(edit).single(goal));
  }
  const auto member = versions[rng.below(versions.size())];
  const auto tree = history::version_tree(session_.db(), member);
  const TaskGraph trace = history::lineage_trace(session_.db(), member);
  // Every tree entry is bound somewhere in the trace.
  for (const auto& entry : tree.entries) {
    bool found = false;
    for (const NodeId n : trace.nodes()) {
      found |= !trace.bindings(n).empty() &&
               trace.bindings(n).front() == entry.instance;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(tree.entries.size(), versions.size());
  // Version numbers equal 1 + tree depth of each entry.
  for (const auto& entry : tree.entries) {
    std::uint32_t depth = 1;
    auto cur = entry;
    while (cur.parent.valid()) {
      ++depth;
      for (const auto& e : tree.entries) {
        if (e.instance == cur.parent) {
          cur = e;
          break;
        }
      }
    }
    EXPECT_EQ(entry.version, depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutionPropertyTest,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{9}));

/// Random schema generator: a layered DAG with randomized subtyping,
/// optional arcs, composites and roles — always valid by construction.
schema::TaskSchema random_schema(std::uint64_t seed) {
  Rng rng(seed);
  schema::TaskSchema s("random" + std::to_string(seed));
  std::vector<schema::EntityTypeId> producible;
  const std::size_t sources = 2 + rng.below(3);
  for (std::size_t i = 0; i < sources; ++i) {
    producible.push_back(s.add_data("src" + std::to_string(i)));
  }
  const std::size_t layers = 1 + rng.below(4);
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t width = 1 + rng.below(3);
    std::vector<schema::EntityTypeId> next;
    for (std::size_t w = 0; w < width; ++w) {
      const std::string suffix = std::to_string(l) + "_" + std::to_string(w);
      const auto tool = s.add_tool("tool" + suffix);
      if (rng.below(4) == 0) {
        // Abstract family with two concrete construction methods.
        const auto base = s.add_data("fam" + suffix, /*abstract=*/true);
        const auto a = s.add_subtype("famA" + suffix, base);
        const auto b = s.add_subtype("famB" + suffix, base);
        const auto tool2 = s.add_tool("toolB" + suffix);
        s.set_functional_dependency(a, tool);
        s.add_data_dependency(a, producible[rng.below(producible.size())]);
        s.set_functional_dependency(b, tool2);
        s.add_data_dependency(b, producible[rng.below(producible.size())]);
        // An optional self-loop on one branch (the edit pattern).
        if (rng.below(2) == 0) {
          s.add_data_dependency(a, base, /*optional=*/true, "seed");
        }
        next.push_back(base);
      } else if (rng.below(5) == 0 && producible.size() >= 2) {
        const auto comp = s.add_composite("comp" + suffix);
        s.add_data_dependency(comp,
                              producible[rng.below(producible.size())],
                              false, "left");
        s.add_data_dependency(comp,
                              producible[rng.below(producible.size())],
                              false, "right");
        next.push_back(comp);
      } else {
        const auto entity = s.add_data("ent" + suffix);
        s.set_functional_dependency(entity, tool);
        const std::size_t n_inputs = 1 + rng.below(2);
        for (std::size_t k = 0; k < n_inputs; ++k) {
          s.add_data_dependency(entity,
                                producible[rng.below(producible.size())],
                                rng.below(4) == 0,
                                "in" + std::to_string(k));
        }
        next.push_back(entity);
      }
    }
    for (const auto e : next) producible.push_back(e);
  }
  return s;
}

class RandomSchemaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSchemaTest, ValidatesAndRoundTripsThroughDsl) {
  const schema::TaskSchema s = random_schema(GetParam());
  s.validate();
  const std::string text = schema::write_schema(s);
  const schema::TaskSchema back = schema::parse_schema(text);
  EXPECT_EQ(schema::write_schema(back), text);
  EXPECT_EQ(back.size(), s.size());
  back.validate();
  // Construction rules survive the round trip.
  for (const auto id : s.all()) {
    const auto original = s.construction(id);
    const auto restored = back.construction(back.require(s.entity_name(id)));
    EXPECT_EQ(original.inputs.size(), restored.inputs.size());
    EXPECT_EQ(original.has_tool(), restored.has_tool());
  }
}

TEST_P(RandomSchemaTest, EveryConcreteEntityCanSeedAFlow) {
  const schema::TaskSchema s = random_schema(GetParam());
  for (const auto id : s.all()) {
    if (s.is_abstract(id)) continue;
    graph::TaskGraph flow(s, "probe");
    const graph::NodeId n = flow.add_node(id);
    if (!s.is_source(id)) {
      flow.expand(n, graph::ExpandOptions{.include_optional = true});
    }
    flow.check();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemaTest,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{25}));

class SimDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminismTest, SimulationIsReproducible) {
  const circuit::Netlist nl = circuit::full_adder_netlist();
  const auto models = circuit::DeviceModelLibrary::standard();
  const auto st = circuit::Stimuli::random({"a", "b", "cin"}, 1000, 16,
                                           GetParam());
  const auto r1 = circuit::simulate(nl, models, st);
  const auto r2 = circuit::simulate(nl, models, st);
  EXPECT_EQ(r1.to_text(), r2.to_text());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminismTest,
                         ::testing::Values(std::uint64_t{3}, std::uint64_t{59},
                                           std::uint64_t{1024}));

}  // namespace
}  // namespace herc
