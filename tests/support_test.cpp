// Foundation utilities: text, records, hashing, clock, DOT, ids, blobs.
#include <gtest/gtest.h>

#include "data/blob_store.hpp"
#include "support/clock.hpp"
#include "support/dot.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/ids.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::support {
namespace {

TEST(Text, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, Split) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Text, CaseInsensitiveContains) {
  EXPECT_TRUE(icontains("Low Pass Filter", "pass"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("short", "longer than haystack"));
  EXPECT_FALSE(icontains("abc", "d"));
}

TEST(Text, FieldEscapingRoundTrips) {
  const std::string nasty = "a|b\\c\nd\\ne|p\\p";
  EXPECT_EQ(unescape_field(escape_field(nasty)), nasty);
  EXPECT_EQ(escape_field("plain"), "plain");
  // Escaped text never contains a bare separator or newline.
  const std::string escaped = escape_field(nasty);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '|') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(escaped[i - 1], '\\');
    }
  }
}

TEST(Text, IdentifierValidation) {
  EXPECT_TRUE(is_identifier("Netlist"));
  EXPECT_TRUE(is_identifier("_x9.y-z"));
  EXPECT_FALSE(is_identifier("9x"));
  EXPECT_FALSE(is_identifier("a b"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier(".dot"));
}

TEST(Record, RoundTripsTypedFields) {
  const std::string line = RecordWriter("kind")
                               .field("text with | pipe\nand newline")
                               .field(std::int64_t{-42})
                               .field(std::uint32_t{7})
                               .field(3.25)
                               .str();
  RecordReader reader(line);
  EXPECT_EQ(reader.kind(), "kind");
  EXPECT_EQ(reader.size(), 4u);
  EXPECT_EQ(reader.next_string(), "text with | pipe\nand newline");
  EXPECT_EQ(reader.next_int64(), -42);
  EXPECT_EQ(reader.next_uint32(), 7u);
  EXPECT_DOUBLE_EQ(reader.next_double(), 3.25);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Record, Errors) {
  EXPECT_THROW(RecordReader("  "), ParseError);
  RecordReader r("k|notanumber");
  EXPECT_THROW(r.next_int64(), ParseError);
  RecordReader r2("k");
  EXPECT_THROW(r2.next_string(), ParseError);
  RecordReader r3("k|4294967296");  // out of uint32 range
  EXPECT_THROW(r3.next_uint32(), ParseError);
  RecordReader r4("k|1.5x");
  EXPECT_THROW(r4.next_double(), ParseError);
}

TEST(Hash, StableAndHexFormatted) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_EQ(hash_hex(fnv1a("")).size(), 16u);
  // Incremental hashing agrees with one-shot.
  EXPECT_EQ(fnv1a_append(fnv1a("ab"), "cd"), fnv1a("abcd"));
}

TEST(Clock, TimestampFormatting) {
  // 1992-10-01 14:22:00 UTC (the Fig. 9 browser era).
  const Timestamp t(717949320000000LL);
  EXPECT_EQ(t.to_string(), "1992-10-01 14:22:00.000000");
  EXPECT_LT(Timestamp(1), Timestamp(2));
}

TEST(Clock, ManualClockTicksDeterministically) {
  ManualClock clock(100, 5);
  EXPECT_EQ(clock.now().micros(), 100);
  EXPECT_EQ(clock.now().micros(), 105);
  clock.advance(1000);
  EXPECT_EQ(clock.now().micros(), 1110);
  clock.set(0);
  EXPECT_EQ(clock.now().micros(), 0);
}

TEST(Dot, BuildsWellFormedDigraph) {
  DotBuilder dot("g");
  dot.graph_attr("rankdir", "BT");
  dot.node("a", "Label \"quoted\"", {"shape=\"box\""});
  dot.edge("a", "b", "fd", {"style=\"dashed\""});
  const std::string out = dot.str();
  EXPECT_NE(out.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(Ids, TypedIdBasics) {
  struct Tag {};
  using TestId = Id<Tag>;
  const TestId invalid;
  EXPECT_FALSE(invalid.valid());
  const TestId five(5);
  EXPECT_TRUE(five.valid());
  EXPECT_EQ(five.value(), 5u);
  EXPECT_LT(TestId(1), TestId(2));
  EXPECT_NE(TestId(1), TestId(2));
  EXPECT_EQ(IdHash{}(five), IdHash{}(TestId(5)));
}

TEST(BlobStore, DeduplicatesContent) {
  data::BlobStore store;
  const auto k1 = store.put("payload");
  const auto k2 = store.put("payload");
  const auto k3 = store.put("other");
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get(k1), "payload");
  EXPECT_EQ(store.bytes_stored(), 12u);   // "payload" + "other"
  EXPECT_EQ(store.bytes_logical(), 19u);  // 7 + 7 + 5
  EXPECT_TRUE(store.contains(k3));
  EXPECT_THROW((void)store.get("0000000000000000"), HistoryError);
}

TEST(BlobStore, PersistenceRoundTripAndCorruption) {
  data::BlobStore store;
  store.put("a|b\nc");
  store.put("");
  const std::string text = store.save();
  const data::BlobStore back = data::BlobStore::load(text);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.save(), text);
  // Tampering with a payload breaks the content hash.
  std::string corrupt = text;
  corrupt.replace(corrupt.find("a\\pb"), 4, "a\\pX");
  EXPECT_THROW(data::BlobStore::load(corrupt), HistoryError);
}

}  // namespace
}  // namespace herc::support
