// The COSMOS-style compiled simulator (Fig. 2): compilation, equivalence
// with the interpreted simulator, state handling, serialization.
#include <gtest/gtest.h>

#include "circuit/cosmos.hpp"
#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "support/error.hpp"

namespace herc::circuit {
namespace {

using support::ExecError;
using support::ParseError;

DeviceModelLibrary models() { return DeviceModelLibrary::standard(); }

TEST(Cosmos, CompilesInverterToOneComponent) {
  const CompiledSim sim = compile_netlist(inverter_netlist(), models());
  ASSERT_EQ(sim.components.size(), 1u);
  const CompiledComponent& c = sim.components[0];
  EXPECT_EQ(c.input_signals, std::vector<std::string>{"in"});
  EXPECT_EQ(c.output_nets, std::vector<std::string>{"out"});
  ASSERT_EQ(c.rows.size(), 2u);
  EXPECT_EQ(c.rows[0], "1");  // in=0 -> out=1
  EXPECT_EQ(c.rows[1], "0");  // in=1 -> out=0
}

TEST(Cosmos, DynamicLatchCompilesToKeepRows) {
  // With no feedback, the storage node floats when en=0: the compiler
  // must emit state-retaining ('K') rows for those input combinations.
  const CompiledSim sim = compile_netlist(dynamic_latch_netlist(), models());
  bool has_keep = false;
  for (const CompiledComponent& c : sim.components) {
    for (const std::string& row : c.rows) {
      has_keep |= row.find('K') != std::string::npos;
    }
  }
  EXPECT_TRUE(has_keep);
}

TEST(Cosmos, DynamicLatchHoldsChargeAtRuntime) {
  const CompiledSim sim = compile_netlist(dynamic_latch_netlist(), models());
  Stimuli st("drive");
  st.add_wave(Waveform{"d", {{0, Level::kHigh}, {3000, Level::kLow}}});
  st.add_wave(Waveform{"en", {{0, Level::kHigh}, {2000, Level::kLow}}});
  const SimResult r = run_compiled(sim, st);
  EXPECT_EQ(r.wave("q").at(1000), Level::kLow);  // transparent: q = ~d
  EXPECT_EQ(r.wave("q").at(4000), Level::kLow);  // held after en drops
}

TEST(Cosmos, RunMatchesTruthTables) {
  const CompiledSim sim = compile_netlist(full_adder_netlist(), models());
  const Stimuli st = Stimuli::counter({"a", "b", "cin"}, 1000);
  const SimResult r = run_compiled(sim, st);
  for (std::size_t code = 0; code < 8; ++code) {
    const int a = static_cast<int>(code & 1);
    const int b = static_cast<int>((code >> 1) & 1);
    const int c = static_cast<int>((code >> 2) & 1);
    const auto t = static_cast<std::int64_t>(code) * 1000;
    const int total = a + b + c;
    EXPECT_EQ(r.wave("sum").at(t),
              (total & 1) != 0 ? Level::kHigh : Level::kLow);
    EXPECT_EQ(r.wave("cout").at(t),
              total >= 2 ? Level::kHigh : Level::kLow);
  }
  EXPECT_EQ(r.max_delay_ps, 0);  // compiled simulation is zero-delay
}

TEST(Cosmos, LatchBehaviourMatchesInterpreted) {
  const Netlist latch = latch_netlist();
  const CompiledSim sim = compile_netlist(latch, models());
  Stimuli st("drive");
  st.add_wave(Waveform{"d", {{0, Level::kHigh}, {3000, Level::kLow}}});
  st.add_wave(Waveform{"en", {{0, Level::kHigh}, {2000, Level::kLow}}});
  const SimResult compiled = run_compiled(sim, st);
  EXPECT_EQ(compiled.wave("q").at(1000), Level::kLow);
  EXPECT_EQ(compiled.wave("q").at(4000), Level::kLow);  // held after close
}

TEST(Cosmos, RefusesTooWideComponents) {
  // A 16-input NMOS-only mux-ish blob exceeds the table limit.
  Netlist wide("wide");
  wide.add_output("y");
  for (int i = 0; i < 16; ++i) {
    const std::string g = "g" + std::to_string(i);
    wide.add_input(g);
    wide.add_nmos("m" + std::to_string(i), g, "y",
                  i % 2 == 0 ? "VDD" : "GND");
  }
  EXPECT_THROW(compile_netlist(wide, models(), /*max_component_inputs=*/8),
               ExecError);
  // With a generous limit it compiles.
  EXPECT_NO_THROW(compile_netlist(wide, models(), 16));
}

TEST(Cosmos, ProgramTextRoundTrip) {
  const CompiledSim sim = compile_netlist(full_adder_netlist(), models());
  const std::string text = sim.to_text();
  const CompiledSim back = CompiledSim::from_text(text);
  EXPECT_EQ(back.to_text(), text);
  EXPECT_EQ(back.table_rows(), sim.table_rows());
  // The deserialized program behaves identically.
  const Stimuli st = Stimuli::counter({"a", "b", "cin"}, 1000);
  EXPECT_EQ(run_compiled(back, st).to_text(),
            run_compiled(sim, st).to_text());
}

TEST(Cosmos, FromTextRejectsCorruptPrograms) {
  EXPECT_THROW(CompiledSim::from_text("component in=a out=y rows=0"),
               ParseError);  // needs 2 rows for 1 input
  EXPECT_THROW(CompiledSim::from_text("component in=a out=y rows=00,11"),
               ParseError);  // row width mismatches outputs
  EXPECT_THROW(CompiledSim::from_text("warp 9"), ParseError);
}

TEST(Cosmos, XInputsPropagatePessimistically) {
  const CompiledSim sim = compile_netlist(inverter_netlist(), models());
  Stimuli st("x");
  st.add_wave(Waveform{"in", {{0, Level::kX}, {10, Level::kHigh}}});
  const SimResult r = run_compiled(sim, st);
  EXPECT_EQ(r.wave("out").at(0), Level::kX);
  EXPECT_EQ(r.wave("out").at(10), Level::kLow);
}

/// Property sweep: compiled and interpreted simulators agree on the final
/// settled output values across library circuits and random stimuli.
class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EquivalenceTest, CompiledEqualsInterpreted) {
  const auto [circuit_index, seed] = GetParam();
  Netlist nl;
  switch (circuit_index) {
    case 0: nl = inverter_netlist(); break;
    case 1: nl = nand2_netlist(); break;
    case 2: nl = nor2_netlist(); break;
    case 3: nl = xor2_netlist(); break;
    case 4: nl = full_adder_netlist(); break;
    default: nl = ripple_adder_netlist(2); break;
  }
  std::vector<std::string> inputs = nl.inputs();
  const Stimuli st = Stimuli::random(inputs, 1000, 24, seed);
  const SimResult interpreted = simulate(nl, models(), st);
  const SimResult compiled =
      run_compiled(compile_netlist(nl, models()), st);
  // Compare settled values just before each input event (skip t=0 where
  // initial-charge conventions may differ).
  const auto times = st.event_times();
  for (const std::string& out : nl.outputs()) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      const std::int64_t t = times[i] - 1;
      EXPECT_EQ(interpreted.wave(out).at(t), compiled.wave(out).at(t))
          << nl.name() << " output " << out << " at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{77},
                                         std::uint64_t{12345})));

}  // namespace
}  // namespace herc::circuit
