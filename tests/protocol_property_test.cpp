// HERCNET1 frame-codec property test (mirrors the storage journal's
// every-byte-truncation sweep, applied to the wire format):
//
//   1. Round-trip: random frames of every type and payload shape encode,
//      ship through a real socketpair and decode bit-identically.
//   2. Truncation at EVERY byte offset of an encoded stream: the reader
//      yields exactly the fully-contained frames, then either reports a
//      clean end-of-stream (boundary cut) or throws NetError (mid-frame
//      cut) — it never hangs and never fabricates a frame.
//   3. Corruption of every single byte (XOR 0x5A): the reader terminates
//      cleanly — payload-byte corruption still parses (with exactly one
//      differing payload), type-byte corruption throws, length-byte
//      corruption either throws (oversized/torn) or resynchronizes to a
//      bounded number of well-formed frames; no outcome hangs or
//      over-reads beyond the stream.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "property_seed.hpp"
#include "server/protocol.hpp"
#include "support/error.hpp"

namespace herc::server {
namespace {

std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

Frame random_frame(std::uint64_t& rng) {
  static constexpr FrameType kTypes[] = {FrameType::kHello, FrameType::kCommand,
                                         FrameType::kOutput,
                                         FrameType::kResult};
  Frame frame;
  frame.type = kTypes[next_rand(rng) % 4];
  const std::uint64_t shape = next_rand(rng) % 8;
  std::size_t size = 0;
  if (shape == 0) {
    size = 0;  // empty payloads are legal
  } else if (shape < 6) {
    size = next_rand(rng) % 64;
  } else {
    size = 256 + next_rand(rng) % 4096;
  }
  frame.payload.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    // Full byte range: the codec must be 8-bit clean (0x00, 0xFF, ...).
    frame.payload.push_back(static_cast<char>(next_rand(rng) & 0xFF));
  }
  return frame;
}

/// Feeds `bytes` into one end of a socketpair (then closes it) and decodes
/// frames from the other end until EOF or an error.  `error` receives the
/// NetError text, if any.  Never blocks forever: the writer always closes.
std::vector<Frame> decode_stream(const std::string& bytes,
                                 std::string& error) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([&bytes, fd = fds[1]] {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  });
  std::vector<Frame> frames;
  error.clear();
  try {
    Frame frame;
    while (read_frame(fds[0], frame)) frames.push_back(frame);
  } catch (const support::NetError& e) {
    error = e.what();
  }
  ::close(fds[0]);
  writer.join();
  return frames;
}

TEST(ProtocolPropertyTest, RandomFramesRoundTripThroughASocket) {
  std::uint64_t rng = testprop::base_seed(0xF4A3E5u);
  SCOPED_TRACE(testprop::seed_note(rng));
  std::vector<Frame> sent;
  std::string stream;
  for (int i = 0; i < 200; ++i) {
    sent.push_back(random_frame(rng));
    stream += encode_frame(sent.back());
  }
  std::string error;
  const std::vector<Frame> got = decode_stream(stream, error);
  EXPECT_EQ(error, "");
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].type, sent[i].type) << "frame " << i;
    EXPECT_EQ(got[i].payload, sent[i].payload) << "frame " << i;
  }
}

TEST(ProtocolPropertyTest, EveryByteTruncationRejectsCleanly) {
  std::uint64_t rng = testprop::base_seed(0xBEEFu);
  SCOPED_TRACE(testprop::seed_note(rng));
  // Small payloads keep the sweep O(total-bytes) affordable while still
  // cutting inside headers, payloads and at every boundary.
  std::vector<Frame> sent;
  std::string stream;
  std::vector<std::size_t> boundaries = {0};  // prefix sizes that are clean
  for (int i = 0; i < 12; ++i) {
    sent.push_back(random_frame(rng));
    sent.back().payload.resize(sent.back().payload.size() % 48);
    stream += encode_frame(sent.back());
    boundaries.push_back(stream.size());
  }
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    std::string error;
    const std::vector<Frame> got =
        decode_stream(stream.substr(0, cut), error);
    // Exactly the fully-contained frames come back...
    std::size_t contained = 0;
    while (contained + 1 < boundaries.size() &&
           boundaries[contained + 1] <= cut) {
      ++contained;
    }
    ASSERT_EQ(got.size(), contained);
    for (std::size_t i = 0; i < contained; ++i) {
      EXPECT_EQ(got[i].payload, sent[i].payload);
    }
    // ...then a boundary cut is a clean EOF, a mid-frame cut an error.
    const bool at_boundary = boundaries[contained] == cut;
    EXPECT_EQ(error.empty(), at_boundary);
  }
}

TEST(ProtocolPropertyTest, EveryByteCorruptionTerminatesBounded) {
  std::uint64_t rng = testprop::base_seed(0xC0DEu);
  SCOPED_TRACE(testprop::seed_note(rng));
  std::vector<Frame> sent;
  std::string stream;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(random_frame(rng));
    sent.back().payload.resize(sent.back().payload.size() % 32);
    stream += encode_frame(sent.back());
  }
  for (std::size_t at = 0; at < stream.size(); ++at) {
    SCOPED_TRACE("corrupt byte " + std::to_string(at));
    std::string corrupted = stream;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x5A);
    std::string error;
    const std::vector<Frame> got = decode_stream(corrupted, error);
    // Never over-read: 5 bytes of header per frame is the floor, so a
    // stream of N bytes can never produce more than N/5 frames.  (The
    // real bound is tighter; this one proves termination and no frame
    // fabrication from thin air.)
    EXPECT_LE(got.size(), corrupted.size() / 5 + 1);
    // A corrupted byte inside one payload must change at most that one
    // payload; when the reader still parses the whole stream, every
    // other frame is intact.
    if (error.empty() && got.size() == sent.size()) {
      std::size_t diffs = 0;
      for (std::size_t i = 0; i < sent.size(); ++i) {
        if (got[i].payload != sent[i].payload || got[i].type != sent[i].type) {
          ++diffs;
        }
      }
      EXPECT_LE(diffs, 1u);
    }
  }
}

TEST(ProtocolPropertyTest, CorruptTypeByteIsRejected) {
  // The four valid type bytes XOR 0x5A are all invalid, so flipping a
  // type byte must surface as NetError, not as a mis-typed frame.
  Frame frame;
  frame.type = FrameType::kCommand;
  frame.payload = "entities";
  std::string bytes = encode_frame(frame);
  bytes[4] = static_cast<char>(bytes[4] ^ 0x5A);
  std::string error;
  const std::vector<Frame> got = decode_stream(bytes, error);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error, "");
}

TEST(ProtocolPropertyTest, OversizedLengthIsRejectedWithoutReading) {
  // A length beyond kMaxFramePayload must be refused from the header
  // alone — the reader cannot wait for 4GB that will never arrive.
  std::string bytes = "\xff\xff\xff\xff";
  bytes += static_cast<char>(FrameType::kCommand);
  std::string error;
  const std::vector<Frame> got = decode_stream(bytes, error);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error, "");
}

TEST(ProtocolPropertyTest, ResultPayloadsRoundTrip) {
  using support::Severity;
  for (const Severity severity :
       {Severity::kClean, Severity::kWarning, Severity::kError}) {
    for (const std::string& message :
         {std::string(), std::string("boom"), std::string(4096, 'x')}) {
      const ResultInfo info = decode_result(encode_result(severity, message));
      EXPECT_EQ(info.severity, severity);
      EXPECT_EQ(info.error, message);
    }
  }
  EXPECT_THROW((void)decode_result(""), support::NetError);
  EXPECT_THROW((void)decode_result("x"), support::NetError);
}

TEST(ProtocolPropertyTest, CommandPayloadsSplit) {
  const CommandPayload plain = split_command("entities");
  EXPECT_EQ(plain.line, "entities");
  EXPECT_EQ(plain.body, "");
  const CommandPayload heredoc = split_command("import Stimuli s\nwave\n");
  EXPECT_EQ(heredoc.line, "import Stimuli s");
  EXPECT_EQ(heredoc.body, "wave\n");
}

TEST(ProtocolPropertyTest, TokenPayloadsRoundTrip) {
  std::uint64_t rng = testprop::base_seed(0x70CE17u);
  SCOPED_TRACE(testprop::seed_note(rng));
  for (int i = 0; i < 200; ++i) {
    std::string id = "c";
    for (std::uint64_t n = next_rand(rng) % 12; n > 0; --n) {
      id += static_cast<char>('a' + next_rand(rng) % 26);
    }
    const std::uint64_t seq = next_rand(rng);
    // Commands with heredoc bodies carry embedded newlines: the token
    // line must split on the FIRST newline only.
    std::string command = "import Stimuli s\n";
    for (std::uint64_t n = next_rand(rng) % 64; n > 0; --n) {
      command += static_cast<char>(next_rand(rng) & 0xFF);
    }
    const TokenInfo info = split_token(encode_token(id, seq, command));
    EXPECT_EQ(info.client_id, id);
    EXPECT_EQ(info.seq, seq);
    EXPECT_EQ(info.command, command);
  }
  // Extremes round-trip too.
  const TokenInfo zero = split_token(encode_token("x", 0, ""));
  EXPECT_EQ(zero.seq, 0u);
  EXPECT_EQ(zero.command, "");
  const std::uint64_t max = ~std::uint64_t{0};
  EXPECT_EQ(split_token(encode_token("x", max, "entities")).seq, max);
}

TEST(ProtocolPropertyTest, MalformedTokensAreRejected) {
  // The encoder refuses ids that would corrupt the token line...
  EXPECT_THROW((void)encode_token("", 1, "entities"), support::NetError);
  EXPECT_THROW((void)encode_token("a b", 1, "entities"), support::NetError);
  EXPECT_THROW((void)encode_token("a\nb", 1, "entities"), support::NetError);
  // ...and the decoder refuses every malformed shape a hostile or
  // desynchronized peer could send.
  EXPECT_THROW((void)split_token(""), support::NetError);
  EXPECT_THROW((void)split_token("no-newline"), support::NetError);
  EXPECT_THROW((void)split_token("noseq\nentities"), support::NetError);
  EXPECT_THROW((void)split_token("id notanumber\nentities"),
               support::NetError);
  EXPECT_THROW((void)split_token(" 7\nentities"), support::NetError);
  EXPECT_THROW((void)split_token("id \nentities"), support::NetError);
}

TEST(ProtocolPropertyTest, HelloFieldsRoundTripAndUnknownKeysAreSkipped) {
  for (const std::string role : {"leader", "replica"}) {
    for (const std::uint64_t boot : {std::uint64_t{1}, std::uint64_t{12345},
                                     ~std::uint64_t{0}}) {
      const HelloInfo info =
          decode_hello(encode_hello(role, boot, "herc 1.0 at /tmp/store"));
      EXPECT_EQ(info.role, role);
      EXPECT_EQ(info.boot_id, boot);
      EXPECT_EQ(info.banner, "herc 1.0 at /tmp/store");
    }
  }
  // Forward compatibility: a newer server may add fields; an older
  // client skips what it does not know and still finds the banner.
  const HelloInfo newer = decode_hello(
      "HERCNET1 role=replica shards=4 boot=9 zone=eu banner text here");
  EXPECT_EQ(newer.role, "replica");
  EXPECT_EQ(newer.boot_id, 9u);
  EXPECT_EQ(newer.banner, "banner text here");
  // Absent fields keep safe defaults (an old server's plain hello).
  const HelloInfo old = decode_hello("HERCNET1 herc server ready");
  EXPECT_EQ(old.role, "leader");
  EXPECT_EQ(old.boot_id, 0u);
  EXPECT_EQ(old.banner, "herc server ready");
  // The banner itself may contain '=' without being eaten as a field:
  // field parsing stops at the first non key=value word.
  const HelloInfo tricky = decode_hello("HERCNET1 role=leader at path=x");
  EXPECT_EQ(tricky.banner, "at path=x");
  EXPECT_THROW((void)decode_hello("HTTP/1.1 200 OK"), support::NetError);
  EXPECT_THROW((void)decode_hello(""), support::NetError);
}

// ---- deadline reads ---------------------------------------------------------

TEST(ProtocolPropertyTest, DeadlineReadReportsIdleWithoutConsuming) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame frame;
  ReadDeadline deadline;
  deadline.idle_ms = 60;
  deadline.frame_ms = 2'000;
  // Quiet peer: kIdle after ~idle_ms, repeatable — idling is not an
  // error and consumes nothing.
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(read_frame(fds[0], frame, deadline), ReadOutcome::kIdle);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_GE(waited.count(), 50);
  EXPECT_LT(waited.count(), 1'500);
  // A frame that then arrives whole is read normally...
  Frame sent;
  sent.type = FrameType::kCommand;
  sent.payload = "entities";
  const std::string bytes = encode_frame(sent);
  ASSERT_EQ(::send(fds[1], bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  EXPECT_EQ(read_frame(fds[0], frame, deadline), ReadOutcome::kFrame);
  EXPECT_EQ(frame.payload, "entities");
  // ...and a closed peer is a clean kEof at the boundary.
  ::close(fds[1]);
  EXPECT_EQ(read_frame(fds[0], frame, deadline), ReadOutcome::kEof);
  ::close(fds[0]);
}

TEST(ProtocolPropertyTest, DeadlineReadThrowsOnAMidFrameStall) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame sent;
  sent.type = FrameType::kCommand;
  sent.payload = "entities";
  const std::string bytes = encode_frame(sent);
  // Deliver everything but the last byte, then go silent without
  // closing: a half-open peer the idle deadline can never catch.
  ASSERT_EQ(::send(fds[1], bytes.data(), bytes.size() - 1, MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size() - 1));
  Frame frame;
  ReadDeadline deadline;
  deadline.idle_ms = 2'000;
  deadline.frame_ms = 80;
  const auto before = std::chrono::steady_clock::now();
  EXPECT_THROW((void)read_frame(fds[0], frame, deadline), support::NetError);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  // The frame deadline fired, not the (much longer) idle deadline.
  EXPECT_LT(waited.count(), 1'500);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolPropertyTest, ZeroDeadlinesMeanUnbounded) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame sent;
  sent.type = FrameType::kOutput;
  sent.payload = "hello";
  const std::string bytes = encode_frame(sent);
  // A writer that trickles one byte every few ms: only the disabled
  // deadlines accept this; the read completes when the frame does.
  std::thread trickler([&bytes, fd = fds[1]] {
    for (const char c : bytes) {
      (void)::send(fd, &c, 1, MSG_NOSIGNAL);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  Frame frame;
  EXPECT_EQ(read_frame(fds[0], frame, ReadDeadline{}), ReadOutcome::kFrame);
  EXPECT_EQ(frame.payload, "hello");
  trickler.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace herc::server
