// Durable design-history storage: journal framing, snapshot compaction,
// crash recovery, and the session/CLI wiring.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/interpreter.hpp"
#include "core/session.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"

namespace herc::storage {
namespace {

namespace fs = std::filesystem;
using data::InstanceId;
using history::HistoryDb;
using history::InstanceStatus;
using history::RecordRequest;
using support::HistoryError;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spill(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : schema_(schema::make_fig1_schema()), clock_(100, 10) {
    dir_ = (fs::temp_directory_path() /
            ("herc_storage_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }

  ~StorageTest() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string journal_path() const {
    return (fs::path(dir_) / "journal.wal").string();
  }
  [[nodiscard]] std::string snapshot_path() const {
    return (fs::path(dir_) / "snapshot.herc").string();
  }

  /// Records a few representative mutations: imports (one empty payload,
  /// one shared payload), a derived edit, a failure record, an annotation.
  std::vector<InstanceId> populate(HistoryDb& db) {
    std::vector<InstanceId> ids;
    ids.push_back(db.import_instance(schema_.require("CircuitEditor"), "ed",
                                     "", "u"));
    ids.push_back(db.import_instance(schema_.require("EditedNetlist"), "n1",
                                     "netlist-v1", "u", "first cut"));
    RecordRequest edit;
    edit.type = schema_.require("EditedNetlist");
    edit.name = "n2";
    edit.user = "u";
    edit.payload = "netlist-v2";
    edit.derivation.tool = ids[0];
    edit.derivation.inputs = {ids[1]};
    edit.derivation.input_roles = {""};
    edit.derivation.task = "edit";
    ids.push_back(db.record(edit));
    RecordRequest failed;
    failed.type = schema_.require("Stimuli");
    failed.name = "bad";
    failed.user = "u";
    failed.comment = "tool exploded";
    failed.status = InstanceStatus::kFailed;
    failed.derivation.tool = ids[0];
    failed.derivation.inputs = {ids[2]};
    failed.derivation.input_roles = {""};
    failed.derivation.task = "simulate";
    ids.push_back(db.record(failed));
    db.annotate(ids[1], "n1-renamed", "kept for posterity");
    return ids;
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  std::string dir_;
};

// ---- journal framing ---------------------------------------------------------

TEST_F(StorageTest, JournalRoundTrip) {
  fs::create_directories(dir_);
  const std::string path = journal_path();
  {
    Journal journal = Journal::create(path, 7, {});
    journal.append("first record");
    journal.append("");
    journal.append(std::string(3000, 'x') + "\nwith|separators");
    EXPECT_EQ(journal.records_appended(), 3u);
  }
  const ScanResult scan = scan_journal(slurp(path));
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.epoch, 7u);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], "first record");
  EXPECT_EQ(scan.records[1], "");
  EXPECT_EQ(scan.records[2], std::string(3000, 'x') + "\nwith|separators");
  EXPECT_EQ(scan.valid_bytes, fs::file_size(path));
  EXPECT_FALSE(scan.torn);
}

TEST_F(StorageTest, ScanStopsAtTornTail) {
  fs::create_directories(dir_);
  {
    Journal journal = Journal::create(journal_path(), 0, {});
    journal.append("aaaa");
    journal.append("bbbb");
  }
  const std::string bytes = slurp(journal_path());
  // Truncating anywhere inside the final frame keeps only the first.
  for (std::size_t cut = 1; cut < kFrameHeaderBytes + 4; ++cut) {
    const ScanResult scan =
        scan_journal(std::string_view(bytes).substr(0, bytes.size() - cut));
    EXPECT_EQ(scan.records.size(), 1u) << "cut " << cut;
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.valid_bytes,
              kJournalHeaderBytes + kFrameHeaderBytes + 4);
  }
  // Truncating inside the header invalidates the journal without throwing.
  const ScanResult headerless =
      scan_journal(std::string_view(bytes).substr(0, 5));
  EXPECT_FALSE(headerless.header_valid);
  EXPECT_TRUE(headerless.records.empty());
}

TEST_F(StorageTest, ScanStopsAtCorruptFrame) {
  fs::create_directories(dir_);
  {
    Journal journal = Journal::create(journal_path(), 0, {});
    journal.append("aaaa");
    journal.append("bbbb");
    journal.append("cccc");
  }
  std::string bytes = slurp(journal_path());
  // Flip one payload byte in the middle frame.
  bytes[kJournalHeaderBytes + (kFrameHeaderBytes + 4) + kFrameHeaderBytes] ^=
      0x40;
  const ScanResult scan = scan_journal(bytes);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "aaaa");
  EXPECT_TRUE(scan.torn);
}

// ---- store recovery ----------------------------------------------------------

TEST_F(StorageTest, JournalOnlyRecoveryRoundTrips) {
  std::string image;
  std::vector<InstanceId> ids;
  {
    DurableHistory store(schema_, clock_, dir_);
    EXPECT_TRUE(store.recovery().created);
    ids = populate(store.db());
    EXPECT_EQ(store.records_journaled(), 5u);  // 4 records + 1 annotate
    image = store.db().save();
  }
  support::ManualClock clock2(0, 1);
  DurableHistory store(schema_, clock2, dir_);
  const RecoveryReport& report = store.recovery();
  EXPECT_FALSE(report.created);
  EXPECT_EQ(report.snapshot_instances, 0u);
  EXPECT_EQ(report.journal_records_applied, 5u);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(store.db().save(), image);
  EXPECT_EQ(store.db().payload(ids[2]), "netlist-v2");
  EXPECT_EQ(store.db().instance(ids[1]).name, "n1-renamed");
  ASSERT_EQ(store.db().failures().size(), 1u);
  EXPECT_EQ(store.db().instance(store.db().failures()[0]).comment,
            "tool exploded");
}

TEST_F(StorageTest, CheckpointCompactsJournal) {
  std::string image;
  {
    DurableHistory store(schema_, clock_, dir_);
    populate(store.db());
    store.checkpoint();
    image = store.db().save();
    EXPECT_EQ(store.epoch(), 1u);
  }
  EXPECT_EQ(fs::file_size(journal_path()), kJournalHeaderBytes);
  support::ManualClock clock2(0, 1);
  DurableHistory store(schema_, clock2, dir_);
  EXPECT_EQ(store.recovery().snapshot_instances, 4u);
  EXPECT_EQ(store.recovery().journal_records_applied, 0u);
  EXPECT_EQ(store.recovery().epoch, 1u);
  EXPECT_EQ(store.db().save(), image);
}

TEST_F(StorageTest, MutationsAfterCheckpointLandInNewJournal) {
  std::string image;
  {
    DurableHistory store(schema_, clock_, dir_);
    populate(store.db());
    store.checkpoint();
    store.db().import_instance(schema_.require("Stimuli"), "late", "wave",
                               "u");
    image = store.db().save();
  }
  support::ManualClock clock2(0, 1);
  DurableHistory store(schema_, clock2, dir_);
  EXPECT_EQ(store.recovery().snapshot_instances, 4u);
  EXPECT_EQ(store.recovery().journal_records_applied, 1u);
  EXPECT_EQ(store.db().size(), 5u);
  EXPECT_EQ(store.db().save(), image);
}

TEST_F(StorageTest, TornTailTruncatedOnReopen) {
  std::string image;
  {
    DurableHistory store(schema_, clock_, dir_);
    populate(store.db());
    image = store.db().save();
  }
  // A crash mid-append: garbage trailing bytes that parse as no frame.
  {
    std::ofstream out(journal_path(),
                      std::ios::binary | std::ios::app);
    out << "\x13\x00\x00\x00torn";
  }
  {
    support::ManualClock clock2(0, 1);
    DurableHistory store(schema_, clock2, dir_);
    EXPECT_TRUE(store.recovery().torn_tail);
    EXPECT_EQ(store.recovery().journal_records_applied, 5u);
    EXPECT_EQ(store.db().save(), image);
    // The tail was physically truncated; appending continues cleanly.
    store.db().import_instance(schema_.require("Stimuli"), "post", "w", "u");
  }
  support::ManualClock clock3(0, 1);
  DurableHistory store(schema_, clock3, dir_);
  EXPECT_FALSE(store.recovery().torn_tail);
  EXPECT_EQ(store.recovery().journal_records_applied, 6u);
  EXPECT_EQ(store.db().size(), 5u);
}

TEST_F(StorageTest, StaleEpochJournalDiscardedAfterCheckpointCrash) {
  std::string pre_checkpoint_journal;
  std::string image;
  {
    DurableHistory store(schema_, clock_, dir_);
    populate(store.db());
    store.sync();
    pre_checkpoint_journal = slurp(journal_path());
    store.checkpoint();
    image = store.db().save();
  }
  // Simulate a crash between the snapshot rename and the journal reset:
  // the old journal (epoch 0) is still on disk next to the epoch-1
  // snapshot.  Its records are inside the snapshot already and must not
  // be replayed a second time.
  spill(journal_path(), pre_checkpoint_journal);
  support::ManualClock clock2(0, 1);
  DurableHistory store(schema_, clock2, dir_);
  EXPECT_EQ(store.recovery().journal_records_discarded, 5u);
  EXPECT_EQ(store.recovery().journal_records_applied, 0u);
  EXPECT_EQ(store.recovery().snapshot_instances, 4u);
  EXPECT_EQ(store.db().save(), image);
}

TEST_F(StorageTest, SchemaMismatchRejected) {
  { DurableHistory store(schema_, clock_, dir_); }
  schema::TaskSchema other = schema::make_fig2_schema();
  support::ManualClock clock2(0, 1);
  EXPECT_THROW(DurableHistory(other, clock2, dir_), HistoryError);
}

TEST_F(StorageTest, CorruptSnapshotBlobRejected) {
  {
    DurableHistory store(schema_, clock_, dir_);
    populate(store.db());
    store.checkpoint();
  }
  std::string snapshot = slurp(snapshot_path());
  const std::size_t at = snapshot.find("netlist-v1");
  ASSERT_NE(at, std::string::npos);
  snapshot.replace(at, 10, "netlist-vX");
  spill(snapshot_path(), snapshot);
  support::ManualClock clock2(0, 1);
  EXPECT_THROW(DurableHistory(schema_, clock2, dir_), HistoryError);
}

TEST_F(StorageTest, AutoCheckpointCompacts) {
  StoreOptions options;
  options.checkpoint_every = 3;
  {
    DurableHistory store(schema_, clock_, dir_, options);
    for (int i = 0; i < 7; ++i) {
      store.db().import_instance(schema_.require("Stimuli"),
                                 "s" + std::to_string(i), "w", "u");
    }
    EXPECT_EQ(store.epoch(), 2u);
  }
  support::ManualClock clock2(0, 1);
  DurableHistory store(schema_, clock2, dir_, options);
  EXPECT_EQ(store.recovery().snapshot_instances, 6u);
  EXPECT_EQ(store.recovery().journal_records_applied, 1u);
  EXPECT_EQ(store.db().size(), 7u);
}

TEST_F(StorageTest, SyncPoliciesRoundTrip) {
  for (const SyncPolicy sync :
       {SyncPolicy::kNone, SyncPolicy::kInterval, SyncPolicy::kCommit}) {
    fs::remove_all(dir_);
    StoreOptions options;
    options.journal.sync = sync;
    options.journal.sync_interval = 2;
    {
      support::ManualClock clock(100, 10);
      DurableHistory store(schema_, clock, dir_, options);
      populate(store.db());
    }
    support::ManualClock clock2(0, 1);
    DurableHistory store(schema_, clock2, dir_, options);
    EXPECT_EQ(store.db().size(), 4u)
        << "sync policy " << static_cast<int>(sync);
  }
}

// ---- session and CLI wiring --------------------------------------------------

TEST_F(StorageTest, SessionAdoptsExistingHistoryAndRecovers) {
  {
    core::DesignSession session(schema::make_fig1_schema(), "ada");
    session.import_data("EditedNetlist", "n1", "payload");
    session.import_data("Stimuli", "s1", "wave");
    const auto report = session.open_storage(dir_);
    EXPECT_TRUE(report.created);
    // Pre-existing instances were checkpointed into the fresh store.
    EXPECT_EQ(session.storage()->epoch(), 1u);
    session.import_data("Stimuli", "s2", "wave2");
  }
  core::DesignSession session(schema::make_fig1_schema(), "ada");
  const auto report = session.open_storage(dir_);
  EXPECT_FALSE(report.created);
  EXPECT_EQ(report.snapshot_instances, 2u);
  EXPECT_EQ(report.journal_records_applied, 1u);
  EXPECT_EQ(session.db().size(), 3u);
  // Both sides non-empty is ambiguous and refused.
  core::DesignSession other(schema::make_fig1_schema(), "ada");
  other.import_data("Stimuli", "clash", "w");
  EXPECT_THROW(other.open_storage(dir_), HistoryError);
}

TEST_F(StorageTest, SessionCloseStorageKeepsHistoryInMemory) {
  core::DesignSession session(schema::make_fig1_schema(), "ada");
  session.open_storage(dir_);
  session.import_data("Stimuli", "s1", "wave");
  session.close_storage();
  EXPECT_EQ(session.storage(), nullptr);
  EXPECT_EQ(session.db().size(), 1u);
  // Mutations after closing are not journaled.
  session.import_data("Stimuli", "s2", "wave2");
  core::DesignSession fresh(schema::make_fig1_schema(), "ada");
  fresh.open_storage(dir_);
  EXPECT_EQ(fresh.db().size(), 1u);
}

TEST_F(StorageTest, ExecutorFailureRecordsPersist) {
  // The executor writes failure records through HistoryDb::record (PR 1);
  // the same write path must reach the journal.
  {
    core::DesignSession session(schema::make_fig1_schema(), "ada");
    session.open_storage(dir_);
    RecordRequest failed;
    failed.type = session.schema().require("Performance");
    failed.name = "";
    failed.user = "ada";
    failed.comment = "simulator timed out";
    failed.status = InstanceStatus::kFailed;
    failed.derivation.task = "Simulator";
    session.db().record(failed);
  }
  core::DesignSession session(schema::make_fig1_schema(), "ada");
  session.open_storage(dir_);
  ASSERT_EQ(session.db().failures().size(), 1u);
  const history::Instance& failure =
      session.db().instance(session.db().failures()[0]);
  EXPECT_EQ(failure.status, InstanceStatus::kFailed);
  EXPECT_EQ(failure.comment, "simulator timed out");
  // Failure records stay invisible to normal listings after recovery.
  EXPECT_TRUE(session.db()
                  .instances_of(session.schema().require("Performance"))
                  .empty());
}

TEST_F(StorageTest, InterpreterOpenCheckpointStore) {
  {
    std::ostringstream out;
    cli::Interpreter interp(out);
    EXPECT_EQ(interp.execute("session new fig1 ada"), cli::CommandStatus::kOk);
    EXPECT_EQ(interp.execute("open " + dir_), cli::CommandStatus::kOk)
        << interp.last_error();
    EXPECT_EQ(interp.execute("import Stimuli wave \"\""),
              cli::CommandStatus::kOk);
    EXPECT_EQ(interp.execute("checkpoint"), cli::CommandStatus::kOk)
        << interp.last_error();
    EXPECT_EQ(interp.execute("store"), cli::CommandStatus::kOk);
    EXPECT_NE(out.str().find("store created at"), std::string::npos);
    EXPECT_NE(out.str().find("epoch 1"), std::string::npos);
  }
  std::ostringstream out;
  cli::Interpreter interp(out);
  EXPECT_EQ(interp.execute("session new fig1 ada"), cli::CommandStatus::kOk);
  EXPECT_EQ(interp.execute("open " + dir_ + " sync=commit"),
            cli::CommandStatus::kOk)
      << interp.last_error();
  EXPECT_EQ(interp.session().db().size(), 1u);
  EXPECT_NE(out.str().find("store opened at"), std::string::npos);
  // `checkpoint` without a store is a reported error, not a crash.
  EXPECT_EQ(interp.execute("store close"), cli::CommandStatus::kOk);
  EXPECT_EQ(interp.execute("checkpoint"), cli::CommandStatus::kError);
}

}  // namespace
}  // namespace herc::storage
