// End-to-end integration: build a flow on the Fig. 1 schema by expand
// operations, bind instances, execute, and query the design history —
// the paper's §4.1 walk-through ("obtain a circuit performance from an
// existing netlist") as a test.
#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "circuit/models.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "exec/consistency.hpp"
#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/flow_trace.hpp"
#include "history/history_db.hpp"
#include "schema/standard_schemas.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "tools/standard_tools.hpp"

namespace herc {
namespace {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : schema_(schema::make_full_schema()),
        clock_(1'000'000'000, 1'000),
        db_(schema_, clock_),
        registry_(schema_),
        executor_(db_, registry_) {
    tools::install_standard_compose_checks(schema_);
    tools::register_standard_tools(registry_);
  }

  /// Imports the standard source instances most tests need.
  void import_basics() {
    netlist_ = db_.import_instance(
        schema_.require("EditedNetlist"), "full adder",
        circuit::full_adder_netlist().to_text(), "sutton");
    models_ = db_.import_instance(
        schema_.require("DeviceModels"), "standard models",
        circuit::DeviceModelLibrary::standard().to_text(), "jbb");
    stimuli_ = db_.import_instance(
        schema_.require("Stimuli"), "counter stimuli",
        circuit::Stimuli::counter({"a", "b", "cin"}, 1000).to_text(),
        "sutton");
    simulator_ = db_.import_instance(schema_.require("Simulator"),
                                     "switchsim v1", "", "director");
  }

  schema::TaskSchema schema_;
  support::ManualClock clock_;
  history::HistoryDb db_;
  tools::ToolRegistry registry_;
  exec::Executor executor_;
  InstanceId netlist_;
  InstanceId models_;
  InstanceId stimuli_;
  InstanceId simulator_;
};

TEST_F(IntegrationTest, GoalBasedSimulationFlow) {
  import_basics();
  // Goal-based approach: start from the goal entity and expand.
  TaskGraph flow(schema_, "simulate");
  const NodeId perf = flow.add_node("Performance");
  const auto created = flow.expand(perf);
  ASSERT_EQ(created.size(), 3u);  // Simulator, Circuit, Stimuli
  const NodeId sim_node = flow.tool_of(perf);
  const auto inputs = flow.inputs_of(perf);
  const NodeId circuit_node = inputs[0];
  const NodeId stim_node = inputs[1];
  // Expand the composite circuit into models + netlist.
  const auto circuit_inputs = flow.expand(circuit_node);
  ASSERT_EQ(circuit_inputs.size(), 2u);

  flow.bind(sim_node, simulator_);
  flow.bind(stim_node, stimuli_);
  flow.bind(circuit_inputs[0], models_);
  flow.bind(circuit_inputs[1], netlist_);

  const exec::ExecResult result = executor_.run(flow);
  EXPECT_EQ(result.tasks_run, 2u);  // compose + simulate
  const InstanceId perf_inst = result.single(perf);

  // The performance payload parses and contains the adder's outputs.
  const circuit::SimResult sim =
      circuit::SimResult::from_text(db_.payload(perf_inst));
  EXPECT_TRUE(sim.has_wave("sum"));
  EXPECT_TRUE(sim.has_wave("cout"));
  EXPECT_EQ(sim.stats.x_nets, 0u);

  // Backward chaining finds the netlist in the derivation closure.
  const auto closure = db_.derivation_closure(perf_inst);
  EXPECT_NE(std::find(closure.begin(), closure.end(), netlist_),
            closure.end());
  // Forward chaining from the netlist reaches the performance.
  const auto dependents = db_.dependent_closure(netlist_);
  EXPECT_NE(std::find(dependents.begin(), dependents.end(), perf_inst),
            dependents.end());
}

TEST_F(IntegrationTest, MultiOutputTaskRunsOnce) {
  import_basics();
  TaskGraph flow(schema_, "sim_with_stats");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  // Multi-output: Statistics shares the same simulator invocation (Fig. 5).
  const NodeId stats = flow.add_co_output(perf, schema_.require("Statistics"));
  EXPECT_EQ(flow.tool_of(stats), flow.tool_of(perf));
  EXPECT_EQ(flow.inputs_of(stats), flow.inputs_of(perf));

  const NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  flow.bind(flow.tool_of(perf), simulator_);
  flow.bind(flow.inputs_of(perf)[1], stimuli_);
  flow.bind(circuit_inputs[0], models_);
  flow.bind(circuit_inputs[1], netlist_);

  const exec::ExecResult result = executor_.run(flow);
  EXPECT_EQ(result.tasks_run, 2u);  // compose + one simulate for two outputs
  const InstanceId perf_inst = result.single(perf);
  const InstanceId stats_inst = result.single(stats);
  EXPECT_NE(perf_inst, stats_inst);
  // Both share the same derivation inputs.
  EXPECT_EQ(db_.instance(perf_inst).derivation.inputs,
            db_.instance(stats_inst).derivation.inputs);
}

TEST_F(IntegrationTest, InstanceSetFanOut) {
  import_basics();
  const InstanceId stimuli2 = db_.import_instance(
      schema_.require("Stimuli"), "random stimuli",
      circuit::Stimuli::random({"a", "b", "cin"}, 1000, 12, 7).to_text(),
      "sutton");

  TaskGraph flow(schema_, "sweep");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  flow.bind(flow.tool_of(perf), simulator_);
  flow.bind(circuit_inputs[0], models_);
  flow.bind(circuit_inputs[1], netlist_);
  // Select a *set* of stimuli: the task runs once per member (§4.1).
  flow.bind_set(flow.inputs_of(perf)[1], {stimuli_, stimuli2});

  const exec::ExecResult result = executor_.run(flow);
  EXPECT_EQ(result.of(perf).size(), 2u);
  EXPECT_EQ(result.tasks_run, 3u);  // 1 compose + 2 simulations
}

TEST_F(IntegrationTest, ToolProducedByTaskIsExecutable) {
  import_basics();
  const InstanceId compiler = db_.import_instance(
      schema_.require("SimCompiler"), "cosmos compiler", "", "bryant");

  // Fig. 2: compile a simulator for the netlist, then run it on stimuli.
  TaskGraph flow(schema_, "cosmos");
  const NodeId sw_perf = flow.add_node("SwitchPerformance");
  flow.expand(sw_perf);
  const NodeId compiled = flow.tool_of(sw_perf);
  ASSERT_TRUE(compiled.valid());
  // Expand the *tool node*: it is produced by the compiler.
  const auto compile_inputs = flow.expand(compiled);
  ASSERT_EQ(compile_inputs.size(), 2u);  // SimCompiler + Netlist
  flow.bind(compile_inputs[0], compiler);
  flow.bind(compile_inputs[1], netlist_);
  flow.bind(flow.inputs_of(sw_perf)[0], stimuli_);

  const exec::ExecResult result = executor_.run(flow);
  EXPECT_EQ(result.tasks_run, 2u);
  const InstanceId perf_inst = result.single(sw_perf);
  const circuit::SimResult sim =
      circuit::SimResult::from_text(db_.payload(perf_inst));
  EXPECT_TRUE(sim.has_wave("sum"));
  // The compiled simulator itself is in the history as a tool instance.
  const InstanceId compiled_inst = result.single(compiled);
  EXPECT_TRUE(schema_.is_tool(db_.instance(compiled_inst).type));
  EXPECT_FALSE(db_.payload(compiled_inst).empty());
}

TEST_F(IntegrationTest, ConsistencyMemoizationSkipsFreshTasks) {
  import_basics();
  TaskGraph flow(schema_, "simulate");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  flow.bind(flow.tool_of(perf), simulator_);
  flow.bind(flow.inputs_of(perf)[1], stimuli_);
  flow.bind(circuit_inputs[0], models_);
  flow.bind(circuit_inputs[1], netlist_);

  exec::ExecOptions options;
  options.reuse_existing = true;
  const exec::ExecResult first = executor_.run(flow, options);
  EXPECT_EQ(first.tasks_run, 2u);
  EXPECT_EQ(first.tasks_reused, 0u);
  const exec::ExecResult second = executor_.run(flow, options);
  EXPECT_EQ(second.tasks_run, 0u);
  EXPECT_EQ(second.tasks_reused, 2u);
  EXPECT_EQ(first.single(perf), second.single(perf));
}

TEST_F(IntegrationTest, StaleDetectionAndRetrace) {
  import_basics();
  // Simulate once.
  TaskGraph flow(schema_, "simulate");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  flow.bind(flow.tool_of(perf), simulator_);
  flow.bind(flow.inputs_of(perf)[1], stimuli_);
  flow.bind(circuit_inputs[0], models_);
  flow.bind(circuit_inputs[1], netlist_);
  const InstanceId perf_v1 = executor_.run(flow).single(perf);
  EXPECT_FALSE(db_.is_stale(perf_v1));

  // Edit the netlist (a new version appears in the history).
  const InstanceId editor = db_.import_instance(
      schema_.require("CircuitEditor"), "resize edit",
      "set x1.u1.mn1 value=2\n", "sutton");
  TaskGraph edit_flow(schema_, "edit");
  const NodeId edited = edit_flow.add_node("EditedNetlist");
  edit_flow.expand(edited, graph::ExpandOptions{.include_optional = true});
  edit_flow.bind(edit_flow.tool_of(edited), editor);
  edit_flow.bind(edit_flow.inputs_of(edited)[0], netlist_);
  const InstanceId netlist_v2 = executor_.run(edit_flow).single(edited);
  EXPECT_EQ(db_.instance(netlist_v2).version, 2u);

  // The old performance is now stale; retrace freshens it.
  EXPECT_TRUE(db_.is_stale(perf_v1));
  const auto report = exec::check_consistency(db_, perf_v1);
  ASSERT_EQ(report.replacements.size(), 1u);
  EXPECT_EQ(report.replacements[0].superseded, netlist_);
  EXPECT_EQ(report.replacements[0].latest, netlist_v2);

  const auto fresh = exec::retrace(db_, registry_, perf_v1);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_FALSE(db_.is_stale(fresh[0]));
  // The retraced performance derives from the new netlist version: its
  // circuit was re-composed over netlist v2, not v1.  (v1 stays in the
  // *deep* closure — v2's own edit derivation references it.)
  const auto closure = db_.derivation_closure(fresh[0]);
  EXPECT_NE(std::find(closure.begin(), closure.end(), netlist_v2),
            closure.end());
  const auto& circuit_inputs_used =
      db_.instance(db_.instance(fresh[0]).derivation.inputs.front())
          .derivation.inputs;
  EXPECT_NE(std::find(circuit_inputs_used.begin(), circuit_inputs_used.end(),
                      netlist_v2),
            circuit_inputs_used.end());
  EXPECT_EQ(std::find(circuit_inputs_used.begin(), circuit_inputs_used.end(),
                      netlist_),
            circuit_inputs_used.end());
}

TEST_F(IntegrationTest, TemplateQueryFindsSimulationsOfNetlist) {
  import_basics();
  // Run two simulations with different stimuli plus one unrelated edit.
  const InstanceId stimuli2 = db_.import_instance(
      schema_.require("Stimuli"), "random stimuli",
      circuit::Stimuli::random({"a", "b", "cin"}, 1000, 8, 3).to_text(),
      "sutton");
  TaskGraph flow(schema_, "simulate");
  const NodeId perf = flow.add_node("Performance");
  flow.expand(perf);
  const NodeId circuit_node = flow.inputs_of(perf)[0];
  const auto circuit_inputs = flow.expand(circuit_node);
  flow.bind(flow.tool_of(perf), simulator_);
  flow.bind(circuit_inputs[0], models_);
  flow.bind(circuit_inputs[1], netlist_);
  flow.bind_set(flow.inputs_of(perf)[1], {stimuli_, stimuli2});
  executor_.run(flow);

  // Template query (§4.2): performances whose circuit used this netlist.
  TaskGraph pattern(schema_, "query");
  const NodeId q_perf = pattern.add_node("Performance");
  pattern.expand(q_perf);
  const NodeId q_circ = pattern.inputs_of(q_perf)[0];
  const auto q_circ_inputs = pattern.expand(q_circ);
  pattern.bind(q_circ_inputs[1], netlist_);

  const auto hits = history::query_template(db_, pattern, q_perf);
  EXPECT_EQ(hits.size(), 2u);

  // Binding a specific stimuli narrows it to one.
  pattern.bind(pattern.inputs_of(q_perf)[1], stimuli2);
  const auto narrowed = history::query_template(db_, pattern, q_perf);
  ASSERT_EQ(narrowed.size(), 1u);
  EXPECT_EQ(db_.instance(narrowed[0]).derivation.inputs.back(), stimuli2);
}

TEST_F(IntegrationTest, ComposeConsistencyCheckRejectsMissingModels) {
  import_basics();
  const InstanceId empty_models = db_.import_instance(
      schema_.require("DeviceModels"), "empty models",
      circuit::DeviceModelLibrary("empty").to_text(), "sutton");
  TaskGraph flow(schema_, "bad_compose");
  const NodeId circuit_node = flow.add_node("Circuit");
  const auto inputs = flow.expand(circuit_node);
  flow.bind(inputs[0], empty_models);
  flow.bind(inputs[1], netlist_);
  EXPECT_THROW(executor_.run(flow), support::ExecError);
}

TEST_F(IntegrationTest, ParallelAndSerialProduceSameResults) {
  import_basics();
  // Two disjoint simulate branches (Fig. 6) under one flow: build two
  // independent Performance tasks over different stimuli.
  const InstanceId stimuli2 = db_.import_instance(
      schema_.require("Stimuli"), "random stimuli",
      circuit::Stimuli::random({"a", "b", "cin"}, 1000, 8, 3).to_text(),
      "sutton");
  const auto build = [&](TaskGraph& flow) {
    for (const InstanceId st : {stimuli_, stimuli2}) {
      const NodeId perf = flow.add_node("Performance");
      flow.expand(perf);
      const NodeId circuit_node = flow.inputs_of(perf)[0];
      const auto circuit_inputs = flow.expand(circuit_node);
      flow.bind(flow.tool_of(perf), simulator_);
      flow.bind(flow.inputs_of(perf)[1], st);
      flow.bind(circuit_inputs[0], models_);
      flow.bind(circuit_inputs[1], netlist_);
    }
  };
  TaskGraph serial_flow(schema_, "serial");
  build(serial_flow);
  const exec::ExecResult serial = executor_.run(serial_flow);

  TaskGraph parallel_flow(schema_, "parallel");
  build(parallel_flow);
  exec::ExecOptions options;
  options.parallel = true;
  options.max_threads = 4;
  const exec::ExecResult parallel = executor_.run(parallel_flow, options);

  EXPECT_EQ(serial.tasks_run, parallel.tasks_run);
  // Same payloads produced for the goals (blob keys are content hashes).
  for (const NodeId goal : serial_flow.goals()) {
    const auto s = db_.instance(serial.single(goal)).blob;
    bool matched = false;
    for (const NodeId pgoal : parallel_flow.goals()) {
      matched |= (db_.instance(parallel.single(pgoal)).blob == s);
    }
    EXPECT_TRUE(matched);
  }
}

}  // namespace
}  // namespace herc
