#include "index/indexes.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <queue>
#include <sstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::index {

namespace fs = std::filesystem;
using data::InstanceId;
using support::HistoryError;

namespace {

bool is_token_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

char lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = lower(c);
  return out;
}

}  // namespace

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char raw : text) {
    const char c = lower(raw);
    if (is_token_char(c)) {
      cur += c;
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool indexable_keyword(std::string_view keyword) {
  if (keyword.empty()) return false;
  for (const char c : keyword) {
    if (!is_token_char(lower(c))) return false;
  }
  return true;
}

// ---- IndexImage ------------------------------------------------------------

void IndexImage::add_tokens(std::uint32_t id, std::string_view text) {
  for (const std::string& tok : tokenize(text)) {
    std::uint32_t tid = 0;
    const auto it = token_ids.find(tok);
    if (it == token_ids.end()) {
      tid = static_cast<std::uint32_t>(tokens.size());
      token_ids.emplace(tok, tid);
      tokens.push_back(tok);
      postings.emplace_back();
    } else {
      tid = it->second;
    }
    std::vector<std::uint32_t>& list = postings[tid];
    if (list.empty() || list.back() < id) {
      list.push_back(id);
    } else {
      // Annotation of an old instance: keep the list sorted + unique.
      const auto pos = std::lower_bound(list.begin(), list.end(), id);
      if (pos == list.end() || *pos != id) list.insert(pos, id);
    }
  }
}

void IndexImage::add_instance(std::uint32_t id, std::string_view type_name,
                              std::string_view name, std::string_view user,
                              std::int64_t created, std::string_view comment,
                              std::int64_t tool,
                              const std::vector<std::uint32_t>& inputs) {
  add_tokens(id, name);
  add_tokens(id, comment);
  users[std::string(user)].push_back(id);
  by_type[std::string(type_name)].emplace_back(created, id);
  by_date.emplace_back(created, id);
  const auto fold = [this, id](std::uint32_t src) {
    ++edges;
    const std::string edge =
        std::to_string(src) + ">" + std::to_string(id) + ";";
    adjacency_digest = support::fnv1a_append(adjacency_digest, edge);
  };
  if (tool >= 0) fold(static_cast<std::uint32_t>(tool));
  for (const std::uint32_t in : inputs) fold(in);
  ++instances;
}

void IndexImage::annotate(std::uint32_t id, std::string_view name,
                          std::string_view comment) {
  add_tokens(id, name);
  add_tokens(id, comment);
}

void IndexImage::apply_line(std::string_view line) {
  support::RecordReader rec(line);
  if (rec.kind() == "inst") {
    const std::uint32_t id = rec.next_uint32();
    const std::string type_name = rec.next_string();
    const std::string name = rec.next_string();
    const std::string user = rec.next_string();
    const std::int64_t created = rec.next_int64();
    const std::string comment = rec.next_string();
    (void)rec.next_string();  // blob
    (void)rec.next_uint32();  // version
    (void)rec.next_uint32();  // status
    (void)rec.next_string();  // task
    const std::int64_t tool = rec.next_int64();
    const std::uint32_t n_inputs = rec.next_uint32();
    std::vector<std::uint32_t> inputs;
    inputs.reserve(n_inputs);
    for (std::uint32_t i = 0; i < n_inputs; ++i) {
      inputs.push_back(rec.next_uint32());
      (void)rec.next_string();  // role
    }
    add_instance(id, type_name, name, user, created, comment, tool, inputs);
  } else if (rec.kind() == "annot") {
    const std::uint32_t id = rec.next_uint32();
    const std::string name = rec.next_string();
    annotate(id, name, rec.next_string());
  } else if (rec.kind() == "quar") {
    // Quarantine appends "[quarantined: <reason>]" to the comment; index
    // the same tokens so a keyword search over that text still matches.
    const std::uint32_t id = rec.next_uint32();
    add_tokens(id, "quarantined " + rec.next_string());
  }
  // blob and run-log records carry nothing the indexes serve.
}

std::string IndexImage::serialize() const {
  std::string body;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    support::RecordWriter w("tok");
    w.field(tokens[t]);
    for (const std::uint32_t id : postings[t]) w.field(id);
    body += w.str();
    body += '\n';
  }
  // Map sections in sorted key order, so the same image always serializes
  // to the same bytes.
  std::vector<std::string> user_names;
  user_names.reserve(users.size());
  for (const auto& [name, list] : users) user_names.push_back(name);
  std::sort(user_names.begin(), user_names.end());
  for (const std::string& name : user_names) {
    support::RecordWriter w("usr");
    w.field(name);
    for (const std::uint32_t id : users.at(name)) w.field(id);
    body += w.str();
    body += '\n';
  }
  std::vector<std::string> type_names;
  type_names.reserve(by_type.size());
  for (const auto& [name, list] : by_type) type_names.push_back(name);
  std::sort(type_names.begin(), type_names.end());
  for (const std::string& name : type_names) {
    support::RecordWriter w("typ");
    w.field(name);
    for (const auto& [created, id] : by_type.at(name)) {
      w.field(created);
      w.field(id);
    }
    body += w.str();
    body += '\n';
  }
  {
    support::RecordWriter w("adj");
    w.field(static_cast<std::int64_t>(edges));
    w.field(static_cast<std::int64_t>(adjacency_digest));
    body += w.str();
    body += '\n';
  }
  support::RecordWriter header(kIndexMagic);
  header.field(static_cast<std::int64_t>(epoch));
  header.field(static_cast<std::int64_t>(seq));
  header.field(instances);
  header.field(static_cast<std::int64_t>(support::fnv1a(body)));
  return header.str() + "\n" + body;
}

bool IndexImage::parse(std::string_view text, IndexImage& out,
                       std::string& error) {
  IndexImage img;
  const std::size_t nl = text.find('\n');
  if (nl == std::string_view::npos) {
    error = "missing header line";
    return false;
  }
  const std::string_view header = text.substr(0, nl);
  const std::string_view body = text.substr(nl + 1);
  try {
    support::RecordReader rec(header);
    if (rec.kind() != kIndexMagic) {
      error = "bad magic '" + rec.kind() + "'";
      return false;
    }
    img.epoch = static_cast<std::uint64_t>(rec.next_int64());
    img.seq = static_cast<std::uint64_t>(rec.next_int64());
    img.instances = rec.next_uint32();
    const auto checksum = static_cast<std::uint64_t>(rec.next_int64());
    if (support::fnv1a(body) != checksum) {
      error = "body checksum mismatch";
      return false;
    }
    for (const std::string& line : support::split(body, '\n')) {
      if (support::trim(line).empty()) continue;
      support::RecordReader r(line);
      if (r.kind() == "tok") {
        const std::string tok = r.next_string();
        if (img.token_ids.contains(tok)) {
          error = "duplicate token '" + tok + "'";
          return false;
        }
        img.token_ids.emplace(tok,
                              static_cast<std::uint32_t>(img.tokens.size()));
        img.tokens.push_back(tok);
        img.postings.emplace_back();
        while (!r.exhausted()) img.postings.back().push_back(r.next_uint32());
      } else if (r.kind() == "usr") {
        std::vector<std::uint32_t>& list = img.users[r.next_string()];
        while (!r.exhausted()) list.push_back(r.next_uint32());
      } else if (r.kind() == "typ") {
        auto& list = img.by_type[r.next_string()];
        while (!r.exhausted()) {
          const std::int64_t created = r.next_int64();
          list.emplace_back(created, r.next_uint32());
        }
      } else if (r.kind() == "adj") {
        img.edges = static_cast<std::uint64_t>(r.next_int64());
        img.adjacency_digest = static_cast<std::uint64_t>(r.next_int64());
      } else {
        error = "unknown section '" + r.kind() + "'";
        return false;
      }
    }
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  for (const auto& [name, list] : img.by_type) {
    img.by_date.insert(img.by_date.end(), list.begin(), list.end());
  }
  std::sort(img.by_date.begin(), img.by_date.end());
  out = std::move(img);
  return true;
}

// ---- HistoryIndexes --------------------------------------------------------

HistoryIndexes::HistoryIndexes(history::HistoryDb& db) : db_(&db) {}

HistoryIndexes::~HistoryIndexes() { detach(); }

std::string HistoryIndexes::file_path(const std::string& dir) {
  return (fs::path(dir) / std::string(kIndexFileName)).string();
}

void HistoryIndexes::attach() {
  if (attached_) return;
  db_->add_observer(this);
  attached_ = true;
}

void HistoryIndexes::detach() {
  if (!attached_) return;
  db_->remove_observer(this);
  attached_ = false;
}

void HistoryIndexes::rebuild() {
  img_ = IndexImage{};
  trigrams_.clear();
  trigrams_covered_ = 0;
  const schema::TaskSchema& schema = db_->schema();
  const std::size_t n = db_->size();
  for (std::size_t i = 0; i < n; ++i) {
    const history::Instance& inst =
        db_->instance(InstanceId(static_cast<std::uint32_t>(i)));
    std::vector<std::uint32_t> inputs;
    inputs.reserve(inst.derivation.inputs.size());
    for (const InstanceId in : inst.derivation.inputs) {
      inputs.push_back(in.value());
    }
    img_.add_instance(static_cast<std::uint32_t>(i),
                      schema.entity_name(inst.type), inst.name, inst.user,
                      inst.created.micros(), inst.comment,
                      inst.derivation.tool.valid()
                          ? static_cast<std::int64_t>(
                                inst.derivation.tool.value())
                          : -1,
                      inputs);
  }
  sync_trigrams();
}

HistoryIndexes::OpenReport HistoryIndexes::open(
    const std::string& dir, std::uint64_t epoch,
    const std::vector<std::string>& journal_records) {
  OpenReport rep;
  const auto fall_back = [&](std::string reason) {
    rebuild();
    rep.loaded = false;
    rep.rebuilt = true;
    rep.caught_up = 0;
    rep.reason = std::move(reason);
  };
  std::string text;
  {
    std::ifstream in(file_path(dir), std::ios::binary);
    if (!in) {
      fall_back("no index file");
      return rep;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  IndexImage loaded;
  std::string err;
  if (!IndexImage::parse(text, loaded, err)) {
    fall_back(err);
    return rep;
  }
  if (loaded.epoch != epoch) {
    fall_back("epoch skew (index " + std::to_string(loaded.epoch) +
              ", store " + std::to_string(epoch) + ")");
    return rep;
  }
  if (loaded.seq > journal_records.size()) {
    fall_back("index at seq " + std::to_string(loaded.seq) +
              " but the journal holds " +
              std::to_string(journal_records.size()) + " records");
    return rep;
  }
  img_ = std::move(loaded);
  trigrams_.clear();
  trigrams_covered_ = 0;
  try {
    for (std::size_t i = static_cast<std::size_t>(img_.seq);
         i < journal_records.size(); ++i) {
      for (const std::string& line :
           support::split(journal_records[i], '\n')) {
        if (support::trim(line).empty()) continue;
        img_.apply_line(line);
      }
      ++rep.caught_up;
    }
  } catch (const std::exception& e) {
    fall_back(std::string("catch-up failed: ") + e.what());
    return rep;
  }
  if (img_.instances != db_->size()) {
    fall_back("instance count mismatch after catch-up (index " +
              std::to_string(img_.instances) + ", database " +
              std::to_string(db_->size()) + ")");
    return rep;
  }
  rep.loaded = true;
  sync_trigrams();
  return rep;
}

void HistoryIndexes::save(const std::string& dir, std::uint64_t epoch,
                          std::uint64_t seq) {
  img_.epoch = epoch;
  img_.seq = seq;
  // Plain write-temp-and-rename (no fsync): unlike the journal, the index
  // is reconstructible, and any torn result fails the checksum and turns
  // into a rebuild on the next open.
  const std::string path = file_path(dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw HistoryError("index: cannot write '" + tmp + "'");
    }
    const std::string text = img_.serialize();
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      throw HistoryError("index: short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw HistoryError("index: cannot rename '" + tmp + "' over '" + path +
                       "': " + ec.message());
  }
}

void HistoryIndexes::on_lines(std::string_view lines) {
  for (const std::string& line : support::split(lines, '\n')) {
    if (support::trim(line).empty()) continue;
    img_.apply_line(line);
  }
  sync_trigrams();
}

void HistoryIndexes::on_reset() { rebuild(); }

void HistoryIndexes::sync_trigrams() {
  for (; trigrams_covered_ < img_.tokens.size(); ++trigrams_covered_) {
    const std::string& tok = img_.tokens[trigrams_covered_];
    if (tok.size() < 3) continue;
    const auto tid = static_cast<std::uint32_t>(trigrams_covered_);
    for (std::size_t i = 0; i + 3 <= tok.size(); ++i) {
      std::vector<std::uint32_t>& list = trigrams_[tok.substr(i, 3)];
      if (list.empty() || list.back() != tid) list.push_back(tid);
    }
  }
}

std::vector<std::uint32_t> HistoryIndexes::matching_tokens(
    const std::string& keyword) const {
  // Every token containing the keyword contains each of its trigrams, so
  // the rarest trigram's token list is a complete candidate set to verify.
  const std::vector<std::uint32_t>* rarest = nullptr;
  for (std::size_t i = 0; i + 3 <= keyword.size(); ++i) {
    const auto it = trigrams_.find(keyword.substr(i, 3));
    if (it == trigrams_.end()) return {};
    if (rarest == nullptr || it->second.size() < rarest->size()) {
      rarest = &it->second;
    }
  }
  std::vector<std::uint32_t> out;
  for (const std::uint32_t tid : *rarest) {
    if (img_.tokens[tid].find(keyword) != std::string::npos) {
      out.push_back(tid);
    }
  }
  return out;
}

namespace {

using Entry = std::pair<std::int64_t, std::uint32_t>;

struct DateSlice {
  const std::vector<Entry>* list = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive; walk happens end -> begin
};

/// Clamps one ascending (created, id) list to the cursor and date limits.
DateSlice slice_entries(const std::vector<Entry>& list,
                        const history::QueryFilter& filter,
                        const history::PageCursor& cursor) {
  DateSlice s;
  s.list = &list;
  s.begin = 0;
  if (filter.from) {
    s.begin = static_cast<std::size_t>(
        std::lower_bound(list.begin(), list.end(),
                         Entry(filter.from->micros(), 0)) -
        list.begin());
  }
  auto end_it = std::lower_bound(list.begin(), list.end(),
                                 Entry(cursor.created, cursor.id));
  if (filter.to) {
    const auto to_it = std::upper_bound(
        list.begin(), list.end(),
        Entry(filter.to->micros(),
              std::numeric_limits<std::uint32_t>::max()));
    if (to_it < end_it) end_it = to_it;
  }
  s.end = static_cast<std::size_t>(end_it - list.begin());
  if (s.end < s.begin) s.end = s.begin;
  return s;
}

}  // namespace

std::optional<std::size_t> HistoryIndexes::estimate(
    const history::QueryFilter& filter, history::AccessPath path) const {
  using history::AccessPath;
  switch (path) {
    case AccessPath::kUser: {
      if (filter.user.empty()) return std::nullopt;
      const auto it = img_.users.find(filter.user);
      return it == img_.users.end() ? std::size_t{0} : it->second.size();
    }
    case AccessPath::kKeyword: {
      const std::string kw = lowercase(filter.keyword);
      // Short keywords can hide inside tokens the trigram map cannot
      // reach; punt rather than under-approximate.
      if (kw.size() < 3 || !indexable_keyword(kw)) return std::nullopt;
      std::size_t total = 0;
      for (const std::uint32_t tid : matching_tokens(kw)) {
        total += img_.postings[tid].size();
      }
      return total;
    }
    case AccessPath::kType: {
      if (!filter.type.valid()) return std::nullopt;
      const history::PageCursor top = history::PageCursor::top();
      std::size_t total = 0;
      for (const schema::EntityTypeId tid :
           db_->schema().concrete_descendants(filter.type)) {
        const auto it = img_.by_type.find(db_->schema().entity_name(tid));
        if (it == img_.by_type.end()) continue;
        const DateSlice s = slice_entries(it->second, filter, top);
        total += s.end - s.begin;
      }
      return total;
    }
    case AccessPath::kDate: {
      if (!filter.from && !filter.to) return std::nullopt;
      const DateSlice s =
          slice_entries(img_.by_date, filter, history::PageCursor::top());
      return s.end - s.begin;
    }
    default:
      return std::nullopt;
  }
}

std::vector<InstanceId> HistoryIndexes::candidates(
    const history::QueryFilter& filter, history::AccessPath path,
    const history::PageCursor& cursor, std::size_t limit) const {
  using history::AccessPath;
  std::vector<InstanceId> out;
  if (limit == 0) return out;
  switch (path) {
    case AccessPath::kUser: {
      const auto it = img_.users.find(filter.user);
      if (it == img_.users.end()) return out;
      const std::vector<std::uint32_t>& list = it->second;
      auto pos = std::lower_bound(list.begin(), list.end(), cursor.id);
      while (pos != list.begin() && out.size() < limit) {
        --pos;
        out.push_back(InstanceId(*pos));
      }
      return out;
    }
    case AccessPath::kKeyword: {
      const std::string kw = lowercase(filter.keyword);
      std::vector<const std::vector<std::uint32_t>*> lists;
      std::vector<std::size_t> pos;
      for (const std::uint32_t tid : matching_tokens(kw)) {
        const std::vector<std::uint32_t>& list = img_.postings[tid];
        const auto p = static_cast<std::size_t>(
            std::lower_bound(list.begin(), list.end(), cursor.id) -
            list.begin());
        if (p > 0) {
          lists.push_back(&list);
          pos.push_back(p);
        }
      }
      // Descending k-way merge by id; duplicates (one instance under
      // several matching tokens) surface adjacently and are dropped.
      std::priority_queue<std::pair<std::uint32_t, std::size_t>> heap;
      for (std::size_t i = 0; i < lists.size(); ++i) {
        heap.emplace((*lists[i])[pos[i] - 1], i);
      }
      while (!heap.empty() && out.size() < limit) {
        const auto [id, which] = heap.top();
        heap.pop();
        if (out.empty() || out.back().value() != id) {
          out.push_back(InstanceId(id));
        }
        if (--pos[which] > 0) {
          heap.emplace((*lists[which])[pos[which] - 1], which);
        }
      }
      return out;
    }
    case AccessPath::kType: {
      std::vector<DateSlice> slices;
      for (const schema::EntityTypeId tid :
           db_->schema().concrete_descendants(filter.type)) {
        const auto it = img_.by_type.find(db_->schema().entity_name(tid));
        if (it == img_.by_type.end()) continue;
        const DateSlice s = slice_entries(it->second, filter, cursor);
        if (s.end > s.begin) slices.push_back(s);
      }
      std::priority_queue<std::pair<Entry, std::size_t>> heap;
      for (std::size_t i = 0; i < slices.size(); ++i) {
        heap.emplace((*slices[i].list)[slices[i].end - 1], i);
      }
      while (!heap.empty() && out.size() < limit) {
        const auto [entry, which] = heap.top();
        heap.pop();
        out.push_back(InstanceId(entry.second));
        DateSlice& s = slices[which];
        if (--s.end > s.begin) heap.emplace((*s.list)[s.end - 1], which);
      }
      return out;
    }
    case AccessPath::kDate: {
      const DateSlice s = slice_entries(img_.by_date, filter, cursor);
      std::size_t at = s.end;
      while (at > s.begin && out.size() < limit) {
        --at;
        out.push_back(InstanceId((*s.list)[at].second));
      }
      return out;
    }
    default:
      return out;
  }
}

std::optional<std::vector<InstanceId>> HistoryIndexes::name_candidates(
    std::string_view name) const {
  const std::vector<std::string> toks = tokenize(name);
  // A name with no token content ("!!!") cannot be bounded by the token
  // dictionary; let the caller scan.
  if (toks.empty()) return std::nullopt;
  // The maintenance invariant guarantees every instance's *current* name
  // tokens are posted, so a missing token is a hard "no instance".
  const std::vector<std::uint32_t>* best = nullptr;
  for (const std::string& tok : toks) {
    const auto it = img_.token_ids.find(tok);
    if (it == img_.token_ids.end()) return std::vector<InstanceId>{};
    const std::vector<std::uint32_t>& posting = img_.postings[it->second];
    if (best == nullptr || posting.size() < best->size()) best = &posting;
  }
  std::vector<InstanceId> out;
  out.reserve(best->size());
  for (const std::uint32_t id : *best) out.push_back(InstanceId(id));
  return out;
}

}  // namespace herc::index
