// Persistent secondary indexes over the design history (src/index).
//
// `HistoryIndexes` maintains the candidate-generating indexes behind the
// Fig. 9 browser and the §4.2 query predicates:
//
//   keyword   token postings over instance names/comments/annotations,
//             with a trigram map over the token dictionary so substring
//             keywords resolve without scanning it
//   user      per-creating-user posting lists
//   type      per-concrete-entity-type creation lists
//   date      global creation-date list
//   adjacency the derivation graph's edge count + digest (queries delegate
//             to `HistoryDb::used_by`, which is already the forward index;
//             persisting the edges again would double the store in memory)
//
// Maintenance is incremental: the structure registers as a `HistoryObserver`
// on the database, so it sees the same record stream the HERCWAL1 journal
// carries — locally originated mutations and replica-applied frames alike —
// and a replica resync's `on_reset` triggers a full rebuild.
//
// Persistence (`indexes.herc` next to the snapshot/journal) is epoch- and
// sequence-stamped: a file written at (epoch E, seq S) plus the journal
// records from S onward reproduces the live index exactly.  Any skew —
// wrong epoch, bad checksum, a seq the journal never reached, a torn or
// tampered file — falls back to a rebuild from the recovered database, so
// the index can never be *wrong*, only cold.  Postings are candidate
// supersets by contract (the planner re-verifies every candidate); stale
// entries from annotation replacement are therefore harmless and are kept
// rather than tombstoned.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "history/history_db.hpp"
#include "history/query_planner.hpp"

namespace herc::index {

/// Lowercased maximal `[a-z0-9_]` runs of `text` — the keyword-index
/// vocabulary.  "Low-pass Filter v2" -> {"low", "pass", "filter", "v2"}.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// True when `keyword` is one uninterrupted token-charset run, i.e. any
/// occurrence of it in a name/comment lies inside a single token and the
/// token dictionary can answer the substring query.
[[nodiscard]] bool indexable_keyword(std::string_view keyword);

inline constexpr std::string_view kIndexMagic = "HERCIDX1";
inline constexpr std::string_view kIndexFileName = "indexes.herc";

/// The pure index data — everything `indexes.herc` persists — plus the
/// incremental application rules.  Shared verbatim by the runtime
/// (`HistoryIndexes`) and by fsck's audit, so "what the index should hold"
/// has exactly one definition.
struct IndexImage {
  std::uint64_t epoch = 0;
  /// Journal frames of `epoch` already folded in; records from here on
  /// must be re-applied on open.
  std::uint64_t seq = 0;
  /// Instance records folded in (the table size the image describes).
  std::uint32_t instances = 0;

  /// Token dictionary: id -> text, first-seen order.
  std::vector<std::string> tokens;
  std::unordered_map<std::string, std::uint32_t> token_ids;
  /// Token id -> instance ids (ascending, deduplicated).
  std::vector<std::vector<std::uint32_t>> postings;

  /// Creating user -> instance ids (ascending).
  std::unordered_map<std::string, std::vector<std::uint32_t>> users;

  /// Concrete entity-type name -> (created micros, id), ascending.  Keyed
  /// by name (not id) so the file does not depend on schema numbering.
  std::unordered_map<std::string,
                     std::vector<std::pair<std::int64_t, std::uint32_t>>>
      by_type;
  /// Global (created micros, id), ascending.  Derived (not persisted):
  /// rebuilt from the per-type lists on parse.
  std::vector<std::pair<std::int64_t, std::uint32_t>> by_date;

  /// Derivation-adjacency summary: edge count and an order-sensitive FNV
  /// fold over (src, dst) pairs in application order, audited by fsck.
  std::uint64_t edges = 0;
  std::uint64_t adjacency_digest = 0;

  /// Folds one freshly recorded instance in (`tool` < 0 = none).
  void add_instance(std::uint32_t id, std::string_view type_name,
                    std::string_view name, std::string_view user,
                    std::int64_t created, std::string_view comment,
                    std::int64_t tool,
                    const std::vector<std::uint32_t>& inputs);
  /// Annotation replacement: the new name/comment tokens are added for
  /// `id`; old postings stay (supersets are fine, omissions are not).
  void annotate(std::uint32_t id, std::string_view name,
                std::string_view comment);
  /// Applies one save()-format record line ("inst", "annot" and "quar"
  /// carry index content; blob and run-log kinds are ignored).
  void apply_line(std::string_view line);

  /// Serializes header + sections; `parse` inverts it.  The header carries
  /// a checksum over the body, so torn or tampered files are detected.
  [[nodiscard]] std::string serialize() const;
  /// Returns false (with `error` set) on any structural defect; `out` is
  /// untouched in that case.
  [[nodiscard]] static bool parse(std::string_view text, IndexImage& out,
                                  std::string& error);

 private:
  /// Interns each token of `text` and posts `id` under it (sorted insert,
  /// absent-only).
  void add_tokens(std::uint32_t id, std::string_view text);
};

/// The live secondary indexes of one database: a `SecondaryIndex` the query
/// planner consults and a `HistoryObserver` keeping itself current.  Not
/// internally synchronized — reads and mutations follow the same locking
/// the `HistoryDb` itself requires.
class HistoryIndexes final : public history::SecondaryIndex,
                             public history::HistoryObserver {
 public:
  /// `db` must outlive this object.  The constructor does not read `db`;
  /// call `open` or `rebuild`, then `attach`.
  explicit HistoryIndexes(history::HistoryDb& db);
  ~HistoryIndexes() override;

  HistoryIndexes(const HistoryIndexes&) = delete;
  HistoryIndexes& operator=(const HistoryIndexes&) = delete;

  /// What `open` found and did.
  struct OpenReport {
    /// True when the index file was usable (possibly after catch-up).
    bool loaded = false;
    /// True when the index was rebuilt from the database instead.
    bool rebuilt = false;
    /// Journal records re-applied on top of the loaded file.
    std::size_t caught_up = 0;
    /// Why a rebuild happened ("" when loaded cleanly).
    std::string reason;
  };

  /// Opens `dir`'s index against a store recovered at `epoch` whose
  /// current journal holds `journal_records` (scan_journal record
  /// payloads).  Loads + catches up when the file matches, rebuilds from
  /// the database on any skew.  Never throws on a bad file.
  OpenReport open(const std::string& dir, std::uint64_t epoch,
                  const std::vector<std::string>& journal_records);

  /// Rebuilds everything from the database's current contents.
  void rebuild();

  /// Writes `dir`'s index file stamped (`epoch`, `seq`) — the store's
  /// current epoch and journal sequence, which together date the image.
  void save(const std::string& dir, std::uint64_t epoch, std::uint64_t seq);

  [[nodiscard]] static std::string file_path(const std::string& dir);

  /// Registers / deregisters this object as an observer of the database.
  /// The destructor detaches automatically.
  void attach();
  void detach();

  [[nodiscard]] const IndexImage& image() const { return img_; }

  // SecondaryIndex
  [[nodiscard]] std::optional<std::size_t> estimate(
      const history::QueryFilter& filter,
      history::AccessPath path) const override;
  [[nodiscard]] std::vector<data::InstanceId> candidates(
      const history::QueryFilter& filter, history::AccessPath path,
      const history::PageCursor& cursor, std::size_t limit) const override;
  [[nodiscard]] std::optional<std::vector<data::InstanceId>> name_candidates(
      std::string_view name) const override;

  // HistoryObserver
  void on_lines(std::string_view lines) override;
  void on_reset() override;

 private:
  /// Extends the trigram map over tokens added since the last sync (the
  /// dictionary only grows, so this is an append).
  void sync_trigrams();
  /// Token ids whose text contains `keyword` (already lowercased,
  /// token-charset, length >= 3).
  [[nodiscard]] std::vector<std::uint32_t> matching_tokens(
      const std::string& keyword) const;

  history::HistoryDb* db_;
  IndexImage img_;
  /// Trigram -> token ids whose text contains it (for substring keywords).
  std::unordered_map<std::string, std::vector<std::uint32_t>> trigrams_;
  std::size_t trigrams_covered_ = 0;
  bool attached_ = false;
};

}  // namespace herc::index
