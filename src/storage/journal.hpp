// Append-only write-ahead journal (the durable-storage subsystem's log).
//
// The paper's design-history database is the permanent record of a design
// (§3.3); this layer makes it actually permanent.  Every history mutation
// is appended as one *frame* — a length-prefixed, checksummed record — so a
// commit costs O(record), not O(database).  A crash can only tear the final
// frame; recovery keeps the longest valid prefix and truncates the rest
// (`scan_journal`), so the history is always restored to a consistent
// prefix of what was recorded.
//
// On-disk layout:
//
//   header   "HERCWAL1" (8 bytes)  +  epoch (u64 little-endian)
//   frame    length (u32 LE)  +  checksum (u32 LE)  +  payload bytes
//   frame    ...
//
// The checksum is a folded 64-bit FNV-1a over the length prefix and the
// payload, so a torn or bit-flipped tail never surfaces as a record.  The
// epoch ties a journal to the snapshot it extends: snapshot compaction
// bumps the epoch, and a journal whose epoch does not match the snapshot's
// (a crash between the two renames) is discarded as already-compacted.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace herc::storage {

/// When appended frames are forced to stable storage.
enum class SyncPolicy {
  kNone,      ///< leave it to the OS (fastest; loses the page-cache tail)
  kInterval,  ///< fsync every `sync_interval` appends
  kCommit,    ///< fsync every append (classic WAL durability)
};

struct JournalOptions {
  SyncPolicy sync = SyncPolicy::kInterval;
  /// Appends per fsync under `SyncPolicy::kInterval`.
  std::uint64_t sync_interval = 64;
};

inline constexpr std::string_view kJournalMagic = "HERCWAL1";
inline constexpr std::size_t kJournalHeaderBytes = 16;  // magic + epoch
inline constexpr std::size_t kFrameHeaderBytes = 8;     // length + checksum

/// Frame checksum: folded FNV-1a over the 4-byte LE length then the payload.
[[nodiscard]] std::uint32_t frame_checksum(std::string_view payload);

/// Result of frame-level recovery over journal bytes.
struct ScanResult {
  /// False when the file is shorter than the header or the magic differs;
  /// the journal is then treated as absent (no records, no valid bytes).
  bool header_valid = false;
  std::uint64_t epoch = 0;
  /// Payloads of every complete, checksum-valid frame, in order.
  std::vector<std::string> records;
  /// Bytes covered by the header plus all valid frames — the offset to
  /// truncate to before appending again.
  std::uint64_t valid_bytes = 0;
  /// True when bytes after `valid_bytes` were discarded (torn final frame).
  bool torn = false;
};

/// Scans in-memory journal bytes.  Never throws on truncated or corrupt
/// input: scanning stops at the first incomplete or checksum-failing frame
/// and everything before it is the recovered prefix.
[[nodiscard]] ScanResult scan_journal(std::string_view bytes);

/// An open journal file, append side.  Not internally synchronized: callers
/// serialize appends exactly as they already serialize history mutations.
class Journal {
 public:
  /// Creates (or truncates) the journal with a fresh header for `epoch`.
  static Journal create(const std::string& path, std::uint64_t epoch,
                        JournalOptions options);

  /// Opens an existing journal for appending at `size` bytes.  The caller
  /// has already scanned the file and truncated any torn tail.  Verifies
  /// the on-disk header before appending and throws `HistoryError` — naming
  /// both the journal's epoch and the expected (snapshot's) epoch — when
  /// they differ: appending under the wrong epoch would silently splice
  /// records into a journal that extends a different snapshot.
  static Journal open(const std::string& path, std::uint64_t epoch,
                      std::uint64_t size, JournalOptions options);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  /// Flushes (and, unless `kNone`, fsyncs) before closing.
  ~Journal();

  /// Appends one frame and applies the sync policy.
  void append(std::string_view payload);

  /// Forces everything appended so far to stable storage.
  void sync();

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t records_appended() const { return appended_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Journal(std::FILE* file, std::string path, std::uint64_t epoch,
          std::uint64_t bytes, JournalOptions options);
  void close();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t epoch_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t since_sync_ = 0;
  JournalOptions options_;
};

}  // namespace herc::storage
