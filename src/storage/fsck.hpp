// History integrity auditor (`herc fsck`).
//
// A long-lived design-history store is the source of truth for every
// consistency query the paper builds (§3.3, §4.2), so it needs an offline
// audit: `fsck_store` cross-checks the on-disk snapshot and journal
// against each other and against the blob store's content hashes without
// going through `HistoryDb` (whose replay throws at the first defect and
// hides the rest).  It classifies every defect by severity:
//
//   kClean      (exit 0)  nothing to report, or informational *notes*:
//                         clean-severity findings ("replica-store" on a
//                         read replica, "resumable-run", "leader-open-run")
//                         that render — and carry severity "note" in the
//                         --json output — but never raise the exit code
//   kWarning    (exit 1)  survivable states recovery handles or tolerates:
//                         orphaned blobs, interrupted runs, unquarantined
//                         partial products, a discarded pre-checkpoint
//                         journal, a torn journal tail, and secondary-index
//                         defects ("index-unreadable", "stale-index-epoch",
//                         "missing-posting", "orphan-index",
//                         "index-adjacency-mismatch" — the index is
//                         reconstructible, so recovery rebuilds rather than
//                         trusts it)
//   kCorruption (exit 2)  defects that make recovery refuse the store or
//                         silently lose data: unparseable records,
//                         dangling derivation references, missing blobs,
//                         blob hash mismatches, out-of-order instance ids,
//                         a journal epoch ahead of the snapshot
//
// With `repair` set, the repairable defects are fixed in place: corrupt
// instances are tombstoned (quarantined, payload dropped, derivation
// cleared — their id slot is preserved so later references stay valid),
// partial products are quarantined, orphan blobs are swept, the cleaned
// image is checkpointed under the next epoch with a fresh journal, and the
// secondary indexes are rebuilt from the repaired image at that epoch.
// Repair refuses replica stores ("replica-no-repair"): a repair checkpoint
// would bump the epoch out from under the replication stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/severity.hpp"

namespace herc::storage {

/// fsck and `herc lint` share one severity scale and exit-code convention
/// (0 clean / 1 warning / 2 error-or-corruption); `kCorruption` is lint's
/// `kError` under its traditional name.
using FsckSeverity = support::Severity;

/// One defect.  `code` is a stable kebab-case identifier (e.g.
/// "dangling-reference", "blob-hash-mismatch", "orphan-blob",
/// "interrupted-run") scripts and tests can match on.
struct FsckFinding {
  FsckSeverity severity = FsckSeverity::kWarning;
  std::string code;
  std::string detail;
};

struct FsckStats {
  std::uint64_t epoch = 0;
  std::size_t snapshot_records = 0;
  std::size_t journal_records = 0;
  std::size_t instances = 0;
  std::size_t blobs = 0;
  std::size_t runs = 0;
  std::size_t open_runs = 0;
};

struct FsckOptions {
  /// Fix repairable defects and checkpoint the cleaned image under the
  /// next epoch (the original snapshot is replaced atomically).
  bool repair = false;
};

struct FsckReport {
  std::string dir;
  std::vector<FsckFinding> findings;
  /// Human-readable repair actions taken (empty without `repair`).
  std::vector<std::string> repairs;
  FsckStats stats;

  /// Worst severity across findings.
  [[nodiscard]] FsckSeverity severity() const;
  /// CLI exit code: 0 clean, 1 warnings only, 2 corruption.
  [[nodiscard]] int exit_code() const { return static_cast<int>(severity()); }
  /// True when some finding carries `code`.
  [[nodiscard]] bool has(std::string_view code) const;
  /// Multi-line human rendering (stats, findings, repairs, verdict).
  [[nodiscard]] std::string render() const;
  /// One-object JSON rendering: {"dir", "stats", "findings", "repairs",
  /// "verdict", "exit_code"}.  Every finding carries its severity label
  /// ("note" / "warning" / "corruption"); clean-severity notes such as
  /// "replica-store" are included but do not affect "exit_code".
  [[nodiscard]] std::string render_json() const;
};

/// Audits the store in `dir`.  Tolerates any corruption inside the store
/// (defects become findings, never exceptions); throws `HistoryError` only
/// when `dir` does not hold a store at all or a file cannot be read.
[[nodiscard]] FsckReport fsck_store(const std::string& dir,
                                    const FsckOptions& options = {});

}  // namespace herc::storage
