#include "storage/store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "schema/schema_io.hpp"
#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define HERC_HAVE_FSYNC 1
#endif

namespace herc::storage {

namespace fs = std::filesystem;
using support::HistoryError;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw HistoryError("store: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void fsync_path(const std::string& path) {
#ifdef HERC_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw HistoryError("store: cannot write '" + tmp + "'");
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      throw HistoryError("store: short write to '" + tmp + "'");
    }
  }
  fsync_path(tmp);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw HistoryError("store: cannot rename '" + tmp + "' over '" + path +
                       "': " + ec.message());
  }
  fsync_path(fs::path(path).parent_path().string());
}

std::string DurableHistory::schema_path() const {
  return (fs::path(dir_) / "schema.herc").string();
}

std::string DurableHistory::snapshot_path() const {
  return (fs::path(dir_) / "snapshot.herc").string();
}

std::string DurableHistory::journal_path() const {
  return (fs::path(dir_) / "journal.wal").string();
}

bool DurableHistory::exists(const std::string& dir) {
  return fs::exists(fs::path(dir) / "schema.herc");
}

DurableHistory::DurableHistory(const schema::TaskSchema& schema,
                               support::Clock& clock, std::string dir,
                               StoreOptions options)
    : schema_(&schema), dir_(std::move(dir)), options_(options) {
  fs::create_directories(dir_);
  const std::string schema_text = schema::write_schema(schema);
  if (fs::exists(schema_path())) {
    if (read_file(schema_path()) != schema_text) {
      throw HistoryError("store '" + dir_ +
                         "': recorded schema differs from the session's; "
                         "open it from a session over the same schema");
    }
  } else {
    write_file_atomic(schema_path(), schema_text);
    report_.created = true;
  }

  db_ = std::make_unique<history::HistoryDb>(schema, clock);

  // Snapshot: a "snap" meta line (epoch, instance count) followed by a
  // full `HistoryDb::save` image.
  if (fs::exists(snapshot_path())) {
    const std::string text = read_file(snapshot_path());
    bool seen_meta = false;
    for (const std::string& line : support::split(text, '\n')) {
      if (support::trim(line).empty()) continue;
      if (!seen_meta) {
        support::RecordReader rec(line);
        if (rec.kind() != "snap") {
          throw HistoryError("store '" + dir_ +
                             "': snapshot does not start with a snap record");
        }
        epoch_ = static_cast<std::uint64_t>(rec.next_int64());
        seen_meta = true;
        continue;
      }
      db_->apply_saved_line(line);
    }
    report_.snapshot_instances = db_->size();
  }

  // Journal: replay the tail on top of the snapshot.
  bool need_fresh_journal = true;
  if (fs::exists(journal_path())) {
    const ScanResult scan = scan_journal(read_file(journal_path()));
    if (scan.header_valid && scan.epoch == epoch_) {
      for (const std::string& record : scan.records) {
        for (const std::string& line : support::split(record, '\n')) {
          db_->apply_saved_line(line);
        }
      }
      report_.journal_records_applied = scan.records.size();
      report_.torn_tail = scan.torn;
      if (scan.torn) {
        std::error_code ec;
        fs::resize_file(journal_path(), scan.valid_bytes, ec);
        if (ec) {
          throw HistoryError("store '" + dir_ +
                             "': cannot truncate torn journal tail: " +
                             ec.message());
        }
      }
      journal_ = Journal::open(journal_path(), epoch_, scan.valid_bytes,
                               options_.journal);
      journal_seq_ = scan.records.size();
      need_fresh_journal = false;
    } else if (scan.header_valid && scan.epoch > epoch_) {
      // A journal *ahead* of its snapshot cannot happen from a crash (the
      // checkpoint orders snapshot-then-journal); the snapshot was replaced
      // or rolled back out from under it.  Discarding would silently lose
      // committed records, so refuse — naming both epochs.
      throw HistoryError("store '" + dir_ + "': journal is at future epoch " +
                         std::to_string(scan.epoch) +
                         " but the snapshot is at epoch " +
                         std::to_string(epoch_) +
                         "; refusing to discard committed records");
    } else {
      // Wrong magic, or an epoch the snapshot has already absorbed.
      report_.journal_records_discarded = scan.records.size();
    }
  }
  if (need_fresh_journal) {
    journal_ = Journal::create(journal_path(), epoch_, options_.journal);
  }
  report_.epoch = epoch_;
  db_->attach_listener(this);

  // Crash-resumable runs: a run-begin frame without a matching run-end
  // means the process died mid-flow.  Products of tasks that started but
  // never completed a combination are quarantined (journaled through the
  // listener, so the sweep itself is durable); the run stays open for
  // `Executor::resume`.
  // The sweep seals each interrupted run's window at the recovered table
  // size: work recorded from here on (new runs, imports, decompose) is not
  // the crashed run's doing, so a later reopen must not sweep it.
  const history::HistoryDb::SealSweep sweep = db_->seal_open_runs(
      "crash recovery: the producing task never finished");
  report_.interrupted_runs = sweep.open;
  report_.quarantined = sweep.quarantined;
}

DurableHistory::~DurableHistory() {
  if (db_ != nullptr) db_->attach_listener(nullptr);
  // `journal_`'s destructor flushes (and fsyncs unless kNone).
}

void DurableHistory::on_mutation(std::string_view lines) {
  journal_->append(lines);
  const std::uint64_t seq = journal_seq_++;
  ++records_;
  bytes_ += lines.size();
  ++since_checkpoint_;
  if (tap_ != nullptr) tap_->on_frame(epoch_, seq, lines);
  if (options_.checkpoint_every > 0 &&
      since_checkpoint_ >= options_.checkpoint_every) {
    checkpoint();
  }
}

void DurableHistory::checkpoint() {
  const std::uint64_t next = epoch_ + 1;
  support::RecordWriter meta("snap");
  meta.field(static_cast<std::int64_t>(next));
  meta.field(static_cast<std::uint32_t>(db_->size()));
  write_file_atomic(snapshot_path(), meta.str() + "\n" + db_->save());
  // A crash here leaves a journal whose epoch predates the new snapshot;
  // recovery discards it, and every record it held is inside the snapshot.
  // Close the old handle first: a buffered flush after the truncation
  // below would resurrect stale frames.
  journal_.reset();
  journal_ = Journal::create(journal_path(), next, options_.journal);
  epoch_ = next;
  since_checkpoint_ = 0;
  journal_seq_ = 0;
  if (tap_ != nullptr) tap_->on_checkpoint(next);
}

void DurableHistory::sync() { journal_->sync(); }

void DurableHistory::adopt(history::HistoryDb&& seed) {
  if (db_->size() != 0) {
    throw HistoryError("store '" + dir_ +
                       "': refusing to adopt over a non-empty store");
  }
  seed.attach_listener(nullptr);
  db_ = std::make_unique<history::HistoryDb>(std::move(seed));
  db_->attach_listener(this);
  checkpoint();
}

std::unique_ptr<history::HistoryDb> DurableHistory::release() {
  journal_->sync();
  db_->attach_listener(nullptr);
  return std::move(db_);
}

}  // namespace herc::storage
