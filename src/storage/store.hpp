// Durable design-history storage: snapshot + write-ahead journal.
//
// `DurableHistory` puts a crash-recoverable store underneath `HistoryDb`
// (and, through it, `BlobStore`).  A store directory holds:
//
//   schema.herc    the task schema the history was recorded against
//   snapshot.herc  full image written by the last checkpoint (epoch-tagged)
//   journal.wal    mutations appended since that checkpoint
//
// Every mutation (import, task product, failure record, annotation — and
// any blob it introduces) is serialized by the history database itself and
// appended as one journal frame, so a commit is O(delta) while `save()` is
// O(database).  `checkpoint()` compacts: it atomically replaces the
// snapshot (write temp + rename) and then resets the journal under a new
// epoch.  Recovery replays snapshot + journal tail; a torn final frame is
// truncated away, and a journal whose epoch does not match the snapshot's
// (a crash between the checkpoint's two steps) is discarded — its records
// are already inside the snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "history/history_db.hpp"
#include "storage/journal.hpp"

namespace herc::storage {

struct StoreOptions {
  JournalOptions journal;
  /// Auto-compaction: run `checkpoint()` once this many records have been
  /// journaled since the last checkpoint (0 = only on explicit request).
  std::uint64_t checkpoint_every = 0;
};

/// What `DurableHistory`'s constructor found and did.
struct RecoveryReport {
  /// True when the directory held no prior store.
  bool created = false;
  std::uint64_t epoch = 0;
  /// Instances restored from the snapshot image.
  std::size_t snapshot_instances = 0;
  /// Journal records replayed on top of the snapshot.
  std::size_t journal_records_applied = 0;
  /// Journal records discarded because their epoch predated the snapshot
  /// (crash between snapshot rename and journal reset).
  std::size_t journal_records_discarded = 0;
  /// True when the journal ended in a torn frame that was truncated away.
  bool torn_tail = false;
  /// Runs a crash left open (resumable via `Executor::resume`).
  std::size_t interrupted_runs = 0;
  /// OK instances quarantined because the task that produced them started
  /// but never finished before the crash.
  std::size_t quarantined = 0;
};

/// Durable file replacement: write `path`.tmp, flush + fsync, rename over
/// `path`, fsync the directory so the rename itself is durable.  Shared by
/// checkpointing and fsck repair.
void write_file_atomic(const std::string& path, std::string_view content);

/// Observer of the journal frame stream — the replication shipping hook.
/// Called synchronously from the mutation path, under whatever lock the
/// caller already uses to serialize mutations; implementations must be
/// fast (hand off, don't block) and must not re-enter the store.
class JournalTap {
 public:
  virtual ~JournalTap() = default;
  /// One frame was appended: `seq` is its 0-based position within the
  /// current epoch's journal (replayed records count, so seq is stable
  /// across reopen), `payload` the save-format mutation lines.
  virtual void on_frame(std::uint64_t epoch, std::uint64_t seq,
                        std::string_view payload) = 0;
  /// The store checkpointed: the snapshot now carries `new_epoch` and the
  /// journal restarted empty (the next frame is seq 0 of `new_epoch`).
  virtual void on_checkpoint(std::uint64_t new_epoch) = 0;
};

/// A `HistoryDb` bound to a store directory.  Owns the database; attach it
/// to a session (or use `db()` directly) and every mutation is journaled.
/// Not internally synchronized — callers serialize mutations exactly as
/// they already do for `HistoryDb` (the executor's state mutex).
class DurableHistory final : public history::MutationListener {
 public:
  /// Opens (creating if needed) the store in `dir` and recovers its
  /// contents into a fresh database over `schema`.  Throws `HistoryError`
  /// when the directory's recorded schema differs from `schema`, or when
  /// snapshot/journal contents fail integrity checks.
  DurableHistory(const schema::TaskSchema& schema, support::Clock& clock,
                 std::string dir, StoreOptions options = {});
  ~DurableHistory() override;

  DurableHistory(const DurableHistory&) = delete;
  DurableHistory& operator=(const DurableHistory&) = delete;

  [[nodiscard]] history::HistoryDb& db() { return *db_; }
  [[nodiscard]] const history::HistoryDb& db() const { return *db_; }

  /// Replaces this (empty, freshly created) store's database with `seed`
  /// and checkpoints, so a history built before the store was opened
  /// becomes durable.  Throws when either side would lose data.
  void adopt(history::HistoryDb&& seed);

  /// Snapshot compaction: writes the full image (temp + rename), then
  /// resets the journal under the next epoch.
  void checkpoint();

  /// Forces journaled records to stable storage now (regardless of policy).
  void sync();

  /// Detaches and returns the database (the store stops journaling; any
  /// buffered frames are flushed).  The `DurableHistory` is dead after.
  std::unique_ptr<history::HistoryDb> release();

  /// Streams every journaled frame (and checkpoint) to `tap`; pass
  /// `nullptr` to detach.  One tap at a time.
  void attach_tap(JournalTap* tap) { tap_ = tap; }

  [[nodiscard]] const RecoveryReport& recovery() const { return report_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Records / payload bytes appended to the journal since opening.
  [[nodiscard]] std::uint64_t records_journaled() const { return records_; }
  [[nodiscard]] std::uint64_t bytes_journaled() const { return bytes_; }
  /// Frames in the current epoch's journal (the next frame's sequence
  /// number) — counts records replayed on recovery, so it is stable
  /// across reopen.
  [[nodiscard]] std::uint64_t journal_seq() const { return journal_seq_; }
  /// Size of the journal file itself (header + frames), in bytes.
  [[nodiscard]] std::uint64_t journal_file_bytes() const {
    return journal_.has_value() ? journal_->bytes() : 0;
  }

  /// True when `dir` already holds a store (a schema file).
  [[nodiscard]] static bool exists(const std::string& dir);

  void on_mutation(std::string_view lines) override;

 private:
  [[nodiscard]] std::string schema_path() const;
  [[nodiscard]] std::string snapshot_path() const;
  [[nodiscard]] std::string journal_path() const;

  const schema::TaskSchema* schema_;
  std::string dir_;
  StoreOptions options_;
  std::unique_ptr<history::HistoryDb> db_;
  std::optional<Journal> journal_;
  RecoveryReport report_;
  JournalTap* tap_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t since_checkpoint_ = 0;
  std::uint64_t journal_seq_ = 0;
};

}  // namespace herc::storage
