#include "storage/fsck.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "data/blob_store.hpp"
#include "index/indexes.hpp"
#include "schema/schema_io.hpp"
#include "schema/task_schema.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::storage {

namespace fs = std::filesystem;
using support::HistoryError;

namespace {

/// Minimal JSON string escaping (findings carry free-text details).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* severity_label(FsckSeverity s) {
  return s == FsckSeverity::kCorruption ? "corruption"
         : s == FsckSeverity::kWarning  ? "warning"
                                        : "note";
}

}  // namespace

FsckSeverity FsckReport::severity() const {
  FsckSeverity worst = FsckSeverity::kClean;
  for (const FsckFinding& f : findings) {
    if (static_cast<int>(f.severity) > static_cast<int>(worst)) {
      worst = f.severity;
    }
  }
  return worst;
}

bool FsckReport::has(std::string_view code) const {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const FsckFinding& f) { return f.code == code; });
}

std::string FsckReport::render() const {
  std::ostringstream out;
  out << "fsck " << dir << ": epoch " << stats.epoch << ", "
      << stats.instances << " instances, " << stats.blobs << " blobs, "
      << stats.runs << " runs (" << stats.open_runs << " open), "
      << stats.snapshot_records << " snapshot + " << stats.journal_records
      << " journal records\n";
  for (const FsckFinding& f : findings) {
    out << "  ["
        << (f.severity == FsckSeverity::kCorruption ? "corruption"
            : f.severity == FsckSeverity::kWarning  ? "warning"
                                                    : "note")
        << "] " << f.code << ": " << f.detail << "\n";
  }
  for (const std::string& action : repairs) {
    out << "  repair: " << action << "\n";
  }
  const FsckSeverity worst = severity();
  out << "verdict: "
      << (worst == FsckSeverity::kClean        ? "clean"
          : worst == FsckSeverity::kWarning    ? "warnings"
                                               : "CORRUPTION")
      << " (exit " << exit_code() << ")\n";
  return out.str();
}

std::string FsckReport::render_json() const {
  std::ostringstream out;
  out << "{\"dir\":\"" << json_escape(dir) << "\",\"stats\":{\"epoch\":"
      << stats.epoch << ",\"snapshot_records\":" << stats.snapshot_records
      << ",\"journal_records\":" << stats.journal_records
      << ",\"instances\":" << stats.instances << ",\"blobs\":" << stats.blobs
      << ",\"runs\":" << stats.runs << ",\"open_runs\":" << stats.open_runs
      << "},\"findings\":[";
  bool first = true;
  for (const FsckFinding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"severity\":\"" << severity_label(f.severity)
        << "\",\"code\":\"" << json_escape(f.code) << "\",\"detail\":\""
        << json_escape(f.detail) << "\"}";
  }
  out << "],\"repairs\":[";
  first = true;
  for (const std::string& action : repairs) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(action) << "\"";
  }
  const FsckSeverity worst = severity();
  out << "],\"verdict\":\""
      << (worst == FsckSeverity::kClean     ? "clean"
          : worst == FsckSeverity::kWarning ? "warnings"
                                            : "corruption")
      << "\",\"exit_code\":" << exit_code() << "}\n";
  return out.str();
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw HistoryError("fsck: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Leniently parsed mirror of a history instance: everything needed to
/// audit references and to re-serialize a repaired image.
struct AuditInstance {
  std::uint32_t id = 0;
  std::string type;
  std::string name;
  std::string user;
  std::int64_t created = 0;
  std::string comment;
  std::string blob;
  std::uint32_t version = 1;
  std::uint32_t status = 0;
  std::string task;
  std::int64_t tool = -1;
  std::vector<std::pair<std::int64_t, std::string>> inputs;
  /// Repair verdicts filled by the audit passes.
  bool tombstone = false;
  std::string tombstone_reason;
  bool quarantine = false;
};

struct AuditTask {
  std::string key;
  bool finished = false;
  std::string status;
};

struct AuditRun {
  std::uint64_t id = 0;
  std::string flow_name;
  std::string goal;
  std::int64_t goal_node = -1;
  std::string user;
  std::string options;
  std::int64_t seed = 0;
  std::uint32_t db_size = 0;
  std::string flow_text;
  std::string outcome;
  std::vector<AuditTask> tasks;
  std::vector<std::int64_t> covered;
  /// Partial-product sweep window end (recovery's seal); -1 = unsealed.
  std::int64_t sweep_end = -1;
};

struct Audit {
  /// Blobs in first-seen order (the order `BlobStore::save` preserves).
  std::vector<std::pair<std::string, std::string>> blobs;
  std::unordered_map<std::string, std::size_t> blob_index;
  std::vector<AuditInstance> instances;
  std::vector<AuditRun> runs;
  /// Lines that failed to parse at all, dropped from any repair image.
  std::size_t dropped_records = 0;
};

void warn(FsckReport& report, std::string code, std::string detail) {
  report.findings.push_back(FsckFinding{FsckSeverity::kWarning,
                                        std::move(code), std::move(detail)});
}

void corrupt(FsckReport& report, std::string code, std::string detail) {
  report.findings.push_back(FsckFinding{
      FsckSeverity::kCorruption, std::move(code), std::move(detail)});
}

/// A clean-severity finding: reported for visibility, never raises the
/// exit code.
void note(FsckReport& report, std::string code, std::string detail) {
  report.findings.push_back(FsckFinding{FsckSeverity::kClean,
                                        std::move(code), std::move(detail)});
}

AuditRun* find_audit_run(Audit& audit, std::uint64_t id) {
  for (AuditRun& run : audit.runs) {
    if (run.id == id) return &run;
  }
  return nullptr;
}

/// Ingests one record line.  Structural parse failures become "bad-record"
/// corruption findings; reference checks are deferred to the audit passes
/// so one defect never hides the rest.
void ingest_line(Audit& audit, FsckReport& report, const std::string& line,
                 const std::string& origin) {
  try {
    support::RecordReader rec(line);
    if (rec.kind() == "blob") {
      const std::string key = rec.next_string();
      std::string payload = rec.next_string();
      if (!audit.blob_index.contains(key)) {
        audit.blob_index.emplace(key, audit.blobs.size());
        audit.blobs.emplace_back(key, std::move(payload));
      }
    } else if (rec.kind() == "inst") {
      AuditInstance inst;
      inst.id = rec.next_uint32();
      inst.type = rec.next_string();
      inst.name = rec.next_string();
      inst.user = rec.next_string();
      inst.created = rec.next_int64();
      inst.comment = rec.next_string();
      inst.blob = rec.next_string();
      inst.version = rec.next_uint32();
      inst.status = rec.next_uint32();
      inst.task = rec.next_string();
      inst.tool = rec.next_int64();
      const std::uint32_t n_inputs = rec.next_uint32();
      for (std::uint32_t i = 0; i < n_inputs; ++i) {
        const std::int64_t in = rec.next_int64();
        inst.inputs.emplace_back(in, rec.next_string());
      }
      if (inst.status > 3) {
        corrupt(report, "bad-record",
                origin + ": instance i" + std::to_string(inst.id) +
                    " has unknown status " + std::to_string(inst.status));
        ++audit.dropped_records;
        return;
      }
      audit.instances.push_back(std::move(inst));
    } else if (rec.kind() == "annot") {
      const std::uint32_t id = rec.next_uint32();
      std::string name = rec.next_string();
      std::string comment = rec.next_string();
      if (id >= audit.instances.size()) {
        corrupt(report, "dangling-reference",
                origin + ": annotation targets unknown instance i" +
                    std::to_string(id));
        return;
      }
      audit.instances[id].name = std::move(name);
      audit.instances[id].comment = std::move(comment);
    } else if (rec.kind() == "runb") {
      AuditRun run;
      run.id = static_cast<std::uint64_t>(rec.next_int64());
      run.flow_name = rec.next_string();
      run.goal = rec.next_string();
      run.goal_node = rec.next_int64();
      run.user = rec.next_string();
      run.options = rec.next_string();
      run.seed = rec.next_int64();
      run.db_size = rec.next_uint32();
      run.flow_text = rec.next_string();
      if (run.id != audit.runs.size()) {
        corrupt(report, "bad-record",
                origin + ": run records out of order (run #" +
                    std::to_string(run.id) + ")");
        ++audit.dropped_records;
        return;
      }
      audit.runs.push_back(std::move(run));
    } else if (rec.kind() == "tstart" || rec.kind() == "tcover" ||
               rec.kind() == "tfin" || rec.kind() == "runseal" ||
               rec.kind() == "rune") {
      const std::string kind = rec.kind();
      const auto id = static_cast<std::uint64_t>(rec.next_int64());
      AuditRun* run = find_audit_run(audit, id);
      if (run == nullptr) {
        corrupt(report, "dangling-reference",
                origin + ": '" + kind + "' frame targets unknown run #" +
                    std::to_string(id));
        return;
      }
      if (kind == "tstart") {
        run->tasks.push_back(AuditTask{rec.next_string(), false, ""});
      } else if (kind == "tcover") {
        const std::uint32_t count = rec.next_uint32();
        for (std::uint32_t i = 0; i < count; ++i) {
          run->covered.push_back(rec.next_int64());
        }
      } else if (kind == "tfin") {
        const std::string key = rec.next_string();
        std::string status = rec.next_string();
        bool found = false;
        for (AuditTask& task : run->tasks) {
          if (!task.finished && task.key == key) {
            task.finished = true;
            task.status = std::move(status);
            found = true;
            break;
          }
        }
        if (!found) {
          corrupt(report, "bad-record",
                  origin + ": run #" + std::to_string(id) + " task '" + key +
                      "' finished without starting");
        }
      } else if (kind == "runseal") {
        run->sweep_end = rec.next_int64();
      } else {  // rune
        std::string outcome = rec.next_string();
        if (!run->outcome.empty()) {
          corrupt(report, "bad-record",
                  origin + ": run #" + std::to_string(id) + " ended twice");
          return;
        }
        run->outcome = std::move(outcome);
        run->flow_text.clear();
      }
    } else if (rec.kind() == "quar") {
      const std::uint32_t id = rec.next_uint32();
      const std::string reason = rec.next_string();
      if (id >= audit.instances.size()) {
        corrupt(report, "dangling-reference",
                origin + ": quarantine targets unknown instance i" +
                    std::to_string(id));
        return;
      }
      AuditInstance& inst = audit.instances[id];
      if (inst.status != 0) {
        corrupt(report, "bad-record",
                origin + ": quarantine of non-OK instance i" +
                    std::to_string(id));
        return;
      }
      inst.status = 3;
      if (!inst.comment.empty()) inst.comment += ' ';
      inst.comment += "[quarantined: " + reason + "]";
    } else {
      corrupt(report, "bad-record",
              origin + ": unknown record kind '" + rec.kind() + "'");
      ++audit.dropped_records;
    }
  } catch (const std::exception& e) {
    corrupt(report, "bad-record", origin + ": " + e.what());
    ++audit.dropped_records;
  }
}

/// The reference/coverage audit passes over the ingested state.
void audit_store(Audit& audit, FsckReport& report,
                 const schema::TaskSchema* schema, bool replica) {
  // Blob content hashes: a mismatched payload would be rejected by
  // `BlobStore::restore` on the next recovery, making the store unopenable.
  std::unordered_set<std::string> bad_blobs;
  for (const auto& [key, payload] : audit.blobs) {
    if (data::BlobStore::key_for(payload) != key) {
      corrupt(report, "blob-hash-mismatch",
              "blob '" + key + "' payload hashes to '" +
                  data::BlobStore::key_for(payload) + "'");
      bad_blobs.insert(key);
    }
  }

  // Instance table: dense ids, known entities, valid blob and derivation
  // references (a reference must point at an *earlier* instance).
  for (std::size_t i = 0; i < audit.instances.size(); ++i) {
    AuditInstance& inst = audit.instances[i];
    const std::string label = "instance i" + std::to_string(inst.id);
    if (inst.id != i) {
      corrupt(report, "out-of-order-instance",
              label + " sits at table position " + std::to_string(i));
    }
    if (schema != nullptr && !schema->find(inst.type).valid()) {
      corrupt(report, "unknown-entity",
              label + " is typed by unknown entity '" + inst.type + "'");
    }
    if (!audit.blob_index.contains(inst.blob)) {
      corrupt(report, "missing-blob",
              label + " references missing blob '" + inst.blob + "'");
      inst.tombstone = true;
      inst.tombstone_reason = "missing blob";
    } else if (bad_blobs.contains(inst.blob)) {
      inst.tombstone = true;
      inst.tombstone_reason = "blob hash mismatch";
    }
    const auto check_ref = [&](std::int64_t ref, const char* what) {
      if (ref < 0) return;
      if (static_cast<std::size_t>(ref) >= i || ref > inst.id) {
        corrupt(report, "dangling-reference",
                label + " " + what + " references " +
                    (static_cast<std::size_t>(ref) >= audit.instances.size()
                         ? "unknown"
                         : "a later") +
                    " instance i" + std::to_string(ref));
        inst.tombstone = true;
        if (inst.tombstone_reason.empty()) {
          inst.tombstone_reason = "dangling derivation reference";
        }
      }
    };
    check_ref(inst.tool, "derivation tool");
    for (const auto& [in, role] : inst.inputs) {
      check_ref(in, "derivation input");
    }
  }

  // Orphan blobs: referenced by no instance.  Survivable (recovery loads
  // them fine) but dead weight a checkpoint never sheds on its own.
  std::unordered_set<std::string> referenced;
  for (const AuditInstance& inst : audit.instances) {
    referenced.insert(inst.blob);
  }
  for (const auto& [key, payload] : audit.blobs) {
    if (!referenced.contains(key)) {
      warn(report, "orphan-blob",
           "blob '" + key + "' (" + std::to_string(payload.size()) +
               " bytes) is referenced by no instance");
    }
  }

  // Run log: interrupted runs and their uncovered (partial) products.
  // Coverage unions over ALL runs (closed runs keep their lists), and the
  // sweep is confined to each open run's own window — mirroring
  // `HistoryDb::partial_products`, so repair never quarantines valid work
  // recorded after the crash.
  std::unordered_set<std::int64_t> covered;
  for (const AuditRun& run : audit.runs) {
    for (const std::int64_t id : run.covered) {
      if (id < 0 || static_cast<std::size_t>(id) >= audit.instances.size()) {
        corrupt(report, "dangling-reference",
                "run #" + std::to_string(run.id) +
                    " covers unknown instance i" + std::to_string(id));
      }
      covered.insert(id);
    }
  }
  // The partial sweep runs first: an open run's verdict depends on whether
  // its window still holds unquarantined partials.
  std::unordered_set<std::uint64_t> dirty_runs;
  for (std::size_t r = 0; r < audit.runs.size(); ++r) {
    const AuditRun& run = audit.runs[r];
    if (!run.outcome.empty()) continue;
    std::size_t end = run.sweep_end >= 0
                          ? static_cast<std::size_t>(run.sweep_end)
                          : audit.instances.size();
    if (r + 1 < audit.runs.size()) {
      end = std::min<std::size_t>(end, audit.runs[r + 1].db_size);
    }
    end = std::min(end, audit.instances.size());
    for (std::size_t i = run.db_size; i < end; ++i) {
      AuditInstance& inst = audit.instances[i];
      const bool is_import = inst.tool < 0 && inst.inputs.empty();
      if (inst.status != 0 || is_import || inst.quarantine) continue;
      if (!covered.contains(static_cast<std::int64_t>(inst.id))) {
        warn(report, "unquarantined-partial",
             "instance i" + std::to_string(inst.id) +
                 " was produced by an unfinished task of an interrupted "
                 "run but is not quarantined");
        inst.quarantine = true;
        dirty_runs.insert(run.id);
      }
    }
  }
  for (const AuditRun& run : audit.runs) {
    if (!run.outcome.empty()) continue;
    std::size_t finished = 0;
    for (const AuditTask& task : run.tasks) {
      if (task.finished) ++finished;
    }
    const std::string progress =
        "run #" + std::to_string(run.id) + " (flow '" + run.flow_name +
        "') never ended: " + std::to_string(finished) + "/" +
        std::to_string(run.tasks.size()) + " started tasks finished";
    // On a replica, an open run is the *leader's* live run streaming in —
    // expected mid-flight state, not an interruption.  Promotion is what
    // turns it into a crash to recover from.
    if (replica) {
      note(report, "leader-open-run",
           progress + "; the leader's live run, sealed on promote");
      continue;
    }
    // A sealed open run whose window holds no unquarantined partials is
    // the state an interruption sweep (crash recovery, graceful server
    // shutdown) deliberately leaves behind: consistent and resumable, not
    // a defect.  Unsealed, or sealed with unswept partials, the store
    // still needs recovery — that stays a warning.
    if (run.sweep_end >= 0 && !dirty_runs.contains(run.id)) {
      note(report, "resumable-run",
           progress + "; sealed and swept, resumable as-is");
    } else {
      warn(report, "interrupted-run", progress + "; resumable");
    }
  }
}

/// The index a rebuild over `instances` would produce — the *minimal*
/// contents any valid index file must contain for that table.
index::IndexImage index_from_instances(
    const std::vector<AuditInstance>& instances) {
  index::IndexImage img;
  for (const AuditInstance& inst : instances) {
    std::vector<std::uint32_t> inputs;
    for (const auto& [in, role] : inst.inputs) {
      if (in >= 0) inputs.push_back(static_cast<std::uint32_t>(in));
    }
    img.add_instance(inst.id, inst.type, inst.name, inst.user, inst.created,
                     inst.comment, inst.tool, inputs);
  }
  return img;
}

/// Cross-checks the persisted index (`file`, stamped at some journal seq)
/// against the ingested history, in both directions: every posting a
/// rebuild at that seq would produce must be present ("missing-posting" —
/// a lossy index silently drops rows from listings), and every posting in
/// the file must be justified by *some* history record ("orphan-index" —
/// fabricated entries).  `at_seq` is the instance table as of the file's
/// seq; `all` accumulates every posting that was ever legitimate, because
/// annotation replacement intentionally leaves once-valid postings behind
/// (the planner re-verifies candidates, so supersets are correct).
void audit_index(const index::IndexImage& file, const index::IndexImage& all,
                 const std::vector<AuditInstance>& at_seq,
                 FsckReport& report) {
  const index::IndexImage minimal = index_from_instances(at_seq);
  constexpr std::size_t kMaxDetails = 5;

  std::size_t missing = 0;
  const auto miss = [&](const std::string& detail) {
    if (missing++ < kMaxDetails) warn(report, "missing-posting", detail);
  };
  for (std::uint32_t tid = 0; tid < minimal.tokens.size(); ++tid) {
    const std::string& token = minimal.tokens[tid];
    const auto it = file.token_ids.find(token);
    for (const std::uint32_t id : minimal.postings[tid]) {
      if (it == file.token_ids.end() ||
          !std::binary_search(file.postings[it->second].begin(),
                              file.postings[it->second].end(), id)) {
        miss("keyword token '" + token + "' lacks i" + std::to_string(id));
      }
    }
  }
  for (const auto& [user, ids] : minimal.users) {
    const auto it = file.users.find(user);
    for (const std::uint32_t id : ids) {
      if (it == file.users.end() ||
          !std::binary_search(it->second.begin(), it->second.end(), id)) {
        miss("user '" + user + "' posting lacks i" + std::to_string(id));
      }
    }
  }
  for (const auto& [type, entries] : minimal.by_type) {
    const auto it = file.by_type.find(type);
    for (const auto& entry : entries) {
      if (it == file.by_type.end() ||
          !std::binary_search(it->second.begin(), it->second.end(), entry)) {
        miss("type '" + type + "' creation list lacks i" +
             std::to_string(entry.second));
      }
    }
  }
  if (missing > kMaxDetails) {
    warn(report, "missing-posting",
         std::to_string(missing) + " postings missing in total");
  }

  std::size_t orphan = 0;
  const auto stray = [&](const std::string& detail) {
    if (orphan++ < kMaxDetails) warn(report, "orphan-index", detail);
  };
  for (std::uint32_t tid = 0;
       tid < static_cast<std::uint32_t>(file.tokens.size()); ++tid) {
    const std::string& token = file.tokens[tid];
    const auto it = all.token_ids.find(token);
    for (const std::uint32_t id : file.postings[tid]) {
      if (it == all.token_ids.end() ||
          !std::binary_search(all.postings[it->second].begin(),
                              all.postings[it->second].end(), id)) {
        stray("keyword token '" + token + "' posts i" + std::to_string(id) +
              ", which no history record justifies");
      }
    }
  }
  for (const auto& [user, ids] : file.users) {
    const auto it = all.users.find(user);
    for (const std::uint32_t id : ids) {
      if (it == all.users.end() ||
          !std::binary_search(it->second.begin(), it->second.end(), id)) {
        stray("user '" + user + "' posts i" + std::to_string(id) +
              ", which no history record justifies");
      }
    }
  }
  for (const auto& [type, entries] : file.by_type) {
    const auto it = all.by_type.find(type);
    for (const auto& entry : entries) {
      if (it == all.by_type.end() ||
          !std::binary_search(it->second.begin(), it->second.end(), entry)) {
        stray("type '" + type + "' lists i" + std::to_string(entry.second) +
              ", which no history record justifies");
      }
    }
  }
  if (orphan > kMaxDetails) {
    warn(report, "orphan-index",
         std::to_string(orphan) + " orphan postings in total");
  }

  if (file.instances != minimal.instances) {
    warn(report, "stale-index-epoch",
         "indexes.herc describes " + std::to_string(file.instances) +
             " instances but the store held " +
             std::to_string(minimal.instances) + " at journal seq " +
             std::to_string(file.seq) + "; recovery rebuilds the index");
  }
  if (file.edges != minimal.edges ||
      file.adjacency_digest != minimal.adjacency_digest) {
    warn(report, "index-adjacency-mismatch",
         "derivation-adjacency digest differs (file holds " +
             std::to_string(file.edges) + " edge(s), the history implies " +
             std::to_string(minimal.edges) +
             "); recovery rebuilds the index");
  }
}

/// Serializes the (possibly repaired) audit state back into a
/// `HistoryDb::save`-compatible image.
std::string serialize_image(const Audit& audit,
                            const std::unordered_set<std::string>& keep_blobs) {
  std::string out;
  for (const auto& [key, payload] : audit.blobs) {
    if (!keep_blobs.contains(key)) continue;
    out += support::RecordWriter("blob").field(key).field(payload).str();
    out += '\n';
  }
  for (const AuditInstance& inst : audit.instances) {
    support::RecordWriter w("inst");
    w.field(inst.id);
    w.field(inst.type);
    w.field(inst.name);
    w.field(inst.user);
    w.field(inst.created);
    w.field(inst.comment);
    w.field(inst.blob);
    w.field(inst.version);
    w.field(inst.status);
    w.field(inst.task);
    w.field(inst.tool);
    w.field(static_cast<std::uint32_t>(inst.inputs.size()));
    for (const auto& [in, role] : inst.inputs) {
      w.field(in);
      w.field(role);
    }
    out += w.str();
    out += '\n';
  }
  for (const AuditRun& run : audit.runs) {
    support::RecordWriter b("runb");
    b.field(static_cast<std::int64_t>(run.id));
    b.field(run.flow_name);
    b.field(run.goal);
    b.field(run.goal_node);
    b.field(run.user);
    b.field(run.options);
    b.field(run.seed);
    b.field(run.db_size);
    b.field(run.flow_text);
    out += b.str();
    out += '\n';
    for (const AuditTask& task : run.tasks) {
      out += support::RecordWriter("tstart")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(task.key)
                 .str();
      out += '\n';
    }
    if (!run.covered.empty()) {
      support::RecordWriter w("tcover");
      w.field(static_cast<std::int64_t>(run.id));
      w.field(static_cast<std::uint32_t>(run.covered.size()));
      for (const std::int64_t id : run.covered) w.field(id);
      out += w.str();
      out += '\n';
    }
    for (const AuditTask& task : run.tasks) {
      if (!task.finished) continue;
      out += support::RecordWriter("tfin")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(task.key)
                 .field(task.status)
                 .str();
      out += '\n';
    }
    if (run.sweep_end >= 0) {
      out += support::RecordWriter("runseal")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(static_cast<std::uint32_t>(run.sweep_end))
                 .str();
      out += '\n';
    }
    if (!run.outcome.empty()) {
      out += support::RecordWriter("rune")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(run.outcome)
                 .str();
      out += '\n';
    }
  }
  return out;
}

/// Applies the repair verdicts and checkpoints the cleaned image under the
/// next epoch with a fresh journal.
void repair_store(Audit& audit, FsckReport& report,
                  const std::string& snapshot_path,
                  const std::string& journal_path) {
  const std::string empty_key = data::BlobStore::key_for("");
  bool need_empty_blob = false;
  for (AuditInstance& inst : audit.instances) {
    if (inst.tombstone) {
      // Keep the id slot (later references stay valid) but drop everything
      // untrustworthy: payload, derivation, OK status.
      if (inst.status == 0) inst.status = 3;
      inst.blob = empty_key;
      inst.tool = -1;
      inst.inputs.clear();
      need_empty_blob = true;
      if (!inst.comment.empty()) inst.comment += ' ';
      inst.comment += "[fsck: tombstoned — " + inst.tombstone_reason + "]";
      report.repairs.push_back("tombstoned i" + std::to_string(inst.id) +
                               " (" + inst.tombstone_reason + ")");
    } else if (inst.quarantine && inst.status == 0) {
      inst.status = 3;
      if (!inst.comment.empty()) inst.comment += ' ';
      inst.comment += "[quarantined: fsck repair — producing task of an "
                      "interrupted run never finished]";
      report.repairs.push_back("quarantined partial product i" +
                               std::to_string(inst.id));
    }
  }
  if (need_empty_blob && !audit.blob_index.contains(empty_key)) {
    audit.blob_index.emplace(empty_key, audit.blobs.size());
    audit.blobs.emplace_back(empty_key, "");
  }

  // Drop covered ids that point outside the table (their frames were
  // corrupt); the instances they would have covered no longer exist.
  for (AuditRun& run : audit.runs) {
    std::erase_if(run.covered, [&](std::int64_t id) {
      return id < 0 || static_cast<std::size_t>(id) >= audit.instances.size();
    });
  }

  // Orphan sweep over the post-tombstone reference set.
  std::unordered_set<std::string> keep;
  for (const AuditInstance& inst : audit.instances) keep.insert(inst.blob);
  std::size_t swept = 0;
  for (const auto& [key, payload] : audit.blobs) {
    if (!keep.contains(key)) ++swept;
  }
  if (swept > 0) {
    report.repairs.push_back("swept " + std::to_string(swept) +
                             " orphan blob(s)");
  }
  if (audit.dropped_records > 0) {
    report.repairs.push_back("dropped " +
                             std::to_string(audit.dropped_records) +
                             " unreadable record(s)");
  }

  const std::uint64_t next_epoch = report.stats.epoch + 1;
  support::RecordWriter meta("snap");
  meta.field(static_cast<std::int64_t>(next_epoch));
  meta.field(static_cast<std::uint32_t>(audit.instances.size()));
  write_file_atomic(snapshot_path,
                    meta.str() + "\n" + serialize_image(audit, keep));
  // Same crash ordering as `DurableHistory::checkpoint`: if we die before
  // the journal reset, recovery discards the stale-epoch journal.
  Journal::create(journal_path, next_epoch, JournalOptions{});
  report.repairs.push_back("checkpointed repaired image at epoch " +
                           std::to_string(next_epoch));
}

}  // namespace

FsckReport fsck_store(const std::string& dir, const FsckOptions& options) {
  FsckReport report;
  report.dir = dir;
  const std::string schema_path = (fs::path(dir) / "schema.herc").string();
  const std::string snapshot_path =
      (fs::path(dir) / "snapshot.herc").string();
  const std::string journal_path = (fs::path(dir) / "journal.wal").string();
  if (!fs::exists(schema_path)) {
    throw HistoryError("fsck: '" + dir + "' does not hold a store (no " +
                       "schema.herc)");
  }

  // A replica marker changes the audit's reading of open runs (they are
  // the leader's live runs) and rules out repair: a repair checkpoint
  // would bump the epoch out from under the replication stream.
  const std::string marker_path = (fs::path(dir) / "replica.herc").string();
  const bool replica = fs::exists(marker_path);
  if (replica) {
    std::string marker;
    try {
      marker = std::string(support::trim(read_file(marker_path)));
    } catch (const std::exception&) {
    }
    note(report, "replica-store",
         marker.empty() ? "this store is a read replica" : marker);
  }

  // Schema: needed only for entity-name checks; a broken schema is itself
  // corruption but must not stop the audit.
  schema::TaskSchema schema;
  const schema::TaskSchema* schema_ptr = nullptr;
  try {
    schema = schema::parse_schema(read_file(schema_path));
    schema_ptr = &schema;
  } catch (const std::exception& e) {
    corrupt(report, "bad-schema",
            std::string("schema.herc does not parse: ") + e.what());
  }

  Audit audit;

  // Secondary indexes: parse `indexes.herc` up front — its journal seq
  // decides where the point-in-time comparison image is captured during
  // ingest below.  A file that fails its own checksum is only a warning:
  // recovery never trusts a skewed index, it rebuilds.
  const std::string index_path = index::HistoryIndexes::file_path(dir);
  index::IndexImage index_file;
  bool index_usable = false;
  if (fs::exists(index_path)) {
    std::string error;
    if (index::IndexImage::parse(read_file(index_path), index_file, error)) {
      index_usable = true;
    } else {
      warn(report, "index-unreadable",
           "indexes.herc: " + error + "; recovery rebuilds the index");
    }
  }
  index::IndexImage index_all;  // every posting ever legitimate
  std::vector<AuditInstance> at_index_seq;
  bool at_index_seq_valid = false;
  const auto fold_index_line = [&](const std::string& line) {
    try {
      index_all.apply_line(line);
    } catch (const std::exception&) {
      // Unparseable lines are already "bad-record" findings.
    }
  };

  // Snapshot: "snap" meta line, then a full save() image.
  if (fs::exists(snapshot_path)) {
    const std::string text = read_file(snapshot_path);
    bool seen_meta = false;
    std::int64_t declared_count = -1;
    for (const std::string& line : support::split(text, '\n')) {
      if (support::trim(line).empty()) continue;
      if (!seen_meta) {
        seen_meta = true;
        try {
          support::RecordReader rec(line);
          if (rec.kind() != "snap") {
            throw HistoryError("first record is '" + rec.kind() + "'");
          }
          report.stats.epoch = static_cast<std::uint64_t>(rec.next_int64());
          if (!rec.exhausted()) declared_count = rec.next_int64();
          continue;
        } catch (const std::exception& e) {
          corrupt(report, "bad-snapshot-header",
                  std::string("snapshot does not start with a valid snap "
                              "record: ") +
                      e.what());
          continue;
        }
      }
      ingest_line(audit, report, line, "snapshot");
      fold_index_line(line);
      ++report.stats.snapshot_records;
    }
    if (declared_count >= 0 &&
        static_cast<std::size_t>(declared_count) != audit.instances.size()) {
      corrupt(report, "snapshot-count-mismatch",
              "snapshot declares " + std::to_string(declared_count) +
                  " instances but holds " +
                  std::to_string(audit.instances.size()));
    }
  }

  const bool index_epoch_ok =
      index_usable && index_file.epoch == report.stats.epoch;
  if (index_epoch_ok && index_file.seq == 0) {
    at_index_seq = audit.instances;
    at_index_seq_valid = true;
  }

  // Journal: epoch-matched frames on top of the snapshot.
  if (fs::exists(journal_path)) {
    const ScanResult scan = scan_journal(read_file(journal_path));
    if (!scan.header_valid) {
      corrupt(report, "bad-record", "journal header is invalid");
    } else if (scan.epoch < report.stats.epoch) {
      warn(report, "stale-journal-epoch",
           "journal epoch " + std::to_string(scan.epoch) +
               " predates snapshot epoch " +
               std::to_string(report.stats.epoch) + "; " +
               std::to_string(scan.records.size()) +
               " records already absorbed by the snapshot");
    } else if (scan.epoch > report.stats.epoch) {
      corrupt(report, "future-journal-epoch",
              "journal epoch " + std::to_string(scan.epoch) +
                  " is ahead of snapshot epoch " +
                  std::to_string(report.stats.epoch) +
                  "; the snapshot those records extend is gone");
    } else {
      std::size_t applied = 0;
      for (const std::string& record : scan.records) {
        for (const std::string& line : support::split(record, '\n')) {
          if (support::trim(line).empty()) continue;
          ingest_line(audit, report, line, "journal");
          fold_index_line(line);
        }
        ++applied;
        if (index_epoch_ok && index_file.seq == applied) {
          at_index_seq = audit.instances;
          at_index_seq_valid = true;
        }
      }
      report.stats.journal_records = scan.records.size();
      if (scan.torn) {
        warn(report, "torn-journal-tail",
             "journal ends in a torn frame (recovery truncates it)");
      }
    }
  }

  audit_store(audit, report, schema_ptr, replica);

  if (index_usable) {
    if (!index_epoch_ok) {
      warn(report, "stale-index-epoch",
           "indexes.herc is stamped epoch " +
               std::to_string(index_file.epoch) +
               " but the store is at epoch " +
               std::to_string(report.stats.epoch) +
               "; recovery rebuilds the index");
    } else if (!at_index_seq_valid) {
      warn(report, "stale-index-epoch",
           "indexes.herc is stamped journal seq " +
               std::to_string(index_file.seq) +
               " but the journal holds only " +
               std::to_string(report.stats.journal_records) +
               " record(s); recovery rebuilds the index");
    } else {
      audit_index(index_file, index_all, at_index_seq, report);
    }
  }

  report.stats.instances = audit.instances.size();
  report.stats.blobs = audit.blobs.size();
  report.stats.runs = audit.runs.size();
  for (const AuditRun& run : audit.runs) {
    if (run.outcome.empty()) ++report.stats.open_runs;
  }

  // Clean-severity notes (a sealed resumable run) need no repair; rewriting
  // the snapshot for them would churn the epoch for nothing.
  if (options.repair && report.severity() != FsckSeverity::kClean) {
    if (replica) {
      warn(report, "replica-no-repair",
           "refusing --repair on a replica store: a repair checkpoint would"
           " bump the epoch out from under the replication stream; resync"
           " the replica or promote it first");
    } else {
      repair_store(audit, report, snapshot_path, journal_path);
      // The repair checkpoint bumped the epoch; rewrite the index from the
      // repaired image so the next open loads warm instead of detecting
      // skew and rebuilding cold.
      index::IndexImage fresh = index_from_instances(audit.instances);
      fresh.epoch = report.stats.epoch + 1;
      fresh.seq = 0;
      write_file_atomic(index_path, fresh.serialize());
      report.repairs.push_back("rebuilt secondary indexes at epoch " +
                               std::to_string(report.stats.epoch + 1));
    }
  }
  return report;
}

}  // namespace herc::storage
