#include "storage/journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "support/error.hpp"
#include "support/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define HERC_HAVE_FSYNC 1
#endif

namespace herc::storage {

using support::HistoryError;

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_u32(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 3]))
          << 24);
}

std::uint64_t read_u64(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint64_t>(read_u32(bytes, at)) |
         (static_cast<std::uint64_t>(read_u32(bytes, at + 4)) << 32);
}

void fsync_file(std::FILE* file) {
#ifdef HERC_HAVE_FSYNC
  ::fsync(::fileno(file));
#else
  (void)file;
#endif
}

}  // namespace

std::uint32_t frame_checksum(std::string_view payload) {
  std::string length;
  put_u32(length, static_cast<std::uint32_t>(payload.size()));
  const std::uint64_t h =
      support::fnv1a_append(support::fnv1a(length), payload);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

ScanResult scan_journal(std::string_view bytes) {
  ScanResult result;
  if (bytes.size() < kJournalHeaderBytes ||
      bytes.substr(0, kJournalMagic.size()) != kJournalMagic) {
    result.torn = !bytes.empty();
    return result;
  }
  result.header_valid = true;
  result.epoch = read_u64(bytes, kJournalMagic.size());
  std::size_t at = kJournalHeaderBytes;
  while (at + kFrameHeaderBytes <= bytes.size()) {
    const std::uint32_t length = read_u32(bytes, at);
    const std::uint32_t check = read_u32(bytes, at + 4);
    if (at + kFrameHeaderBytes + length > bytes.size()) break;
    const std::string_view payload =
        bytes.substr(at + kFrameHeaderBytes, length);
    if (frame_checksum(payload) != check) break;
    result.records.emplace_back(payload);
    at += kFrameHeaderBytes + length;
  }
  result.valid_bytes = at;
  result.torn = at != bytes.size();
  return result;
}

Journal::Journal(std::FILE* file, std::string path, std::uint64_t epoch,
                 std::uint64_t bytes, JournalOptions options)
    : file_(file),
      path_(std::move(path)),
      epoch_(epoch),
      bytes_(bytes),
      options_(options) {}

Journal Journal::create(const std::string& path, std::uint64_t epoch,
                        JournalOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw HistoryError("journal: cannot create '" + path +
                       "': " + std::strerror(errno));
  }
  std::string header(kJournalMagic);
  put_u64(header, epoch);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    std::fclose(file);
    throw HistoryError("journal: cannot write header to '" + path + "'");
  }
  std::fflush(file);
  if (options.sync != SyncPolicy::kNone) fsync_file(file);
  return Journal(file, path, epoch, header.size(), options);
}

Journal Journal::open(const std::string& path, std::uint64_t epoch,
                      std::uint64_t size, JournalOptions options) {
  // Appending under the wrong epoch would splice records into a journal
  // that extends a different snapshot, so verify the on-disk header first.
  {
    std::FILE* head = std::fopen(path.c_str(), "rb");
    if (head == nullptr) {
      throw HistoryError("journal: cannot open '" + path +
                         "': " + std::strerror(errno));
    }
    char buffer[kJournalHeaderBytes];
    const std::size_t got = std::fread(buffer, 1, sizeof buffer, head);
    std::fclose(head);
    const std::string_view bytes(buffer, got);
    if (got < kJournalHeaderBytes ||
        bytes.substr(0, kJournalMagic.size()) != kJournalMagic) {
      throw HistoryError("journal: '" + path +
                         "' has no valid HERCWAL1 header");
    }
    const std::uint64_t disk_epoch = read_u64(bytes, kJournalMagic.size());
    if (disk_epoch != epoch) {
      throw HistoryError(
          "journal: '" + path + "' is at epoch " +
          std::to_string(disk_epoch) + " but the snapshot expects epoch " +
          std::to_string(epoch) + "; it extends a different snapshot");
    }
  }
  // "ab" appends at the end of file on every write; the caller has already
  // truncated the file to `size` valid bytes.
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    throw HistoryError("journal: cannot open '" + path +
                       "': " + std::strerror(errno));
  }
  return Journal(file, path, epoch, size, options);
}

Journal::Journal(Journal&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      epoch_(other.epoch_),
      bytes_(other.bytes_),
      appended_(other.appended_),
      since_sync_(other.since_sync_),
      options_(other.options_) {
  other.file_ = nullptr;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    epoch_ = other.epoch_;
    bytes_ = other.bytes_;
    appended_ = other.appended_;
    since_sync_ = other.since_sync_;
    options_ = other.options_;
    other.file_ = nullptr;
  }
  return *this;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  if (options_.sync != SyncPolicy::kNone) fsync_file(file_);
  std::fclose(file_);
  file_ = nullptr;
}

void Journal::append(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, frame_checksum(payload));
  frame += payload;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    throw HistoryError("journal: write failed on '" + path_ +
                       "': " + std::strerror(errno));
  }
  bytes_ += frame.size();
  ++appended_;
  switch (options_.sync) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kCommit:
      sync();
      break;
    case SyncPolicy::kInterval:
      if (++since_sync_ >= options_.sync_interval) sync();
      break;
  }
}

void Journal::sync() {
  std::fflush(file_);
  fsync_file(file_);
  since_sync_ = 0;
}

}  // namespace herc::storage
