// Content-addressed design-data storage.
//
// The paper (footnote 5) observes that many history instances — including
// different versions of the same design — may share the *physical* data,
// e.g. several meta-data records pointing at one RCS file.  The blob store
// reproduces that: payloads are stored once, keyed by content hash, and any
// number of instances reference the same key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace herc::data {

/// A content key: 16 hex digits of the payload's FNV-1a hash.
using BlobKey = std::string;

/// Deduplicating payload store.
class BlobStore {
 public:
  /// Stores `payload` (no-op when already present) and returns its key.
  BlobKey put(std::string_view payload);

  /// The content key `payload` would get, without storing anything.
  [[nodiscard]] static BlobKey key_for(std::string_view payload);

  /// Restores a persisted record: recomputes `payload`'s content hash,
  /// throws `HistoryError` when it does not match `key` (a corrupt or
  /// tampered file), and stores the payload otherwise.  A corrupt payload
  /// is never admitted to the store.
  void restore(const BlobKey& key, std::string_view payload);

  [[nodiscard]] bool contains(const BlobKey& key) const;

  /// Payload for `key`; throws `HistoryError` when absent.
  [[nodiscard]] const std::string& get(const BlobKey& key) const;

  /// Number of distinct payloads.
  [[nodiscard]] std::size_t size() const { return blobs_.size(); }

  /// Bytes actually stored (after deduplication).
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_stored_; }

  /// Bytes that would be stored without sharing (every `put` counted).
  [[nodiscard]] std::uint64_t bytes_logical() const { return bytes_logical_; }

  /// All keys, in insertion order (for persistence).
  [[nodiscard]] const std::vector<BlobKey>& keys() const { return order_; }

  /// One save()-format record line for `key` (no trailing newline).
  [[nodiscard]] std::string record_line(const BlobKey& key) const;

  /// Serializes to record lines / restores from them.
  [[nodiscard]] std::string save() const;
  [[nodiscard]] static BlobStore load(std::string_view text);

 private:
  std::unordered_map<BlobKey, std::string> blobs_;
  std::vector<BlobKey> order_;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t bytes_logical_ = 0;
};

}  // namespace herc::data
