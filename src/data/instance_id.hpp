// Identifier for entity *instances* (concrete design objects).
//
// Lives in the data layer so that flow graphs can carry instance bindings
// without depending on the history database that owns the instances.
#pragma once

#include "support/ids.hpp"

namespace herc::data {

struct InstanceTag {};
/// Identifies one entity instance in a design-history database.
using InstanceId = support::Id<InstanceTag>;

}  // namespace herc::data
