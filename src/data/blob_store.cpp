#include "data/blob_store.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::data {

using support::HistoryError;

BlobKey BlobStore::put(std::string_view payload) {
  BlobKey key = key_for(payload);
  bytes_logical_ += payload.size();
  auto [it, inserted] = blobs_.try_emplace(key, std::string(payload));
  if (inserted) {
    bytes_stored_ += payload.size();
    order_.push_back(key);
  }
  return key;
}

BlobKey BlobStore::key_for(std::string_view payload) {
  return support::hash_hex(support::fnv1a(payload));
}

void BlobStore::restore(const BlobKey& key, std::string_view payload) {
  if (key_for(payload) != key) {
    throw HistoryError("blob store: content hash mismatch for key '" + key +
                       "' (corrupt record rejected)");
  }
  put(payload);
}

bool BlobStore::contains(const BlobKey& key) const {
  return blobs_.contains(key);
}

const std::string& BlobStore::get(const BlobKey& key) const {
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    throw HistoryError("no blob with key '" + key + "'");
  }
  return it->second;
}

std::string BlobStore::record_line(const BlobKey& key) const {
  return support::RecordWriter("blob").field(key).field(get(key)).str();
}

std::string BlobStore::save() const {
  std::string out;
  for (const BlobKey& key : order_) {
    out += record_line(key);
    out += '\n';
  }
  return out;
}

BlobStore BlobStore::load(std::string_view text) {
  BlobStore store;
  for (const std::string& line : support::split(text, '\n')) {
    if (support::trim(line).empty()) continue;
    support::RecordReader rec(line);
    if (rec.kind() != "blob") {
      throw HistoryError("blob store: unexpected record '" + rec.kind() +
                         "'");
    }
    const std::string key = rec.next_string();
    const std::string payload = rec.next_string();
    store.restore(key, payload);
  }
  return store;
}

}  // namespace herc::data
