#include "data/blob_store.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::data {

using support::HistoryError;

BlobKey BlobStore::put(std::string_view payload) {
  BlobKey key = support::hash_hex(support::fnv1a(payload));
  bytes_logical_ += payload.size();
  auto [it, inserted] = blobs_.try_emplace(key, std::string(payload));
  if (inserted) {
    bytes_stored_ += payload.size();
    order_.push_back(key);
  }
  return key;
}

bool BlobStore::contains(const BlobKey& key) const {
  return blobs_.contains(key);
}

const std::string& BlobStore::get(const BlobKey& key) const {
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    throw HistoryError("no blob with key '" + key + "'");
  }
  return it->second;
}

std::string BlobStore::save() const {
  std::string out;
  for (const BlobKey& key : order_) {
    out += support::RecordWriter("blob")
               .field(key)
               .field(blobs_.at(key))
               .str();
    out += '\n';
  }
  return out;
}

BlobStore BlobStore::load(std::string_view text) {
  BlobStore store;
  for (const std::string& line : support::split(text, '\n')) {
    if (support::trim(line).empty()) continue;
    support::RecordReader rec(line);
    if (rec.kind() != "blob") {
      throw HistoryError("blob store: unexpected record '" + rec.kind() +
                         "'");
    }
    const std::string key = rec.next_string();
    const std::string payload = rec.next_string();
    const BlobKey recomputed = store.put(payload);
    if (recomputed != key) {
      throw HistoryError("blob store: content hash mismatch for key '" + key +
                         "'");
    }
  }
  return store;
}

}  // namespace herc::data
