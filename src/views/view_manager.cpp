#include "views/view_manager.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace herc::views {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using support::ExecError;

const char* to_string(ViewKind k) {
  switch (k) {
    case ViewKind::kLogic: return "logic";
    case ViewKind::kTransistor: return "transistor";
    case ViewKind::kPhysical: return "physical";
  }
  return "?";
}

ViewManager::ViewManager(history::HistoryDb& db,
                         const tools::ToolRegistry& tools)
    : db_(&db), tools_(&tools), executor_(db, tools) {}

ViewManager::Cell& ViewManager::cell_of(std::string_view name) {
  for (Cell& c : cells_) {
    if (c.name == name) return c;
  }
  cells_.push_back(Cell{std::string(name), {}});
  return cells_.back();
}

const ViewManager::Cell* ViewManager::find_cell(std::string_view name) const {
  for (const Cell& c : cells_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void ViewManager::register_view(std::string_view cell, ViewKind kind,
                                InstanceId instance) {
  const schema::TaskSchema& schema = db_->schema();
  const schema::EntityTypeId type = db_->instance(instance).type;
  const char* want = nullptr;
  switch (kind) {
    case ViewKind::kLogic: want = "LogicView"; break;
    case ViewKind::kTransistor: want = "Netlist"; break;
    case ViewKind::kPhysical: want = "Layout"; break;
  }
  const schema::EntityTypeId want_type = schema.require(want);
  if (!schema.is_ancestor_or_self(want_type, type)) {
    throw ExecError("instance of type '" + schema.entity_name(type) +
                    "' cannot serve as the " + to_string(kind) +
                    " view (needs a " + want + ")");
  }
  cell_of(cell).views[static_cast<int>(kind)] = instance;
}

std::optional<InstanceId> ViewManager::view(std::string_view cell,
                                            ViewKind kind) const {
  const Cell* c = find_cell(cell);
  if (c == nullptr) return std::nullopt;
  return c->views[static_cast<int>(kind)];
}

InstanceId ViewManager::require_view(std::string_view cell,
                                     ViewKind kind) const {
  const auto v = view(cell, kind);
  if (!v) {
    throw ExecError("cell '" + std::string(cell) + "' has no " +
                    to_string(kind) + " view registered");
  }
  return *v;
}

InstanceId ViewManager::synthesize_transistor(std::string_view cell,
                                              InstanceId synthesizer) {
  const InstanceId logic = require_view(cell, ViewKind::kLogic);
  TaskGraph flow(db_->schema(), "synthesize:" + std::string(cell));
  const NodeId goal = flow.add_node("SynthesizedNetlist");
  flow.expand(goal);
  flow.bind(flow.tool_of(goal), synthesizer);
  flow.bind(flow.inputs_of(goal)[0], logic);
  const InstanceId produced = executor_.run(flow).single(goal);
  register_view(cell, ViewKind::kTransistor, produced);
  return produced;
}

InstanceId ViewManager::synthesize_physical(std::string_view cell,
                                            InstanceId placer) {
  const InstanceId transistor = require_view(cell, ViewKind::kTransistor);
  // Fig. 8a: PlacedLayout <-fd- Placer, <-dd- Netlist.
  TaskGraph flow(db_->schema(), "layout:" + std::string(cell));
  const NodeId goal = flow.add_node("PlacedLayout");
  flow.expand(goal);
  flow.bind(flow.tool_of(goal), placer);
  flow.bind(flow.inputs_of(goal)[0], transistor);
  const InstanceId produced = executor_.run(flow).single(goal);
  register_view(cell, ViewKind::kPhysical, produced);
  return produced;
}

circuit::VerificationReport ViewManager::verify_correspondence(
    std::string_view cell, InstanceId verifier) {
  const InstanceId transistor = require_view(cell, ViewKind::kTransistor);
  const InstanceId physical = require_view(cell, ViewKind::kPhysical);
  // Fig. 8b: Verification <-fd- Verifier, <-dd- Layout, <-dd- Netlist.
  TaskGraph flow(db_->schema(), "verify:" + std::string(cell));
  const NodeId goal = flow.add_node("Verification");
  flow.expand(goal);
  flow.bind(flow.tool_of(goal), verifier);
  const auto inputs = flow.inputs_of(goal);
  flow.bind(inputs[0], physical);
  flow.bind(inputs[1], transistor);
  const InstanceId produced = executor_.run(flow).single(goal);
  return circuit::VerificationReport::from_text(db_->payload(produced));
}

bool ViewManager::physical_up_to_date(std::string_view cell) const {
  const Cell* c = find_cell(cell);
  if (c == nullptr) return false;
  const auto physical = c->views[static_cast<int>(ViewKind::kPhysical)];
  const auto transistor = c->views[static_cast<int>(ViewKind::kTransistor)];
  if (!physical || !transistor) return false;
  if (db_->is_stale(*physical)) return false;
  const auto closure = db_->derivation_closure(*physical);
  return std::find(closure.begin(), closure.end(), *transistor) !=
         closure.end();
}

TaskGraph ViewManager::synthesis_flow() const {
  TaskGraph flow(db_->schema(), "fig8a-synthesis");
  const NodeId goal = flow.add_node("PlacedLayout");
  flow.expand(goal);
  return flow;
}

TaskGraph ViewManager::verification_flow() const {
  TaskGraph flow(db_->schema(), "fig8b-verification");
  const NodeId goal = flow.add_node("Verification");
  flow.expand(goal);
  return flow;
}

}  // namespace herc::views
