// View management expressed as flows (paper §3.3, Figs. 7–8).
//
// Designers think of a cell as having a logic view, a transistor-level
// view and a physical (layout) view.  Most frameworks made keeping those
// views consistent a data-management problem; the paper's point is that
// when views are entities in the task schema, *flows between the views*
// express both synthesis (Fig. 8a: physical from transistor) and
// verification (Fig. 8b: physical against transistor), and the design
// history answers "is this view up to date?" for free.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "circuit/verify.hpp"
#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "tools/registry.hpp"

namespace herc::views {

enum class ViewKind { kLogic, kTransistor, kPhysical };

[[nodiscard]] const char* to_string(ViewKind k);

class ViewManager {
 public:
  /// All of `db`, `tools` must outlive the manager and share one schema
  /// (the full schema: `LogicView`, `Netlist`, `Layout` must exist).
  ViewManager(history::HistoryDb& db, const tools::ToolRegistry& tools);

  /// Associates an instance with a view slot of `cell`.  The instance type
  /// must fit the view kind (`LogicView` / a `Netlist` / a `Layout`);
  /// throws `ExecError` otherwise.
  void register_view(std::string_view cell, ViewKind kind,
                     data::InstanceId instance);

  [[nodiscard]] std::optional<data::InstanceId> view(std::string_view cell,
                                                     ViewKind kind) const;

  /// Fig. 8a (first stage): synthesize the transistor view from the logic
  /// view with `synthesizer` and register it.  Returns the new instance.
  data::InstanceId synthesize_transistor(std::string_view cell,
                                         data::InstanceId synthesizer);

  /// Fig. 8a: synthesize the physical view from the transistor view with
  /// `placer` and register it.
  data::InstanceId synthesize_physical(std::string_view cell,
                                       data::InstanceId placer);

  /// Fig. 8b: verify that the physical view corresponds to the transistor
  /// view, using `verifier`.  Returns the parsed verification report; the
  /// Verification instance lands in the history like any task product.
  circuit::VerificationReport verify_correspondence(
      std::string_view cell, data::InstanceId verifier);

  /// True when the physical view exists, is not stale, and was derived
  /// from the currently registered transistor view.
  [[nodiscard]] bool physical_up_to_date(std::string_view cell) const;

  /// The Fig. 8a flow (unbound), for display or cataloging.
  [[nodiscard]] graph::TaskGraph synthesis_flow() const;
  /// The Fig. 8b flow (unbound).
  [[nodiscard]] graph::TaskGraph verification_flow() const;

 private:
  struct Cell {
    std::string name;
    std::optional<data::InstanceId> views[3];
  };
  [[nodiscard]] Cell& cell_of(std::string_view name);
  [[nodiscard]] const Cell* find_cell(std::string_view name) const;
  [[nodiscard]] data::InstanceId require_view(std::string_view cell,
                                              ViewKind kind) const;

  history::HistoryDb* db_;
  const tools::ToolRegistry* tools_;
  exec::Executor executor_;
  std::vector<Cell> cells_;
};

}  // namespace herc::views
