// The design-history database (paper §3.3, §4.2).
//
// The task schema doubles as this database's data schema: instances are
// typed by schema entities, and each carries the derivation meta-data
// (tool instance + input instances) of the task that created it.  On top of
// that single table the paper builds backward-chaining queries ("what was
// this made from?"), forward-chaining queries ("what was made from this?"),
// template queries using a task graph as the query form, staleness analysis
// for design-consistency maintenance, and version management.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/blob_store.hpp"
#include "history/instance.hpp"
#include "schema/task_schema.hpp"

namespace herc::history {

/// Everything needed to register a freshly produced instance.
struct RecordRequest {
  schema::EntityTypeId type;
  std::string name;
  std::string user;
  std::string comment;
  std::string payload;
  /// `kFailed`/`kSkipped` register a failure record: the attempt's
  /// derivation is kept for §4.2 queries, but the record never satisfies
  /// binding, memoization or version queries.
  InstanceStatus status = InstanceStatus::kOk;
  Derivation derivation;
};

/// Per-task progress of a journaled run.  `key` names the task group by
/// the compact node id and entity name of its primary output in the run's
/// saved flow text, so it stays stable across save/load.
struct RunTask {
  std::string key;
  bool finished = false;
  /// Final verdict name ("ok", "partial", "failed", "skipped"); empty
  /// while the task is in flight.
  std::string status;
};

/// One journaled flow execution.  The run-begin frame carries everything
/// needed to re-execute the flow after a crash (the bound flow itself, the
/// executor options, the fault-injection seed); task frames record
/// progress, and the covered-instance list lets crash recovery quarantine
/// partial products of tasks that started but never finished.
struct RunRecord {
  std::uint64_t id = 0;
  std::string flow_name;
  /// Entity name of the goal for a sub-flow run; empty for a full run.
  std::string goal;
  /// Compact node id of the goal in `flow_text` (-1 = whole flow).
  std::int64_t goal_node = -1;
  std::string user;
  /// Encoded ExecOptions (exec layer format), replayed by resume.
  std::string options;
  /// Fault-injection seed in effect (0 = none).
  std::uint64_t seed = 0;
  /// Database size when the run began: instances at or above this index
  /// were (re)corded during the run.
  std::uint32_t db_size_at_begin = 0;
  /// `TaskGraph::save()` of the bound flow; cleared when the run ends so
  /// closed runs cost nothing to keep.
  std::string flow_text;
  /// "" while open; "complete", "failed" or "resumed" once ended.
  std::string outcome;
  std::vector<RunTask> tasks;
  /// Instances recorded under a completed task combination — anything the
  /// run produced that is *not* listed here is a partial product.
  std::vector<data::InstanceId> covered;
  /// One past the last instance index the crash-recovery sweep may treat
  /// as this run's partial product.  `kUnsealed` until the first recovery
  /// seals it; instances recorded after the seal (post-crash work in an
  /// unresumed store) are never this run's partials.
  static constexpr std::uint32_t kUnsealed = 0xffffffffu;
  std::uint32_t sweep_end = kUnsealed;

  [[nodiscard]] bool open() const { return outcome.empty(); }
  [[nodiscard]] bool sealed() const { return sweep_end != kUnsealed; }
  [[nodiscard]] std::size_t tasks_finished() const;
};

/// Observer of history mutations — the hook durable storage (src/storage)
/// attaches to.  `lines` holds one or more '\n'-terminated record lines in
/// the same format `save()` emits; feeding them to `apply_saved_line` in
/// order reproduces the mutation on another database.
class MutationListener {
 public:
  virtual ~MutationListener() = default;
  virtual void on_mutation(std::string_view lines) = 0;
};

/// Secondary observer of the record stream.  Unlike `MutationListener`
/// (the single durable-storage slot, which sees only locally originated
/// mutations and therefore *defines* the journal), observers also see
/// records arriving through `apply_saved_line` — the path journal recovery
/// and replica streaming feed — so derived structures (the secondary
/// indexes of src/index) stay current no matter how the database is fed.
/// A record is never observed twice: the public mutators fire observers
/// directly and never route through `apply_saved_line`.
class HistoryObserver {
 public:
  virtual ~HistoryObserver() = default;
  /// One mutation's save()-format record lines ('\n'-terminated), fired
  /// after the state change has been applied.
  virtual void on_lines(std::string_view lines) = 0;
  /// The database's contents were replaced wholesale (a replica resync's
  /// move-assignment); derived state must be rebuilt from the new image.
  virtual void on_reset() = 0;
};

class HistoryDb {
 public:
  /// `schema` and `clock` must outlive the database.
  HistoryDb(const schema::TaskSchema& schema, support::Clock& clock);

  HistoryDb(HistoryDb&&) noexcept = default;
  /// Move-assignment replaces the *contents* but keeps the target's
  /// observers attached, firing `on_reset` on each: a replica resync
  /// installs a fresh image underneath the secondary indexes without any
  /// re-registration.  The source's observers are dropped with it.
  HistoryDb& operator=(HistoryDb&& other) noexcept;

  [[nodiscard]] const schema::TaskSchema& schema() const { return *schema_; }
  [[nodiscard]] data::BlobStore& blobs() { return blobs_; }
  [[nodiscard]] const data::BlobStore& blobs() const { return blobs_; }

  // ---- writing -------------------------------------------------------------

  /// Registers an instance the designer supplied from outside any flow
  /// (a source entity or pre-existing data).  Throws `HistoryError` when
  /// `type` is abstract.
  data::InstanceId import_instance(schema::EntityTypeId type,
                                   std::string_view name,
                                   std::string_view payload,
                                   std::string_view user,
                                   std::string_view comment = "");

  /// Registers an instance produced by a task, with its derivation.
  /// Version numbering: when the derivation marks this as an *edit* (some
  /// input has the same root entity type as `type`), the new instance gets
  /// that input's version + 1; otherwise version 1.
  data::InstanceId record(const RecordRequest& request);

  /// Updates the user-facing annotation of an instance (§4.1).
  void annotate(data::InstanceId id, std::string_view name,
                std::string_view comment);

  /// Marks an OK instance as quarantined (crash recovery / fsck repair):
  /// it keeps its payload and derivation but becomes invisible to binding,
  /// memoization and version queries.  Throws `HistoryError` for failure
  /// or already-quarantined records.
  void quarantine(data::InstanceId id, std::string_view reason);

  // ---- run log (crash-resumable execution) ----------------------------------

  /// Opens a run: assigns the id and `db_size_at_begin`, journals the
  /// run-begin frame.  `run` supplies flow name/text, goal, user, options
  /// and seed; progress fields are reset.
  std::uint64_t begin_run(RunRecord run);
  /// Journals that the task `key` of `run` started executing.
  void run_task_started(std::uint64_t run, std::string_view key);
  /// Journals that one task combination recorded all of `produced`: those
  /// instances are complete products, never quarantine candidates.
  void run_task_covered(std::uint64_t run,
                        const std::vector<data::InstanceId>& produced);
  /// Journals the final verdict of task `key` ("ok", "partial", "failed",
  /// "skipped").  The task must have been started.
  void run_task_finished(std::uint64_t run, std::string_view key,
                         std::string_view status);
  /// Closes a run ("complete", "failed" or "resumed") and drops its stored
  /// flow text.  Throws when the run is already closed.
  void end_run(std::uint64_t run, std::string_view outcome);
  /// Seals the run's partial-product sweep window at the current table
  /// size (crash recovery calls this once per interrupted run, after the
  /// quarantine sweep).  Instances recorded later can never be mistaken
  /// for the run's partials, even if the store is reopened again before
  /// the run is resumed.  No-op on an already-sealed run.
  void seal_run(std::uint64_t run);

  /// What `seal_open_runs` did.
  struct SealSweep {
    /// Partial products quarantined by the sweep.
    std::size_t quarantined = 0;
    /// Open runs whose sweep window was sealed (already-sealed runs are
    /// counted among `open` but not here).
    std::size_t sealed = 0;
    /// Runs still open (and now sealed), resumable via `Executor::resume`.
    std::size_t open = 0;
  };

  /// The full interruption sweep: quarantines every open run's partial
  /// products (`reason` becomes the quarantine comment) and seals every
  /// open run's sweep window at the current table size.  Crash recovery
  /// runs this after replay; a serving process runs it on graceful
  /// shutdown so the store it leaves behind is consistent and resumable
  /// without any recovery work.  No-op (all zeros) when no run is open.
  SealSweep seal_open_runs(std::string_view reason);

  [[nodiscard]] const std::vector<RunRecord>& runs() const { return runs_; }
  /// The run with `id`, or nullptr.
  [[nodiscard]] const RunRecord* find_run(std::uint64_t id) const;
  /// Runs still open — after recovery these are the interrupted runs a
  /// crash left behind, resumable via `Executor::resume`.
  [[nodiscard]] std::vector<const RunRecord*> open_runs() const;
  /// OK, non-import instances recorded inside an open run's sweep window
  /// (from `db_size_at_begin` to its seal, the next run's begin, or the
  /// table end, whichever comes first) whose producing combination never
  /// completed (not in any run's `covered` list) — the candidates crash
  /// recovery quarantines.  Instances outside every open run's window
  /// (post-recovery work, later runs' products) are never reported.
  [[nodiscard]] std::vector<data::InstanceId> partial_products() const;

  // ---- reading -------------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return instances_.size(); }
  [[nodiscard]] bool contains(data::InstanceId id) const;
  [[nodiscard]] const Instance& instance(data::InstanceId id) const;
  [[nodiscard]] const std::string& payload(data::InstanceId id) const;
  [[nodiscard]] std::vector<data::InstanceId> all() const;

  /// Instances whose type is `type` (or a descendant, by default) — the
  /// browser's per-entity listing of Fig. 9.  Failure records are excluded
  /// unless `include_failures` is set: a failed output does not exist as
  /// design data.
  [[nodiscard]] std::vector<data::InstanceId> instances_of(
      schema::EntityTypeId type, bool include_subtypes = true,
      bool include_failures = false) const;

  /// All non-OK records (`kFailed`, `kSkipped` and `kQuarantined`), in
  /// creation order — the §4.2-style "which tasks failed, with what
  /// inputs?" query; each record's derivation names the tool and input
  /// instances of the attempt.
  [[nodiscard]] std::vector<data::InstanceId> failures() const;

  // ---- chaining queries (§4.2) ----------------------------------------------

  /// Immediate derivation inputs (tool first when present) — one step of
  /// backward chaining, i.e. the History pop-up of Fig. 10.
  [[nodiscard]] std::vector<data::InstanceId> derived_from(
      data::InstanceId id) const;

  /// Transitive closure of `derived_from`, excluding `id` itself, in
  /// breadth-first order.
  [[nodiscard]] std::vector<data::InstanceId> derivation_closure(
      data::InstanceId id) const;

  /// Instances whose derivation used `id` directly — one step of forward
  /// chaining (the "Use dependencies" browser option of Fig. 9).
  [[nodiscard]] std::vector<data::InstanceId> used_by(
      data::InstanceId id) const;

  /// Transitive closure of `used_by`, excluding `id`, breadth-first.
  [[nodiscard]] std::vector<data::InstanceId> dependent_closure(
      data::InstanceId id) const;

  // ---- versioning (§4.2, Fig. 11) --------------------------------------------

  /// True when `id`'s derivation marks it as an edit of `parent` (an input
  /// sharing `id`'s root entity type).
  [[nodiscard]] std::optional<data::InstanceId> edit_parent(
      data::InstanceId id) const;

  /// Direct edit successors of `id` (children in the version tree).
  [[nodiscard]] std::vector<data::InstanceId> edit_children(
      data::InstanceId id) const;

  /// True when a newer version of `id` exists (it has an edit successor).
  [[nodiscard]] bool superseded(data::InstanceId id) const;

  // ---- consistency maintenance (§3.3) -----------------------------------------

  /// An instance is *stale* when anything in its derivation closure has
  /// been superseded by a newer version — the condition that triggers
  /// automatic retracing.
  [[nodiscard]] bool is_stale(data::InstanceId id) const;

  /// The superseded instances that make `id` stale (empty when fresh).
  [[nodiscard]] std::vector<data::InstanceId> stale_inputs(
      data::InstanceId id) const;

  /// Finds an existing instance of `type` produced by `tool` from exactly
  /// `inputs` (order-insensitive) — the memoization query that lets the
  /// framework answer "has this extraction been performed yet?" without
  /// re-running it.
  [[nodiscard]] std::optional<data::InstanceId> find_existing(
      schema::EntityTypeId type, data::InstanceId tool,
      const std::vector<data::InstanceId>& inputs) const;

  // ---- persistence -------------------------------------------------------------

  /// Serializes blobs + instances to text.
  [[nodiscard]] std::string save() const;
  /// Restores a database saved with `save` against the same schema.
  [[nodiscard]] static HistoryDb load(const schema::TaskSchema& schema,
                                      support::Clock& clock,
                                      std::string_view text);

  /// Applies one save()-format record line ("blob", "inst", "annot", the
  /// run-log kinds "runb"/"tstart"/"tcover"/"tfin"/"runseal"/"rune", or
  /// "quar"),
  /// verifying content hashes and id ordering.  `load` is a loop over this;
  /// journal recovery (src/storage) replays incremental mutations through
  /// the same path.  Never notifies the attached listener; observers *are*
  /// notified, after the line has been applied.
  void apply_saved_line(std::string_view line);

  /// Attaches (or detaches, with nullptr) a mutation observer.  Every
  /// `record` / `import_instance` / `annotate` is reported after it has been
  /// applied, serialized as save()-format lines.  The listener must outlive
  /// the attachment.
  void attach_listener(MutationListener* listener) { listener_ = listener; }
  [[nodiscard]] MutationListener* listener() const { return listener_; }

  /// Registers a secondary observer (see `HistoryObserver`).  Unlike the
  /// listener slot, any number may be attached, and they also see records
  /// applied through `apply_saved_line`.  The observer must stay alive
  /// until removed.  Adding an observer twice is an error.
  void add_observer(HistoryObserver* observer);
  void remove_observer(HistoryObserver* observer);

 private:
  void check_id(data::InstanceId id) const;
  [[nodiscard]] schema::EntityTypeId root_type(schema::EntityTypeId t) const;
  [[nodiscard]] std::string instance_line(const Instance& inst) const;
  [[nodiscard]] static std::string run_begin_line(const RunRecord& run);

  /// State mutation shared by the public mutators (which also notify the
  /// listener) and `apply_saved_line` (which must not).
  [[nodiscard]] RunRecord& run_ref(std::uint64_t id);
  void apply_run_begin(RunRecord run);
  void apply_task_started(std::uint64_t run, std::string_view key);
  void apply_task_covered(std::uint64_t run,
                          const std::vector<data::InstanceId>& produced);
  void apply_task_finished(std::uint64_t run, std::string_view key,
                           std::string_view status);
  void apply_run_seal(std::uint64_t run, std::uint32_t sweep_end);
  void apply_run_end(std::uint64_t run, std::string_view outcome);
  void apply_quarantine(data::InstanceId id, std::string_view reason);

  /// True when some consumer wants mutation lines built at all.
  [[nodiscard]] bool observed() const {
    return listener_ != nullptr || !observers_.empty();
  }
  /// Sends `lines` to the listener (journal first — WAL discipline), then
  /// to every observer.
  void emit(std::string_view lines);

  const schema::TaskSchema* schema_;
  support::Clock* clock_;
  data::BlobStore blobs_;
  std::vector<Instance> instances_;
  /// Forward index: instance -> instances whose derivation used it.
  std::vector<std::vector<data::InstanceId>> used_by_;
  std::vector<RunRecord> runs_;
  MutationListener* listener_ = nullptr;
  std::vector<HistoryObserver*> observers_;
};

}  // namespace herc::history
