#include "history/query_language.hpp"

#include <cctype>

#include "history/flow_trace.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::history {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using support::FlowError;
using support::HistoryError;
using support::ParseError;

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Tokenizes, keeping quoted strings as single tokens (quotes stripped).
std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    if (text[i] == '"') {
      const std::size_t close = text.find('"', i + 1);
      if (close == std::string_view::npos) {
        throw ParseError("query: unterminated string literal");
      }
      out.emplace_back(std::string(1, '"') +
                       std::string(text.substr(i + 1, close - i - 1)));
      i = close + 1;
      continue;
    }
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

/// Resolves `iN` or a `"quoted name"` token to an instance.  With an
/// index, name lookup checks only the index's candidate set (a superset
/// of the exact matches); every candidate is verified against the stored
/// name, so answers match the scan exactly.
InstanceId resolve_instance(const HistoryDb& db, const std::string& token,
                            const SecondaryIndex* index) {
  if (!token.empty() && token[0] == '"') {
    const std::string name = token.substr(1);
    InstanceId found;
    std::optional<std::vector<InstanceId>> narrowed;
    if (index != nullptr) narrowed = index->name_candidates(name);
    const auto consider = [&](const InstanceId id) {
      if (db.contains(id) && db.instance(id).name == name) {
        if (found.valid()) {
          throw HistoryError("query: instance name '" + name +
                             "' is ambiguous");
        }
        found = id;
      }
    };
    if (narrowed) {
      for (const InstanceId id : *narrowed) consider(id);
    } else {
      for (const InstanceId id : db.all()) consider(id);
    }
    if (!found.valid()) {
      throw HistoryError("query: no instance named '" + name + "'");
    }
    return found;
  }
  if (token.size() < 2 || token[0] != 'i') {
    throw ParseError("query: expected iN or a quoted name, got '" + token +
                     "'");
  }
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(token.substr(1), &pos);
    if (pos + 1 != token.size()) throw std::invalid_argument("trailing");
    const InstanceId id(static_cast<std::uint32_t>(v));
    (void)db.instance(id);
    return id;
  } catch (const std::invalid_argument&) {
    throw ParseError("query: bad instance ref '" + token + "'");
  }
}

/// Descends one path step from `node`, creating (or reusing) the pattern
/// node for that derivation position.
NodeId descend(const HistoryDb& db, TaskGraph& pattern, NodeId node,
               const std::string& step) {
  const schema::TaskSchema& schema = db.schema();
  const schema::ConstructionRule rule =
      schema.construction(pattern.node(node).type);
  if (iequals(step, "tool")) {
    if (!rule.has_tool()) {
      throw FlowError("query: '" +
                      schema.entity_name(pattern.node(node).type) +
                      "' has no tool step");
    }
    const NodeId existing = pattern.tool_of(node);
    if (existing.valid()) return existing;
    const NodeId tool = pattern.add_node(rule.tool);
    pattern.connect(node, tool);
    return tool;
  }
  // Match the step against arc roles first, then target entity names.
  const schema::Dependency* arc = nullptr;
  for (const schema::Dependency& d : rule.inputs) {
    if (iequals(d.role, step)) {
      arc = &d;
      break;
    }
  }
  if (arc == nullptr) {
    for (const schema::Dependency& d : rule.inputs) {
      if (iequals(schema.entity_name(d.target), step)) {
        if (arc != nullptr) {
          throw FlowError("query: step '" + step +
                          "' is ambiguous; use the arc role instead");
        }
        arc = &d;
      }
    }
  }
  if (arc == nullptr) {
    throw FlowError("query: '" +
                    schema.entity_name(pattern.node(node).type) +
                    "' has no input step '" + step + "'");
  }
  // Reuse the already-created pattern node for this arc, if any.
  for (const graph::DepEdge& e : pattern.deps(node)) {
    if (e.kind == schema::DepKind::kData && e.role == arc->role &&
        schema.is_ancestor_or_self(arc->target,
                                   pattern.node(e.target).type)) {
      return e.target;
    }
  }
  const NodeId input = pattern.add_node(arc->target);
  pattern.connect_role(node, input, arc->role);
  return input;
}

}  // namespace

CompiledQuery compile_query(const HistoryDb& db, std::string_view text,
                            const SecondaryIndex* index) {
  const std::vector<std::string> tokens = tokenize(text);
  if (tokens.size() < 2 || tokens[0] != "find") {
    throw ParseError("query: expected 'find <Entity> [where ...]'");
  }
  const schema::TaskSchema& schema = db.schema();
  TaskGraph pattern(schema, "query");
  const NodeId target = pattern.add_node(schema.require(tokens[1]));

  std::size_t i = 2;
  if (i < tokens.size()) {
    if (tokens[i] != "where") {
      throw ParseError("query: expected 'where', got '" + tokens[i] + "'");
    }
    ++i;
    while (i < tokens.size()) {
      // <path> = <instance>
      if (i + 2 >= tokens.size() || tokens[i + 1] != "=") {
        throw ParseError("query: expected '<path> = <instance>'");
      }
      const std::string& path = tokens[i];
      const InstanceId instance =
          resolve_instance(db, tokens[i + 2], index);
      NodeId node = target;
      for (const std::string& step : support::split(path, '.')) {
        if (step.empty()) {
          throw ParseError("query: empty step in path '" + path + "'");
        }
        node = descend(db, pattern, node, step);
      }
      pattern.bind(node, instance);
      i += 3;
      if (i < tokens.size()) {
        if (tokens[i] != "and") {
          throw ParseError("query: expected 'and', got '" + tokens[i] + "'");
        }
        ++i;
      }
    }
  }
  return CompiledQuery{std::move(pattern), target};
}

std::vector<InstanceId> run_query(const HistoryDb& db, std::string_view text,
                                  const SecondaryIndex* index) {
  const CompiledQuery query = compile_query(db, text, index);
  return query_template(db, query.pattern, query.target);
}

}  // namespace herc::history
