// Flow traces, version trees, and task-graph template queries (§4.2).
//
// A *flow trace* is the historical record of tool invocations and data
// transformations rendered in the same form as a task graph, with every
// node bound to a unique instance (Fig. 10, Fig. 11b).  It is a
// semantically richer superset of a version tree: it shows not only the
// relationship between data versions but also the tools used to create
// each one.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "history/history_db.hpp"

namespace herc::history {

/// Backward-chaining trace: the derivation ancestry of `id` (what Fig. 10's
/// History pop-up reveals, applied transitively).
[[nodiscard]] graph::TaskGraph backward_trace(const HistoryDb& db,
                                              data::InstanceId id);

/// Forward-chaining trace: everything derived from `id`, together with the
/// complete derivations of those dependents (so every task in the trace is
/// shown with all of its inputs).
[[nodiscard]] graph::TaskGraph forward_trace(const HistoryDb& db,
                                             data::InstanceId id);

/// Union of the backward and forward traces around `id`.
[[nodiscard]] graph::TaskGraph full_trace(const HistoryDb& db,
                                          data::InstanceId id);

/// A traditional version tree (Fig. 11a): the edit lineage that contains
/// `member`, without tool information.
struct VersionTree {
  struct Entry {
    data::InstanceId instance;
    /// Edit predecessor; invalid for the lineage root.
    data::InstanceId parent;
    std::uint32_t version = 1;
  };
  std::vector<Entry> entries;

  [[nodiscard]] std::vector<data::InstanceId> roots() const;
  [[nodiscard]] std::vector<data::InstanceId> children(
      data::InstanceId id) const;
  /// Instances with no edit successor — the "current" versions.
  [[nodiscard]] std::vector<data::InstanceId> leaves() const;
  [[nodiscard]] bool contains(data::InstanceId id) const;

  /// Graphviz rendering in the style of Fig. 11a.
  [[nodiscard]] std::string to_dot(const HistoryDb& db) const;
};

/// Extracts the version tree containing `member` by walking edit-parent
/// links to the root and fanning out over edit children.
[[nodiscard]] VersionTree version_tree(const HistoryDb& db,
                                       data::InstanceId member);

/// The flow-trace form of a version tree (Fig. 11b): the same lineage, but
/// including the tool instance used for each edit — demonstrating that a
/// flow trace is a superset of a version tree.
[[nodiscard]] graph::TaskGraph lineage_trace(const HistoryDb& db,
                                             data::InstanceId member);

/// Template query (§4.2): uses a task graph as the query form.  Returns all
/// instances that could stand at `target` such that the pattern's structure
/// matches their derivation history: fd edges match the recorded tool
/// instance, dd edges match distinct recorded inputs, and nodes bound in
/// the pattern must match those exact instances.  This answers queries such
/// as "find the simulations that were performed on this netlist".
[[nodiscard]] std::vector<data::InstanceId> query_template(
    const HistoryDb& db, const graph::TaskGraph& pattern,
    graph::NodeId target);

}  // namespace herc::history
