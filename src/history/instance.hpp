// Entity instances and their derivation meta-data.
//
// The paper's central data-management idea: every design object is created
// by executing a flow, so storing *a small amount of meta-data with each
// object* — the immediate tool and data instances used to create it — is
// enough to reconstruct the complete derivation history of a design and to
// subsume version management (§1, §4.2).
#pragma once

#include <string>
#include <vector>

#include "data/blob_store.hpp"
#include "data/instance_id.hpp"
#include "schema/entity.hpp"
#include "support/clock.hpp"

namespace herc::history {

/// How one instance came to exist: the tool instance that ran and the data
/// instances it consumed, in the order of the task's input edges.
///
/// An imported instance (a source entity the designer supplied) has an
/// empty derivation.  A composite instance has inputs but no tool.
struct Derivation {
  /// The tool instance executed; invalid for imports and compose tasks.
  data::InstanceId tool;
  /// Input instances, parallel with `input_roles`.
  std::vector<data::InstanceId> inputs;
  std::vector<std::string> input_roles;
  /// Short description of the producing step ("Simulator", "compose",
  /// "import", ...) used in trace renderings.
  std::string task;

  [[nodiscard]] bool is_import() const {
    return !tool.valid() && inputs.empty();
  }
};

/// Outcome of the task execution that a record describes.  The history
/// records *everything* that happened during a design (§4.2), including
/// tasks that failed or were skipped because a dependency failed: those
/// records carry the derivation meta-data of the attempt ("which tasks
/// failed, with what inputs?") but are invisible to binding, memoization
/// and consistency queries — a failed output is treated as absent.
enum class InstanceStatus : std::uint8_t {
  kOk = 0,       ///< the task produced this instance
  kFailed = 1,   ///< the task ran (with retries) and failed; no payload
  kSkipped = 2,  ///< the task never ran: an upstream dependency failed
  /// The instance was produced, but by a task of a run that crashed before
  /// the task finished (or it failed an fsck audit): its payload is kept
  /// for inspection, but like a failure record it never satisfies binding,
  /// memoization or version queries — a resumed run re-derives it.
  kQuarantined = 3,
};

/// One design object: meta-data plus a reference to shared physical data.
struct Instance {
  data::InstanceId id;
  schema::EntityTypeId type;
  /// User-visible name ("Low pass filter"); may be empty.
  std::string name;
  /// Who created it (Fig. 9 records user-id per instance).
  std::string user;
  support::Timestamp created;
  /// Free-text annotation (§4.1: designers document steps this way).
  std::string comment;
  /// Key of the physical payload; several instances may share one blob
  /// (footnote 5's RCS analogy).
  data::BlobKey blob;
  /// Version ordinal within the instance's edit lineage (1 = original).
  std::uint32_t version = 1;
  /// Failure records (`kFailed`/`kSkipped`) exist only for their
  /// derivation meta-data; their payload is empty and `comment` holds the
  /// error message (or skip reason).
  InstanceStatus status = InstanceStatus::kOk;
  Derivation derivation;

  [[nodiscard]] bool ok() const { return status == InstanceStatus::kOk; }
};

}  // namespace herc::history
