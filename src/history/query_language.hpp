// A textual form of the §4.2 history queries.
//
// The paper's queries ("find the simulations that were performed on this
// netlist", "find the netlist that was extracted from this layout") use
// the flow itself as the query template.  This module compiles a small
// text language into such a template:
//
//   find Performance
//   find Performance where stimuli = i3
//   find Performance where circuit.netlist = i5 and stimuli = i3
//   find EditedNetlist where seed = i0
//   find PlacedLayout where tool = i7
//   find Performance where circuit.netlist = "CMOS Full adder"
//
// Each `where` path descends the derivation structure one task input per
// step.  A step names either the arc's *role* ("seed", "golden"), the
// target *entity* (case-insensitive: "circuit", "netlist"), or the
// special step `tool` (the task's fd).  The right-hand side is an
// instance ref `iN` or a quoted instance name (which must be unambiguous).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "history/query_planner.hpp"

namespace herc::history {

/// A compiled query: the pattern plus its target node.
struct CompiledQuery {
  graph::TaskGraph pattern;
  graph::NodeId target;
};

/// Compiles `text` against `db` (instance names are resolved at compile
/// time).  Throws `ParseError` on bad syntax, `HistoryError` on unknown
/// or ambiguous instance names, `SchemaError`/`FlowError` when a path
/// step does not exist in the schema.  When `index` is non-null, quoted
/// instance names resolve through the index's name postings instead of a
/// full scan (every candidate is still verified by exact comparison).
[[nodiscard]] CompiledQuery compile_query(const HistoryDb& db,
                                          std::string_view text,
                                          const SecondaryIndex* index =
                                              nullptr);

/// Compiles and runs in one step.
[[nodiscard]] std::vector<data::InstanceId> run_query(const HistoryDb& db,
                                                      std::string_view text,
                                                      const SecondaryIndex*
                                                          index = nullptr);

}  // namespace herc::history
