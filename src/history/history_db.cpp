#include "history/history_db.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::history {

using data::InstanceId;
using schema::EntityTypeId;
using support::HistoryError;

HistoryDb::HistoryDb(const schema::TaskSchema& schema, support::Clock& clock)
    : schema_(&schema), clock_(&clock) {}

void HistoryDb::check_id(InstanceId id) const {
  if (!id.valid() || id.index() >= instances_.size()) {
    throw HistoryError("unknown instance id");
  }
}

EntityTypeId HistoryDb::root_type(EntityTypeId t) const {
  EntityTypeId cur = t;
  while (schema_->entity(cur).parent.valid()) {
    cur = schema_->entity(cur).parent;
  }
  return cur;
}

InstanceId HistoryDb::import_instance(EntityTypeId type,
                                      std::string_view name,
                                      std::string_view payload,
                                      std::string_view user,
                                      std::string_view comment) {
  RecordRequest request;
  request.type = type;
  request.name = std::string(name);
  request.user = std::string(user);
  request.comment = std::string(comment);
  request.payload = std::string(payload);
  request.derivation.task = "import";
  return record(request);
}

InstanceId HistoryDb::record(const RecordRequest& request) {
  if (schema_->is_abstract(request.type)) {
    throw HistoryError("cannot instantiate abstract entity '" +
                       schema_->entity_name(request.type) + "'");
  }
  if (request.derivation.inputs.size() !=
      request.derivation.input_roles.size()) {
    throw HistoryError("derivation inputs and roles differ in length");
  }
  if (request.derivation.tool.valid()) check_id(request.derivation.tool);
  for (const InstanceId in : request.derivation.inputs) check_id(in);

  Instance inst;
  inst.id = InstanceId(static_cast<std::uint32_t>(instances_.size()));
  inst.type = request.type;
  inst.name = request.name;
  inst.user = request.user;
  inst.comment = request.comment;
  inst.created = clock_->now();
  const bool new_blob = !blobs_.contains(data::BlobStore::key_for(request.payload));
  inst.blob = blobs_.put(request.payload);
  inst.status = request.status;
  inst.derivation = request.derivation;

  // Version numbering: an editing task (input of the same root entity type,
  // §4.2) continues its input's lineage.  A failed edit produced nothing,
  // so it must not occupy a slot in the version tree (or supersede its
  // input): failure records always stay at version 1.
  if (inst.ok()) {
    const EntityTypeId self_root = root_type(request.type);
    for (const InstanceId in : request.derivation.inputs) {
      if (root_type(instances_[in.index()].type) == self_root) {
        inst.version = instances_[in.index()].version + 1;
        break;
      }
    }
  }

  // Maintain the forward index.
  used_by_.emplace_back();
  if (inst.derivation.tool.valid()) {
    used_by_[inst.derivation.tool.index()].push_back(inst.id);
  }
  for (const InstanceId in : inst.derivation.inputs) {
    // A tool doubling as an input would be indexed twice; dedupe.
    auto& vec = used_by_[in.index()];
    if (vec.empty() || vec.back() != inst.id) vec.push_back(inst.id);
  }

  instances_.push_back(std::move(inst));
  if (listener_ != nullptr) {
    // One mutation = one journal entry: the (possibly new) blob plus the
    // instance line, applied atomically on recovery.
    std::string lines;
    if (new_blob) {
      lines += blobs_.record_line(instances_.back().blob);
      lines += '\n';
    }
    lines += instance_line(instances_.back());
    lines += '\n';
    listener_->on_mutation(lines);
  }
  return instances_.back().id;
}

void HistoryDb::annotate(InstanceId id, std::string_view name,
                         std::string_view comment) {
  check_id(id);
  instances_[id.index()].name = std::string(name);
  instances_[id.index()].comment = std::string(comment);
  if (listener_ != nullptr) {
    support::RecordWriter w("annot");
    w.field(id.value());
    w.field(name);
    w.field(comment);
    listener_->on_mutation(w.str() + "\n");
  }
}

bool HistoryDb::contains(InstanceId id) const {
  return id.valid() && id.index() < instances_.size();
}

const Instance& HistoryDb::instance(InstanceId id) const {
  check_id(id);
  return instances_[id.index()];
}

const std::string& HistoryDb::payload(InstanceId id) const {
  return blobs_.get(instance(id).blob);
}

std::vector<InstanceId> HistoryDb::all() const {
  std::vector<InstanceId> out;
  out.reserve(instances_.size());
  for (const Instance& inst : instances_) out.push_back(inst.id);
  return out;
}

std::vector<InstanceId> HistoryDb::instances_of(EntityTypeId type,
                                                bool include_subtypes,
                                                bool include_failures) const {
  std::vector<InstanceId> out;
  for (const Instance& inst : instances_) {
    if (!inst.ok() && !include_failures) continue;
    const bool match = include_subtypes
                           ? schema_->is_ancestor_or_self(type, inst.type)
                           : inst.type == type;
    if (match) out.push_back(inst.id);
  }
  return out;
}

std::vector<InstanceId> HistoryDb::failures() const {
  std::vector<InstanceId> out;
  for (const Instance& inst : instances_) {
    if (!inst.ok()) out.push_back(inst.id);
  }
  return out;
}

std::vector<InstanceId> HistoryDb::derived_from(InstanceId id) const {
  const Instance& inst = instance(id);
  std::vector<InstanceId> out;
  if (inst.derivation.tool.valid()) out.push_back(inst.derivation.tool);
  for (const InstanceId in : inst.derivation.inputs) out.push_back(in);
  return out;
}

std::vector<InstanceId> HistoryDb::derivation_closure(InstanceId id) const {
  check_id(id);
  std::vector<InstanceId> order;
  std::unordered_set<std::uint32_t> seen{id.value()};
  std::deque<InstanceId> queue{id};
  while (!queue.empty()) {
    const InstanceId cur = queue.front();
    queue.pop_front();
    for (const InstanceId next : derived_from(cur)) {
      if (seen.insert(next.value()).second) {
        order.push_back(next);
        queue.push_back(next);
      }
    }
  }
  return order;
}

std::vector<InstanceId> HistoryDb::used_by(InstanceId id) const {
  check_id(id);
  return used_by_[id.index()];
}

std::vector<InstanceId> HistoryDb::dependent_closure(InstanceId id) const {
  check_id(id);
  std::vector<InstanceId> order;
  std::unordered_set<std::uint32_t> seen{id.value()};
  std::deque<InstanceId> queue{id};
  while (!queue.empty()) {
    const InstanceId cur = queue.front();
    queue.pop_front();
    for (const InstanceId next : used_by_[cur.index()]) {
      if (seen.insert(next.value()).second) {
        order.push_back(next);
        queue.push_back(next);
      }
    }
  }
  return order;
}

std::optional<InstanceId> HistoryDb::edit_parent(InstanceId id) const {
  const Instance& inst = instance(id);
  // A failed edit never entered the version tree, so it neither has an edit
  // parent nor supersedes anything.
  if (!inst.ok()) return std::nullopt;
  const EntityTypeId self_root = root_type(inst.type);
  for (const InstanceId in : inst.derivation.inputs) {
    if (root_type(instances_[in.index()].type) == self_root) return in;
  }
  return std::nullopt;
}

std::vector<InstanceId> HistoryDb::edit_children(InstanceId id) const {
  check_id(id);
  std::vector<InstanceId> out;
  for (const InstanceId dep : used_by_[id.index()]) {
    const auto parent = edit_parent(dep);
    if (parent && *parent == id) out.push_back(dep);
  }
  return out;
}

bool HistoryDb::superseded(InstanceId id) const {
  return !edit_children(id).empty();
}

bool HistoryDb::is_stale(InstanceId id) const {
  return !stale_inputs(id).empty();
}

std::vector<InstanceId> HistoryDb::stale_inputs(InstanceId id) const {
  // A superseded ancestor only makes `id` stale when none of its edit
  // successors participates in the derivation: an edit's own parent is
  // "superseded" by the very version the derivation already uses.
  const std::vector<InstanceId> closure = derivation_closure(id);
  std::unordered_set<std::uint32_t> in_closure{id.value()};
  for (const InstanceId anc : closure) in_closure.insert(anc.value());
  std::vector<InstanceId> out;
  for (const InstanceId anc : closure) {
    const std::vector<InstanceId> children = edit_children(anc);
    if (children.empty()) continue;
    const bool replaced_within = std::any_of(
        children.begin(), children.end(), [&](InstanceId child) {
          return in_closure.contains(child.value());
        });
    if (!replaced_within) out.push_back(anc);
  }
  return out;
}

std::optional<InstanceId> HistoryDb::find_existing(
    EntityTypeId type, InstanceId tool,
    const std::vector<InstanceId>& inputs) const {
  std::vector<InstanceId> want = inputs;
  std::sort(want.begin(), want.end());
  // Walk the forward index of the narrowest anchor (the tool when present,
  // else the first input) rather than the whole table.
  std::vector<InstanceId> candidates;
  if (tool.valid()) {
    candidates = used_by(tool);
  } else if (!inputs.empty()) {
    candidates = used_by(inputs.front());
  } else {
    return std::nullopt;
  }
  for (const InstanceId cand : candidates) {
    const Instance& inst = instances_[cand.index()];
    // Memoization must treat failed outputs as absent: a recorded failure
    // never satisfies "has this task been performed yet?".
    if (!inst.ok()) continue;
    if (inst.type != type) continue;
    if (inst.derivation.tool != tool) continue;
    std::vector<InstanceId> have = inst.derivation.inputs;
    std::sort(have.begin(), have.end());
    if (have == want) return cand;
  }
  return std::nullopt;
}

std::string HistoryDb::instance_line(const Instance& inst) const {
  support::RecordWriter w("inst");
  w.field(inst.id.value());
  w.field(schema_->entity_name(inst.type));
  w.field(inst.name);
  w.field(inst.user);
  w.field(inst.created.micros());
  w.field(inst.comment);
  w.field(inst.blob);
  w.field(inst.version);
  w.field(static_cast<std::uint32_t>(inst.status));
  w.field(inst.derivation.task);
  w.field(inst.derivation.tool.valid()
              ? static_cast<std::int64_t>(inst.derivation.tool.value())
              : static_cast<std::int64_t>(-1));
  w.field(static_cast<std::uint32_t>(inst.derivation.inputs.size()));
  for (std::size_t i = 0; i < inst.derivation.inputs.size(); ++i) {
    w.field(inst.derivation.inputs[i].value());
    w.field(inst.derivation.input_roles[i]);
  }
  return w.str();
}

std::string HistoryDb::save() const {
  std::string out = blobs_.save();
  for (const Instance& inst : instances_) {
    out += instance_line(inst);
    out += '\n';
  }
  return out;
}

void HistoryDb::apply_saved_line(std::string_view line) {
  if (support::trim(line).empty()) return;
  support::RecordReader rec(line);
  if (rec.kind() == "blob") {
    const std::string key = rec.next_string();
    const std::string payload = rec.next_string();
    blobs_.restore(key, payload);
  } else if (rec.kind() == "inst") {
    Instance inst;
    inst.id = InstanceId(rec.next_uint32());
    if (inst.id.index() != instances_.size()) {
      throw HistoryError("history file: instance records out of order");
    }
    inst.type = schema_->require(rec.next_string());
    inst.name = rec.next_string();
    inst.user = rec.next_string();
    inst.created = support::Timestamp(rec.next_int64());
    inst.comment = rec.next_string();
    inst.blob = rec.next_string();
    if (!blobs_.contains(inst.blob)) {
      throw HistoryError("history file: instance references missing blob");
    }
    inst.version = rec.next_uint32();
    const std::uint32_t status = rec.next_uint32();
    if (status > static_cast<std::uint32_t>(InstanceStatus::kSkipped)) {
      throw HistoryError("history file: unknown instance status");
    }
    inst.status = static_cast<InstanceStatus>(status);
    inst.derivation.task = rec.next_string();
    const std::int64_t tool = rec.next_int64();
    if (tool >= 0) {
      inst.derivation.tool = InstanceId(static_cast<std::uint32_t>(tool));
    }
    const std::uint32_t n_inputs = rec.next_uint32();
    for (std::uint32_t i = 0; i < n_inputs; ++i) {
      inst.derivation.inputs.push_back(InstanceId(rec.next_uint32()));
      inst.derivation.input_roles.push_back(rec.next_string());
    }
    used_by_.emplace_back();
    if (inst.derivation.tool.valid()) {
      check_id(inst.derivation.tool);
      used_by_[inst.derivation.tool.index()].push_back(inst.id);
    }
    for (const InstanceId in : inst.derivation.inputs) {
      check_id(in);
      auto& vec = used_by_[in.index()];
      if (vec.empty() || vec.back() != inst.id) vec.push_back(inst.id);
    }
    instances_.push_back(std::move(inst));
  } else if (rec.kind() == "annot") {
    const InstanceId id(rec.next_uint32());
    check_id(id);
    instances_[id.index()].name = rec.next_string();
    instances_[id.index()].comment = rec.next_string();
  } else {
    throw HistoryError("history file: unknown record '" + rec.kind() + "'");
  }
}

HistoryDb HistoryDb::load(const schema::TaskSchema& schema,
                          support::Clock& clock, std::string_view text) {
  HistoryDb db(schema, clock);
  for (const std::string& line : support::split(text, '\n')) {
    db.apply_saved_line(line);
  }
  return db;
}

}  // namespace herc::history
