#include "history/history_db.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::history {

using data::InstanceId;
using schema::EntityTypeId;
using support::HistoryError;

std::size_t RunRecord::tasks_finished() const {
  std::size_t n = 0;
  for (const RunTask& t : tasks) {
    if (t.finished) ++n;
  }
  return n;
}

HistoryDb::HistoryDb(const schema::TaskSchema& schema, support::Clock& clock)
    : schema_(&schema), clock_(&clock) {}

HistoryDb& HistoryDb::operator=(HistoryDb&& other) noexcept {
  if (this == &other) return *this;
  schema_ = other.schema_;
  clock_ = other.clock_;
  blobs_ = std::move(other.blobs_);
  instances_ = std::move(other.instances_);
  used_by_ = std::move(other.used_by_);
  runs_ = std::move(other.runs_);
  listener_ = other.listener_;
  // observers_ deliberately kept: the assignment swaps the image out from
  // under whoever is watching this object (a replica resync), and they need
  // to know their derived state is now stale.
  for (HistoryObserver* obs : observers_) obs->on_reset();
  return *this;
}

void HistoryDb::add_observer(HistoryObserver* observer) {
  if (observer == nullptr) {
    throw HistoryError("add_observer: null observer");
  }
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    throw HistoryError("add_observer: observer already attached");
  }
  observers_.push_back(observer);
}

void HistoryDb::remove_observer(HistoryObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void HistoryDb::emit(std::string_view lines) {
  if (listener_ != nullptr) listener_->on_mutation(lines);
  for (HistoryObserver* obs : observers_) obs->on_lines(lines);
}

void HistoryDb::check_id(InstanceId id) const {
  if (!id.valid() || id.index() >= instances_.size()) {
    throw HistoryError("unknown instance id");
  }
}

EntityTypeId HistoryDb::root_type(EntityTypeId t) const {
  EntityTypeId cur = t;
  while (schema_->entity(cur).parent.valid()) {
    cur = schema_->entity(cur).parent;
  }
  return cur;
}

InstanceId HistoryDb::import_instance(EntityTypeId type,
                                      std::string_view name,
                                      std::string_view payload,
                                      std::string_view user,
                                      std::string_view comment) {
  RecordRequest request;
  request.type = type;
  request.name = std::string(name);
  request.user = std::string(user);
  request.comment = std::string(comment);
  request.payload = std::string(payload);
  request.derivation.task = "import";
  return record(request);
}

InstanceId HistoryDb::record(const RecordRequest& request) {
  if (schema_->is_abstract(request.type)) {
    throw HistoryError("cannot instantiate abstract entity '" +
                       schema_->entity_name(request.type) + "'");
  }
  if (request.derivation.inputs.size() !=
      request.derivation.input_roles.size()) {
    throw HistoryError("derivation inputs and roles differ in length");
  }
  if (request.derivation.tool.valid()) check_id(request.derivation.tool);
  for (const InstanceId in : request.derivation.inputs) check_id(in);

  Instance inst;
  inst.id = InstanceId(static_cast<std::uint32_t>(instances_.size()));
  inst.type = request.type;
  inst.name = request.name;
  inst.user = request.user;
  inst.comment = request.comment;
  inst.created = clock_->now();
  const bool new_blob = !blobs_.contains(data::BlobStore::key_for(request.payload));
  inst.blob = blobs_.put(request.payload);
  inst.status = request.status;
  inst.derivation = request.derivation;

  // Version numbering: an editing task (input of the same root entity type,
  // §4.2) continues its input's lineage.  A failed edit produced nothing,
  // so it must not occupy a slot in the version tree (or supersede its
  // input): failure records always stay at version 1.
  if (inst.ok()) {
    const EntityTypeId self_root = root_type(request.type);
    for (const InstanceId in : request.derivation.inputs) {
      if (root_type(instances_[in.index()].type) == self_root) {
        inst.version = instances_[in.index()].version + 1;
        break;
      }
    }
  }

  // Maintain the forward index.
  used_by_.emplace_back();
  if (inst.derivation.tool.valid()) {
    used_by_[inst.derivation.tool.index()].push_back(inst.id);
  }
  for (const InstanceId in : inst.derivation.inputs) {
    // A tool doubling as an input would be indexed twice; dedupe.
    auto& vec = used_by_[in.index()];
    if (vec.empty() || vec.back() != inst.id) vec.push_back(inst.id);
  }

  instances_.push_back(std::move(inst));
  if (observed()) {
    // One mutation = one journal entry: the (possibly new) blob plus the
    // instance line, applied atomically on recovery.
    std::string lines;
    if (new_blob) {
      lines += blobs_.record_line(instances_.back().blob);
      lines += '\n';
    }
    lines += instance_line(instances_.back());
    lines += '\n';
    emit(lines);
  }
  return instances_.back().id;
}

void HistoryDb::annotate(InstanceId id, std::string_view name,
                         std::string_view comment) {
  check_id(id);
  instances_[id.index()].name = std::string(name);
  instances_[id.index()].comment = std::string(comment);
  if (observed()) {
    support::RecordWriter w("annot");
    w.field(id.value());
    w.field(name);
    w.field(comment);
    emit(w.str() + "\n");
  }
}

void HistoryDb::quarantine(InstanceId id, std::string_view reason) {
  apply_quarantine(id, reason);
  if (observed()) {
    support::RecordWriter w("quar");
    w.field(id.value());
    w.field(reason);
    emit(w.str() + "\n");
  }
}

void HistoryDb::apply_quarantine(InstanceId id, std::string_view reason) {
  check_id(id);
  Instance& inst = instances_[id.index()];
  if (!inst.ok()) {
    throw HistoryError("instance i" + std::to_string(id.value()) +
                       " is not an OK record; only OK instances can be "
                       "quarantined");
  }
  inst.status = InstanceStatus::kQuarantined;
  if (!inst.comment.empty()) inst.comment += ' ';
  inst.comment += "[quarantined: " + std::string(reason) + "]";
}

// ---- run log ---------------------------------------------------------------

RunRecord& HistoryDb::run_ref(std::uint64_t id) {
  if (id >= runs_.size()) {
    throw HistoryError("unknown run #" + std::to_string(id));
  }
  return runs_[static_cast<std::size_t>(id)];
}

const RunRecord* HistoryDb::find_run(std::uint64_t id) const {
  if (id >= runs_.size()) return nullptr;
  return &runs_[static_cast<std::size_t>(id)];
}

std::vector<const RunRecord*> HistoryDb::open_runs() const {
  std::vector<const RunRecord*> out;
  for (const RunRecord& run : runs_) {
    if (run.open()) out.push_back(&run);
  }
  return out;
}

std::vector<InstanceId> HistoryDb::partial_products() const {
  // Union coverage over ALL runs (closed runs keep their lists): a later
  // completed run's products must never be mistaken for an earlier
  // crashed run's partials.
  bool any_open = false;
  std::unordered_set<std::uint32_t> covered;
  for (const RunRecord& run : runs_) {
    if (run.open()) any_open = true;
    for (const InstanceId id : run.covered) covered.insert(id.value());
  }
  std::vector<InstanceId> out;
  if (!any_open) return out;
  std::unordered_set<std::uint32_t> reported;
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const RunRecord& run = runs_[r];
    if (!run.open()) continue;
    // Sweep only the run's own window.  Runs execute sequentially, so the
    // next run's begin bounds it even when no seal frame survived; the
    // seal recovery journals bounds work recorded in later sessions.
    std::size_t end = run.sealed() ? run.sweep_end : instances_.size();
    if (r + 1 < runs_.size()) {
      end = std::min<std::size_t>(end, runs_[r + 1].db_size_at_begin);
    }
    end = std::min(end, instances_.size());
    for (std::size_t i = run.db_size_at_begin; i < end; ++i) {
      const Instance& inst = instances_[i];
      // Imports are designer-supplied, not task products; failure records
      // and already-quarantined instances are invisible anyway.
      if (!inst.ok() || inst.derivation.is_import()) continue;
      if (covered.contains(inst.id.value())) continue;
      if (reported.insert(inst.id.value()).second) out.push_back(inst.id);
    }
  }
  return out;
}

std::string HistoryDb::run_begin_line(const RunRecord& run) {
  support::RecordWriter w("runb");
  w.field(static_cast<std::int64_t>(run.id));
  w.field(run.flow_name);
  w.field(run.goal);
  w.field(run.goal_node);
  w.field(run.user);
  w.field(run.options);
  w.field(static_cast<std::int64_t>(run.seed));
  w.field(run.db_size_at_begin);
  w.field(run.flow_text);
  return w.str();
}

std::uint64_t HistoryDb::begin_run(RunRecord run) {
  run.id = runs_.size();
  run.db_size_at_begin = static_cast<std::uint32_t>(instances_.size());
  run.outcome.clear();
  run.tasks.clear();
  run.covered.clear();
  const std::string line = run_begin_line(run);
  const std::uint64_t id = run.id;
  apply_run_begin(std::move(run));
  if (observed()) emit(line + "\n");
  return id;
}

void HistoryDb::apply_run_begin(RunRecord run) {
  if (run.id != runs_.size()) {
    throw HistoryError("history file: run records out of order");
  }
  runs_.push_back(std::move(run));
}

void HistoryDb::run_task_started(std::uint64_t run, std::string_view key) {
  apply_task_started(run, key);
  if (observed()) {
    support::RecordWriter w("tstart");
    w.field(static_cast<std::int64_t>(run));
    w.field(key);
    emit(w.str() + "\n");
  }
}

void HistoryDb::apply_task_started(std::uint64_t run, std::string_view key) {
  run_ref(run).tasks.push_back(RunTask{std::string(key), false, ""});
}

void HistoryDb::run_task_covered(
    std::uint64_t run, const std::vector<InstanceId>& produced) {
  apply_task_covered(run, produced);
  if (observed()) {
    support::RecordWriter w("tcover");
    w.field(static_cast<std::int64_t>(run));
    w.field(static_cast<std::uint32_t>(produced.size()));
    for (const InstanceId id : produced) w.field(id.value());
    emit(w.str() + "\n");
  }
}

void HistoryDb::apply_task_covered(
    std::uint64_t run, const std::vector<InstanceId>& produced) {
  RunRecord& record = run_ref(run);
  for (const InstanceId id : produced) {
    check_id(id);
    record.covered.push_back(id);
  }
}

void HistoryDb::run_task_finished(std::uint64_t run, std::string_view key,
                                  std::string_view status) {
  apply_task_finished(run, key, status);
  if (observed()) {
    support::RecordWriter w("tfin");
    w.field(static_cast<std::int64_t>(run));
    w.field(key);
    w.field(status);
    emit(w.str() + "\n");
  }
}

void HistoryDb::apply_task_finished(std::uint64_t run, std::string_view key,
                                    std::string_view status) {
  for (RunTask& task : run_ref(run).tasks) {
    if (!task.finished && task.key == key) {
      task.finished = true;
      task.status = std::string(status);
      return;
    }
  }
  throw HistoryError("run #" + std::to_string(run) + ": task '" +
                     std::string(key) + "' finished without starting");
}

void HistoryDb::seal_run(std::uint64_t run) {
  if (run_ref(run).sealed()) return;
  const auto sweep_end = static_cast<std::uint32_t>(instances_.size());
  apply_run_seal(run, sweep_end);
  if (observed()) {
    support::RecordWriter w("runseal");
    w.field(static_cast<std::int64_t>(run));
    w.field(sweep_end);
    emit(w.str() + "\n");
  }
}

void HistoryDb::apply_run_seal(std::uint64_t run, std::uint32_t sweep_end) {
  run_ref(run).sweep_end = sweep_end;
}

HistoryDb::SealSweep HistoryDb::seal_open_runs(std::string_view reason) {
  SealSweep sweep;
  // Collect ids first: quarantine and seal mutate the records (and notify
  // the listener) while `open_runs` hands out pointers into `runs_`.
  std::vector<std::uint64_t> open_ids;
  std::vector<bool> was_sealed;
  for (const RunRecord* run : open_runs()) {
    open_ids.push_back(run->id);
    was_sealed.push_back(run->sealed());
  }
  sweep.open = open_ids.size();
  if (open_ids.empty()) return sweep;
  for (const data::InstanceId id : partial_products()) {
    quarantine(id, reason);
    ++sweep.quarantined;
  }
  for (std::size_t i = 0; i < open_ids.size(); ++i) {
    seal_run(open_ids[i]);
    if (!was_sealed[i]) ++sweep.sealed;
  }
  return sweep;
}

void HistoryDb::end_run(std::uint64_t run, std::string_view outcome) {
  apply_run_end(run, outcome);
  if (observed()) {
    support::RecordWriter w("rune");
    w.field(static_cast<std::int64_t>(run));
    w.field(outcome);
    emit(w.str() + "\n");
  }
}

void HistoryDb::apply_run_end(std::uint64_t run, std::string_view outcome) {
  RunRecord& record = run_ref(run);
  if (!record.open()) {
    throw HistoryError("run #" + std::to_string(run) + " already ended ('" +
                       record.outcome + "')");
  }
  if (outcome.empty()) {
    throw HistoryError("run outcome must be non-empty");
  }
  record.outcome = std::string(outcome);
  // The flow is only needed to resume an open run; keep closed runs cheap.
  record.flow_text.clear();
  record.flow_text.shrink_to_fit();
}

bool HistoryDb::contains(InstanceId id) const {
  return id.valid() && id.index() < instances_.size();
}

const Instance& HistoryDb::instance(InstanceId id) const {
  check_id(id);
  return instances_[id.index()];
}

const std::string& HistoryDb::payload(InstanceId id) const {
  return blobs_.get(instance(id).blob);
}

std::vector<InstanceId> HistoryDb::all() const {
  std::vector<InstanceId> out;
  out.reserve(instances_.size());
  for (const Instance& inst : instances_) out.push_back(inst.id);
  return out;
}

std::vector<InstanceId> HistoryDb::instances_of(EntityTypeId type,
                                                bool include_subtypes,
                                                bool include_failures) const {
  std::vector<InstanceId> out;
  for (const Instance& inst : instances_) {
    if (!inst.ok() && !include_failures) continue;
    const bool match = include_subtypes
                           ? schema_->is_ancestor_or_self(type, inst.type)
                           : inst.type == type;
    if (match) out.push_back(inst.id);
  }
  return out;
}

std::vector<InstanceId> HistoryDb::failures() const {
  std::vector<InstanceId> out;
  for (const Instance& inst : instances_) {
    if (!inst.ok()) out.push_back(inst.id);
  }
  return out;
}

std::vector<InstanceId> HistoryDb::derived_from(InstanceId id) const {
  const Instance& inst = instance(id);
  std::vector<InstanceId> out;
  if (inst.derivation.tool.valid()) out.push_back(inst.derivation.tool);
  for (const InstanceId in : inst.derivation.inputs) out.push_back(in);
  return out;
}

std::vector<InstanceId> HistoryDb::derivation_closure(InstanceId id) const {
  check_id(id);
  std::vector<InstanceId> order;
  std::unordered_set<std::uint32_t> seen{id.value()};
  std::deque<InstanceId> queue{id};
  while (!queue.empty()) {
    const InstanceId cur = queue.front();
    queue.pop_front();
    for (const InstanceId next : derived_from(cur)) {
      if (seen.insert(next.value()).second) {
        order.push_back(next);
        queue.push_back(next);
      }
    }
  }
  return order;
}

std::vector<InstanceId> HistoryDb::used_by(InstanceId id) const {
  check_id(id);
  return used_by_[id.index()];
}

std::vector<InstanceId> HistoryDb::dependent_closure(InstanceId id) const {
  check_id(id);
  std::vector<InstanceId> order;
  std::unordered_set<std::uint32_t> seen{id.value()};
  std::deque<InstanceId> queue{id};
  while (!queue.empty()) {
    const InstanceId cur = queue.front();
    queue.pop_front();
    for (const InstanceId next : used_by_[cur.index()]) {
      if (seen.insert(next.value()).second) {
        order.push_back(next);
        queue.push_back(next);
      }
    }
  }
  return order;
}

std::optional<InstanceId> HistoryDb::edit_parent(InstanceId id) const {
  const Instance& inst = instance(id);
  // A failed edit never entered the version tree, so it neither has an edit
  // parent nor supersedes anything.
  if (!inst.ok()) return std::nullopt;
  const EntityTypeId self_root = root_type(inst.type);
  for (const InstanceId in : inst.derivation.inputs) {
    if (root_type(instances_[in.index()].type) == self_root) return in;
  }
  return std::nullopt;
}

std::vector<InstanceId> HistoryDb::edit_children(InstanceId id) const {
  check_id(id);
  std::vector<InstanceId> out;
  for (const InstanceId dep : used_by_[id.index()]) {
    const auto parent = edit_parent(dep);
    if (parent && *parent == id) out.push_back(dep);
  }
  return out;
}

bool HistoryDb::superseded(InstanceId id) const {
  return !edit_children(id).empty();
}

bool HistoryDb::is_stale(InstanceId id) const {
  return !stale_inputs(id).empty();
}

std::vector<InstanceId> HistoryDb::stale_inputs(InstanceId id) const {
  // A superseded ancestor only makes `id` stale when none of its edit
  // successors participates in the derivation: an edit's own parent is
  // "superseded" by the very version the derivation already uses.
  const std::vector<InstanceId> closure = derivation_closure(id);
  std::unordered_set<std::uint32_t> in_closure{id.value()};
  for (const InstanceId anc : closure) in_closure.insert(anc.value());
  std::vector<InstanceId> out;
  for (const InstanceId anc : closure) {
    const std::vector<InstanceId> children = edit_children(anc);
    if (children.empty()) continue;
    const bool replaced_within = std::any_of(
        children.begin(), children.end(), [&](InstanceId child) {
          return in_closure.contains(child.value());
        });
    if (!replaced_within) out.push_back(anc);
  }
  return out;
}

std::optional<InstanceId> HistoryDb::find_existing(
    EntityTypeId type, InstanceId tool,
    const std::vector<InstanceId>& inputs) const {
  std::vector<InstanceId> want = inputs;
  std::sort(want.begin(), want.end());
  // Walk the forward index of the narrowest anchor (the tool when present,
  // else the first input) rather than the whole table.
  std::vector<InstanceId> candidates;
  if (tool.valid()) {
    candidates = used_by(tool);
  } else if (!inputs.empty()) {
    candidates = used_by(inputs.front());
  } else {
    return std::nullopt;
  }
  for (const InstanceId cand : candidates) {
    const Instance& inst = instances_[cand.index()];
    // Memoization must treat failed outputs as absent: a recorded failure
    // never satisfies "has this task been performed yet?".
    if (!inst.ok()) continue;
    if (inst.type != type) continue;
    if (inst.derivation.tool != tool) continue;
    std::vector<InstanceId> have = inst.derivation.inputs;
    std::sort(have.begin(), have.end());
    if (have == want) return cand;
  }
  return std::nullopt;
}

std::string HistoryDb::instance_line(const Instance& inst) const {
  support::RecordWriter w("inst");
  w.field(inst.id.value());
  w.field(schema_->entity_name(inst.type));
  w.field(inst.name);
  w.field(inst.user);
  w.field(inst.created.micros());
  w.field(inst.comment);
  w.field(inst.blob);
  w.field(inst.version);
  w.field(static_cast<std::uint32_t>(inst.status));
  w.field(inst.derivation.task);
  w.field(inst.derivation.tool.valid()
              ? static_cast<std::int64_t>(inst.derivation.tool.value())
              : static_cast<std::int64_t>(-1));
  w.field(static_cast<std::uint32_t>(inst.derivation.inputs.size()));
  for (std::size_t i = 0; i < inst.derivation.inputs.size(); ++i) {
    w.field(inst.derivation.inputs[i].value());
    w.field(inst.derivation.input_roles[i]);
  }
  return w.str();
}

std::string HistoryDb::save() const {
  std::string out = blobs_.save();
  for (const Instance& inst : instances_) {
    out += instance_line(inst);
    out += '\n';
  }
  // Run log: the same frame kinds the journal carries, re-emitted so a
  // snapshot/load round-trip reproduces the run state exactly (an open
  // run stays resumable across a checkpoint).
  for (const RunRecord& run : runs_) {
    out += run_begin_line(run);
    out += '\n';
    for (const RunTask& task : run.tasks) {
      out += support::RecordWriter("tstart")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(task.key)
                 .str();
      out += '\n';
    }
    if (!run.covered.empty()) {
      support::RecordWriter w("tcover");
      w.field(static_cast<std::int64_t>(run.id));
      w.field(static_cast<std::uint32_t>(run.covered.size()));
      for (const InstanceId id : run.covered) w.field(id.value());
      out += w.str();
      out += '\n';
    }
    for (const RunTask& task : run.tasks) {
      if (!task.finished) continue;
      out += support::RecordWriter("tfin")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(task.key)
                 .field(task.status)
                 .str();
      out += '\n';
    }
    if (run.sealed()) {
      out += support::RecordWriter("runseal")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(run.sweep_end)
                 .str();
      out += '\n';
    }
    if (!run.open()) {
      out += support::RecordWriter("rune")
                 .field(static_cast<std::int64_t>(run.id))
                 .field(run.outcome)
                 .str();
      out += '\n';
    }
  }
  return out;
}

void HistoryDb::apply_saved_line(std::string_view line) {
  if (support::trim(line).empty()) return;
  support::RecordReader rec(line);
  if (rec.kind() == "blob") {
    const std::string key = rec.next_string();
    const std::string payload = rec.next_string();
    blobs_.restore(key, payload);
  } else if (rec.kind() == "inst") {
    Instance inst;
    inst.id = InstanceId(rec.next_uint32());
    if (inst.id.index() != instances_.size()) {
      throw HistoryError("history file: instance records out of order");
    }
    inst.type = schema_->require(rec.next_string());
    inst.name = rec.next_string();
    inst.user = rec.next_string();
    inst.created = support::Timestamp(rec.next_int64());
    inst.comment = rec.next_string();
    inst.blob = rec.next_string();
    if (!blobs_.contains(inst.blob)) {
      throw HistoryError("history file: instance references missing blob");
    }
    inst.version = rec.next_uint32();
    const std::uint32_t status = rec.next_uint32();
    if (status > static_cast<std::uint32_t>(InstanceStatus::kQuarantined)) {
      throw HistoryError("history file: unknown instance status");
    }
    inst.status = static_cast<InstanceStatus>(status);
    inst.derivation.task = rec.next_string();
    const std::int64_t tool = rec.next_int64();
    if (tool >= 0) {
      inst.derivation.tool = InstanceId(static_cast<std::uint32_t>(tool));
    }
    const std::uint32_t n_inputs = rec.next_uint32();
    for (std::uint32_t i = 0; i < n_inputs; ++i) {
      inst.derivation.inputs.push_back(InstanceId(rec.next_uint32()));
      inst.derivation.input_roles.push_back(rec.next_string());
    }
    used_by_.emplace_back();
    if (inst.derivation.tool.valid()) {
      check_id(inst.derivation.tool);
      used_by_[inst.derivation.tool.index()].push_back(inst.id);
    }
    for (const InstanceId in : inst.derivation.inputs) {
      check_id(in);
      auto& vec = used_by_[in.index()];
      if (vec.empty() || vec.back() != inst.id) vec.push_back(inst.id);
    }
    instances_.push_back(std::move(inst));
  } else if (rec.kind() == "annot") {
    const InstanceId id(rec.next_uint32());
    check_id(id);
    instances_[id.index()].name = rec.next_string();
    instances_[id.index()].comment = rec.next_string();
  } else if (rec.kind() == "runb") {
    RunRecord run;
    run.id = static_cast<std::uint64_t>(rec.next_int64());
    run.flow_name = rec.next_string();
    run.goal = rec.next_string();
    run.goal_node = rec.next_int64();
    run.user = rec.next_string();
    run.options = rec.next_string();
    run.seed = static_cast<std::uint64_t>(rec.next_int64());
    run.db_size_at_begin = rec.next_uint32();
    run.flow_text = rec.next_string();
    apply_run_begin(std::move(run));
  } else if (rec.kind() == "tstart") {
    const auto run = static_cast<std::uint64_t>(rec.next_int64());
    apply_task_started(run, rec.next_string());
  } else if (rec.kind() == "tcover") {
    const auto run = static_cast<std::uint64_t>(rec.next_int64());
    const std::uint32_t count = rec.next_uint32();
    std::vector<InstanceId> produced;
    produced.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      produced.push_back(InstanceId(rec.next_uint32()));
    }
    apply_task_covered(run, produced);
  } else if (rec.kind() == "tfin") {
    const auto run = static_cast<std::uint64_t>(rec.next_int64());
    const std::string key = rec.next_string();
    apply_task_finished(run, key, rec.next_string());
  } else if (rec.kind() == "runseal") {
    const auto run = static_cast<std::uint64_t>(rec.next_int64());
    apply_run_seal(run, rec.next_uint32());
  } else if (rec.kind() == "rune") {
    const auto run = static_cast<std::uint64_t>(rec.next_int64());
    apply_run_end(run, rec.next_string());
  } else if (rec.kind() == "quar") {
    const InstanceId id(rec.next_uint32());
    apply_quarantine(id, rec.next_string());
  } else {
    throw HistoryError("history file: unknown record '" + rec.kind() + "'");
  }
  // Observers see replayed records too (a throw above skips this, so only
  // applied records are observed).  The listener is never notified here:
  // it owns the journal these lines came from.
  if (!observers_.empty()) {
    std::string terminated(line);
    terminated += '\n';
    for (HistoryObserver* obs : observers_) obs->on_lines(terminated);
  }
}

HistoryDb HistoryDb::load(const schema::TaskSchema& schema,
                          support::Clock& clock, std::string_view text) {
  HistoryDb db(schema, clock);
  for (const std::string& line : support::split(text, '\n')) {
    db.apply_saved_line(line);
  }
  return db;
}

}  // namespace herc::history
