#include "history/flow_trace.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "support/dot.hpp"
#include "support/error.hpp"

namespace herc::history {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;

namespace {

/// Builds a trace graph over an instance set.  When `close_backward` is
/// set, the set is first closed under derivation membership so every task
/// appears with its complete inputs.
TaskGraph make_trace(const HistoryDb& db, std::vector<InstanceId> members,
                     bool close_backward, const std::string& name) {
  std::unordered_set<std::uint32_t> in_set;
  std::deque<InstanceId> queue;
  for (const InstanceId id : members) {
    if (in_set.insert(id.value()).second) queue.push_back(id);
  }
  if (close_backward) {
    while (!queue.empty()) {
      const InstanceId cur = queue.front();
      queue.pop_front();
      for (const InstanceId next : db.derived_from(cur)) {
        if (in_set.insert(next.value()).second) {
          members.push_back(next);
          queue.push_back(next);
        }
      }
    }
  }
  std::sort(members.begin(), members.end());

  TaskGraph trace(db.schema(), name);
  std::unordered_map<std::uint32_t, NodeId> node_of;
  for (const InstanceId id : members) {
    const Instance& inst = db.instance(id);
    const NodeId n = trace.add_node(inst.type);
    trace.bind(n, id);
    std::string label = inst.name.empty() ? "i" + std::to_string(id.value())
                                          : inst.name;
    if (inst.version > 1) label += " v" + std::to_string(inst.version);
    trace.set_label(n, label);
    node_of.emplace(id.value(), n);
  }
  for (const InstanceId id : members) {
    const Instance& inst = db.instance(id);
    const NodeId from = node_of.at(id.value());
    if (inst.derivation.tool.valid() &&
        in_set.contains(inst.derivation.tool.value())) {
      trace.add_trace_edge(from,
                           node_of.at(inst.derivation.tool.value()),
                           schema::DepKind::kFunctional, "");
    }
    for (std::size_t i = 0; i < inst.derivation.inputs.size(); ++i) {
      const InstanceId in = inst.derivation.inputs[i];
      if (in_set.contains(in.value())) {
        trace.add_trace_edge(from, node_of.at(in.value()),
                             schema::DepKind::kData,
                             inst.derivation.input_roles[i]);
      }
    }
  }
  return trace;
}

}  // namespace

TaskGraph backward_trace(const HistoryDb& db, InstanceId id) {
  return make_trace(db, {id}, /*close_backward=*/true, "backward-trace");
}

TaskGraph forward_trace(const HistoryDb& db, InstanceId id) {
  std::vector<InstanceId> members{id};
  for (const InstanceId dep : db.dependent_closure(id)) {
    members.push_back(dep);
  }
  // Close backward so each dependent task is shown with all its inputs.
  return make_trace(db, std::move(members), /*close_backward=*/true,
                    "forward-trace");
}

TaskGraph full_trace(const HistoryDb& db, InstanceId id) {
  std::vector<InstanceId> members{id};
  for (const InstanceId dep : db.dependent_closure(id)) {
    members.push_back(dep);
  }
  return make_trace(db, std::move(members), /*close_backward=*/true,
                    "full-trace");
}

std::vector<InstanceId> VersionTree::roots() const {
  std::vector<InstanceId> out;
  for (const Entry& e : entries) {
    if (!e.parent.valid()) out.push_back(e.instance);
  }
  return out;
}

std::vector<InstanceId> VersionTree::children(InstanceId id) const {
  std::vector<InstanceId> out;
  for (const Entry& e : entries) {
    if (e.parent == id) out.push_back(e.instance);
  }
  return out;
}

std::vector<InstanceId> VersionTree::leaves() const {
  std::vector<InstanceId> out;
  for (const Entry& e : entries) {
    if (children(e.instance).empty()) out.push_back(e.instance);
  }
  return out;
}

bool VersionTree::contains(InstanceId id) const {
  for (const Entry& e : entries) {
    if (e.instance == id) return true;
  }
  return false;
}

std::string VersionTree::to_dot(const HistoryDb& db) const {
  support::DotBuilder dot("version_tree");
  dot.graph_attr("rankdir", "TB");
  for (const Entry& e : entries) {
    const Instance& inst = db.instance(e.instance);
    std::string label = inst.name.empty()
                            ? "i" + std::to_string(e.instance.value())
                            : inst.name;
    label += "\nv" + std::to_string(e.version);
    dot.node("v" + std::to_string(e.instance.value()), label,
             {"shape=\"box\""});
  }
  for (const Entry& e : entries) {
    if (e.parent.valid()) {
      dot.edge("v" + std::to_string(e.parent.value()),
               "v" + std::to_string(e.instance.value()));
    }
  }
  return dot.str();
}

VersionTree version_tree(const HistoryDb& db, InstanceId member) {
  // Walk up to the lineage root...
  InstanceId root = member;
  while (true) {
    const auto parent = db.edit_parent(root);
    if (!parent) break;
    root = *parent;
  }
  // ...then fan out over edit children.
  VersionTree tree;
  std::deque<std::pair<InstanceId, InstanceId>> queue{{root, InstanceId()}};
  while (!queue.empty()) {
    const auto [cur, parent] = queue.front();
    queue.pop_front();
    tree.entries.push_back(
        VersionTree::Entry{cur, parent, db.instance(cur).version});
    for (const InstanceId child : db.edit_children(cur)) {
      queue.emplace_back(child, cur);
    }
  }
  return tree;
}

TaskGraph lineage_trace(const HistoryDb& db, InstanceId member) {
  const VersionTree tree = version_tree(db, member);
  std::vector<InstanceId> members;
  for (const VersionTree::Entry& e : tree.entries) {
    members.push_back(e.instance);
    const Instance& inst = db.instance(e.instance);
    if (inst.derivation.tool.valid()) {
      members.push_back(inst.derivation.tool);
    }
  }
  // No backward closure: the point of Fig. 11b is the lineage plus the
  // tools, not the whole ancestry.
  return make_trace(db, std::move(members), /*close_backward=*/false,
                    "lineage-trace");
}

namespace {

/// Recursive structural match of `inst` against pattern node `pnode`.
bool match_node(const HistoryDb& db, const TaskGraph& pattern, NodeId pnode,
                InstanceId inst);

/// A pattern dd edge awaiting assignment to a derivation input.
struct PendingEdge {
  NodeId target;
  const std::string* role;
};

/// Backtracking assignment of pattern dd edges to distinct derivation
/// inputs; an edge only matches inputs recorded under the same role.
bool assign_inputs(const HistoryDb& db, const TaskGraph& pattern,
                   const std::vector<PendingEdge>& edges, std::size_t next,
                   const Derivation& derivation, std::vector<char>& used) {
  if (next == edges.size()) return true;
  for (std::size_t j = 0; j < derivation.inputs.size(); ++j) {
    if (used[j]) continue;
    if (derivation.input_roles[j] != *edges[next].role) continue;
    if (match_node(db, pattern, edges[next].target, derivation.inputs[j])) {
      used[j] = 1;
      if (assign_inputs(db, pattern, edges, next + 1, derivation, used)) {
        return true;
      }
      used[j] = 0;
    }
  }
  return false;
}

bool match_node(const HistoryDb& db, const TaskGraph& pattern, NodeId pnode,
                InstanceId inst) {
  const graph::Node& node = pattern.node(pnode);
  const Instance& record = db.instance(inst);
  if (!db.schema().is_ancestor_or_self(node.type, record.type)) return false;
  if (!node.bound.empty() &&
      std::find(node.bound.begin(), node.bound.end(), inst) ==
          node.bound.end()) {
    return false;
  }
  std::vector<PendingEdge> dd_edges;
  for (const graph::DepEdge& e : pattern.deps(pnode)) {
    if (e.kind == schema::DepKind::kFunctional) {
      if (!record.derivation.tool.valid() ||
          !match_node(db, pattern, e.target, record.derivation.tool)) {
        return false;
      }
    } else {
      dd_edges.push_back(PendingEdge{e.target, &e.role});
    }
  }
  if (dd_edges.empty()) return true;
  std::vector<char> used(record.derivation.inputs.size(), 0);
  return assign_inputs(db, pattern, dd_edges, 0, record.derivation, used);
}

}  // namespace

std::vector<InstanceId> query_template(const HistoryDb& db,
                                       const TaskGraph& pattern,
                                       NodeId target) {
  std::vector<InstanceId> out;
  for (const InstanceId cand :
       db.instances_of(pattern.node(target).type, /*include_subtypes=*/true)) {
    if (match_node(db, pattern, target, cand)) out.push_back(cand);
  }
  return out;
}

}  // namespace herc::history
