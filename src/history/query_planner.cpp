#include "history/query_planner.hpp"

#include <algorithm>
#include <charconv>
#include <limits>

#include "history/history_db.hpp"
#include "support/text.hpp"

namespace herc::history {

using data::InstanceId;

PageCursor PageCursor::top() {
  return PageCursor{std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::uint32_t>::max()};
}

bool PageCursor::admits(std::int64_t c, std::uint32_t i) const {
  return c < created || (c == created && i < id);
}

std::string PageCursor::encode() const {
  return std::to_string(created) + ":" + std::to_string(id);
}

std::optional<PageCursor> PageCursor::decode(std::string_view s) {
  const std::size_t colon = s.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  PageCursor out;
  const std::string_view left = s.substr(0, colon);
  const std::string_view right = s.substr(colon + 1);
  auto first = std::from_chars(left.data(), left.data() + left.size(),
                               out.created);
  if (first.ec != std::errc() || first.ptr != left.data() + left.size()) {
    return std::nullopt;
  }
  auto second = std::from_chars(right.data(), right.data() + right.size(),
                                out.id);
  if (second.ec != std::errc() || second.ptr != right.data() + right.size()) {
    return std::nullopt;
  }
  return out;
}

std::string_view to_string(AccessPath path) {
  switch (path) {
    case AccessPath::kScan:
      return "scan";
    case AccessPath::kType:
      return "type-index";
    case AccessPath::kKeyword:
      return "keyword-index";
    case AccessPath::kUser:
      return "user-index";
    case AccessPath::kDate:
      return "date-index";
    case AccessPath::kUses:
      return "uses-index";
  }
  return "scan";
}

std::string QueryPlan::describe() const {
  return std::string(to_string(path)) + " (~" + std::to_string(estimate) +
         " candidates)";
}

bool matches(const HistoryDb& db, const QueryFilter& filter, InstanceId id) {
  const Instance& inst = db.instance(id);
  if (!inst.ok() && !filter.include_failures) return false;
  if (filter.type.valid() &&
      !db.schema().is_ancestor_or_self(filter.type, inst.type)) {
    return false;
  }
  if (!filter.keyword.empty() &&
      !support::icontains(inst.name, filter.keyword) &&
      !support::icontains(inst.comment, filter.keyword)) {
    return false;
  }
  if (!filter.user.empty() && inst.user != filter.user) return false;
  if (filter.from && inst.created < *filter.from) return false;
  if (filter.to && *filter.to < inst.created) return false;
  if (filter.uses) {
    if (!db.contains(*filter.uses)) return false;
    const Derivation& d = inst.derivation;
    if (d.tool != *filter.uses &&
        std::find(d.inputs.begin(), d.inputs.end(), *filter.uses) ==
            d.inputs.end()) {
      return false;
    }
  }
  return true;
}

QueryPlan plan_query(const HistoryDb& db, const QueryFilter& filter,
                     const SecondaryIndex* index) {
  QueryPlan plan;
  plan.path = AccessPath::kScan;
  plan.estimate = db.size();
  // Forward chaining is indexed inside the database itself (`used_by_`),
  // so the `uses` path needs no secondary index at all.
  if (filter.uses && db.contains(*filter.uses)) {
    const std::size_t n = db.used_by(*filter.uses).size();
    if (n < plan.estimate) {
      plan.path = AccessPath::kUses;
      plan.estimate = n;
    }
  }
  if (index != nullptr) {
    struct Option {
      AccessPath path;
      bool present;
    };
    const Option options[] = {
        {AccessPath::kType, filter.type.valid()},
        {AccessPath::kKeyword, !filter.keyword.empty()},
        {AccessPath::kUser, !filter.user.empty()},
        {AccessPath::kDate,
         filter.from.has_value() || filter.to.has_value()},
    };
    for (const Option& opt : options) {
      if (!opt.present) continue;
      const std::optional<std::size_t> est = index->estimate(filter, opt.path);
      if (est && *est < plan.estimate) {
        plan.path = opt.path;
        plan.estimate = *est;
      }
    }
  }
  return plan;
}

namespace {

/// Table walk in listing order: id-desc, which equals (created, id)-desc
/// because ids are assigned in creation order under a monotone clock.
std::vector<InstanceId> scan_candidates(const HistoryDb& db,
                                        const PageCursor& cursor,
                                        std::size_t limit) {
  std::vector<InstanceId> out;
  auto next = static_cast<std::uint64_t>(
      std::min<std::uint64_t>(cursor.id, db.size()));
  while (next > 0 && out.size() < limit) {
    --next;
    out.push_back(InstanceId(static_cast<std::uint32_t>(next)));
  }
  return out;
}

std::vector<InstanceId> uses_candidates(const HistoryDb& db,
                                        const QueryFilter& filter,
                                        const PageCursor& cursor,
                                        std::size_t limit) {
  const std::vector<InstanceId> deps = db.used_by(*filter.uses);  // ascending
  std::vector<InstanceId> out;
  auto it = std::lower_bound(deps.begin(), deps.end(), InstanceId(cursor.id));
  while (it != deps.begin() && out.size() < limit) {
    --it;
    out.push_back(*it);
  }
  return out;
}

}  // namespace

QueryPage run_page(const HistoryDb& db, const QueryFilter& filter,
                   const SecondaryIndex* index, std::size_t limit,
                   const std::optional<PageCursor>& after) {
  QueryPage page;
  page.plan = plan_query(db, filter, index);
  if (limit == 0) {
    page.next = after;
    return page;
  }
  PageCursor cursor = after.value_or(PageCursor::top());
  const std::size_t chunk =
      std::min<std::size_t>(std::max<std::size_t>(limit, 64), 4096);
  bool filled = false;
  for (;;) {
    std::vector<InstanceId> cand;
    switch (page.plan.path) {
      case AccessPath::kScan:
        cand = scan_candidates(db, cursor, chunk);
        break;
      case AccessPath::kUses:
        cand = uses_candidates(db, filter, cursor, chunk);
        break;
      default:
        cand = index->candidates(filter, page.plan.path, cursor, chunk);
        break;
    }
    const bool exhausted = cand.size() < chunk;
    for (const InstanceId id : cand) {
      ++page.candidates_examined;
      const Instance& inst = db.instance(id);
      // Advance past every *examined* candidate, matching or not, so the
      // next page resumes exactly where verification stopped.
      cursor.created = inst.created.micros();
      cursor.id = id.value();
      if (matches(db, filter, id)) {
        page.ids.push_back(id);
        if (page.ids.size() >= limit) {
          filled = true;
          break;
        }
      }
    }
    if (filled) {
      page.next = cursor;
      break;
    }
    if (exhausted) break;
  }
  return page;
}

}  // namespace herc::history
