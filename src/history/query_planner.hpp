// Cost-based query planning over the history database (Fig. 9, §4.2).
//
// A `QueryFilter` bundles the instance browser's predicates — entity type,
// keyword, creation-date limits, user, use-dependency — into one queryable
// value.  `plan_query` picks the cheapest access path: a secondary index
// (src/index) when one is attached and its candidate estimate beats a table
// scan, the database's own forward-derivation index for `uses` chaining, or
// the scan itself.  `run_page` executes the plan one cursor page at a time:
// candidates stream newest-first from the chosen path, *every* predicate is
// re-verified against the database proper, and verified rows fill the page.
//
// Indexes are candidate generators, never oracles: a path must yield a
// superset of the matching instances and the executor re-checks each one,
// so a planner answer is exactly the scan answer whatever state the index
// is in (mid-rebuild, carrying stale annotation postings, or absent).
//
// Listing order is (created desc, id desc).  Instance ids are assigned in
// creation order and the clock is monotone, so this equals plain id-desc
// order — which is what lets id-sorted posting lists serve date-ordered
// pages without a sort.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/instance_id.hpp"
#include "schema/entity.hpp"
#include "support/clock.hpp"

namespace herc::history {

class HistoryDb;

/// The browser's filter predicates as one bundle.  Every field is optional;
/// an instance matches when it passes all of the set ones.
struct QueryFilter {
  /// Root entity type; subtypes match too.  Invalid = any type.
  schema::EntityTypeId type;
  /// Failure/quarantine records are design data only when asked for.
  bool include_failures = false;
  /// Case-insensitive substring over instance name and comment.
  std::string keyword;
  /// Exact creating-user match.
  std::string user;
  /// Creation-date limits, inclusive.
  std::optional<support::Timestamp> from;
  std::optional<support::Timestamp> to;
  /// Only instances whose derivation used this instance directly
  /// (one-hop forward chaining, the "Use dependencies" option of Fig. 9).
  std::optional<data::InstanceId> uses;
};

/// A position in the listing order — (created, id) descending — encoded as
/// a "micros:id" cursor over the wire.  A page starts strictly *after* the
/// cursor, so a 10M-instance listing streams page by page and the server
/// never materializes it whole.
struct PageCursor {
  std::int64_t created = 0;
  std::uint32_t id = 0;

  /// The position before the first row: every instance is after it.
  [[nodiscard]] static PageCursor top();
  /// True when `created`/`id` (an instance's sort key) lies strictly after
  /// this cursor in listing order.
  [[nodiscard]] bool admits(std::int64_t c, std::uint32_t i) const;

  [[nodiscard]] std::string encode() const;
  /// Parses an `encode()` string; nullopt on malformed input.
  [[nodiscard]] static std::optional<PageCursor> decode(std::string_view s);
};

/// The access paths the planner chooses among.
enum class AccessPath : std::uint8_t {
  kScan = 0,     ///< walk the instance table newest-first
  kType = 1,     ///< per-entity-type creation lists
  kKeyword = 2,  ///< token postings (trigram-assisted substring)
  kUser = 3,     ///< per-user posting lists
  kDate = 4,     ///< global creation-date list
  kUses = 5,     ///< the database's forward-derivation index
};
[[nodiscard]] std::string_view to_string(AccessPath path);

/// Candidate-generator contract a secondary index implements (src/index's
/// `HistoryIndexes` is the one implementation; tests stub it).
class SecondaryIndex {
 public:
  virtual ~SecondaryIndex() = default;

  /// Estimated candidate count for serving `filter` through `path`, or
  /// nullopt when this index cannot serve that predicate (unindexable
  /// keyword, path it does not maintain).  Zero is a hard answer: the
  /// predicate provably matches nothing.
  [[nodiscard]] virtual std::optional<std::size_t> estimate(
      const QueryFilter& filter, AccessPath path) const = 0;

  /// Up to `limit` candidate ids strictly after `cursor` in listing order
  /// (newest first, no duplicates).  Returning fewer than `limit` means
  /// the path is exhausted.  Completeness duty: every instance matching
  /// the `path` predicate of `filter` past the cursor must appear —
  /// over-approximation is fine, omission is not.
  [[nodiscard]] virtual std::vector<data::InstanceId> candidates(
      const QueryFilter& filter, AccessPath path, const PageCursor& cursor,
      std::size_t limit) const = 0;

  /// Candidate ids whose *current* name may equal `name` (a superset), or
  /// nullopt when the lookup cannot be bounded — the query language's
  /// quoted-name resolution hook.
  [[nodiscard]] virtual std::optional<std::vector<data::InstanceId>>
  name_candidates(std::string_view name) const = 0;
};

/// What the planner chose, for EXPLAIN-style rendering.
struct QueryPlan {
  AccessPath path = AccessPath::kScan;
  /// Candidates the path expects to stream (db size for a scan).
  std::size_t estimate = 0;
  [[nodiscard]] std::string describe() const;
};

/// One executed page of a listing.
struct QueryPage {
  /// Verified matches, newest first.
  std::vector<data::InstanceId> ids;
  /// Resume cursor for the next page; nullopt when the listing is done.
  std::optional<PageCursor> next;
  QueryPlan plan;
  /// Candidates the executor examined (verification work), for tests and
  /// planner diagnostics.
  std::size_t candidates_examined = 0;
};

/// Picks the cheapest access path for `filter`.  `index` may be null.
[[nodiscard]] QueryPlan plan_query(const HistoryDb& db,
                                   const QueryFilter& filter,
                                   const SecondaryIndex* index);

/// Full predicate check of one instance against `filter` — the executor's
/// verification step, shared with tests asserting index/scan parity.
[[nodiscard]] bool matches(const HistoryDb& db, const QueryFilter& filter,
                           data::InstanceId id);

/// Executes one page: plans, streams candidates after `after` (or from the
/// top), verifies, and stops at `limit` verified rows.
[[nodiscard]] QueryPage run_page(
    const HistoryDb& db, const QueryFilter& filter,
    const SecondaryIndex* index, std::size_t limit,
    const std::optional<PageCursor>& after = std::nullopt);

}  // namespace herc::history
