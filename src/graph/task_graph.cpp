#include "graph/task_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "support/dot.hpp"
#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::graph {

using schema::ConstructionRule;
using schema::DepKind;
using schema::Dependency;
using schema::EntityTypeId;
using support::FlowError;

TaskGraph::TaskGraph(const schema::TaskSchema& schema, std::string name)
    : schema_(&schema), name_(std::move(name)) {}

void TaskGraph::check_node_id(NodeId n) const {
  if (!n.valid() || n.index() >= nodes_.size() || !nodes_[n.index()].alive) {
    throw FlowError("flow '" + name_ + "': invalid or removed node id");
  }
}

Node& TaskGraph::node_mut(NodeId n) {
  check_node_id(n);
  return nodes_[n.index()];
}

const Node& TaskGraph::node(NodeId n) const {
  check_node_id(n);
  return nodes_[n.index()];
}

NodeId TaskGraph::new_node(EntityTypeId type) {
  Node node;
  node.type = type;
  node.original_type = type;
  const NodeId id(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(std::move(node));
  deps_.emplace_back();
  consumers_.emplace_back();
  return id;
}

NodeId TaskGraph::add_node(EntityTypeId type) {
  (void)schema_->entity(type);  // validates the id against the schema
  return new_node(type);
}

NodeId TaskGraph::add_node(std::string_view type_name) {
  return new_node(schema_->require(type_name));
}

void TaskGraph::add_edge(NodeId from, const DepEdge& edge) {
  deps_[from.index()].push_back(edge);
  consumers_[edge.target.index()].push_back(from);
}

bool TaskGraph::creates_cycle(NodeId from, NodeId to) const {
  // Adding from -> to creates a cycle iff `from` is reachable from `to`.
  if (from == to) return true;
  std::vector<NodeId> stack{to};
  std::unordered_set<std::uint32_t> seen;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.value()).second) continue;
    for (const DepEdge& e : deps_[cur.index()]) {
      if (e.target == from) return true;
      stack.push_back(e.target);
    }
  }
  return false;
}

std::vector<NodeId> TaskGraph::expand(NodeId n, const ExpandOptions& opts) {
  const Node& node = this->node(n);
  if (node.expanded) {
    throw FlowError("node '" + schema_->entity_name(node.type) +
                    "' is already expanded");
  }
  if (schema_->is_abstract(node.type)) {
    throw FlowError("cannot expand abstract entity '" +
                    schema_->entity_name(node.type) +
                    "': specialize it first");
  }
  const ConstructionRule rule = schema_->construction(node.type);
  if (rule.empty()) {
    throw FlowError("source entity '" + schema_->entity_name(node.type) +
                    "' has no construction rule to expand");
  }
  std::vector<NodeId> created;
  if (rule.has_tool()) {
    const NodeId tool = new_node(rule.tool);
    nodes_[tool.index()].auto_created = true;
    add_edge(n, DepEdge{tool, DepKind::kFunctional, false, ""});
    created.push_back(tool);
  }
  for (const Dependency& dep : rule.inputs) {
    if (dep.optional && !opts.include_optional) continue;
    const NodeId input = new_node(dep.target);
    nodes_[input.index()].auto_created = true;
    add_edge(n, DepEdge{input, DepKind::kData, dep.optional, dep.role});
    created.push_back(input);
  }
  node_mut(n).expanded = true;
  return created;
}

std::optional<Dependency> TaskGraph::free_arc_for(NodeId consumer,
                                                  NodeId input) const {
  const ConstructionRule rule = schema_->construction(node(consumer).type);
  if (rule.empty()) return std::nullopt;

  // Mark the arcs already satisfied by existing edges.
  bool tool_used = false;
  std::vector<char> used(rule.inputs.size(), 0);
  for (const DepEdge& e : deps_[consumer.index()]) {
    if (e.kind == DepKind::kFunctional) {
      tool_used = true;
      continue;
    }
    for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
      if (used[i]) continue;
      if (rule.inputs[i].role == e.role &&
          schema_->is_ancestor_or_self(rule.inputs[i].target,
                                       node(e.target).type)) {
        used[i] = 1;
        break;
      }
    }
  }

  const EntityTypeId in_type = node(input).type;
  if (rule.has_tool() && !tool_used &&
      schema_->is_ancestor_or_self(rule.tool, in_type)) {
    return Dependency{rule.tool, DepKind::kFunctional, false, ""};
  }
  for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
    if (!used[i]) {
      if (schema_->is_ancestor_or_self(rule.inputs[i].target, in_type)) {
        return rule.inputs[i];
      }
    }
  }
  return std::nullopt;
}

void TaskGraph::connect(NodeId consumer, NodeId input) {
  check_node_id(consumer);
  check_node_id(input);
  const auto arc = free_arc_for(consumer, input);
  if (!arc) {
    throw FlowError("no unsatisfied arc of '" +
                    schema_->entity_name(node(consumer).type) +
                    "' accepts a '" + schema_->entity_name(node(input).type) +
                    "'");
  }
  if (creates_cycle(consumer, input)) {
    throw FlowError("connecting would create a cycle in flow '" + name_ +
                    "'");
  }
  add_edge(consumer,
           DepEdge{input, arc->kind, arc->optional, arc->role});
}

void TaskGraph::connect_role(NodeId consumer, NodeId input,
                             std::string_view role) {
  check_node_id(consumer);
  check_node_id(input);
  const ConstructionRule rule = schema_->construction(node(consumer).type);
  // Mark the arcs already satisfied by existing edges (role + type match,
  // greedily, mirroring free_arc_for), then pick an unused arc with the
  // requested role that accepts `input`.
  std::vector<char> used(rule.inputs.size(), 0);
  for (const DepEdge& e : deps_[consumer.index()]) {
    if (e.kind != DepKind::kData) continue;
    for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
      if (used[i] || rule.inputs[i].role != e.role) continue;
      if (schema_->is_ancestor_or_self(rule.inputs[i].target,
                                       node(e.target).type)) {
        used[i] = 1;
        break;
      }
    }
  }
  const Dependency* candidate = nullptr;
  for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
    if (used[i] || rule.inputs[i].role != role) continue;
    if (schema_->is_ancestor_or_self(rule.inputs[i].target,
                                     node(input).type)) {
      candidate = &rule.inputs[i];
      break;
    }
  }
  if (candidate == nullptr) {
    throw FlowError("no unsatisfied arc with role '" + std::string(role) +
                    "' of '" + schema_->entity_name(node(consumer).type) +
                    "' accepts a '" +
                    schema_->entity_name(node(input).type) + "'");
  }
  if (creates_cycle(consumer, input)) {
    throw FlowError("connecting would create a cycle in flow '" + name_ +
                    "'");
  }
  add_edge(consumer, DepEdge{input, DepKind::kData, candidate->optional,
                             std::string(role)});
}

void TaskGraph::add_trace_edge(NodeId consumer, NodeId input,
                               DepKind kind, std::string_view role) {
  check_node_id(consumer);
  check_node_id(input);
  if (kind == DepKind::kFunctional) {
    if (tool_of(consumer).valid()) {
      throw FlowError("trace node already has a functional dependency");
    }
    const ConstructionRule rule =
        schema_->construction(node(consumer).type);
    if (!rule.has_tool() ||
        !schema_->is_ancestor_or_self(rule.tool, node(input).type)) {
      throw FlowError("trace fd edge does not conform to the schema");
    }
  } else {
    // The edge must conform to *some* arc with this role (multiplicity
    // unconstrained: a set-accepting encapsulation legally exceeds it).
    const ConstructionRule rule =
        schema_->construction(node(consumer).type);
    const bool conforms = std::any_of(
        rule.inputs.begin(), rule.inputs.end(),
        [&](const Dependency& arc) {
          return arc.role == role &&
                 schema_->is_ancestor_or_self(arc.target,
                                              node(input).type);
        });
    if (!conforms) {
      throw FlowError("trace dd edge with role '" + std::string(role) +
                      "' does not conform to any arc of '" +
                      schema_->entity_name(node(consumer).type) + "'");
    }
  }
  if (creates_cycle(consumer, input)) {
    throw FlowError("trace edge would create a cycle");
  }
  add_edge(consumer, DepEdge{input, kind, false, std::string(role)});
  relaxed_ = true;
}

NodeId TaskGraph::expand_up(NodeId n, EntityTypeId consumer_type,
                            const ExpandOptions& opts) {
  check_node_id(n);
  (void)schema_->entity(consumer_type);
  if (schema_->is_abstract(consumer_type)) {
    throw FlowError("cannot expand towards abstract entity '" +
                    schema_->entity_name(consumer_type) + "'");
  }
  const ConstructionRule rule = schema_->construction(consumer_type);
  if (rule.empty()) {
    throw FlowError("'" + schema_->entity_name(consumer_type) +
                    "' is a source entity: nothing consumes through it");
  }

  // Decide how `n` wires into the consumer *before* mutating the graph:
  // as its tool if it is one, else as the first matching data input.
  const EntityTypeId in_type = node(n).type;
  const bool wired_as_tool =
      rule.has_tool() && schema_->is_ancestor_or_self(rule.tool, in_type);
  std::size_t wired_input = rule.inputs.size();
  if (!wired_as_tool) {
    for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
      if (schema_->is_ancestor_or_self(rule.inputs[i].target, in_type)) {
        wired_input = i;
        break;
      }
    }
    if (wired_input == rule.inputs.size()) {
      throw FlowError("'" + schema_->entity_name(consumer_type) +
                      "' has no arc accepting a '" +
                      schema_->entity_name(in_type) + "'");
    }
  }

  const NodeId consumer = new_node(consumer_type);
  nodes_[consumer.index()].auto_created = true;
  if (wired_as_tool) {
    add_edge(consumer, DepEdge{n, DepKind::kFunctional, false, ""});
  } else {
    add_edge(consumer, DepEdge{n, DepKind::kData,
                               rule.inputs[wired_input].optional,
                               rule.inputs[wired_input].role});
  }

  // Materialize the rest of the construction rule.
  if (rule.has_tool() && !wired_as_tool) {
    const NodeId tool = new_node(rule.tool);
    nodes_[tool.index()].auto_created = true;
    add_edge(consumer, DepEdge{tool, DepKind::kFunctional, false, ""});
  }
  for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
    if (i == wired_input) continue;
    const Dependency& dep = rule.inputs[i];
    if (dep.optional && !opts.include_optional) continue;
    const NodeId input = new_node(dep.target);
    nodes_[input.index()].auto_created = true;
    add_edge(consumer, DepEdge{input, DepKind::kData, dep.optional, dep.role});
  }
  nodes_[consumer.index()].expanded = true;
  return consumer;
}

void TaskGraph::unexpand(NodeId n) {
  Node& node = node_mut(n);
  if (!node.expanded && deps_[n.index()].empty()) {
    throw FlowError("node '" + schema_->entity_name(node.type) +
                    "' is not expanded");
  }
  // Detach all dependencies of `n`.
  std::vector<NodeId> detached;
  for (const DepEdge& e : deps_[n.index()]) detached.push_back(e.target);
  deps_[n.index()].clear();
  for (const NodeId t : detached) {
    auto& cons = consumers_[t.index()];
    cons.erase(std::find(cons.begin(), cons.end(), n));
  }
  node.expanded = false;

  // Garbage-collect auto-created nodes that are now orphans.
  std::deque<NodeId> queue(detached.begin(), detached.end());
  while (!queue.empty()) {
    const NodeId cand = queue.front();
    queue.pop_front();
    Node& c = nodes_[cand.index()];
    if (!c.alive || !c.auto_created || !consumers_[cand.index()].empty()) {
      continue;
    }
    for (const DepEdge& e : deps_[cand.index()]) {
      auto& cons = consumers_[e.target.index()];
      cons.erase(std::find(cons.begin(), cons.end(), cand));
      queue.push_back(e.target);
    }
    deps_[cand.index()].clear();
    c.alive = false;
  }
}

void TaskGraph::specialize(NodeId n, EntityTypeId subtype) {
  Node& node = node_mut(n);
  (void)schema_->entity(subtype);
  if (node.expanded) {
    throw FlowError("cannot specialize an expanded node; unexpand first");
  }
  if (subtype == node.type) {
    throw FlowError("node is already of type '" +
                    schema_->entity_name(subtype) + "'");
  }
  if (!schema_->is_ancestor_or_self(node.type, subtype)) {
    throw FlowError("'" + schema_->entity_name(subtype) +
                    "' is not a subtype of '" +
                    schema_->entity_name(node.type) + "'");
  }
  node.type = subtype;
}

NodeId TaskGraph::add_co_output(NodeId existing_goal, EntityTypeId type) {
  check_node_id(existing_goal);
  (void)schema_->entity(type);
  const NodeId tool = tool_of(existing_goal);
  if (!tool.valid()) {
    throw FlowError("node has no tool to share for a co-output");
  }
  const ConstructionRule rule = schema_->construction(type);
  if (!rule.has_tool() ||
      !schema_->is_ancestor_or_self(rule.tool, node(tool).type)) {
    throw FlowError("'" + schema_->entity_name(type) +
                    "' is not produced by tool '" +
                    schema_->entity_name(node(tool).type) + "'");
  }
  const NodeId out = new_node(type);
  add_edge(out, DepEdge{tool, DepKind::kFunctional, false, ""});

  const std::vector<NodeId> shared = inputs_of(existing_goal);
  std::vector<char> taken(shared.size(), 0);
  for (const Dependency& dep : rule.inputs) {
    if (dep.optional) continue;
    bool satisfied = false;
    for (std::size_t i = 0; i < shared.size(); ++i) {
      if (taken[i]) continue;
      if (schema_->is_ancestor_or_self(dep.target, node(shared[i]).type)) {
        add_edge(out, DepEdge{shared[i], DepKind::kData, dep.optional,
                              dep.role});
        taken[i] = 1;
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      const NodeId input = new_node(dep.target);
      nodes_[input.index()].auto_created = true;
      add_edge(out, DepEdge{input, DepKind::kData, dep.optional, dep.role});
    }
  }
  nodes_[out.index()].expanded = true;
  return out;
}

void TaskGraph::bind(NodeId n, data::InstanceId instance) {
  bind_set(n, {instance});
}

void TaskGraph::bind_set(NodeId n, std::vector<data::InstanceId> instances) {
  if (instances.empty()) {
    throw FlowError("bind_set requires at least one instance");
  }
  node_mut(n).bound = std::move(instances);
}

void TaskGraph::unbind(NodeId n) { node_mut(n).bound.clear(); }

const std::vector<data::InstanceId>& TaskGraph::bindings(NodeId n) const {
  return node(n).bound;
}

std::size_t TaskGraph::node_count() const {
  std::size_t count = 0;
  for (const Node& n : nodes_) count += n.alive ? 1 : 0;
  return count;
}

std::vector<NodeId> TaskGraph::nodes() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) out.push_back(NodeId(i));
  }
  return out;
}

void TaskGraph::set_label(NodeId n, std::string label) {
  node_mut(n).label = std::move(label);
}

const std::vector<DepEdge>& TaskGraph::deps(NodeId n) const {
  check_node_id(n);
  return deps_[n.index()];
}

NodeId TaskGraph::tool_of(NodeId n) const {
  check_node_id(n);
  for (const DepEdge& e : deps_[n.index()]) {
    if (e.kind == DepKind::kFunctional) return e.target;
  }
  return NodeId();
}

std::vector<NodeId> TaskGraph::inputs_of(NodeId n) const {
  check_node_id(n);
  std::vector<NodeId> out;
  for (const DepEdge& e : deps_[n.index()]) {
    if (e.kind == DepKind::kData) out.push_back(e.target);
  }
  return out;
}

std::vector<NodeId> TaskGraph::consumers_of(NodeId n) const {
  check_node_id(n);
  return consumers_[n.index()];
}

std::vector<NodeId> TaskGraph::leaves() const {
  std::vector<NodeId> out;
  for (const NodeId n : nodes()) {
    if (deps_[n.index()].empty()) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> TaskGraph::goals() const {
  std::vector<NodeId> out;
  for (const NodeId n : nodes()) {
    if (consumers_[n.index()].empty()) out.push_back(n);
  }
  return out;
}

bool TaskGraph::is_leaf(NodeId n) const {
  check_node_id(n);
  return deps_[n.index()].empty();
}

std::vector<NodeId> TaskGraph::unbound_leaves() const {
  std::vector<NodeId> out;
  for (const NodeId n : leaves()) {
    if (nodes_[n.index()].bound.empty()) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> TaskGraph::closure(NodeId goal) const {
  check_node_id(goal);
  std::vector<NodeId> order;
  std::unordered_set<std::uint32_t> seen;
  std::vector<NodeId> stack{goal};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.value()).second) continue;
    order.push_back(cur);
    for (const DepEdge& e : deps_[cur.index()]) stack.push_back(e.target);
  }
  std::sort(order.begin(), order.end());
  return order;
}

bool TaskGraph::runnable(NodeId goal) const {
  for (const NodeId n : closure(goal)) {
    if (deps_[n.index()].empty() && nodes_[n.index()].bound.empty()) {
      return false;
    }
  }
  return true;
}

std::vector<TaskGroup> TaskGraph::task_groups() const {
  // Group computable nodes by (tool node, input set); a shared tool node
  // with identical inputs means one invocation with multiple outputs.
  std::map<std::pair<std::uint32_t, std::vector<NodeId>>, TaskGroup> groups;
  for (const NodeId n : nodes()) {
    if (deps_[n.index()].empty()) continue;
    const NodeId tool = tool_of(n);
    std::vector<NodeId> inputs = inputs_of(n);
    std::sort(inputs.begin(), inputs.end());
    // Compose tasks (no tool) never merge: key them by their output node.
    const std::uint32_t tool_key = tool.valid() ? tool.value()
                                                : 0x80000000u + n.value();
    auto& group = groups[{tool_key, inputs}];
    group.tool = tool;
    group.inputs = inputs;
    group.outputs.push_back(n);
  }

  // Topological order over groups (a group needing another's output runs
  // after it).
  std::vector<TaskGroup> all;
  all.reserve(groups.size());
  for (auto& [key, group] : groups) {
    std::sort(group.outputs.begin(), group.outputs.end());
    all.push_back(std::move(group));
  }
  std::unordered_map<std::uint32_t, std::size_t> producer;  // node -> group
  for (std::size_t g = 0; g < all.size(); ++g) {
    for (const NodeId out : all[g].outputs) producer[out.value()] = g;
  }
  std::vector<std::vector<std::size_t>> succs(all.size());
  std::vector<std::size_t> indeg(all.size(), 0);
  for (std::size_t g = 0; g < all.size(); ++g) {
    auto feeds = all[g].inputs;
    if (all[g].tool.valid()) feeds.push_back(all[g].tool);
    for (const NodeId in : feeds) {
      const auto it = producer.find(in.value());
      if (it != producer.end() && it->second != g) {
        succs[it->second].push_back(g);
        ++indeg[g];
      }
    }
  }
  std::deque<std::size_t> ready;
  for (std::size_t g = 0; g < all.size(); ++g) {
    if (indeg[g] == 0) ready.push_back(g);
  }
  std::vector<TaskGroup> ordered;
  ordered.reserve(all.size());
  while (!ready.empty()) {
    const std::size_t g = ready.front();
    ready.pop_front();
    ordered.push_back(all[g]);
    for (const std::size_t s : succs[g]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (ordered.size() != all.size()) {
    throw FlowError("flow '" + name_ + "' contains a dependency cycle");
  }
  return ordered;
}

TaskGraph TaskGraph::subflow(NodeId goal) const {
  const std::vector<NodeId> keep = closure(goal);
  TaskGraph sub(*schema_, name_ + ":" +
                              schema_->entity_name(node(goal).type));
  sub.relaxed_ = relaxed_;
  std::unordered_map<std::uint32_t, NodeId> remap;
  for (const NodeId n : keep) {
    const Node& src = nodes_[n.index()];
    const NodeId m = sub.new_node(src.original_type);
    Node& dst = sub.nodes_[m.index()];
    dst.type = src.type;
    dst.expanded = src.expanded;
    dst.bound = src.bound;
    dst.label = src.label;
    dst.auto_created = src.auto_created;
    remap[n.value()] = m;
  }
  for (const NodeId n : keep) {
    for (const DepEdge& e : deps_[n.index()]) {
      DepEdge copy = e;
      copy.target = remap.at(e.target.value());
      sub.add_edge(remap.at(n.value()), copy);
    }
  }
  return sub;
}

void TaskGraph::check() const {
  for (const NodeId n : nodes()) {
    const Node& node = nodes_[n.index()];
    const auto& edges = deps_[n.index()];
    if (edges.empty()) continue;
    if (schema_->is_abstract(node.type)) {
      throw FlowError("expanded node has abstract type '" +
                      schema_->entity_name(node.type) + "'");
    }
    const ConstructionRule rule = schema_->construction(node.type);
    bool tool_used = false;
    std::vector<char> used(rule.inputs.size(), 0);
    for (const DepEdge& e : edges) {
      const EntityTypeId target_type = nodes_[e.target.index()].type;
      if (e.kind == DepKind::kFunctional) {
        if (tool_used) {
          throw FlowError("node '" + schema_->entity_name(node.type) +
                          "' has two functional dependencies");
        }
        if (!rule.has_tool() ||
            !schema_->is_ancestor_or_self(rule.tool, target_type)) {
          throw FlowError("tool edge of '" + schema_->entity_name(node.type) +
                          "' does not match its construction rule");
        }
        tool_used = true;
        continue;
      }
      bool matched = false;
      for (std::size_t i = 0; i < rule.inputs.size(); ++i) {
        if (rule.inputs[i].role != e.role) continue;
        if (!schema_->is_ancestor_or_self(rule.inputs[i].target,
                                          target_type)) {
          continue;
        }
        if (!used[i]) {
          used[i] = 1;
          matched = true;
          break;
        }
        if (relaxed_) {
          // Trace graphs may satisfy one arc with several edges (set
          // inputs recorded in a derivation).
          matched = true;
          break;
        }
      }
      if (!matched) {
        throw FlowError("input edge '" +
                        schema_->entity_name(target_type) + "' of node '" +
                        schema_->entity_name(node.type) +
                        "' matches no free arc of its construction rule");
      }
    }
    // Cycle check is implied by task_groups(), but run the cheap local one
    // too so `check` stands alone.
  }
  (void)task_groups();  // throws on cycles
}

std::string TaskGraph::to_lisp(NodeId goal) const {
  const Node& node = this->node(goal);
  std::string out = schema_->entity_name(node.type);
  const auto& edges = deps_[goal.index()];
  if (edges.empty()) return out;
  out += '(';
  const NodeId tool = tool_of(goal);
  bool first = true;
  if (tool.valid()) {
    out += to_lisp(tool);
    first = false;
  } else {
    out += "compose";
    first = false;
  }
  for (const DepEdge& e : edges) {
    if (e.kind == DepKind::kFunctional) continue;
    if (!first) out += ", ";
    out += to_lisp(e.target);
    first = false;
  }
  out += ')';
  return out;
}

std::string TaskGraph::to_dot() const {
  support::DotBuilder dot(name_);
  dot.graph_attr("rankdir", "BT");
  auto node_id = [](NodeId n) { return "n" + std::to_string(n.value()); };
  for (const NodeId n : nodes()) {
    const Node& node = nodes_[n.index()];
    std::string label = schema_->entity_name(node.type);
    if (!node.label.empty()) label += "\n" + node.label;
    if (!node.bound.empty()) {
      label += "\n[" + std::to_string(node.bound.size()) + " bound]";
    }
    std::vector<std::string> attrs;
    attrs.push_back(schema_->is_tool(node.type) ? "shape=\"ellipse\""
                                                : "shape=\"box\"");
    if (!node.bound.empty()) attrs.push_back("style=\"filled\"");
    dot.node(node_id(n), label, attrs);
  }
  for (const NodeId n : nodes()) {
    for (const DepEdge& e : deps_[n.index()]) {
      std::vector<std::string> attrs;
      if (e.optional) attrs.push_back("style=\"dashed\"");
      std::string label = schema::to_string(e.kind);
      if (!e.role.empty()) label += ":" + e.role;
      dot.edge(node_id(n), node_id(e.target), label, attrs);
    }
  }
  return dot.str();
}

std::string TaskGraph::save() const {
  std::string out;
  out += support::RecordWriter("flow")
             .field(name_)
             .field(schema_->name())
             .field(static_cast<std::uint32_t>(relaxed_ ? 1 : 0))
             .str() +
         "\n";
  // Compact alive nodes to dense indices.
  std::unordered_map<std::uint32_t, std::uint32_t> compact;
  std::uint32_t next = 0;
  for (const NodeId n : nodes()) compact[n.value()] = next++;
  for (const NodeId n : nodes()) {
    const Node& node = nodes_[n.index()];
    support::RecordWriter w("node");
    w.field(compact.at(n.value()));
    w.field(schema_->entity_name(node.type));
    w.field(schema_->entity_name(node.original_type));
    w.field(static_cast<std::uint32_t>(node.expanded ? 1 : 0));
    w.field(static_cast<std::uint32_t>(node.auto_created ? 1 : 0));
    w.field(node.label);
    out += w.str() + "\n";
    if (!node.bound.empty()) {
      support::RecordWriter b("bind");
      b.field(compact.at(n.value()));
      for (const data::InstanceId inst : node.bound) b.field(inst.value());
      out += b.str() + "\n";
    }
  }
  for (const NodeId n : nodes()) {
    for (const DepEdge& e : deps_[n.index()]) {
      support::RecordWriter w("edge");
      w.field(compact.at(n.value()));
      w.field(std::string_view(schema::to_string(e.kind)));
      w.field(compact.at(e.target.value()));
      w.field(static_cast<std::uint32_t>(e.optional ? 1 : 0));
      w.field(e.role);
      out += w.str() + "\n";
    }
  }
  return out;
}

TaskGraph TaskGraph::load(const schema::TaskSchema& schema,
                          std::string_view text) {
  TaskGraph flow(schema);
  std::vector<NodeId> by_index;
  for (const std::string& line : support::split(text, '\n')) {
    if (support::trim(line).empty()) continue;
    support::RecordReader rec(line);
    if (rec.kind() == "flow") {
      flow.name_ = rec.next_string();
      const std::string schema_name = rec.next_string();
      if (schema_name != schema.name()) {
        throw support::ParseError("flow was saved against schema '" +
                                  schema_name + "', not '" + schema.name() +
                                  "'");
      }
      if (!rec.exhausted()) flow.relaxed_ = rec.next_uint32() != 0;
    } else if (rec.kind() == "node") {
      const std::uint32_t index = rec.next_uint32();
      if (index != by_index.size()) {
        throw support::ParseError("flow file: node records out of order");
      }
      const EntityTypeId type = schema.require(rec.next_string());
      const EntityTypeId original = schema.require(rec.next_string());
      const bool expanded = rec.next_uint32() != 0;
      const bool auto_created = rec.next_uint32() != 0;
      std::string label = rec.next_string();
      const NodeId n = flow.new_node(original);
      Node& node = flow.nodes_[n.index()];
      node.type = type;
      node.expanded = expanded;
      node.auto_created = auto_created;
      node.label = std::move(label);
      by_index.push_back(n);
    } else if (rec.kind() == "bind") {
      const std::uint32_t index = rec.next_uint32();
      if (index >= by_index.size()) {
        throw support::ParseError("flow file: bind before node");
      }
      std::vector<data::InstanceId> bound;
      while (!rec.exhausted()) {
        bound.push_back(data::InstanceId(rec.next_uint32()));
      }
      flow.nodes_[by_index[index].index()].bound = std::move(bound);
    } else if (rec.kind() == "edge") {
      const std::uint32_t from = rec.next_uint32();
      const std::string kind = rec.next_string();
      const std::uint32_t to = rec.next_uint32();
      const bool optional = rec.next_uint32() != 0;
      std::string role = rec.next_string();
      if (from >= by_index.size() || to >= by_index.size()) {
        throw support::ParseError("flow file: edge references unknown node");
      }
      flow.add_edge(by_index[from],
                    DepEdge{by_index[to],
                            kind == "fd" ? DepKind::kFunctional
                                         : DepKind::kData,
                            optional, std::move(role)});
    } else {
      throw support::ParseError("flow file: unknown record '" + rec.kind() +
                                "'");
    }
  }
  flow.check();
  return flow;
}

}  // namespace herc::graph
