// Task graphs: the representation of dynamically defined flows (paper §3.2).
//
// A task graph is a directed acyclic graph in which every node corresponds
// to an entity of the task schema and every edge to a dependency.  The flow
// is a *temporary* structure the designer grows on demand:
//
//   * `expand` pulls a node's construction rule into the graph (producer
//     direction — Fig. 4);
//   * `expand_up` grows the flow towards a consumer (the paper allows
//     expansion "in either direction");
//   * `specialize` narrows an abstract node to a concrete subtype so it can
//     be expanded (Fig. 4b);
//   * `connect` reuses an existing node as a dependency of another task
//     (entity reuse — Fig. 5);
//   * `add_co_output` attaches a second output to an existing task
//     (multi-output tasks — Fig. 5).
//
// Leaf nodes are *bound* to entity instances from the design database; a set
// of instances may be bound at once, fanning the task out over each member
// (§4.1).  The same structure doubles as the template for history queries
// (§4.2) and as the form of a flow trace (Fig. 11b).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/instance_id.hpp"
#include "schema/task_schema.hpp"
#include "support/ids.hpp"

namespace herc::graph {

struct NodeTag {};
/// Identifies a node within one task graph.
using NodeId = support::Id<NodeTag>;

/// An edge from a dependent node to one of its dependencies.
struct DepEdge {
  NodeId target;
  schema::DepKind kind = schema::DepKind::kData;
  bool optional = false;
  std::string role;
};

/// One node of a task graph.
struct Node {
  /// Current entity type (narrowed by `specialize`).
  schema::EntityTypeId type;
  /// The type the node was created with (before specialization).
  schema::EntityTypeId original_type;
  /// Set once the node's construction rule has been pulled into the graph.
  bool expanded = false;
  /// Instances selected in the browser; for a task run once, exactly one.
  std::vector<data::InstanceId> bound;
  /// Optional user label shown in renderings.
  std::string label;
  /// Tombstone (nodes removed by `unexpand` keep their id).
  bool alive = true;
  /// Set for nodes materialized by expand/co-output (they are candidates
  /// for garbage collection when `unexpand` orphans them), cleared for
  /// nodes the designer placed explicitly.
  bool auto_created = false;
};

/// Options controlling `expand`/`expand_up`.
struct ExpandOptions {
  /// Also materialize optional (dashed) inputs; by default they are left
  /// out, which is how schema loops stay broken in flows.
  bool include_optional = false;
};

/// One executable unit of a flow: a tool node (invalid for composite
/// entities) applied to a set of input nodes, producing one or more output
/// nodes.  Two goal nodes sharing the same tool node and inputs form one
/// task with multiple outputs.
struct TaskGroup {
  NodeId tool;                  ///< invalid for compose tasks
  std::vector<NodeId> inputs;   ///< dd targets, sorted by id
  std::vector<NodeId> outputs;  ///< goal nodes, sorted by id
};

class TaskGraph {
 public:
  /// The graph holds a reference to its schema; the schema must outlive it.
  explicit TaskGraph(const schema::TaskSchema& schema,
                     std::string name = "flow");

  [[nodiscard]] const schema::TaskSchema& schema() const { return *schema_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- growing the flow ----------------------------------------------------

  /// Starts (or extends) the flow with a free-standing node of `type` —
  /// the entry point of all four design approaches of §3.4.
  NodeId add_node(schema::EntityTypeId type);
  NodeId add_node(std::string_view type_name);

  /// Expands `n` in the producer direction: creates its tool node and its
  /// mandatory input nodes per the schema construction rule.  Returns the
  /// nodes created.  Throws `FlowError` when `n` is abstract (specialize
  /// first), a source entity, or already expanded.
  std::vector<NodeId> expand(NodeId n, const ExpandOptions& opts = {});

  /// Expands in the consumer direction: creates a node of `consumer_type`
  /// that uses `n` as one of its dependencies, together with the consumer's
  /// tool and remaining mandatory inputs.  Returns the consumer node.
  NodeId expand_up(NodeId n, schema::EntityTypeId consumer_type,
                   const ExpandOptions& opts = {});

  /// Removes the dependency subtree created for `n` (nodes not shared with
  /// other tasks) and marks `n` unexpanded.
  void unexpand(NodeId n);

  /// Narrows `n` to `subtype` (a concrete-or-abstract descendant of its
  /// current type).  Only unexpanded nodes may be specialized.
  void specialize(NodeId n, schema::EntityTypeId subtype);

  /// Reuses `input` as a dependency of `consumer`: wires an edge matching
  /// an unsatisfied arc of `consumer`'s construction rule (fd if `input` is
  /// the task's tool, dd otherwise).  Entity reuse of Fig. 5.
  void connect(NodeId consumer, NodeId input);

  /// Like `connect`, but targets the unsatisfied dd arc with exactly
  /// `role` — needed when a rule has several same-type inputs (e.g. the
  /// comparator's golden/candidate pair).
  void connect_role(NodeId consumer, NodeId input, std::string_view role);

  /// Adds an edge from recorded history (flow-trace construction).  A
  /// derivation is ground truth: a set-accepting encapsulation may have
  /// consumed *several* instances through one schema arc, so trace edges
  /// bypass arc-multiplicity matching (type conformance and acyclicity are
  /// still enforced, and at most one fd edge per node).  Using this marks
  /// the graph *relaxed*: `check()` then permits several dd edges per arc.
  void add_trace_edge(NodeId consumer, NodeId input, schema::DepKind kind,
                      std::string_view role);

  /// True when the graph carries trace edges (relaxed arc multiplicity).
  [[nodiscard]] bool relaxed() const { return relaxed_; }

  /// Attaches a second output of `type` to the task that produces
  /// `existing_goal` (multi-output, Fig. 5).  The new node shares the tool
  /// node and all type-compatible inputs; missing mandatory inputs are
  /// created.  Returns the new output node.
  NodeId add_co_output(NodeId existing_goal, schema::EntityTypeId type);

  // ---- bindings --------------------------------------------------------------

  /// Binds `n` to one instance (replacing previous bindings).
  void bind(NodeId n, data::InstanceId instance);
  /// Binds `n` to a set of instances; tasks fan out over each member.
  void bind_set(NodeId n, std::vector<data::InstanceId> instances);
  void unbind(NodeId n);
  [[nodiscard]] const std::vector<data::InstanceId>& bindings(NodeId n) const;

  // ---- structure -------------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const;  ///< alive nodes
  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] const Node& node(NodeId n) const;
  void set_label(NodeId n, std::string label);

  /// Outgoing dependency edges of `n` (its tool and inputs).
  [[nodiscard]] const std::vector<DepEdge>& deps(NodeId n) const;
  /// The tool node `n`'s task runs, or an invalid id.
  [[nodiscard]] NodeId tool_of(NodeId n) const;
  /// The dd targets of `n`, in edge order.
  [[nodiscard]] std::vector<NodeId> inputs_of(NodeId n) const;
  /// Nodes having `n` as a dependency.
  [[nodiscard]] std::vector<NodeId> consumers_of(NodeId n) const;

  /// Nodes with no outgoing edges; they must be bound before execution.
  [[nodiscard]] std::vector<NodeId> leaves() const;
  /// Nodes with no consumers — the goals of the flow.
  [[nodiscard]] std::vector<NodeId> goals() const;
  [[nodiscard]] bool is_leaf(NodeId n) const;

  /// Leaves not yet bound to any instance.
  [[nodiscard]] std::vector<NodeId> unbound_leaves() const;
  /// True when every leaf reachable from `goal` is bound, i.e. the
  /// (sub)flow rooted at `goal` can run (§4.1: "a subflow may be run at any
  /// stage as long as its dependencies are satisfied").
  [[nodiscard]] bool runnable(NodeId goal) const;

  /// Groups computable nodes into executable tasks, in a valid
  /// (dependency-respecting) order.
  [[nodiscard]] std::vector<TaskGroup> task_groups() const;

  /// Nodes of the dependency closure of `goal` (including `goal`).
  [[nodiscard]] std::vector<NodeId> closure(NodeId goal) const;
  /// Extracts the sub-flow rooted at `goal` as a new graph (bindings kept).
  [[nodiscard]] TaskGraph subflow(NodeId goal) const;

  // ---- validation -------------------------------------------------------------

  /// Verifies every node and edge against the schema: at most one fd edge
  /// per node, every edge matches a distinct arc of the node's construction
  /// rule, no cycles.  Throws `FlowError` on the first violation.
  void check() const;

  // ---- representations ---------------------------------------------------------

  /// Lisp-style rendering of the task rooted at `goal` (paper footnote 2):
  /// `PlacedLayout(Placer, EditedNetlist(CircuitEditor), ...)`.
  [[nodiscard]] std::string to_lisp(NodeId goal) const;

  /// Graphviz rendering in the style of Fig. 3b.
  [[nodiscard]] std::string to_dot() const;

  /// Serializes the flow (structure + bindings) to record lines.
  [[nodiscard]] std::string save() const;
  /// Restores a flow saved with `save`; entity types are resolved by name
  /// against `schema`.
  [[nodiscard]] static TaskGraph load(const schema::TaskSchema& schema,
                                      std::string_view text);

 private:
  NodeId new_node(schema::EntityTypeId type);
  void add_edge(NodeId from, const DepEdge& edge);
  void check_node_id(NodeId n) const;
  Node& node_mut(NodeId n);
  /// Finds an unsatisfied arc of `consumer`'s rule that `input` can satisfy.
  [[nodiscard]] std::optional<schema::Dependency> free_arc_for(
      NodeId consumer, NodeId input) const;
  [[nodiscard]] bool creates_cycle(NodeId from, NodeId to) const;

  const schema::TaskSchema* schema_;
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<DepEdge>> deps_;
  std::vector<std::vector<NodeId>> consumers_;
  bool relaxed_ = false;
};

}  // namespace herc::graph
