#include "graph/bipartite.hpp"

#include <unordered_map>

#include "support/dot.hpp"

namespace herc::graph {

BipartiteDiagram to_bipartite(const TaskGraph& flow) {
  BipartiteDiagram out;
  std::unordered_map<std::uint32_t, std::size_t> data_index;

  auto data_box = [&](NodeId n) -> std::size_t {
    const auto it = data_index.find(n.value());
    if (it != data_index.end()) return it->second;
    const std::size_t idx = out.data.size();
    out.data.push_back(BipartiteDiagram::DataBox{
        flow.schema().entity_name(flow.node(n).type), n});
    data_index.emplace(n.value(), idx);
    return idx;
  };

  for (const TaskGroup& group : flow.task_groups()) {
    BipartiteDiagram::ActivityBox activity;
    activity.tool_node = group.tool;
    activity.tool =
        group.tool.valid()
            ? flow.schema().entity_name(flow.node(group.tool).type)
            : std::string("compose");
    for (const NodeId in : group.inputs) {
      activity.inputs.push_back(data_box(in));
    }
    for (const NodeId outn : group.outputs) {
      activity.outputs.push_back(data_box(outn));
    }
    // A produced tool also shows up as a data box: it is data to the task
    // that made it, an activity to the task that runs it.
    if (group.tool.valid() && !flow.deps(group.tool).empty()) {
      data_box(group.tool);
    }
    out.activities.push_back(std::move(activity));
  }
  // Free-standing data nodes (leaves of an unexpanded flow) still appear.
  for (const NodeId n : flow.nodes()) {
    if (flow.deps(n).empty() && flow.consumers_of(n).empty()) {
      data_box(n);
    }
  }
  return out;
}

std::string BipartiteDiagram::to_dot() const {
  support::DotBuilder dot("bipartite");
  dot.graph_attr("rankdir", "LR");
  for (std::size_t i = 0; i < data.size(); ++i) {
    dot.node("d" + std::to_string(i), data[i].entity, {"shape=\"box\""});
  }
  for (std::size_t a = 0; a < activities.size(); ++a) {
    const std::string id = "a" + std::to_string(a);
    dot.node(id, activities[a].tool, {"shape=\"ellipse\""});
    for (const std::size_t in : activities[a].inputs) {
      dot.edge("d" + std::to_string(in), id);
    }
    for (const std::size_t outn : activities[a].outputs) {
      dot.edge(id, "d" + std::to_string(outn));
    }
  }
  return dot.str();
}

std::string BipartiteDiagram::render_text() const {
  std::string out;
  for (const ActivityBox& activity : activities) {
    out += '[';
    for (std::size_t i = 0; i < activity.inputs.size(); ++i) {
      if (i != 0) out += ", ";
      out += data[activity.inputs[i]].entity;
    }
    out += "] --" + activity.tool + "--> [";
    for (std::size_t i = 0; i < activity.outputs.size(); ++i) {
      if (i != 0) out += ", ";
      out += data[activity.outputs[i]].entity;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace herc::graph
