// The traditional bipartite flow diagram (Fig. 3a).
//
// Most flow-management systems of the era drew flows as alternating data
// and activity boxes.  The paper argues the task graph (Fig. 3b) carries the
// same information while treating the tool as just another parameter; this
// conversion demonstrates the equivalence and lets flows be rendered in
// either style.
#pragma once

#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace herc::graph {

/// A flow in bipartite (data-box / activity-box) form.
struct BipartiteDiagram {
  struct DataBox {
    std::string entity;  ///< entity-type name
    NodeId node;         ///< the task-graph node it came from
  };
  struct ActivityBox {
    std::string tool;           ///< tool-entity name ("compose" for composites)
    NodeId tool_node;           ///< invalid for compose activities
    std::vector<std::size_t> inputs;   ///< indices into `data`
    std::vector<std::size_t> outputs;  ///< indices into `data`
  };

  std::vector<DataBox> data;
  std::vector<ActivityBox> activities;

  /// Graphviz rendering: data as boxes, activities as ellipses.
  [[nodiscard]] std::string to_dot() const;

  /// One-line-per-activity text rendering:
  ///   `[EditedNetlist] --CircuitEditor--> [PlacedLayout]`.
  [[nodiscard]] std::string render_text() const;
};

/// Converts a task graph into bipartite form.  Tool nodes become activity
/// boxes; data nodes become data boxes; multi-output tasks become one
/// activity with several outputs.  Tool nodes that are themselves produced
/// by a task additionally appear as data boxes (a tool as data — Fig. 2).
[[nodiscard]] BipartiteDiagram to_bipartite(const TaskGraph& flow);

}  // namespace herc::graph
