// Payload codecs for the replication frame types (HERCNET1 kSubscribe /
// kSnapshot / kJournal / kCheckpoint / kAck — see server/protocol.hpp).
//
// The stream position `(epoch, seq)` is the replication cursor: `epoch` is
// the storage epoch (bumped by every snapshot checkpoint — the fencing
// token), `seq` the 0-based frame index within that epoch's journal.  A
// follower at `(e, s)` has applied exactly the snapshot of epoch `e` plus
// journal frames `0..s-1`.
//
// Wire frames carry no checksum of their own, so each shipped journal
// payload (and snapshot body) embeds a `storage::frame_checksum` — a
// follower can tell a corrupted shipment from a desynchronized stream and
// never applies a torn frame.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace herc::replica {

/// A follower's cursor in the leader's journal stream.
struct StreamPosition {
  std::uint64_t epoch = 0;
  /// Next frame expected (frames `0..seq-1` of `epoch` are applied).
  std::uint64_t seq = 0;

  friend bool operator==(const StreamPosition& a, const StreamPosition& b) {
    return a.epoch == b.epoch && a.seq == b.seq;
  }
};

/// kSubscribe payload: "" to bootstrap from nothing, else
/// "<epoch> <seq>[ <tail-checksum>]".  The optional third field is
/// `storage::frame_checksum` of the follower's LAST applied frame
/// (`seq-1`): seq equality alone cannot prove the follower's history is a
/// prefix of the leader's — after a crash tore the leader's journal tail,
/// a follower that streamed the torn frame complete holds a different
/// frame under the same sequence number.  The leader compares the tail
/// checksum against its own record and answers a mismatch with a snapshot
/// resync instead of silently registering a diverged follower as caught
/// up.
[[nodiscard]] std::string encode_subscribe(
    const std::optional<StreamPosition>& position,
    std::optional<std::uint64_t> tail_checksum = std::nullopt);
/// Throws `support::NetError` on a malformed payload.
[[nodiscard]] std::optional<StreamPosition> decode_subscribe(
    std::string_view payload);

/// A fully parsed kSubscribe payload (position + optional tail checksum).
struct SubscribeInfo {
  std::optional<StreamPosition> position;
  std::optional<std::uint64_t> tail_checksum;
};
/// Throws `support::NetError` on a malformed payload.
[[nodiscard]] SubscribeInfo decode_subscribe_info(std::string_view payload);

/// One shipped journal frame (kJournal): the leader's journal payload for
/// sequence `seq` of `epoch`, verbatim.
struct JournalShipment {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  /// The save()-format mutation lines (the journal frame payload).
  std::string lines;
};

/// kJournal payload: "<epoch> <seq> <checksum>\n" + lines, where checksum
/// is `storage::frame_checksum(lines)`.
[[nodiscard]] std::string encode_journal(std::uint64_t epoch,
                                         std::uint64_t seq,
                                         std::string_view lines);
/// Throws `support::NetError` on a malformed header or checksum mismatch.
[[nodiscard]] JournalShipment decode_journal(std::string_view payload);

/// A full store image (kSnapshot): bootstrap or resync.  Installing it
/// puts the follower at position `(epoch, seq)`.
struct SnapshotShipment {
  std::uint64_t epoch = 0;
  /// Journal frames of `epoch` already folded into `image`.
  std::uint64_t seq = 0;
  /// `schema::write_schema` of the leader's schema.
  std::string schema_text;
  /// `HistoryDb::save()` of the leader's database.
  std::string image;
};

/// kSnapshot payload: "<epoch> <seq> <schema-bytes> <checksum>\n" +
/// schema text + image, checksum over schema text + image.
[[nodiscard]] std::string encode_snapshot(const SnapshotShipment& snapshot);
/// Throws `support::NetError` on a malformed header or checksum mismatch.
[[nodiscard]] SnapshotShipment decode_snapshot(std::string_view payload);

/// kCheckpoint payload: "<new-epoch>".
[[nodiscard]] std::string encode_checkpoint(std::uint64_t new_epoch);
/// Throws `support::NetError` on a malformed payload.
[[nodiscard]] std::uint64_t decode_checkpoint(std::string_view payload);

/// kAck payload: "<epoch> <seq>" — the follower's applied position.
[[nodiscard]] std::string encode_ack(const StreamPosition& position);
/// Throws `support::NetError` on a malformed payload.
[[nodiscard]] StreamPosition decode_ack(std::string_view payload);

}  // namespace herc::replica
